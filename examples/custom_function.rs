//! Bringing your own target function.
//!
//! MITHRA is not tied to the six paper benchmarks: any type implementing
//! [`Benchmark`] gets the full treatment — NPU training, statistical
//! threshold certification, and both hardware classifiers. This example
//! defines a synthetic "sensor linearization" kernel (a common embedded
//! safe-to-approximate function) and runs the whole pipeline on it.
//!
//! ```text
//! cargo run --release --example custom_function
//! ```

use mithra::axbench::benchmark::{Benchmark, WorkloadProfile};
use mithra::axbench::dataset::{Dataset, DatasetScale, OutputBuffer};
use mithra::axbench::quality::QualityMetric;
use mithra::npu::topology::Topology;
use mithra::prelude::*;
use mithra_sim::system::simulate;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// A 2-input sensor linearization: temperature-compensated conversion of
/// a raw ADC reading, `f(raw, temp) = sqrt(raw) * (1 + 0.05 * tanh(temp))`.
/// Smooth almost everywhere — but with a kink near `raw = 0` where the
/// square root's slope explodes, so some invocations approximate badly.
#[derive(Debug, Clone, Copy, Default)]
struct SensorLinearize;

impl Benchmark for SensorLinearize {
    fn name(&self) -> &'static str {
        "sensor-linearize"
    }

    fn domain(&self) -> &'static str {
        "Embedded Sensing"
    }

    fn description(&self) -> &'static str {
        "Temperature-compensated ADC linearization"
    }

    fn input_dim(&self) -> usize {
        2
    }

    fn output_dim(&self) -> usize {
        1
    }

    fn npu_topology(&self) -> Topology {
        Topology::new(&[2, 8, 1]).expect("valid topology")
    }

    fn quality_metric(&self) -> QualityMetric {
        QualityMetric::AvgRelativeError
    }

    fn precise(&self, input: &[f32], output: &mut Vec<f32>) {
        let (raw, temp) = (input[0], input[1]);
        output.clear();
        output.push(raw.max(0.0).sqrt() * (1.0 + 0.05 * temp.tanh()));
    }

    fn dataset(&self, seed: u64, scale: DatasetScale) -> Dataset {
        let count = match scale {
            DatasetScale::Smoke => 64,
            DatasetScale::Full => 2048,
        };
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x5E45_0001));
        let mut flat = Vec::with_capacity(count * 2);
        for _ in 0..count {
            // Readings cluster mid-range with an occasional near-zero
            // sample — the hard cases.
            let raw: f32 = if rng.gen_bool(0.1) {
                rng.gen_range(0.0..0.5)
            } else {
                rng.gen_range(0.5..100.0)
            };
            flat.push(raw);
            flat.push(rng.gen_range(-3.0f32..3.0));
        }
        Dataset::from_flat(seed, 2, flat)
    }

    fn run_application(&self, _dataset: &Dataset, outputs: &OutputBuffer) -> Vec<f64> {
        outputs.as_flat().iter().map(|&v| f64::from(v)).collect()
    }

    fn paper_full_approx_error(&self) -> f64 {
        0.0 // not a paper benchmark
    }

    fn profile(&self) -> WorkloadProfile {
        WorkloadProfile {
            kernel_cycles: 120,
            non_kernel_fraction: 0.1,
        }
    }

    fn npu_training_epochs(&self) -> usize {
        150
    }
}

fn main() -> Result<(), MithraError> {
    let bench: Arc<dyn Benchmark> = Arc::new(SensorLinearize);
    let mut config = CompileConfig::smoke();
    config.spec = QualitySpec::new(0.05, 0.90, 0.70)?;

    println!("compiling MITHRA for the custom `sensor-linearize` kernel...");
    let compiled = compile(Arc::clone(&bench), &config)?;
    println!(
        "  threshold {:.4}, certified >= {:.0}% of unseen datasets within 5% loss",
        compiled.threshold.threshold,
        compiled.threshold.certified_rate * 100.0
    );

    let dataset = bench.dataset(9_000_001, config.scale);
    let profile = DatasetProfile::collect(&compiled.function, dataset);
    let mut table = compiled.table.clone();
    let run = simulate(&compiled, &profile, &mut table, &SimOptions::default());
    println!(
        "  unseen batch: speedup {:.2}x, invoked {:.0}%, quality loss {:.2}%",
        run.speedup(),
        run.invocation_rate() * 100.0,
        run.quality_loss * 100.0
    );
    println!("\nany `Benchmark` implementation gets the full pipeline - no suite changes needed.");
    Ok(())
}
