//! Quickstart: compile MITHRA for one workload and run an unseen dataset.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mithra::prelude::*;
use mithra_sim::system::simulate;
use std::sync::Arc;

fn main() -> Result<(), MithraError> {
    // The quality requirement: at most 10% final quality loss, certified
    // at 90% confidence for 70% of unseen datasets. (Smoke scale keeps
    // this example fast; the paper's configuration is 5% / 95% / 90% over
    // 250 full-size datasets — see the experiment binaries.)
    let bench: Arc<_> = suite::by_name("sobel")
        .expect("sobel is in the suite")
        .into();
    let mut config = CompileConfig::smoke();
    config.spec = QualitySpec::new(0.10, 0.90, 0.70)?;

    println!("compiling MITHRA for `sobel`...");
    let compiled = compile(bench, &config)?;
    println!(
        "  threshold         : {:.4} (normalized accelerator error)",
        compiled.threshold.threshold
    );
    println!(
        "  compile successes : {}/{} datasets met the target",
        compiled.threshold.successes, compiled.threshold.trials
    );
    println!(
        "  certified         : >= {:.1}% of unseen datasets will meet it (at {})",
        compiled.threshold.certified_rate * 100.0,
        config.spec.confidence,
    );
    println!(
        "  table classifier  : {} ({:.2} KB compressed)",
        compiled.table.design(),
        compiled.table.compress().stats().compressed_bytes as f64 / 1024.0
    );
    println!("  neural classifier : {}", compiled.neural.topology());

    // Run a dataset MITHRA has never seen.
    let dataset = compiled.function.dataset(1_000_001, config.scale);
    let profile = DatasetProfile::collect(&compiled.function, dataset);

    for (label, mut classifier) in [
        (
            "oracle",
            Box::new(compiled.oracle_for(&profile)) as Box<dyn Classifier>,
        ),
        ("table", Box::new(compiled.table.clone())),
        ("neural", Box::new(compiled.neural.clone())),
    ] {
        let run = simulate(
            &compiled,
            &profile,
            classifier.as_mut(),
            &SimOptions::default(),
        );
        println!(
            "  {label:<6} -> speedup {:.2}x, energy {:.2}x, invoked {:.0}%, quality loss {:.2}%",
            run.speedup(),
            run.energy_reduction(),
            run.invocation_rate() * 100.0,
            run.quality_loss * 100.0
        );
    }
    Ok(())
}
