//! An image-processing pipeline under quality control.
//!
//! The scenario the paper's introduction motivates: an edge-detection
//! stage (sobel) runs on an approximate accelerator, and MITHRA decides
//! per 3×3 window whether the NPU's answer is trustworthy. This example
//! processes a batch of unseen images and reports the per-image quality
//! and the running gains, contrasting full approximation against the
//! quality-controlled system.
//!
//! ```text
//! cargo run --release --example image_pipeline
//! ```

use mithra::prelude::*;
use mithra_core::random::RandomFilter;
use mithra_sim::system::simulate;
use std::sync::Arc;

fn main() -> Result<(), MithraError> {
    let bench: Arc<_> = suite::by_name("sobel")
        .expect("sobel is in the suite")
        .into();
    let mut config = CompileConfig::smoke();
    config.spec = QualitySpec::new(0.05, 0.90, 0.70)?;

    println!("compiling the edge-detection pipeline (5% quality target)...");
    let compiled = compile(bench, &config)?;

    println!("\nprocessing 8 unseen images:");
    println!(
        "{:<8} {:>14} {:>14} {:>12} {:>12}",
        "image", "full-approx", "controlled", "invoked", "speedup"
    );

    let mut controlled_ok = 0;
    for i in 0..8u64 {
        let dataset = compiled.function.dataset(2_000_000 + i, config.scale);
        let profile = DatasetProfile::collect(&compiled.function, dataset);

        // Full approximation: what the conventional always-invoke flow does.
        let mut always = RandomFilter::new(1.0, 0);
        let full = simulate(&compiled, &profile, &mut always, &SimOptions::default());

        // MITHRA's table classifier.
        let mut table = compiled.table.clone();
        let controlled = simulate(&compiled, &profile, &mut table, &SimOptions::default());
        if controlled.quality_loss <= 0.05 {
            controlled_ok += 1;
        }

        println!(
            "{:<8} {:>13.2}% {:>13.2}% {:>11.0}% {:>11.2}x",
            format!("#{i}"),
            full.quality_loss * 100.0,
            controlled.quality_loss * 100.0,
            controlled.invocation_rate() * 100.0,
            controlled.speedup()
        );
    }
    println!(
        "\n{controlled_ok}/8 controlled images met the 5% target \
         (certified floor: {:.0}% of unseen datasets)",
        compiled.threshold.certified_rate * 100.0
    );

    // Write one image's three edge maps as PGM files so the quality
    // difference is visible, not just a number.
    let dataset = compiled.function.dataset(2_000_000, config.scale);
    let profile = DatasetProfile::collect(&compiled.function, dataset);
    let side = (profile.invocation_count() as f64).sqrt() as usize;
    let bench = compiled.function.benchmark();

    let mut approx_all = mithra::axbench::dataset::OutputBuffer::new(1);
    let mut precise_all = mithra::axbench::dataset::OutputBuffer::new(1);
    let mut controlled = mithra::axbench::dataset::OutputBuffer::new(1);
    let mut table = compiled.table.clone();
    for (i, input) in profile.dataset().iter().enumerate() {
        approx_all.push(profile.approx_output(i));
        precise_all.push(profile.precise_output(i));
        match table.classify(i, input) {
            Decision::Approximate => controlled.push(profile.approx_output(i)),
            Decision::Precise => controlled.push(profile.precise_output(i)),
        }
    }
    let out_dir = std::path::Path::new("target/image_pipeline");
    std::fs::create_dir_all(out_dir).expect("create output directory");
    for (name, buffer) in [
        ("edges_precise.pgm", &precise_all),
        ("edges_full_approx.pgm", &approx_all),
        ("edges_controlled.pgm", &controlled),
    ] {
        let pixels: Vec<f32> = bench
            .run_application(profile.dataset(), buffer)
            .iter()
            .map(|&v| v as f32)
            .collect();
        let img = mithra::axbench::image::GrayImage::from_pixels(side, side, pixels);
        mithra::axbench::pgm::write_file(&img, out_dir.join(name)).expect("write PGM artifact");
    }
    println!("edge maps written to target/image_pipeline/*.pgm");
    Ok(())
}
