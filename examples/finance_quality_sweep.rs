//! Sweeping the quality knob on a financial-analytics workload.
//!
//! An option-pricing service (blackscholes) wants to choose how much
//! accuracy to trade for throughput. This example compiles MITHRA at a
//! range of quality targets and prints the resulting threshold,
//! invocation rate and gains — the tradeoff curve the programmer
//! navigates (the paper's Figure 6, one benchmark).
//!
//! ```text
//! cargo run --release --example finance_quality_sweep
//! ```

use mithra::prelude::*;
use mithra_core::pipeline::compile_with_profiles;
use mithra_core::profile::DatasetProfile;
use mithra_sim::system::simulate;
use std::sync::Arc;

fn main() -> Result<(), MithraError> {
    let bench: Arc<_> = suite::by_name("blackscholes")
        .expect("blackscholes is in the suite")
        .into();
    let base_config = CompileConfig::smoke();

    // Train the accelerator and profile once; re-certify per target.
    println!("training the pricing accelerator...");
    let first = compile(Arc::clone(&bench), &base_config)?;
    let function = first.function.clone();
    let profiles = first.profiles.clone();

    println!(
        "\n{:<10} {:>10} {:>10} {:>10} {:>10}",
        "target", "threshold", "invoked", "speedup", "quality"
    );
    for target in [0.02, 0.05, 0.10, 0.20] {
        let mut config = base_config.clone();
        config.spec = QualitySpec::new(target, 0.90, 0.70)?;
        let compiled = match compile_with_profiles(function.clone(), profiles.clone(), &config) {
            Ok(c) => c,
            Err(e) => {
                println!("{:<10} {e}", format!("{:.0}%", target * 100.0));
                continue;
            }
        };

        // Average over a few unseen batches.
        let (mut speedup, mut invoked, mut quality) = (0.0, 0.0, 0.0);
        let n = 6u64;
        for i in 0..n {
            let ds = compiled.function.dataset(3_000_000 + i, config.scale);
            let profile = DatasetProfile::collect(&compiled.function, ds);
            let mut table = compiled.table.clone();
            let run = simulate(&compiled, &profile, &mut table, &SimOptions::default());
            speedup += run.speedup();
            invoked += run.invocation_rate();
            quality += run.quality_loss;
        }
        let n = n as f64;
        println!(
            "{:<10} {:>10.4} {:>9.0}% {:>9.2}x {:>9.2}%",
            format!("{:.0}%", target * 100.0),
            compiled.threshold.threshold,
            invoked / n * 100.0,
            speedup / n,
            quality / n * 100.0
        );
    }
    println!("\nlooser quality targets widen the threshold, raise the invocation rate,");
    println!("and buy more speedup - the tradeoff MITHRA lets the programmer control.");
    Ok(())
}
