//! An application with two accelerated regions.
//!
//! The paper (§III-A): "If the application offloads multiple functions to
//! the accelerator, this algorithm can be extended to greedily find a
//! tuple of thresholds." This example models a robotics pipeline whose
//! perception stage (sobel edge detection) and planning stage (inversek2j
//! inverse kinematics) are both accelerated, and certifies one joint
//! quality budget across them.
//!
//! ```text
//! cargo run --release --example multi_function
//! ```

use mithra::prelude::*;
use mithra_core::function::NpuTrainConfig;
use mithra_core::multi::{Region, TupleOptimizer};
use mithra_core::profile::DatasetProfile;
use std::sync::Arc;

fn region(name: &str, weight: f64, datasets: u64) -> Result<Region, MithraError> {
    let bench: Arc<dyn Benchmark> = suite::by_name(name).expect("suite benchmark").into();
    let scale = mithra::axbench::dataset::DatasetScale::Smoke;
    let train: Vec<_> = (0..3).map(|s| bench.dataset(s, scale)).collect();
    let function = AcceleratedFunction::train(
        bench,
        &train,
        &NpuTrainConfig {
            epochs: Some(40),
            max_samples: 3000,
            seed: 9,
        },
    )?;
    let profiles = (0..datasets)
        .map(|s| DatasetProfile::collect(&function, function.dataset(100 + s, scale)))
        .collect();
    Ok(Region {
        function,
        profiles,
        weight,
    })
}

fn main() -> Result<(), MithraError> {
    println!("training both accelerated regions of the robotics pipeline...");
    let regions = vec![
        region("sobel", 1.0, 25)?,      // perception
        region("inversek2j", 2.0, 25)?, // planning (weighted heavier)
    ];

    let spec = QualitySpec::new(0.08, 0.90, 0.60)?;
    println!(
        "certifying a joint {:.0}% quality budget ({} confidence, {:.0}% success rate)...",
        spec.max_quality_loss * 100.0,
        spec.confidence,
        spec.success_rate * 100.0
    );
    let outcome = TupleOptimizer::new(spec).optimize(&regions)?;

    println!("\nper-region thresholds (greedy, benefit-descending order):");
    for (i, name) in ["sobel (perception)", "inversek2j (planning)"]
        .iter()
        .enumerate()
    {
        println!(
            "  {name:<24} threshold {:.4}  invocation rate {:.0}%",
            outcome.thresholds[i],
            outcome.invocation_rates[i] * 100.0
        );
    }
    println!(
        "\njoint guarantee: {}/{} compile datasets passed; certified >= {:.0}% of unseen runs",
        outcome.successes,
        outcome.trials,
        outcome.certified_rate * 100.0
    );
    Ok(())
}
