//! Thread-count invariance of the parallel compile-path sweeps.
//!
//! The compile pipeline parallelizes three independent axes — the neural
//! hidden-topology sweep, the table `(levels, vote)` candidate grid, and
//! per-profile certification replay. Each worker runs an independent
//! candidate with its own scratch state and results are folded in the
//! original candidate order, so every artifact must be **bit-identical**
//! at any thread count. These tests pin that: threads 1 through 4 (and
//! "available parallelism") must produce byte-equal classifiers and
//! thresholds. A failure here means a reduction order leaked across the
//! thread boundary — which would silently break artifact-cache
//! interchangeability and reproducible results.

use mithra_axbench::benchmark::Benchmark;
use mithra_axbench::suite;
use mithra_core::neural::NeuralClassifier;
use mithra_core::pipeline::{compile, quantizer_from_profiles, CompileConfig};
use mithra_core::table::TableClassifier;
use mithra_core::threshold::ThresholdOptimizer;
use std::sync::Arc;

/// Thread counts to sweep: sequential baseline, several bounded pools,
/// and the host default.
const THREADS: [Option<usize>; 5] = [Some(1), Some(2), Some(3), Some(4), None];

#[test]
fn parallel_sweeps_are_bit_identical_across_thread_counts() {
    let bench: Arc<dyn Benchmark> = suite::by_name("sobel").unwrap().into();
    let config = CompileConfig::smoke();
    let compiled = compile(bench, &config).unwrap();

    // Neural hidden-topology sweep: each candidate trains on its own
    // worker; the winner is selected by an in-order fold.
    let baseline_neural = NeuralClassifier::train_with_threads(
        compiled.function.benchmark().input_dim(),
        &compiled.training_data,
        &config.neural,
        Some(1),
    )
    .unwrap();
    let baseline_json = serde_json::to_string(&baseline_neural).unwrap();
    for threads in THREADS {
        let candidate = NeuralClassifier::train_with_threads(
            compiled.function.benchmark().input_dim(),
            &compiled.training_data,
            &config.neural,
            threads,
        )
        .unwrap();
        assert_eq!(
            serde_json::to_string(&candidate).unwrap(),
            baseline_json,
            "neural classifier diverged at threads={threads:?}"
        );
    }

    // Table (levels, vote) candidate grid: per-levels quantized grids are
    // shared read-only; scores fold in levels-major candidate order.
    let quantizer = quantizer_from_profiles(&compiled.profiles);
    let baseline_table = TableClassifier::train_with_threads(
        config.table_design,
        quantizer.clone(),
        &compiled.training_data,
        Some(1),
    )
    .unwrap();
    for threads in THREADS {
        let candidate = TableClassifier::train_with_threads(
            config.table_design,
            quantizer.clone(),
            &compiled.training_data,
            threads,
        )
        .unwrap();
        assert_eq!(
            candidate, baseline_table,
            "table classifier diverged at threads={threads:?}"
        );
    }

    // Certification replay: per-profile replays run on workers; success
    // counts and the invocation-rate sum fold in profile order.
    let baseline_outcome = ThresholdOptimizer::new(config.spec)
        .with_threads(Some(1))
        .optimize(&compiled.function, &compiled.profiles)
        .unwrap();
    for threads in THREADS {
        let outcome = ThresholdOptimizer::new(config.spec)
            .with_threads(threads)
            .optimize(&compiled.function, &compiled.profiles)
            .unwrap();
        assert_eq!(
            outcome, baseline_outcome,
            "certified threshold diverged at threads={threads:?}"
        );
        let (successes, bound, rate) = ThresholdOptimizer::new(config.spec)
            .with_threads(threads)
            .certify(
                &compiled.function,
                &compiled.profiles,
                baseline_outcome.threshold,
            )
            .unwrap();
        let (s0, b0, r0) = ThresholdOptimizer::new(config.spec)
            .with_threads(Some(1))
            .certify(
                &compiled.function,
                &compiled.profiles,
                baseline_outcome.threshold,
            )
            .unwrap();
        assert_eq!((successes, bound, rate), (s0, b0, r0));
    }
}
