//! Thread-count invariance of the parallel compile-path sweeps.
//!
//! The compile pipeline parallelizes three independent axes — the neural
//! hidden-topology sweep, the table `(levels, vote)` candidate grid, and
//! per-profile certification replay. Each worker runs an independent
//! candidate with its own scratch state and results are folded in the
//! original candidate order, so every artifact must be **bit-identical**
//! at any thread count. These tests pin that: threads 1 through 4 (and
//! "available parallelism") must produce byte-equal classifiers and
//! thresholds. A failure here means a reduction order leaked across the
//! thread boundary — which would silently break artifact-cache
//! interchangeability and reproducible results.

use mithra_axbench::benchmark::Benchmark;
use mithra_axbench::suite;
use mithra_core::neural::NeuralClassifier;
use mithra_core::pipeline::{compile, compile_routed, quantizer_from_profiles, CompileConfig};
use mithra_core::route::{generate_route_training_data, PoolSpec, RouteClassifier, RouterKind};
use mithra_core::table::TableClassifier;
use mithra_core::threshold::ThresholdOptimizer;
use std::sync::Arc;

/// Thread counts to sweep: sequential baseline, several bounded pools,
/// and the host default.
const THREADS: [Option<usize>; 5] = [Some(1), Some(2), Some(3), Some(4), None];

#[test]
fn parallel_sweeps_are_bit_identical_across_thread_counts() {
    let bench: Arc<dyn Benchmark> = suite::by_name("sobel").unwrap().into();
    let config = CompileConfig::smoke();
    let compiled = compile(bench, &config).unwrap();

    // Neural hidden-topology sweep: each candidate trains on its own
    // worker; the winner is selected by an in-order fold.
    let baseline_neural = NeuralClassifier::train_with_threads(
        compiled.function.benchmark().input_dim(),
        &compiled.training_data,
        &config.neural,
        Some(1),
    )
    .unwrap();
    let baseline_json = serde_json::to_string(&baseline_neural).unwrap();
    for threads in THREADS {
        let candidate = NeuralClassifier::train_with_threads(
            compiled.function.benchmark().input_dim(),
            &compiled.training_data,
            &config.neural,
            threads,
        )
        .unwrap();
        assert_eq!(
            serde_json::to_string(&candidate).unwrap(),
            baseline_json,
            "neural classifier diverged at threads={threads:?}"
        );
    }

    // Table (levels, vote) candidate grid: per-levels quantized grids are
    // shared read-only; scores fold in levels-major candidate order.
    let quantizer = quantizer_from_profiles(&compiled.profiles);
    let baseline_table = TableClassifier::train_with_threads(
        config.table_design,
        quantizer.clone(),
        &compiled.training_data,
        Some(1),
    )
    .unwrap();
    for threads in THREADS {
        let candidate = TableClassifier::train_with_threads(
            config.table_design,
            quantizer.clone(),
            &compiled.training_data,
            threads,
        )
        .unwrap();
        assert_eq!(
            candidate, baseline_table,
            "table classifier diverged at threads={threads:?}"
        );
    }

    // Certification replay: per-profile replays run on workers; success
    // counts and the invocation-rate sum fold in profile order.
    let baseline_outcome = ThresholdOptimizer::new(config.spec)
        .with_threads(Some(1))
        .optimize(&compiled.function, &compiled.profiles)
        .unwrap();
    for threads in THREADS {
        let outcome = ThresholdOptimizer::new(config.spec)
            .with_threads(threads)
            .optimize(&compiled.function, &compiled.profiles)
            .unwrap();
        assert_eq!(
            outcome, baseline_outcome,
            "certified threshold diverged at threads={threads:?}"
        );
        let (successes, bound, rate) = ThresholdOptimizer::new(config.spec)
            .with_threads(threads)
            .certify(
                &compiled.function,
                &compiled.profiles,
                baseline_outcome.threshold,
            )
            .unwrap();
        let (s0, b0, r0) = ThresholdOptimizer::new(config.spec)
            .with_threads(Some(1))
            .certify(
                &compiled.function,
                &compiled.profiles,
                baseline_outcome.threshold,
            )
            .unwrap();
        assert_eq!((successes, bound, rate), (s0, b0, r0));
    }
}

#[test]
fn routed_artifacts_are_bit_identical_across_thread_counts() {
    // The routed branch adds three parallel stages on top of the binary
    // ones — pool training, routed-mixture certification, router
    // training. The whole routed compile must still be bit-identical at
    // any thread count: same certified mixture threshold, same router
    // bytes, same member weights.
    let bench: Arc<dyn Benchmark> = suite::by_name("sobel").unwrap().into();
    let spec = PoolSpec::sized(&bench.npu_topology(), 3);
    let routed_at = |threads: Option<usize>| {
        let config = CompileConfig {
            threads,
            ..CompileConfig::smoke()
        };
        compile_routed(Arc::clone(&bench), &config, &spec).unwrap()
    };
    let baseline = routed_at(Some(1));
    let baseline_router = serde_json::to_string(&baseline.router).unwrap();
    for threads in THREADS {
        let candidate = routed_at(threads);
        assert_eq!(
            candidate.threshold, baseline.threshold,
            "routed threshold diverged at threads={threads:?}"
        );
        assert_eq!(
            serde_json::to_string(&candidate.router).unwrap(),
            baseline_router,
            "router diverged at threads={threads:?}"
        );
        for (m, (c, b)) in candidate
            .pool
            .members()
            .iter()
            .zip(baseline.pool.members())
            .enumerate()
        {
            assert_eq!(
                c.npu().to_parameters(),
                b.npu().to_parameters(),
                "pool member {m} diverged at threads={threads:?}"
            );
        }

        // The deployed routed optimizer itself — the certification a
        // multi-member compile runs — re-run over the baseline's member
        // profiles at this thread count.
        let config = CompileConfig::smoke();
        let outcome = ThresholdOptimizer::new(config.spec)
            .with_threads(threads)
            .optimize_routed_deployed(&baseline.pool, &baseline.member_profiles, |t| {
                mithra_core::route::RouteClassifier::train(
                    &baseline.member_profiles,
                    t,
                    &config.table_design,
                    config.classifier_train_samples,
                    config.seed_base ^ 0x7261_696E,
                    threads,
                )
            })
            .unwrap();
        assert_eq!(
            outcome, baseline.threshold,
            "optimize_routed_deployed diverged at threads={threads:?}"
        );
    }
}

#[test]
fn kary_router_training_is_bit_identical_across_thread_counts() {
    // The design-space explorer sweeps the router axis, so the K-ary
    // neural router — the one truly parallel router variant — must be as
    // thread-invariant as the cascade: same labeled examples, byte-equal
    // trained router at every thread count.
    let bench: Arc<dyn Benchmark> = suite::by_name("sobel").unwrap().into();
    let config = CompileConfig::smoke();
    let spec =
        PoolSpec::sized(&bench.npu_topology(), 2).with_router(RouterKind::kary_neural_default());
    let routed = compile_routed(Arc::clone(&bench), &config, &spec).unwrap();
    let threshold = routed.threshold.threshold;

    // Labeled route examples are a sequential shuffle-truncate: the
    // thread count never enters.
    let baseline_examples = generate_route_training_data(
        &routed.member_profiles,
        threshold,
        &spec,
        config.classifier_train_samples,
        config.seed_base ^ 0x7261_696E,
    );
    assert!(!baseline_examples.is_empty());

    let router_at = |threads: Option<usize>| {
        RouteClassifier::train_for_spec(
            &spec,
            &routed.member_profiles,
            threshold,
            &config.table_design,
            config.classifier_train_samples,
            config.seed_base ^ 0x7261_696E,
            threads,
        )
        .unwrap()
    };
    let baseline = serde_json::to_string(&router_at(Some(1))).unwrap();
    for threads in THREADS {
        assert_eq!(
            serde_json::to_string(&router_at(threads)).unwrap(),
            baseline,
            "K-ary neural router diverged at threads={threads:?}"
        );
    }
}
