//! Property-based tests on MITHRA's core data structures and invariants.

use mithra_core::classifier::{Classifier, Decision};
use mithra_core::misr::{InputQuantizer, Misr, MisrConfig};
use mithra_core::table::{TableClassifier, TableDesign};
use mithra_core::training::TrainingExample;
use proptest::prelude::*;

proptest! {
    #[test]
    fn misr_index_always_in_table_range(
        elements in prop::collection::vec(any::<u8>(), 1..80),
        cfg_idx in 0usize..16,
        width in 8u32..16,
    ) {
        let cfg = MisrConfig::pool()[cfg_idx];
        let idx = Misr::hash(cfg, width, &elements);
        prop_assert!(idx < (1usize << width));
    }

    #[test]
    fn misr_is_a_function(
        elements in prop::collection::vec(any::<u8>(), 1..40),
        cfg_idx in 0usize..16,
    ) {
        let cfg = MisrConfig::pool()[cfg_idx];
        prop_assert_eq!(
            Misr::hash(cfg, 12, &elements),
            Misr::hash(cfg, 12, &elements)
        );
    }

    #[test]
    fn quantizer_is_monotone_per_dimension(
        a in -1000.0f32..1000.0,
        b in -1000.0f32..1000.0,
        levels in 2u16..=256,
    ) {
        let q = InputQuantizer::new(vec![-1000.0], vec![1000.0]).with_levels(levels);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(q.quantize(&[lo])[0] <= q.quantize(&[hi])[0]);
    }

    #[test]
    fn quantizer_output_below_levels(
        v in -1e6f32..1e6,
        levels in 2u16..=256,
    ) {
        let q = InputQuantizer::new(vec![0.0], vec![100.0]).with_levels(levels);
        prop_assert!(u16::from(q.quantize(&[v])[0]) < levels);
    }

    #[test]
    fn conservative_table_always_rejects_trained_rejects(
        reject_values in prop::collection::vec(0.0f32..1.0, 1..30),
        accept_values in prop::collection::vec(0.0f32..1.0, 1..30),
    ) {
        let examples: Vec<TrainingExample> = reject_values
            .iter()
            .map(|&v| TrainingExample { input: vec![v], reject: true })
            .chain(accept_values.iter().map(|&v| TrainingExample {
                input: vec![v],
                reject: false,
            }))
            .collect();
        let quantizer = InputQuantizer::new(vec![0.0], vec![1.0]);
        // The paper's conservative rule (vote threshold 0): every trained
        // reject must be rejected afterwards, aliasing notwithstanding.
        let mut c = TableClassifier::train_with_quantizer(
            TableDesign::paper_default(),
            quantizer,
            &examples,
        )
        .unwrap();
        for &v in &reject_values {
            prop_assert_eq!(c.decide(&[v]), Decision::Precise);
        }
    }

    #[test]
    fn observe_never_unrejects(
        initial in prop::collection::vec(0.0f32..1.0, 1..10),
        probes in prop::collection::vec(0.0f32..1.0, 1..20),
    ) {
        let examples: Vec<TrainingExample> = initial
            .iter()
            .map(|&v| TrainingExample { input: vec![v], reject: true })
            .collect();
        let quantizer = InputQuantizer::new(vec![0.0], vec![1.0]);
        let mut c = TableClassifier::train_with_quantizer(
            TableDesign::paper_default(),
            quantizer,
            &examples,
        )
        .unwrap();
        let before: Vec<Decision> = probes.iter().map(|&p| c.decide(&[p])).collect();
        // Observing more rejects can only move Approximate -> Precise.
        for &p in &probes {
            c.observe(0, &[p], true);
        }
        for (i, &p) in probes.iter().enumerate() {
            let after = c.decide(&[p]);
            if before[i] == Decision::Precise {
                prop_assert_eq!(after, Decision::Precise);
            }
        }
    }

    #[test]
    fn compressed_table_round_trips_for_any_training_set(
        values in prop::collection::vec((0.0f32..1.0, any::<bool>()), 1..50),
    ) {
        let examples: Vec<TrainingExample> = values
            .iter()
            .map(|&(v, reject)| TrainingExample { input: vec![v], reject })
            .collect();
        let quantizer = InputQuantizer::new(vec![0.0], vec![1.0]);
        let c = TableClassifier::train_with_quantizer(
            TableDesign::paper_default(),
            quantizer,
            &examples,
        )
        .unwrap();
        let compressed = c.compress();
        let bytes = compressed.decompress();
        prop_assert_eq!(bytes.len(), 4096);
        prop_assert!(compressed.stats().compressed_bytes <= 4096 + 64);
    }

    #[test]
    fn larger_ensembles_reject_supersets(
        values in prop::collection::vec((0.0f32..1.0, any::<bool>()), 4..40),
        probes in prop::collection::vec(0.0f32..1.0, 1..15),
    ) {
        // With identical training policy, the 8-table OR rejects at least
        // whatever the ensemble of its first table rejects... verified
        // indirectly: a 1-table design using the SAME first config is a
        // subset. Here we check the weaker, always-true property that the
        // 8-table ensemble rejects everything the paper's conservative
        // rule demands (trained rejects).
        let examples: Vec<TrainingExample> = values
            .iter()
            .map(|&(v, reject)| TrainingExample { input: vec![v], reject })
            .collect();
        let quantizer = InputQuantizer::new(vec![0.0], vec![1.0]);
        let mut big = TableClassifier::train_with_quantizer(
            TableDesign { tables: 8, entries_per_table: 4096 },
            quantizer.clone(),
            &examples,
        )
        .unwrap();
        for (v, reject) in &values {
            if *reject {
                prop_assert_eq!(big.decide(&[*v]), Decision::Precise);
            }
        }
        let _ = probes;
    }
}
