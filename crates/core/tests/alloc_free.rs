//! Steady-state allocation freedom of the invocation hot path.
//!
//! The profiler and the serve engine call [`AcceleratedFunction`]
//! millions of times per run; their contract is that a warmed
//! [`InvokeScratch`] absorbs every buffer, leaving the per-invocation
//! and per-batch paths allocation-free. A counting `#[global_allocator]`
//! with per-thread counters pins that here, for both kernel backends.

use mithra_axbench::benchmark::Benchmark;
use mithra_axbench::dataset::{Dataset, DatasetScale};
use mithra_axbench::suite;
use mithra_core::function::{AcceleratedFunction, InvokeScratch, NpuTrainConfig};
use mithra_npu::kernel::KernelBackend;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::Arc;

struct CountingAlloc;

thread_local! {
    // Const-initialized: the first access from inside `alloc` must not
    // itself allocate, or the counter would recurse.
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

/// Allocations performed by `f` on the calling thread.
fn allocs_during<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOCS.with(Cell::get);
    let result = f();
    (ALLOCS.with(Cell::get) - before, result)
}

fn trained_function(kernel: KernelBackend) -> (AcceleratedFunction, Dataset) {
    let bench: Arc<dyn Benchmark> = suite::by_name("inversek2j").unwrap().into();
    let datasets: Vec<Dataset> = (0..2)
        .map(|s| bench.dataset(s, DatasetScale::Smoke))
        .collect();
    let config = NpuTrainConfig {
        epochs: Some(10),
        max_samples: 500,
        seed: 11,
    };
    let f = AcceleratedFunction::train_with_kernel(Arc::clone(&bench), &datasets, &config, kernel)
        .unwrap();
    let serve = bench.dataset(100, DatasetScale::Smoke);
    (f, serve)
}

fn backends() -> Vec<KernelBackend> {
    let mut backends = vec![KernelBackend::Scalar];
    if KernelBackend::simd_available() {
        backends.push(KernelBackend::Simd);
    }
    backends
}

#[test]
fn approx_invocation_is_allocation_free_after_warmup() {
    for backend in backends() {
        let (f, dataset) = trained_function(backend);
        let mut scratch = InvokeScratch::new();
        let mut out = Vec::new();
        // One warm call sizes every buffer in the scratch and the output.
        f.approx_with(dataset.input(0), &mut out, &mut scratch);
        let (allocs, _) = allocs_during(|| {
            for i in 0..64 {
                f.approx_with(
                    dataset.input(i % dataset.invocation_count()),
                    &mut out,
                    &mut scratch,
                );
            }
        });
        assert_eq!(allocs, 0, "approx_with allocated on backend {backend:?}");
    }
}

#[test]
fn batched_approx_is_allocation_free_after_warmup() {
    for backend in backends() {
        let (f, dataset) = trained_function(backend);
        let in_dim = dataset.input_dim();
        let count = 20; // off the tile boundary
        let flat = &dataset.as_flat()[..count * in_dim];
        let mut scratch = InvokeScratch::new();
        let mut out = Vec::new();
        f.approx_batch_with(flat, count, &mut out, &mut scratch);
        let (allocs, _) = allocs_during(|| {
            for _ in 0..16 {
                f.approx_batch_with(flat, count, &mut out, &mut scratch);
            }
        });
        assert_eq!(
            allocs, 0,
            "approx_batch_with allocated on backend {backend:?}"
        );
    }
}
