//! Deterministic fork–join helper for the compile path's independent axes.
//!
//! [`par_map_indexed`] runs one closure per item index across a bounded
//! set of worker threads and returns results **in item order** — the same
//! contract [`crate::profile::collect_profiles_parallel`] pioneered.
//! Because every item is computed independently (its own scratch buffers,
//! its own derived seed) and the merge is an in-order collection,
//! parallelism changes wall time only, never results. Any floating-point
//! reduction *across* items must stay in the sequential caller, folded
//! over the returned vector in index order.

use crate::profile::default_threads;

/// Applies `f` to every index in `0..count` across up to `threads`
/// workers, returning the results in index order.
///
/// `threads = None` or `Some(0)` uses [`default_threads`]; the worker
/// count is always clamped to `count`. With one worker the items run on
/// the calling thread in index order, exactly like a `for` loop — so a
/// `--threads 1` run is the sequential baseline by construction.
pub fn par_map_indexed<R, F>(count: usize, threads: Option<usize>, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = threads
        .filter(|&t| t > 0)
        .unwrap_or_else(default_threads)
        .min(count.max(1));
    if threads <= 1 {
        return (0..count).map(f).collect();
    }
    let mut slots: Vec<Option<R>> = (0..count).map(|_| None).collect();
    let chunk = count.div_ceil(threads);
    crossbeam::thread::scope(|scope| {
        for (t, slice) in slots.chunks_mut(chunk).enumerate() {
            let f = &f;
            scope.spawn(move |_| {
                for (off, slot) in slice.iter_mut().enumerate() {
                    *slot = Some(f(t * chunk + off));
                }
            });
        }
    })
    .expect("parallel workers do not panic");
    slots
        .into_iter()
        .map(|s| s.expect("every index maps to exactly one chunk slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_arrive_in_index_order() {
        for threads in [None, Some(1), Some(2), Some(3), Some(8)] {
            let out = par_map_indexed(23, threads, |i| i * i);
            assert_eq!(out, (0..23).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<usize> = par_map_indexed(0, Some(4), |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let out = par_map_indexed(2, Some(16), |i| i + 1);
        assert_eq!(out, vec![1, 2]);
    }
}
