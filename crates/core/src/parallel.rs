//! Deterministic fork–join helper for the compile path's independent axes.
//!
//! [`par_map_indexed`] runs one closure per item index across a bounded
//! set of worker threads and returns results **in item order** — the same
//! contract [`crate::profile::collect_profiles_parallel`] pioneered.
//! Because every item is computed independently (its own scratch buffers,
//! its own derived seed) and the merge is an in-order collection,
//! parallelism changes wall time only, never results. Any floating-point
//! reduction *across* items must stay in the sequential caller, folded
//! over the returned vector in index order.

use crate::profile::default_threads;

/// Minimum accelerator invocations a worker thread must amortize before
/// forking is worth its setup cost. Below this, thread spawn + cache
/// cold-start outweigh the arithmetic and `--threads 2` runs *slower*
/// than sequential (measured: blackscholes smoke validation-profiling
/// 150→161 ms, fft 76→99 ms).
const MIN_WORK_PER_THREAD: usize = 8192;

/// Clamps a requested worker count by how much work there actually is
/// and by the host's hardware parallelism.
///
/// `requested = None`/`Some(0)` starts from [`default_threads`]. The
/// result never exceeds `total_work / MIN_WORK_PER_THREAD` (so small
/// jobs stay sequential), never exceeds the host's available
/// parallelism (forking past physical cores only adds contention), and
/// is at least 1. `total_work` is in caller-chosen units — profiling
/// passes accelerator invocations.
///
/// Results are unaffected: [`par_map_indexed`] is order-deterministic
/// for any worker count, so this only moves the fork/no-fork decision.
pub fn work_bounded_threads(requested: Option<usize>, total_work: usize) -> usize {
    let requested = requested.filter(|&t| t > 0).unwrap_or_else(default_threads);
    let work_cap = (total_work / MIN_WORK_PER_THREAD).max(1);
    requested.min(work_cap).min(default_threads()).max(1)
}

/// Applies `f` to every index in `0..count` across up to `threads`
/// workers, returning the results in index order.
///
/// `threads = None` or `Some(0)` uses [`default_threads`]; the worker
/// count is always clamped to `count`. With one worker the items run on
/// the calling thread in index order, exactly like a `for` loop — so a
/// `--threads 1` run is the sequential baseline by construction.
pub fn par_map_indexed<R, F>(count: usize, threads: Option<usize>, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = threads
        .filter(|&t| t > 0)
        .unwrap_or_else(default_threads)
        .min(count.max(1));
    if threads <= 1 {
        return (0..count).map(f).collect();
    }
    let mut slots: Vec<Option<R>> = (0..count).map(|_| None).collect();
    let chunk = count.div_ceil(threads);
    crossbeam::thread::scope(|scope| {
        for (t, slice) in slots.chunks_mut(chunk).enumerate() {
            let f = &f;
            scope.spawn(move |_| {
                for (off, slot) in slice.iter_mut().enumerate() {
                    *slot = Some(f(t * chunk + off));
                }
            });
        }
    })
    .expect("parallel workers do not panic");
    slots
        .into_iter()
        .map(|s| s.expect("every index maps to exactly one chunk slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_arrive_in_index_order() {
        for threads in [None, Some(1), Some(2), Some(3), Some(8)] {
            let out = par_map_indexed(23, threads, |i| i * i);
            assert_eq!(out, (0..23).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<usize> = par_map_indexed(0, Some(4), |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let out = par_map_indexed(2, Some(16), |i| i + 1);
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn float_fold_over_results_is_bit_identical_for_any_worker_count() {
        // The contract that keeps the work cutoff result-neutral: any
        // cross-item float reduction happens in the caller, folded over
        // the returned vector in index order. Non-associative summation
        // must therefore come out bit-identical for every worker count.
        let item = |i: usize| ((i as f32) * 0.1).sin() * 1e-3 + 1.0 / (i as f32 + 1.0);
        let fold = |v: Vec<f32>| v.into_iter().fold(0.0f32, |acc, x| acc + x);
        let seq = fold(par_map_indexed(257, Some(1), item));
        for threads in [None, Some(2), Some(3), Some(7), Some(64)] {
            let par = fold(par_map_indexed(257, threads, item));
            assert_eq!(seq.to_bits(), par.to_bits(), "threads {threads:?}");
        }
    }

    #[test]
    fn small_jobs_stay_sequential() {
        // Under one MIN_WORK_PER_THREAD quantum no request forks.
        for req in [None, Some(1), Some(2), Some(64)] {
            assert_eq!(work_bounded_threads(req, MIN_WORK_PER_THREAD - 1), 1);
            assert_eq!(work_bounded_threads(req, 0), 1);
        }
    }

    #[test]
    fn explicit_request_is_an_upper_bound() {
        for work in [0, 1, MIN_WORK_PER_THREAD, 100 * MIN_WORK_PER_THREAD] {
            for req in 1..=8 {
                assert!(work_bounded_threads(Some(req), work) <= req);
            }
        }
    }

    #[test]
    fn hardware_parallelism_is_an_upper_bound() {
        let hw = default_threads();
        assert!(work_bounded_threads(Some(1024), 1024 * MIN_WORK_PER_THREAD) <= hw);
    }

    #[test]
    fn large_jobs_honor_the_request_up_to_the_host() {
        let hw = default_threads();
        let got = work_bounded_threads(Some(2), 64 * MIN_WORK_PER_THREAD);
        assert_eq!(got, 2.min(hw));
    }
}
