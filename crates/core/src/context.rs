//! Architectural state and context-switch cost (paper §III).
//!
//! "The configurations of both the accelerator and MITHRA are part of the
//! architectural state. Therefore, the operating system must save and
//! restore the configuration data for both the accelerator and MITHRA on
//! a context switch. To reduce context switch overheads, the OS can use
//! the same lazy context switch techniques that are typically used with
//! floating point units."
//!
//! This module sizes that state (accelerator config stream + compressed
//! classifier content) and models eager versus lazy save/restore costs.

use crate::pipeline::Compiled;
use mithra_npu::config as npu_config;

/// The saved architectural state of an accelerated process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArchitecturalState {
    /// Bytes of the accelerator (NPU) configuration stream.
    pub accelerator_bytes: usize,
    /// Bytes of the table classifier, BDI-compressed.
    pub table_bytes: usize,
    /// Bytes of the neural classifier configuration stream.
    pub neural_bytes: usize,
}

impl ArchitecturalState {
    /// Sizes the state of a compiled application.
    pub fn of(compiled: &Compiled) -> Self {
        Self {
            accelerator_bytes: npu_config::encoded_bytes(compiled.function.npu().topology()),
            table_bytes: compiled.table.compress().stats().compressed_bytes,
            neural_bytes: npu_config::encoded_bytes(compiled.neural.topology()),
        }
    }

    /// Total bytes the OS must save and restore.
    pub fn total_bytes(&self) -> usize {
        self.accelerator_bytes + self.table_bytes + self.neural_bytes
    }
}

/// Cost model for saving/restoring the state across context switches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContextSwitchModel {
    /// Bytes the memory system moves per cycle during state transfer.
    pub bytes_per_cycle: f64,
    /// Fixed cycles per save or restore (trap + bookkeeping).
    pub fixed_cycles: f64,
    /// Probability that a process touches the accelerator between two
    /// consecutive context switches (drives the lazy model).
    pub touch_probability: f64,
}

impl ContextSwitchModel {
    /// A DDR3-era default: 16 B/cycle effective, 200-cycle fixed cost,
    /// and a workload that touches the accelerator 30% of the quanta.
    pub fn default_model() -> Self {
        Self {
            bytes_per_cycle: 16.0,
            fixed_cycles: 200.0,
            touch_probability: 0.3,
        }
    }

    /// Cycles for one eager switch: save + restore unconditionally.
    pub fn eager_cycles(&self, state: &ArchitecturalState) -> f64 {
        2.0 * (self.fixed_cycles + state.total_bytes() as f64 / self.bytes_per_cycle)
    }

    /// Expected cycles for one lazy switch: the state moves only when the
    /// incoming process actually touches the accelerator (plus the cheap
    /// trap that arms the lazy fault).
    pub fn lazy_expected_cycles(&self, state: &ArchitecturalState) -> f64 {
        self.fixed_cycles
            + self.touch_probability
                * (self.fixed_cycles + 2.0 * state.total_bytes() as f64 / self.bytes_per_cycle)
    }

    /// The saving factor of lazy over eager switching.
    pub fn lazy_saving(&self, state: &ArchitecturalState) -> f64 {
        self.eager_cycles(state) / self.lazy_expected_cycles(state)
    }
}

impl Default for ContextSwitchModel {
    fn default() -> Self {
        Self::default_model()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{compile, CompileConfig};
    use mithra_axbench::benchmark::Benchmark;
    use mithra_axbench::suite;
    use std::sync::Arc;

    fn state() -> ArchitecturalState {
        let bench: Arc<dyn Benchmark> = suite::by_name("inversek2j").unwrap().into();
        let compiled = compile(bench, &CompileConfig::smoke()).unwrap();
        ArchitecturalState::of(&compiled)
    }

    #[test]
    fn state_sizes_are_plausible() {
        let s = state();
        // inversek2j: 2->8->2 NPU (~34 params) plus a mostly-empty 4 KB
        // table compressed well below 4 KB, plus a small classifier net.
        assert!(s.accelerator_bytes > 100 && s.accelerator_bytes < 1024);
        assert!(s.table_bytes < 4096);
        assert!(s.neural_bytes > 0);
        assert_eq!(
            s.total_bytes(),
            s.accelerator_bytes + s.table_bytes + s.neural_bytes
        );
    }

    #[test]
    fn lazy_beats_eager_for_rarely_touching_workloads() {
        let s = state();
        let m = ContextSwitchModel {
            touch_probability: 0.1,
            ..ContextSwitchModel::default_model()
        };
        assert!(m.lazy_saving(&s) > 1.0);
    }

    #[test]
    fn always_touching_workloads_gain_nothing_from_lazy() {
        let s = state();
        let m = ContextSwitchModel {
            touch_probability: 1.0,
            ..ContextSwitchModel::default_model()
        };
        // Lazy pays the arming trap on top of the full transfer.
        assert!(m.lazy_saving(&s) <= 1.0 + 1e-9);
    }

    #[test]
    fn bigger_state_costs_more() {
        let s = state();
        let double = ArchitecturalState {
            accelerator_bytes: s.accelerator_bytes * 2,
            table_bytes: s.table_bytes * 2,
            neural_bytes: s.neural_bytes * 2,
        };
        let m = ContextSwitchModel::default_model();
        assert!(m.eager_cycles(&double) > m.eager_cycles(&s));
    }
}
