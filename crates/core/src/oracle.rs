//! The oracle — the paper's ideal but infeasible comparison design.
//!
//! "At any level of quality loss, the oracle always achieves the maximum
//! performance and energy benefits by only filtering out the invocations
//! that produce an accelerator error larger than the threshold" (§V-B1).
//! It is infeasible in hardware because knowing the accelerator error
//! requires running the precise function too; in simulation it is simply a
//! lookup into the profiled ground truth.

use crate::classifier::{Classifier, ClassifierOverhead, Decision};
use crate::profile::DatasetProfile;

/// A classifier with perfect knowledge of each invocation's error.
#[derive(Debug, Clone, PartialEq)]
pub struct OracleClassifier {
    rejects: Vec<bool>,
}

impl OracleClassifier {
    /// Builds the oracle for one profiled dataset at `threshold`.
    pub fn for_profile(profile: &DatasetProfile, threshold: f32) -> Self {
        Self {
            rejects: profile.oracle_rejects(threshold),
        }
    }

    /// Builds an oracle from explicit per-invocation reject decisions.
    pub fn from_rejects(rejects: Vec<bool>) -> Self {
        Self { rejects }
    }

    /// The ground-truth reject decisions.
    pub fn rejects(&self) -> &[bool] {
        &self.rejects
    }

    /// Number of invocations this oracle covers.
    pub fn len(&self) -> usize {
        self.rejects.len()
    }

    /// Whether the oracle covers no invocations.
    pub fn is_empty(&self) -> bool {
        self.rejects.is_empty()
    }
}

impl Classifier for OracleClassifier {
    fn name(&self) -> &'static str {
        "oracle"
    }

    fn classify(&mut self, index: usize, _input: &[f32]) -> Decision {
        Decision::from_reject(self.rejects.get(index).copied().unwrap_or(false))
    }

    fn overhead(&self) -> ClassifierOverhead {
        // Ideal: free decisions.
        ClassifierOverhead::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_replays_ground_truth() {
        let mut o = OracleClassifier::from_rejects(vec![false, true, false]);
        assert_eq!(o.classify(0, &[]), Decision::Approximate);
        assert_eq!(o.classify(1, &[]), Decision::Precise);
        assert_eq!(o.classify(2, &[]), Decision::Approximate);
        // Out-of-range indices default to the accelerator.
        assert_eq!(o.classify(99, &[]), Decision::Approximate);
    }

    #[test]
    fn oracle_has_no_overhead() {
        let o = OracleClassifier::from_rejects(vec![true]);
        assert_eq!(o.overhead(), ClassifierOverhead::default());
        assert_eq!(o.len(), 1);
        assert!(!o.is_empty());
    }
}
