//! A decision-tree classifier — Rumba's other microarchitectural
//! mechanism (paper §VI), implemented as a comparison design.
//!
//! A small axis-aligned CART tree trained on the same labeled tuples as
//! MITHRA's classifiers. In hardware this is a pipeline of
//! compare-and-branch nodes — cheap, but the axis-aligned splits struggle
//! with the entangled input spaces (jmeint's triangle coordinates) where
//! the MLP shines. Depth is capped so the hardware stays comparable to a
//! table lookup.

use crate::classifier::{Classifier, ClassifierOverhead, Decision};
use crate::training::TrainingExample;
use crate::{MithraError, Result};
use serde::{Deserialize, Serialize};

/// Training settings for the decision tree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeTrainConfig {
    /// Maximum tree depth (hardware pipeline stages).
    pub max_depth: usize,
    /// Minimum samples in a node before it may split.
    pub min_split: usize,
    /// Candidate split positions evaluated per dimension.
    pub candidate_splits: usize,
}

impl Default for TreeTrainConfig {
    fn default() -> Self {
        Self {
            max_depth: 6,
            min_split: 16,
            candidate_splits: 8,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Node {
    Leaf {
        reject: bool,
    },
    Split {
        dim: usize,
        value: f32,
        below: Box<Node>,
        above: Box<Node>,
    },
}

impl Node {
    fn decide(&self, input: &[f32]) -> bool {
        match self {
            Node::Leaf { reject } => *reject,
            Node::Split {
                dim,
                value,
                below,
                above,
            } => {
                if input[*dim] <= *value {
                    below.decide(input)
                } else {
                    above.decide(input)
                }
            }
        }
    }

    fn depth(&self) -> usize {
        match self {
            Node::Leaf { .. } => 0,
            Node::Split { below, above, .. } => 1 + below.depth().max(above.depth()),
        }
    }

    fn node_count(&self) -> usize {
        match self {
            Node::Leaf { .. } => 1,
            Node::Split { below, above, .. } => 1 + below.node_count() + above.node_count(),
        }
    }
}

/// Gini impurity of a (reject, accept) count pair.
fn gini(rejects: usize, total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let p = rejects as f64 / total as f64;
    2.0 * p * (1.0 - p)
}

/// The trained decision-tree classifier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TreeClassifier {
    root: Node,
    dims: usize,
}

impl TreeClassifier {
    /// Trains a CART tree on labeled tuples.
    ///
    /// # Errors
    ///
    /// Returns [`MithraError::InsufficientData`] with no examples.
    pub fn train(examples: &[TrainingExample], config: &TreeTrainConfig) -> Result<Self> {
        if examples.is_empty() {
            return Err(MithraError::InsufficientData {
                stage: "decision tree training",
                available: 0,
                needed: 1,
            });
        }
        let dims = examples[0].input.len();
        let indices: Vec<usize> = (0..examples.len()).collect();
        let root = Self::build(examples, indices, dims, config.max_depth, config);
        Ok(Self { root, dims })
    }

    fn build(
        examples: &[TrainingExample],
        indices: Vec<usize>,
        dims: usize,
        depth_left: usize,
        config: &TreeTrainConfig,
    ) -> Node {
        let rejects = indices.iter().filter(|&&i| examples[i].reject).count();
        let total = indices.len();
        // Majority leaf; ties resolve toward reject (quality first).
        let majority = rejects * 2 >= total;
        if depth_left == 0 || total < config.min_split || rejects == 0 || rejects == total {
            return Node::Leaf { reject: majority };
        }

        // Best axis-aligned split by Gini gain over quantile candidates.
        let parent_gini = gini(rejects, total);
        let mut best: Option<(f64, usize, f32)> = None;
        for dim in 0..dims {
            let mut values: Vec<f32> = indices.iter().map(|&i| examples[i].input[dim]).collect();
            values.sort_by(|a, b| a.partial_cmp(b).expect("finite inputs"));
            for c in 1..=config.candidate_splits {
                let pos = values.len() * c / (config.candidate_splits + 1);
                let split = values[pos.min(values.len() - 1)];
                let (mut below_r, mut below_n) = (0usize, 0usize);
                for &i in &indices {
                    if examples[i].input[dim] <= split {
                        below_n += 1;
                        if examples[i].reject {
                            below_r += 1;
                        }
                    }
                }
                let above_n = total - below_n;
                let above_r = rejects - below_r;
                if below_n == 0 || above_n == 0 {
                    continue;
                }
                let weighted = (below_n as f64 * gini(below_r, below_n)
                    + above_n as f64 * gini(above_r, above_n))
                    / total as f64;
                let gain = parent_gini - weighted;
                if best.map_or(gain > 1e-9, |(g, _, _)| gain > g) {
                    best = Some((gain, dim, split));
                }
            }
        }

        match best {
            None => Node::Leaf { reject: majority },
            Some((_, dim, split)) => {
                let (below, above): (Vec<usize>, Vec<usize>) = indices
                    .into_iter()
                    .partition(|&i| examples[i].input[dim] <= split);
                Node::Split {
                    dim,
                    value: split,
                    below: Box::new(Self::build(examples, below, dims, depth_left - 1, config)),
                    above: Box::new(Self::build(examples, above, dims, depth_left - 1, config)),
                }
            }
        }
    }

    /// Number of input dimensions the tree was trained on.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Depth of the trained tree.
    pub fn depth(&self) -> usize {
        self.root.depth()
    }

    /// Total node count (hardware comparator budget).
    pub fn node_count(&self) -> usize {
        self.root.node_count()
    }

    /// The decision for one input.
    pub fn decide(&self, input: &[f32]) -> Decision {
        Decision::from_reject(self.root.decide(input))
    }
}

impl Classifier for TreeClassifier {
    fn name(&self) -> &'static str {
        "tree"
    }

    fn classify(&mut self, _index: usize, input: &[f32]) -> Decision {
        self.decide(input)
    }

    fn overhead(&self) -> ClassifierOverhead {
        // One compare per level on the critical path.
        ClassifierOverhead {
            decision_cycles: self.depth() as u64,
            misr_shifts: 0,
            table_bit_reads: 0,
            npu_topology: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn boundary_examples(n: usize, split: f32) -> Vec<TrainingExample> {
        (0..n)
            .map(|i| {
                let x = i as f32 / (n - 1) as f32;
                TrainingExample {
                    input: vec![x, (i % 7) as f32 / 7.0],
                    reject: x > split,
                }
            })
            .collect()
    }

    #[test]
    fn learns_axis_aligned_boundary() {
        let ex = boundary_examples(400, 0.7);
        let tree = TreeClassifier::train(&ex, &TreeTrainConfig::default()).unwrap();
        assert_eq!(tree.decide(&[0.9, 0.5]), Decision::Precise);
        assert_eq!(tree.decide(&[0.2, 0.5]), Decision::Approximate);
        assert!(tree.depth() >= 1);
    }

    #[test]
    fn pure_classes_yield_leaves() {
        let ex: Vec<TrainingExample> = (0..50)
            .map(|i| TrainingExample {
                input: vec![i as f32],
                reject: false,
            })
            .collect();
        let tree = TreeClassifier::train(&ex, &TreeTrainConfig::default()).unwrap();
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.decide(&[25.0]), Decision::Approximate);
    }

    #[test]
    fn depth_respects_cap() {
        // A checkerboard labeling forces deep splits; the cap must hold.
        let ex: Vec<TrainingExample> = (0..512)
            .map(|i| TrainingExample {
                input: vec![(i % 32) as f32, (i / 32) as f32],
                reject: (i % 2) == 0,
            })
            .collect();
        let cfg = TreeTrainConfig {
            max_depth: 4,
            ..TreeTrainConfig::default()
        };
        let tree = TreeClassifier::train(&ex, &cfg).unwrap();
        assert!(tree.depth() <= 4, "depth {}", tree.depth());
    }

    #[test]
    fn tie_breaks_toward_reject() {
        let ex = vec![
            TrainingExample {
                input: vec![0.0],
                reject: true,
            },
            TrainingExample {
                input: vec![0.0],
                reject: false,
            },
        ];
        let tree = TreeClassifier::train(&ex, &TreeTrainConfig::default()).unwrap();
        assert_eq!(tree.decide(&[0.0]), Decision::Precise);
    }

    #[test]
    fn empty_training_rejected() {
        assert!(TreeClassifier::train(&[], &TreeTrainConfig::default()).is_err());
    }

    #[test]
    fn overhead_tracks_depth() {
        let ex = boundary_examples(200, 0.5);
        let tree = TreeClassifier::train(&ex, &TreeTrainConfig::default()).unwrap();
        assert_eq!(tree.overhead().decision_cycles, tree.depth() as u64);
    }

    #[test]
    fn serde_round_trip() {
        let ex = boundary_examples(200, 0.6);
        let tree = TreeClassifier::train(&ex, &TreeTrainConfig::default()).unwrap();
        let json = serde_json::to_string(&tree).unwrap();
        let restored: TreeClassifier = serde_json::from_str(&json).unwrap();
        assert_eq!(tree, restored);
    }
}
