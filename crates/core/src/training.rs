//! Training-data generation for the hardware classifiers (paper §III-B).
//!
//! Once the threshold is fixed, profiled invocations are labeled: an input
//! whose accelerator error exceeds the threshold on *any* output element
//! maps to "run the precise function" (`reject = true`), otherwise to
//! "invoke the accelerator". The paper samples invocations randomly; a
//! single image already yields hundreds of thousands of candidate tuples,
//! so sampling caps the training-set size without losing coverage.

use crate::profile::DatasetProfile;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// One labeled training tuple: an accelerator input vector and the binary
/// decision (paper: `1` = error above threshold = run precise).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingExample {
    /// The raw accelerator input vector.
    pub input: Vec<f32>,
    /// `true` when this input must be filtered out (precise execution).
    pub reject: bool,
}

/// Labels profiled invocations against `threshold` and randomly samples at
/// most `max_samples` tuples (deterministically, from `seed`).
///
/// Sampling is stratified implicitly by shuffling the full index space, so
/// the reject fraction of the sample matches the population's.
pub fn generate_training_data(
    profiles: &[DatasetProfile],
    threshold: f32,
    max_samples: usize,
    seed: u64,
) -> Vec<TrainingExample> {
    // Index space: (dataset, invocation).
    let mut indices: Vec<(usize, usize)> = profiles
        .iter()
        .enumerate()
        .flat_map(|(d, p)| (0..p.invocation_count()).map(move |i| (d, i)))
        .collect();
    let mut rng = StdRng::seed_from_u64(seed);
    indices.shuffle(&mut rng);
    indices.truncate(max_samples);

    indices
        .into_iter()
        .map(|(d, i)| {
            let p = &profiles[d];
            TrainingExample {
                input: p.dataset().input(i).to_vec(),
                reject: p.max_error(i) > threshold,
            }
        })
        .collect()
}

/// Splits examples into train/validation partitions (deterministic).
///
/// `validation_fraction` of the examples (at least one if possible) go to
/// the second returned vector. Used by the neural classifier's topology
/// search.
pub fn split_examples(
    mut examples: Vec<TrainingExample>,
    validation_fraction: f64,
    seed: u64,
) -> (Vec<TrainingExample>, Vec<TrainingExample>) {
    let mut rng = StdRng::seed_from_u64(seed);
    examples.shuffle(&mut rng);
    let val_len = ((examples.len() as f64 * validation_fraction) as usize)
        .min(examples.len().saturating_sub(1));
    let val = examples.split_off(examples.len() - val_len);
    (examples, val)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_example(v: f32, reject: bool) -> TrainingExample {
        TrainingExample {
            input: vec![v],
            reject,
        }
    }

    #[test]
    fn split_is_deterministic_and_partitions() {
        let examples: Vec<TrainingExample> = (0..100)
            .map(|i| fake_example(i as f32, i % 3 == 0))
            .collect();
        let (a1, v1) = split_examples(examples.clone(), 0.2, 9);
        let (a2, v2) = split_examples(examples.clone(), 0.2, 9);
        assert_eq!(a1, a2);
        assert_eq!(v1, v2);
        assert_eq!(a1.len() + v1.len(), 100);
        assert_eq!(v1.len(), 20);
    }

    #[test]
    fn split_never_leaves_train_empty() {
        let examples = vec![fake_example(1.0, false), fake_example(2.0, true)];
        let (train, _val) = split_examples(examples, 0.99, 1);
        assert!(!train.is_empty());
    }
}
