//! The accelerated target function: a benchmark's kernel bound to its
//! trained NPU configuration.
//!
//! This couples a [`Benchmark`] with the trained network and the
//! input/output normalizers the NPU compiler fits. It also defines the
//! **accelerator error** of an invocation: the paper's Equation (1)
//! compares precise and approximate output vectors element-wise against
//! the threshold, and MITHRA deems an invocation unacceptable if *any*
//! element exceeds it. Errors are measured in normalized output space so a
//! single threshold is meaningful across output dimensions with different
//! physical scales.

use crate::Result;
use mithra_axbench::benchmark::Benchmark;
use mithra_axbench::dataset::{Dataset, DatasetScale};
use mithra_npu::kernel::KernelBackend;
use mithra_npu::mlp::{Activation, BatchScratch, ForwardScratch, Mlp};
use mithra_npu::topology::Topology;
use mithra_npu::train::{Normalizer, Trainer};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::sync::Arc;

/// Settings for offline NPU training.
#[derive(Debug, Clone, PartialEq)]
pub struct NpuTrainConfig {
    /// Training epochs; `None` uses the benchmark's suggested count.
    pub epochs: Option<usize>,
    /// Cap on (input, output) samples drawn from the training datasets.
    pub max_samples: usize,
    /// RNG seed for sampling and weight initialization.
    pub seed: u64,
}

impl Default for NpuTrainConfig {
    fn default() -> Self {
        Self {
            epochs: None,
            max_samples: 20_000,
            seed: 0x4E50_5545,
        }
    }
}

/// Reusable buffers for the accelerator's invocation hot path.
///
/// Profiling replays hundreds of thousands of invocations; allocating the
/// normalized-input staging buffer, the network's per-layer activations
/// and the two normalized-output buffers on every call dominates the
/// arithmetic. One `InvokeScratch` per thread removes every per-call
/// allocation. The scratch carries no results between calls — reusing one
/// is bit-identical to the allocating [`AcceleratedFunction::approx_into`]
/// path.
#[derive(Debug, Clone, Default)]
pub struct InvokeScratch {
    normalized_in: Vec<f32>,
    fwd: ForwardScratch,
    precise_norm: Vec<f32>,
    approx_norm: Vec<f32>,
    /// Batched-forward staging: normalized inputs and raw network
    /// outputs for a whole block, plus the network's tile buffers.
    normalized_block: Vec<f32>,
    raw_block: Vec<f32>,
    batch: BatchScratch,
}

impl InvokeScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a scratch presized for a network of `topology`, so the
    /// single-invocation paths never allocate after construction
    /// (batched blocks still grow once to the first block's size).
    pub fn for_topology(topology: &Topology) -> Self {
        Self {
            normalized_in: Vec::with_capacity(topology.inputs()),
            fwd: ForwardScratch::for_topology(topology),
            precise_norm: Vec::with_capacity(topology.outputs()),
            approx_norm: Vec::with_capacity(topology.outputs()),
            normalized_block: Vec::new(),
            raw_block: Vec::new(),
            batch: BatchScratch::for_topology(topology),
        }
    }
}

/// A benchmark kernel bound to its trained approximate accelerator.
#[derive(Debug, Clone)]
pub struct AcceleratedFunction {
    benchmark: Arc<dyn Benchmark>,
    npu: Mlp,
    input_norm: Normalizer,
    output_norm: Normalizer,
    /// Arithmetic backend for this function's forward passes (and the
    /// backend it was trained with). Scalar unless opted in — the cache
    /// key is salted when it is not.
    kernel: KernelBackend,
}

impl AcceleratedFunction {
    /// Trains the NPU on profile samples drawn from `datasets` and binds
    /// it to the benchmark.
    ///
    /// This is the standard NPU compilation workflow (paper \[16\]): profile
    /// the target function, normalize, train a fixed-topology MLP offline.
    ///
    /// # Errors
    ///
    /// Propagates NPU training failures (e.g. no samples).
    pub fn train(
        benchmark: Arc<dyn Benchmark>,
        datasets: &[Dataset],
        config: &NpuTrainConfig,
    ) -> Result<Self> {
        let topology = benchmark.npu_topology();
        Self::train_with_topology(benchmark, datasets, config, &topology)
    }

    /// [`AcceleratedFunction::train`] on an explicit kernel backend.
    /// `kernel` deliberately lives outside [`NpuTrainConfig`]: the
    /// config's `Debug` form is embedded in cache keys, and the scalar
    /// default must keep producing byte-identical keys.
    ///
    /// # Errors
    ///
    /// Propagates NPU training failures (e.g. no samples).
    pub fn train_with_kernel(
        benchmark: Arc<dyn Benchmark>,
        datasets: &[Dataset],
        config: &NpuTrainConfig,
        kernel: KernelBackend,
    ) -> Result<Self> {
        let topology = benchmark.npu_topology();
        Self::train_with_topology_kernel(benchmark, datasets, config, &topology, kernel)
    }

    /// [`AcceleratedFunction::train`] on an explicit network topology —
    /// how an approximator pool trains its cheap/medium members. With
    /// `topology == benchmark.npu_topology()` this is the same code path
    /// as `train`, bit for bit.
    ///
    /// # Errors
    ///
    /// Propagates NPU training failures (e.g. no samples, or a topology
    /// whose input/output widths do not match the benchmark).
    pub fn train_with_topology(
        benchmark: Arc<dyn Benchmark>,
        datasets: &[Dataset],
        config: &NpuTrainConfig,
        topology: &Topology,
    ) -> Result<Self> {
        Self::train_with_topology_kernel(
            benchmark,
            datasets,
            config,
            topology,
            KernelBackend::Scalar,
        )
    }

    /// [`AcceleratedFunction::train_with_topology`] on an explicit kernel
    /// backend — the fully general training entry point. Both backends
    /// consume the RNG identically, so a SIMD-trained network is a
    /// deterministic function of the same seed.
    ///
    /// # Errors
    ///
    /// Propagates NPU training failures (e.g. no samples, or a topology
    /// whose input/output widths do not match the benchmark).
    pub fn train_with_topology_kernel(
        benchmark: Arc<dyn Benchmark>,
        datasets: &[Dataset],
        config: &NpuTrainConfig,
        topology: &Topology,
        kernel: KernelBackend,
    ) -> Result<Self> {
        // Collect raw (input, precise output) pairs, subsampled.
        let mut pairs: Vec<(Vec<f32>, Vec<f32>)> = Vec::new();
        let mut out = Vec::with_capacity(benchmark.output_dim());
        for ds in datasets {
            for input in ds.iter() {
                benchmark.precise(input, &mut out);
                pairs.push((input.to_vec(), out.clone()));
            }
        }
        let mut rng = StdRng::seed_from_u64(config.seed);
        pairs.shuffle(&mut rng);
        pairs.truncate(config.max_samples);

        // Fit normalizers in raw space (inputs -> [0,1], outputs -> [0.1, 0.9]
        // so the network's linear output layer trains in a gentle range).
        let inputs: Vec<Vec<f32>> = pairs.iter().map(|(i, _)| i.clone()).collect();
        let outputs: Vec<Vec<f32>> = pairs.iter().map(|(_, o)| o.clone()).collect();
        let input_norm = Normalizer::fit(&inputs, 0.0, 1.0);
        let output_norm = Normalizer::fit(&outputs, 0.1, 0.9);

        let normalized: Vec<(Vec<f32>, Vec<f32>)> = pairs
            .iter()
            .map(|(i, o)| (input_norm.forward(i), output_norm.forward(o)))
            .collect();

        let epochs = config
            .epochs
            .unwrap_or_else(|| benchmark.npu_training_epochs());
        let npu = Trainer::new(topology.clone())
            .epochs(epochs)
            .learning_rate(0.3)
            .batch_size(32)
            .seed(config.seed)
            .output_activation(Activation::Linear)
            .kernel(kernel)
            .train(&normalized)?;

        Ok(Self {
            benchmark,
            npu,
            input_norm,
            output_norm,
            kernel,
        })
    }

    /// Builds an accelerated function from pre-trained parts (loading a
    /// stored accelerator configuration). The kernel backend defaults to
    /// scalar; reattach a non-default one with
    /// [`AcceleratedFunction::with_kernel`].
    pub fn from_parts(
        benchmark: Arc<dyn Benchmark>,
        npu: Mlp,
        input_norm: Normalizer,
        output_norm: Normalizer,
    ) -> Self {
        Self {
            benchmark,
            npu,
            input_norm,
            output_norm,
            kernel: KernelBackend::Scalar,
        }
    }

    /// Rebinds the arithmetic backend — how a cache hit reattaches the
    /// kernel the artifact was trained under (the stored parameters are
    /// backend-agnostic; only the forward-pass dispatch changes).
    #[must_use]
    pub fn with_kernel(mut self, kernel: KernelBackend) -> Self {
        self.kernel = kernel;
        self
    }

    /// The arithmetic backend this function's forward passes run on.
    pub fn kernel(&self) -> KernelBackend {
        self.kernel
    }

    /// The underlying benchmark.
    pub fn benchmark(&self) -> &Arc<dyn Benchmark> {
        &self.benchmark
    }

    /// The trained network.
    pub fn npu(&self) -> &Mlp {
        &self.npu
    }

    /// The fitted input normalizer (the table classifier's quantizer is
    /// derived from the same ranges).
    pub fn input_normalizer(&self) -> &Normalizer {
        &self.input_norm
    }

    /// The fitted output normalizer (defines the normalized error space
    /// the threshold lives in).
    pub fn output_normalizer(&self) -> &Normalizer {
        &self.output_norm
    }

    /// Generates a dataset through the underlying benchmark.
    pub fn dataset(&self, seed: u64, scale: DatasetScale) -> Dataset {
        self.benchmark.dataset(seed, scale)
    }

    /// Runs the accelerator for one invocation, producing raw-space
    /// outputs in `out`.
    pub fn approx_into(&self, input: &[f32], out: &mut Vec<f32>) {
        self.try_approx_into(input, out)
            .expect("topology input width matches benchmark input_dim");
    }

    /// Fallible form of [`AcceleratedFunction::approx_into`] for runtime
    /// paths that must not panic (e.g. the simulator's decision loop).
    ///
    /// # Errors
    ///
    /// Returns [`mithra_npu::NpuError::DimensionMismatch`] if `input` does
    /// not match the network's input layer.
    pub fn try_approx_into(&self, input: &[f32], out: &mut Vec<f32>) -> Result<()> {
        let mut scratch = InvokeScratch::new();
        self.try_approx_with(input, out, &mut scratch)
    }

    /// Zero-allocation form of [`AcceleratedFunction::approx_into`]:
    /// normalize, run and denormalize entirely through caller-owned
    /// scratch buffers. Hot loops (profiling, benchmarking) should hold
    /// one scratch per thread and call this.
    pub fn approx_with(&self, input: &[f32], out: &mut Vec<f32>, scratch: &mut InvokeScratch) {
        self.try_approx_with(input, out, scratch)
            .expect("topology input width matches benchmark input_dim");
    }

    /// Fallible form of [`AcceleratedFunction::approx_with`].
    ///
    /// # Errors
    ///
    /// Returns [`mithra_npu::NpuError::DimensionMismatch`] if `input` does
    /// not match the network's input layer.
    pub fn try_approx_with(
        &self,
        input: &[f32],
        out: &mut Vec<f32>,
        scratch: &mut InvokeScratch,
    ) -> Result<()> {
        self.input_norm
            .forward_into(input, &mut scratch.normalized_in);
        let raw =
            self.npu
                .forward_into_with(self.kernel, &scratch.normalized_in, &mut scratch.fwd)?;
        self.output_norm.inverse_into(raw, out);
        Ok(())
    }

    /// Batched form of [`AcceleratedFunction::approx_with`]: `inputs`
    /// holds `count` raw-space input vectors concatenated sample-major;
    /// `outputs` receives the `count` raw-space output vectors in the
    /// same layout. One network weight traversal is amortized across the
    /// whole block on the SIMD backend; on either backend every sample's
    /// result is bit-identical to the per-invocation
    /// [`approx_with`](AcceleratedFunction::approx_with) call (pinned by
    /// `mithra-npu/tests/kernel_parity.rs`).
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is not `count` input widths long — batch
    /// callers own the layout.
    pub fn approx_batch_with(
        &self,
        inputs: &[f32],
        count: usize,
        outputs: &mut Vec<f32>,
        scratch: &mut InvokeScratch,
    ) {
        let in_dim = self.input_norm.dims();
        assert_eq!(inputs.len(), count * in_dim, "batch input layout");
        scratch.normalized_block.clear();
        for input in inputs.chunks_exact(in_dim.max(1)).take(count) {
            self.input_norm
                .forward_into(input, &mut scratch.normalized_in);
            scratch
                .normalized_block
                .extend_from_slice(&scratch.normalized_in);
        }
        self.npu
            .forward_batch_into_with(
                self.kernel,
                &scratch.normalized_block,
                count,
                &mut scratch.raw_block,
                &mut scratch.batch,
            )
            .expect("normalized batch matches the network input width");
        let out_dim = self.npu.topology().outputs();
        outputs.clear();
        for raw in scratch.raw_block.chunks_exact(out_dim).take(count) {
            self.output_norm.inverse_into(raw, &mut scratch.approx_norm);
            outputs.extend_from_slice(&scratch.approx_norm);
        }
    }

    /// Runs the precise function for one invocation.
    pub fn precise_into(&self, input: &[f32], out: &mut Vec<f32>) {
        self.benchmark.precise(input, out);
    }

    /// The accelerator error of an invocation in normalized output space:
    /// the maximum over elements of `|precise − approx| / range`, the
    /// quantity Equation (1) compares against the threshold.
    ///
    /// A NaN element (a corrupted accelerator can emit one) scores
    /// infinite error so the invocation fails *every* threshold —
    /// `f32::max` would otherwise silently skip it.
    pub fn max_normalized_error(&self, precise: &[f32], approx: &[f32]) -> f32 {
        let mut scratch = InvokeScratch::new();
        self.max_normalized_error_with(precise, approx, &mut scratch)
    }

    /// Zero-allocation form of
    /// [`AcceleratedFunction::max_normalized_error`], normalizing both
    /// vectors through scratch buffers. Bit-identical to the allocating
    /// form.
    pub fn max_normalized_error_with(
        &self,
        precise: &[f32],
        approx: &[f32],
        scratch: &mut InvokeScratch,
    ) -> f32 {
        self.output_norm
            .forward_into(precise, &mut scratch.precise_norm);
        self.output_norm
            .forward_into(approx, &mut scratch.approx_norm);
        scratch
            .precise_norm
            .iter()
            .zip(&scratch.approx_norm)
            .map(|(x, y)| {
                let d = (x - y).abs();
                if d.is_nan() {
                    f32::INFINITY
                } else {
                    d
                }
            })
            .fold(0.0f32, f32::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mithra_axbench::suite;

    fn trained_sobel() -> AcceleratedFunction {
        let bench: Arc<dyn Benchmark> = suite::by_name("sobel").unwrap().into();
        let datasets: Vec<Dataset> = (0..3)
            .map(|s| bench.dataset(s, DatasetScale::Smoke))
            .collect();
        AcceleratedFunction::train(
            bench,
            &datasets,
            &NpuTrainConfig {
                epochs: Some(30),
                max_samples: 2000,
                seed: 1,
            },
        )
        .unwrap()
    }

    #[test]
    fn approx_tracks_precise_roughly() {
        let f = trained_sobel();
        let ds = f.dataset(50, DatasetScale::Smoke);
        let (mut p, mut a) = (Vec::new(), Vec::new());
        let mut total_err = 0.0f32;
        for input in ds.iter() {
            f.precise_into(input, &mut p);
            f.approx_into(input, &mut a);
            total_err += f.max_normalized_error(&p, &a);
        }
        let mean = total_err / ds.invocation_count() as f32;
        assert!(mean < 0.25, "mean normalized error {mean} too high");
    }

    #[test]
    fn error_is_zero_for_identical_outputs() {
        let f = trained_sobel();
        assert_eq!(f.max_normalized_error(&[100.0], &[100.0]), 0.0);
    }

    #[test]
    fn error_scales_with_divergence() {
        let f = trained_sobel();
        let small = f.max_normalized_error(&[100.0], &[105.0]);
        let large = f.max_normalized_error(&[100.0], &[200.0]);
        assert!(large > small);
        assert!(small > 0.0);
    }

    #[test]
    fn nan_output_fails_every_threshold() {
        let f = trained_sobel();
        let e = f.max_normalized_error(&[100.0], &[f32::NAN]);
        assert_eq!(e, f32::INFINITY);
    }

    #[test]
    fn try_approx_rejects_bad_width() {
        let f = trained_sobel();
        let mut out = Vec::new();
        assert!(f.try_approx_into(&[1.0], &mut out).is_err());
    }

    #[test]
    fn training_is_deterministic() {
        let a = trained_sobel();
        let b = trained_sobel();
        assert_eq!(a.npu().to_parameters(), b.npu().to_parameters());
    }
}
