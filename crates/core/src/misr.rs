//! Multi-Input Signature Registers — the table classifier's hash function.
//!
//! The paper's requirements for the hash (§IV-A1): combine all elements of
//! the input vector, minimize destructive aliasing, be cheap in hardware,
//! accept a varying number of inputs, and be reconfigurable across
//! applications. A MISR satisfies all five: it XORs each arriving element
//! into a rotating feedback shift register; after the last element, the
//! register content is the table index.
//!
//! Configurations come from a **fixed pool of 16** (application-independent,
//! chosen to map the same input to different indices); the compiler
//! greedily assigns pool entries to tables (see
//! [`crate::table::TableClassifier`]).
//!
//! Hardware hashes the *quantized* input elements (the classifier sees the
//! same fixed-point values the accelerator FIFO carries). Quantization is
//! what gives the table generalization: nearby inputs — at 8-bit
//! granularity — share buckets, so decisions learned on training datasets
//! transfer to unseen ones.

use serde::{Deserialize, Serialize};

/// One MISR configuration: feedback taps, register rotation, and the
/// rotation applied to each incoming element's bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MisrConfig {
    /// Feedback tap mask XORed in when the rotated-out bit is set.
    pub taps: u32,
    /// Left-rotation applied to the register before combining.
    pub rotate: u32,
    /// Rotation applied to each input element's bits before XOR.
    pub input_rotate: u32,
}

impl MisrConfig {
    /// The fixed pool of 16 configurations the compiler selects from
    /// (paper §IV-A2: "selected from a pool of 16 fixed MISR
    /// configurations that exhibit least similarity").
    pub fn pool() -> [MisrConfig; 16] {
        // Taps are primitive-polynomial-style masks; rotations are coprime
        // with typical register widths so states diffuse differently per
        // configuration.
        [
            MisrConfig {
                taps: 0x9D7,
                rotate: 1,
                input_rotate: 0,
            },
            MisrConfig {
                taps: 0xB8F,
                rotate: 3,
                input_rotate: 5,
            },
            MisrConfig {
                taps: 0xC35,
                rotate: 5,
                input_rotate: 2,
            },
            MisrConfig {
                taps: 0xA6B,
                rotate: 7,
                input_rotate: 7,
            },
            MisrConfig {
                taps: 0xE19,
                rotate: 2,
                input_rotate: 3,
            },
            MisrConfig {
                taps: 0x8E5,
                rotate: 9,
                input_rotate: 1,
            },
            MisrConfig {
                taps: 0xF43,
                rotate: 4,
                input_rotate: 6,
            },
            MisrConfig {
                taps: 0x9A9,
                rotate: 11,
                input_rotate: 4,
            },
            MisrConfig {
                taps: 0xD07,
                rotate: 6,
                input_rotate: 9,
            },
            MisrConfig {
                taps: 0xBD1,
                rotate: 8,
                input_rotate: 11,
            },
            MisrConfig {
                taps: 0xA93,
                rotate: 10,
                input_rotate: 8,
            },
            MisrConfig {
                taps: 0xEC7,
                rotate: 1,
                input_rotate: 13,
            },
            MisrConfig {
                taps: 0x87B,
                rotate: 3,
                input_rotate: 10,
            },
            MisrConfig {
                taps: 0xCA5,
                rotate: 5,
                input_rotate: 12,
            },
            MisrConfig {
                taps: 0xF11,
                rotate: 7,
                input_rotate: 14,
            },
            MisrConfig {
                taps: 0x94D,
                rotate: 9,
                input_rotate: 15,
            },
        ]
    }
}

/// A MISR instance over a `width`-bit register (the table with `2^width`
/// entries it indexes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Misr {
    config: MisrConfig,
    width: u32,
    state: u32,
}

impl Misr {
    /// Creates a MISR for tables of `2^width` entries.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not in `1..=24` — table sizes in this design
    /// space range from 0.125 KB (1024 entries) to a few KB.
    pub fn new(config: MisrConfig, width: u32) -> Self {
        assert!((1..=24).contains(&width), "MISR width out of range");
        Self {
            config,
            width,
            state: 0,
        }
    }

    /// Register width in bits.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Resets the register for a new invocation.
    pub fn reset(&mut self) {
        self.state = 0;
    }

    /// Shifts one quantized input element into the register.
    pub fn shift_in(&mut self, element: u8) {
        let mask = (1u32 << self.width) - 1;
        // Rotate the register.
        let r = self.config.rotate % self.width;
        let rotated = ((self.state << r) | (self.state >> (self.width - r).max(1))) & mask;
        // LFSR-style feedback when the top bit is set.
        let feedback = if (self.state >> (self.width - 1)) & 1 == 1 {
            self.config.taps & mask
        } else {
            0
        };
        // Spread the 8-bit element across the register and rotate its bits.
        let spread = u32::from(element) | (u32::from(element) << 8) | (u32::from(element) << 16);
        let ir = self.config.input_rotate % self.width;
        let input_bits = (((spread << ir) | (spread >> (self.width - ir).max(1))) ^ spread) & mask;
        self.state = rotated ^ feedback ^ input_bits;
    }

    /// The current table index (valid after all elements are shifted in —
    /// the tri-state gates in hardware expose it only then).
    pub fn index(&self) -> usize {
        (self.state & ((1u32 << self.width) - 1)) as usize
    }

    /// Convenience: hash a whole quantized input vector from reset.
    pub fn hash(config: MisrConfig, width: u32, elements: &[u8]) -> usize {
        let mut misr = Misr::new(config, width);
        for &e in elements {
            misr.shift_in(e);
        }
        misr.index()
    }
}

/// A training set's inputs quantized once into a dense row-major byte
/// grid, ready for batch MISR hashing.
///
/// Hashing every example under every pool configuration dominates table
/// training, but quantization depends only on the granularity — never on
/// the MISR configuration. The grid therefore quantizes each input
/// exactly once and hashes rows under each configuration with a single
/// reused register ([`Misr::reset`] between rows is bit-identical to
/// constructing a fresh register per row).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantizedGrid {
    data: Vec<u8>,
    dims: usize,
}

impl QuantizedGrid {
    /// Quantizes every input vector through `quantizer` into one grid.
    pub fn from_inputs<'a>(
        quantizer: &InputQuantizer,
        inputs: impl IntoIterator<Item = &'a [f32]>,
    ) -> Self {
        let dims = quantizer.dims();
        let mut data = Vec::new();
        let mut row = Vec::with_capacity(dims);
        for input in inputs {
            quantizer.quantize_into(input, &mut row);
            debug_assert_eq!(row.len(), dims, "input dimension mismatch");
            data.extend_from_slice(&row);
        }
        Self { data, dims }
    }

    /// Number of quantized rows.
    pub fn rows(&self) -> usize {
        self.data.len().checked_div(self.dims).unwrap_or(0)
    }

    /// One quantized row.
    pub fn row(&self, i: usize) -> &[u8] {
        &self.data[i * self.dims..(i + 1) * self.dims]
    }

    /// Hashes every row under one configuration, reusing a single
    /// register across rows. Bit-identical to calling [`Misr::hash`] per
    /// row.
    pub fn hash_all(&self, config: MisrConfig, width: u32) -> Vec<usize> {
        let mut misr = Misr::new(config, width);
        let mut out = Vec::with_capacity(self.rows());
        for row in self.data.chunks_exact(self.dims.max(1)) {
            misr.reset();
            for &e in row {
                misr.shift_in(e);
            }
            out.push(misr.index());
        }
        out
    }
}

/// Default quantization levels per input element.
///
/// Granularity trades generalization against discrimination: too fine and
/// unseen inputs never revisit trained buckets (the ensemble's OR then
/// falsely rejects anything aliasing a reject bucket in *any* table); too
/// coarse and accept/reject inputs share patterns. 16 levels (4 bits per
/// element) is the sweet spot across the suite.
pub const DEFAULT_QUANT_LEVELS: u16 = 16;

/// Quantizes raw accelerator inputs to the small integer values the MISR
/// hashes, using per-dimension ranges learned at compile time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InputQuantizer {
    mins: Vec<f32>,
    maxs: Vec<f32>,
    levels: u16,
}

impl InputQuantizer {
    /// Fits the quantizer to observed per-dimension input ranges, at the
    /// default granularity.
    ///
    /// # Panics
    ///
    /// Panics if `mins` and `maxs` differ in length.
    pub fn new(mins: Vec<f32>, maxs: Vec<f32>) -> Self {
        assert_eq!(mins.len(), maxs.len(), "min/max dimension mismatch");
        Self {
            mins,
            maxs,
            levels: DEFAULT_QUANT_LEVELS,
        }
    }

    /// Fits the quantizer from a sample of input vectors, at the default
    /// granularity.
    ///
    /// # Panics
    ///
    /// Panics if the iterator yields nothing.
    pub fn fit<'a>(samples: impl IntoIterator<Item = &'a [f32]>) -> Self {
        let mut iter = samples.into_iter();
        let first = iter.next().expect("cannot fit a quantizer to no samples");
        let mut mins = first.to_vec();
        let mut maxs = first.to_vec();
        for s in iter {
            for d in 0..mins.len() {
                mins[d] = mins[d].min(s[d]);
                maxs[d] = maxs[d].max(s[d]);
            }
        }
        Self::new(mins, maxs)
    }

    /// Overrides the quantization granularity (2..=256 levels).
    ///
    /// # Panics
    ///
    /// Panics outside that range.
    pub fn with_levels(mut self, levels: u16) -> Self {
        assert!((2..=256).contains(&levels), "levels must be in 2..=256");
        self.levels = levels;
        self
    }

    /// The quantization granularity.
    pub fn levels(&self) -> u16 {
        self.levels
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.mins.len()
    }

    /// Quantizes one input vector into the provided buffer.
    pub fn quantize_into(&self, input: &[f32], out: &mut Vec<u8>) {
        out.clear();
        let top = f32::from(self.levels - 1);
        for (d, &v) in input.iter().enumerate() {
            let span = self.maxs[d] - self.mins[d];
            let q = if span <= f32::EPSILON {
                0.0
            } else {
                ((v - self.mins[d]) / span * top).clamp(0.0, top)
            };
            out.push(q as u8);
        }
    }

    /// Quantizes one input vector, allocating.
    pub fn quantize(&self, input: &[f32]) -> Vec<u8> {
        let mut out = Vec::with_capacity(input.len());
        self.quantize_into(input, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_deterministic() {
        let cfg = MisrConfig::pool()[0];
        let h1 = Misr::hash(cfg, 12, &[1, 2, 3, 4]);
        let h2 = Misr::hash(cfg, 12, &[1, 2, 3, 4]);
        assert_eq!(h1, h2);
    }

    #[test]
    fn index_in_table_range() {
        for cfg in MisrConfig::pool() {
            for width in [10u32, 12, 15] {
                let idx = Misr::hash(cfg, width, &[200, 13, 77, 0, 255]);
                assert!(idx < (1usize << width));
            }
        }
    }

    #[test]
    fn different_configs_hash_differently() {
        // Pool requirement: configurations "map same input to different
        // table indices". Verify on a sample input that most pairs differ.
        let input = [42u8, 99, 7, 180, 23, 66];
        let pool = MisrConfig::pool();
        let hashes: Vec<usize> = pool.iter().map(|&c| Misr::hash(c, 12, &input)).collect();
        let distinct: std::collections::HashSet<usize> = hashes.iter().copied().collect();
        assert!(
            distinct.len() >= 12,
            "only {} distinct hashes",
            distinct.len()
        );
    }

    #[test]
    fn order_sensitive() {
        let cfg = MisrConfig::pool()[1];
        assert_ne!(
            Misr::hash(cfg, 12, &[1, 2, 3]),
            Misr::hash(cfg, 12, &[3, 2, 1])
        );
    }

    #[test]
    fn accepts_varying_input_counts() {
        let cfg = MisrConfig::pool()[2];
        for n in 1..=64 {
            let v: Vec<u8> = (0..n).map(|i| (i * 7) as u8).collect();
            let _ = Misr::hash(cfg, 12, &v); // must not panic
        }
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut m = Misr::new(MisrConfig::pool()[3], 12);
        m.shift_in(200);
        m.shift_in(17);
        let idx = m.index();
        m.reset();
        m.shift_in(200);
        m.shift_in(17);
        assert_eq!(m.index(), idx);
    }

    #[test]
    fn diffusion_small_input_changes_move_index() {
        // Adjacent bytes should usually land in different buckets
        // (aliasing exists, but not systematically for neighbours).
        let cfg = MisrConfig::pool()[0];
        let mut moved = 0;
        for b in 0u8..100 {
            let a = Misr::hash(cfg, 12, &[b, 10, 20]);
            let c = Misr::hash(cfg, 12, &[b.wrapping_add(1), 10, 20]);
            if a != c {
                moved += 1;
            }
        }
        assert!(moved > 80, "only {moved} of 100 neighbours moved");
    }

    #[test]
    fn quantizer_full_range() {
        let q = InputQuantizer::new(vec![0.0], vec![10.0]).with_levels(256);
        assert_eq!(q.quantize(&[0.0]), vec![0]);
        assert_eq!(q.quantize(&[10.0]), vec![255]);
        assert_eq!(q.quantize(&[5.0]), vec![127]);
        // Out-of-range values clamp.
        assert_eq!(q.quantize(&[-5.0]), vec![0]);
        assert_eq!(q.quantize(&[20.0]), vec![255]);
    }

    #[test]
    fn quantizer_default_levels() {
        let q = InputQuantizer::new(vec![0.0], vec![1.0]);
        assert_eq!(q.levels(), DEFAULT_QUANT_LEVELS);
        assert_eq!(q.quantize(&[1.0]), vec![(DEFAULT_QUANT_LEVELS - 1) as u8]);
        // Nearby values share a bucket at coarse granularity.
        assert_eq!(q.quantize(&[0.50]), q.quantize(&[0.52]));
    }

    #[test]
    fn quantizer_fit_covers_samples() {
        let samples: Vec<Vec<f32>> = vec![vec![-1.0, 5.0], vec![3.0, 7.0]];
        let q = InputQuantizer::fit(samples.iter().map(Vec::as_slice)).with_levels(256);
        assert_eq!(q.dims(), 2);
        assert_eq!(q.quantize(&[-1.0, 5.0]), vec![0, 0]);
        assert_eq!(q.quantize(&[3.0, 7.0]), vec![255, 255]);
    }

    #[test]
    #[should_panic(expected = "levels must be in 2..=256")]
    fn quantizer_rejects_bad_levels() {
        let _ = InputQuantizer::new(vec![0.0], vec![1.0]).with_levels(1);
    }

    #[test]
    fn quantizer_constant_dimension_is_stable() {
        let q = InputQuantizer::new(vec![2.0], vec![2.0]);
        assert_eq!(q.quantize(&[2.0]), vec![0]);
        assert_eq!(q.quantize(&[100.0]), vec![0]);
    }

    #[test]
    fn grid_hash_all_matches_per_row_hash() {
        let q = InputQuantizer::new(vec![0.0, -2.0], vec![1.0, 2.0]).with_levels(32);
        let inputs: Vec<Vec<f32>> = (0..40)
            .map(|i| vec![i as f32 / 40.0, (i as f32 / 10.0) - 2.0])
            .collect();
        let grid = QuantizedGrid::from_inputs(&q, inputs.iter().map(Vec::as_slice));
        assert_eq!(grid.rows(), 40);
        for cfg in MisrConfig::pool() {
            let batch = grid.hash_all(cfg, 12);
            for (i, input) in inputs.iter().enumerate() {
                let expected = Misr::hash(cfg, 12, &q.quantize(input));
                assert_eq!(batch[i], expected, "cfg {cfg:?} row {i}");
                assert_eq!(grid.row(i), q.quantize(input).as_slice());
            }
        }
    }

    #[test]
    fn empty_grid_hashes_to_nothing() {
        let q = InputQuantizer::new(vec![0.0], vec![1.0]);
        let grid = QuantizedGrid::from_inputs(&q, std::iter::empty());
        assert_eq!(grid.rows(), 0);
        assert!(grid.hash_all(MisrConfig::pool()[0], 12).is_empty());
    }

    #[test]
    fn pool_has_16_distinct_configs() {
        let pool = MisrConfig::pool();
        let set: std::collections::HashSet<_> = pool.iter().collect();
        assert_eq!(set.len(), 16);
    }
}
