//! The statistical threshold optimizer (paper §III-A, Algorithm 1).
//!
//! The knob MITHRA exposes is a threshold on the *local accelerator error*.
//! The optimizer picks the loosest threshold whose final-quality behaviour,
//! measured over the representative compilation datasets, can be certified
//! with the Clopper–Pearson exact method: with confidence β, at least a
//! fraction S of unseen datasets will meet the quality-loss target `q`.
//!
//! The search exploits monotonicity: loosening the threshold can only send
//! more invocations to the accelerator, degrading (weakly) each dataset's
//! quality. Bisection over the threshold therefore finds the boundary the
//! paper's delta-stepping loop converges to, with the same certification
//! test at every probe. [`ThresholdOptimizer::optimize_stepping`] also
//! provides the paper's literal Algorithm 1 for comparison.

use crate::function::AcceleratedFunction;
use crate::parallel::par_map_indexed;
use crate::profile::DatasetProfile;
use crate::route::{ApproximatorPool, RouteChoice, RouteClassifier};
use crate::{MithraError, Result};
use mithra_stats::clopper_pearson::{lower_bound, Confidence};

/// The programmer's quality requirement: target loss, confidence, and
/// required success rate (paper: "5% quality loss, with 95% confidence and
/// 90% success rate").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualitySpec {
    /// Maximum acceptable final-output quality loss `q` (fraction).
    pub max_quality_loss: f64,
    /// Confidence level β of the statistical guarantee.
    pub confidence: Confidence,
    /// Required success rate S over unseen datasets.
    pub success_rate: f64,
}

impl QualitySpec {
    /// The paper's main configuration for a given quality-loss target:
    /// 95% confidence, 90% success rate.
    ///
    /// # Errors
    ///
    /// Returns an error if `max_quality_loss` is outside `(0, 1]`.
    pub fn paper_default(max_quality_loss: f64) -> Result<Self> {
        Self::new(max_quality_loss, 0.95, 0.90)
    }

    /// Creates a fully custom specification.
    ///
    /// # Errors
    ///
    /// Returns [`MithraError::InvalidConfig`] for out-of-range values.
    pub fn new(max_quality_loss: f64, confidence: f64, success_rate: f64) -> Result<Self> {
        if !(0.0..=1.0).contains(&max_quality_loss) || max_quality_loss == 0.0 {
            return Err(MithraError::InvalidConfig {
                parameter: "max_quality_loss",
                constraint: "0 < q <= 1",
            });
        }
        if !(0.0..=1.0).contains(&success_rate) {
            return Err(MithraError::InvalidConfig {
                parameter: "success_rate",
                constraint: "0 <= S <= 1",
            });
        }
        let confidence = Confidence::new(confidence).map_err(|_| MithraError::InvalidConfig {
            parameter: "confidence",
            constraint: "0 < beta < 1",
        })?;
        Ok(Self {
            max_quality_loss,
            confidence,
            success_rate,
        })
    }
}

/// The optimizer's result: the certified threshold and its statistics.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ThresholdOutcome {
    /// The certified accelerator-error threshold (normalized output space).
    pub threshold: f32,
    /// Datasets meeting the quality target at this threshold.
    pub successes: u64,
    /// Total datasets evaluated.
    pub trials: u64,
    /// The Clopper–Pearson lower bound on the unseen-dataset success rate.
    pub certified_rate: f64,
    /// Mean accelerator invocation rate over the datasets at this threshold.
    pub mean_invocation_rate: f64,
}

/// The optimizer's result over a **routed mixture**: the shared threshold
/// certified against the mixed output stream of an ordered approximator
/// pool, plus per-member accounting. Violations are attributed to
/// whichever member served the worst (largest profiled error) invocation
/// of the violating dataset, so `successes + Σ member_violations = trials`.
///
/// For a pool of one, every shared field (`threshold`, `successes`,
/// `trials`, `certified_rate`, `mean_invocation_rate`) is bit-identical to
/// the binary [`ThresholdOutcome`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RoutedThresholdOutcome {
    /// The certified accelerator-error threshold shared by all members.
    pub threshold: f32,
    /// Datasets meeting the quality target under the routed mixture.
    pub successes: u64,
    /// Total datasets evaluated.
    pub trials: u64,
    /// The Clopper–Pearson lower bound on the unseen-dataset success rate
    /// of the routed mixture.
    pub certified_rate: f64,
    /// Mean fraction of invocations served by *any* pool member.
    pub mean_invocation_rate: f64,
    /// Mean fraction of invocations served by each member (cheapest
    /// first); sums to `mean_invocation_rate`.
    pub member_invocation_rates: Vec<f64>,
    /// Violating datasets attributed to each member (cheapest first).
    pub member_violations: Vec<u64>,
}

/// Searches for the optimal threshold over a set of dataset profiles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThresholdOptimizer {
    spec: QualitySpec,
    /// Bisection probes; 24 localizes the threshold to ~1e-7 of its range.
    iterations: u32,
    /// Worker threads for per-profile replay during certification
    /// (`Some(1)` = sequential, `None`/`Some(0)` = available parallelism).
    threads: Option<usize>,
}

impl ThresholdOptimizer {
    /// Creates an optimizer for the given specification.
    pub fn new(spec: QualitySpec) -> Self {
        Self {
            spec,
            iterations: 24,
            threads: Some(1),
        }
    }

    /// Replays each profile's certification probe on up to `threads`
    /// workers (`None`/`Some(0)` = available parallelism).
    ///
    /// Each profile replays independently; the success count and the
    /// invocation-rate sum are folded sequentially in profile order from
    /// the per-profile results, so every outcome is bit-identical at any
    /// thread count.
    pub fn with_threads(mut self, threads: Option<usize>) -> Self {
        self.threads = threads;
        self
    }

    /// The specification being optimized for.
    pub fn spec(&self) -> &QualitySpec {
        &self.spec
    }

    /// Certification probe: successes and the Clopper–Pearson bound at one
    /// candidate threshold.
    pub fn certify(
        &self,
        function: &AcceleratedFunction,
        profiles: &[DatasetProfile],
        threshold: f32,
    ) -> Result<(u64, f64, f64)> {
        // Replays are independent per profile; the floating-point
        // invocation-rate sum below folds their results in profile order.
        let replays = par_map_indexed(profiles.len(), self.threads, |i| {
            profiles[i].replay_with_threshold(function, threshold)
        });
        let mut successes = 0u64;
        let mut invocation_rates = 0.0f64;
        for replay in replays {
            if replay.quality_loss <= self.spec.max_quality_loss {
                successes += 1;
            }
            invocation_rates += replay.invocation_rate();
        }
        let bound = lower_bound(successes, profiles.len() as u64, self.spec.confidence)?;
        Ok((successes, bound, invocation_rates / profiles.len() as f64))
    }

    /// Finds the loosest certifiable threshold by bisection.
    ///
    /// # Errors
    ///
    /// Returns [`MithraError::InsufficientData`] with no profiles, and
    /// [`MithraError::Uncertifiable`] if even threshold 0 (all-precise)
    /// cannot be certified — i.e. the dataset count is too small for the
    /// requested confidence/success rate.
    pub fn optimize(
        &self,
        function: &AcceleratedFunction,
        profiles: &[DatasetProfile],
    ) -> Result<ThresholdOutcome> {
        if profiles.is_empty() {
            return Err(MithraError::InsufficientData {
                stage: "threshold optimization",
                available: 0,
                needed: 1,
            });
        }

        // Upper end of the search range: the largest observed error.
        let max_err = profiles
            .iter()
            .flat_map(|p| p.errors().iter().copied())
            .fold(0.0f32, f32::max)
            .max(1e-6);

        // Threshold 0 filters every erroneous invocation: quality loss 0.
        let (s0, bound0, _) = self.certify(function, profiles, 0.0)?;
        if bound0 < self.spec.success_rate {
            return Err(MithraError::Uncertifiable {
                quality_target: self.spec.max_quality_loss,
                required_rate: self.spec.success_rate,
                best_rate: bound0,
            });
        }
        let _ = s0;

        // If even the loosest threshold certifies, take it.
        let (s_hi, bound_hi, inv_hi) = self.certify(function, profiles, max_err)?;
        if bound_hi >= self.spec.success_rate {
            return Ok(ThresholdOutcome {
                threshold: max_err,
                successes: s_hi,
                trials: profiles.len() as u64,
                certified_rate: bound_hi,
                mean_invocation_rate: inv_hi,
            });
        }

        // Bisection: lo certifies, hi does not.
        let (mut lo, mut hi) = (0.0f32, max_err);
        let mut best = (0.0f32, 0u64, bound0, 0.0f64);
        for _ in 0..self.iterations {
            let mid = 0.5 * (lo + hi);
            let (s, bound, inv) = self.certify(function, profiles, mid)?;
            if bound >= self.spec.success_rate {
                best = (mid, s, bound, inv);
                lo = mid;
            } else {
                hi = mid;
            }
        }

        // `best` may still be the all-precise origin if nothing in between
        // certified; recompute its invocation rate for reporting.
        let (threshold, successes, certified_rate, mean_invocation_rate) = if best.0 == 0.0 {
            let (s, b, inv) = self.certify(function, profiles, 0.0)?;
            (0.0, s, b, inv)
        } else {
            best
        };

        Ok(ThresholdOutcome {
            threshold,
            successes,
            trials: profiles.len() as u64,
            certified_rate,
            mean_invocation_rate,
        })
    }

    /// Certification probe over a **routed mixture** at one candidate
    /// threshold: each dataset is replayed through the oracle router (the
    /// cheapest member whose profiled error is within the threshold; see
    /// [`ApproximatorPool::replay_routed_threshold`]) and the
    /// Clopper–Pearson bound is taken over the mixed quality outcomes.
    /// Violations are attributed to the member that served each violating
    /// dataset's worst invocation.
    ///
    /// Replays fold sequentially in dataset order from per-dataset
    /// results, so the probe is bit-identical at any thread count — and
    /// bit-identical to [`certify`](Self::certify) for a pool of one.
    ///
    /// # Errors
    ///
    /// Returns [`MithraError::InsufficientData`] for a profile table that
    /// does not cover every member, and propagates replay failures.
    pub fn certify_routed(
        &self,
        pool: &ApproximatorPool,
        member_profiles: &[Vec<DatasetProfile>],
        threshold: f32,
    ) -> Result<RoutedThresholdOutcome> {
        let trials = check_member_profile_table(pool, member_profiles)?;
        let replays = par_map_indexed(trials, self.threads, |i| {
            let members: Vec<&DatasetProfile> = member_profiles.iter().map(|mp| &mp[i]).collect();
            pool.replay_routed_threshold(&members, threshold)
        });
        let mut successes = 0u64;
        let mut invocation_rates = 0.0f64;
        let mut member_rates = vec![0.0f64; pool.len()];
        let mut member_violations = vec![0u64; pool.len()];
        for replay in replays {
            let replay = replay?;
            if replay.quality_loss <= self.spec.max_quality_loss {
                successes += 1;
            } else {
                member_violations[replay.worst_member] += 1;
            }
            invocation_rates += replay.invocation_rate();
            if replay.total > 0 {
                for (m, &count) in replay.member_invocations.iter().enumerate() {
                    member_rates[m] += count as f64 / replay.total as f64;
                }
            }
        }
        let bound = lower_bound(successes, trials as u64, self.spec.confidence)?;
        for rate in &mut member_rates {
            *rate /= trials as f64;
        }
        Ok(RoutedThresholdOutcome {
            threshold,
            successes,
            trials: trials as u64,
            certified_rate: bound,
            mean_invocation_rate: invocation_rates / trials as f64,
            member_invocation_rates: member_rates,
            member_violations,
        })
    }

    /// Certification probe over the routed mixture with the **deployed
    /// router in the loop**: each dataset is replayed under a fresh copy
    /// of `router` making the per-invocation decisions — exactly how
    /// `mithra-sim` serves a dataset — and the Clopper–Pearson bound is
    /// taken over the resulting quality outcomes.
    ///
    /// The oracle probe ([`certify_routed`](Self::certify_routed))
    /// overstates a cascade: every stage the router consults adds its own
    /// false-accept mass, so an invocation whose true error exceeds the
    /// threshold can still be served approximately. Certifying the
    /// deployed decisions charges that misrouting against the certificate
    /// instead of discovering it on unseen data.
    ///
    /// Replays fold sequentially in dataset order from per-dataset
    /// results, so the probe is bit-identical at any thread count.
    ///
    /// # Errors
    ///
    /// Returns [`MithraError::InsufficientData`] for a profile table that
    /// does not cover every member, and propagates replay failures.
    pub fn certify_routed_deployed(
        &self,
        pool: &ApproximatorPool,
        member_profiles: &[Vec<DatasetProfile>],
        router: &RouteClassifier,
        threshold: f32,
    ) -> Result<RoutedThresholdOutcome> {
        let trials = check_member_profile_table(pool, member_profiles)?;
        let replays = par_map_indexed(trials, self.threads, |i| {
            let members: Vec<&DatasetProfile> = member_profiles.iter().map(|mp| &mp[i]).collect();
            let mut stages = router.clone();
            let choices: Vec<RouteChoice> = members[0]
                .dataset()
                .iter()
                .enumerate()
                .map(|(j, input)| stages.classify_route(j, input))
                .collect();
            pool.replay_routed_choices(&members, &choices)
        });
        let mut successes = 0u64;
        let mut invocation_rates = 0.0f64;
        let mut member_rates = vec![0.0f64; pool.len()];
        let mut member_violations = vec![0u64; pool.len()];
        for replay in replays {
            let replay = replay?;
            if replay.quality_loss <= self.spec.max_quality_loss {
                successes += 1;
            } else {
                member_violations[replay.worst_member] += 1;
            }
            invocation_rates += replay.invocation_rate();
            if replay.total > 0 {
                for (m, &count) in replay.member_invocations.iter().enumerate() {
                    member_rates[m] += count as f64 / replay.total as f64;
                }
            }
        }
        let bound = lower_bound(successes, trials as u64, self.spec.confidence)?;
        for rate in &mut member_rates {
            *rate /= trials as f64;
        }
        Ok(RoutedThresholdOutcome {
            threshold,
            successes,
            trials: trials as u64,
            certified_rate: bound,
            mean_invocation_rate: invocation_rates / trials as f64,
            member_invocation_rates: member_rates,
            member_violations,
        })
    }

    /// Finds the loosest threshold whose **deployed** routed mixture
    /// certifies: the same bisection as
    /// [`optimize_routed`](Self::optimize_routed), but every probe trains
    /// a router at the candidate threshold (via `train_router`) and
    /// certifies the router's own routing decisions
    /// ([`certify_routed_deployed`](Self::certify_routed_deployed)).
    ///
    /// Unlike the oracle probe, the deployed probe is not monotone in the
    /// threshold — each candidate retrains the cascade — so, like the
    /// paper's delta-stepping, the bisection converges to *a* boundary of
    /// the certification region rather than a guaranteed-loosest point.
    /// The returned outcome always certifies.
    ///
    /// # Errors
    ///
    /// Returns [`MithraError::InsufficientData`] with no profiles,
    /// [`MithraError::Uncertifiable`] if even threshold 0 (where every
    /// training label is "reject", so the cascade trains to all-precise)
    /// cannot be certified, and propagates router-training failures.
    pub fn optimize_routed_deployed<F>(
        &self,
        pool: &ApproximatorPool,
        member_profiles: &[Vec<DatasetProfile>],
        mut train_router: F,
    ) -> Result<RoutedThresholdOutcome>
    where
        F: FnMut(f32) -> Result<RouteClassifier>,
    {
        let trials = check_member_profile_table(pool, member_profiles)?;
        if trials == 0 {
            return Err(MithraError::InsufficientData {
                stage: "threshold optimization",
                available: 0,
                needed: 1,
            });
        }

        let max_err = member_profiles
            .iter()
            .flat_map(|mp| mp.iter())
            .flat_map(|p| p.errors().iter().copied())
            .fold(0.0f32, f32::max)
            .max(1e-6);

        let origin_router = train_router(0.0)?;
        let origin = self.certify_routed_deployed(pool, member_profiles, &origin_router, 0.0)?;
        if origin.certified_rate < self.spec.success_rate {
            return Err(MithraError::Uncertifiable {
                quality_target: self.spec.max_quality_loss,
                required_rate: self.spec.success_rate,
                best_rate: origin.certified_rate,
            });
        }

        let loose_router = train_router(max_err)?;
        let loosest =
            self.certify_routed_deployed(pool, member_profiles, &loose_router, max_err)?;
        if loosest.certified_rate >= self.spec.success_rate {
            return Ok(loosest);
        }

        let (mut lo, mut hi) = (0.0f32, max_err);
        let mut best = origin;
        for _ in 0..self.iterations {
            let mid = 0.5 * (lo + hi);
            let router = train_router(mid)?;
            let probe = self.certify_routed_deployed(pool, member_profiles, &router, mid)?;
            if probe.certified_rate >= self.spec.success_rate {
                best = probe;
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Ok(best)
    }

    /// Finds the loosest certifiable threshold of a routed mixture by the
    /// same bisection as [`optimize`](Self::optimize): identical probe
    /// points (the search range spans every member's observed errors),
    /// identical certification test, identical fold order. For a pool of
    /// one the result's shared fields are bit-identical to the binary
    /// optimizer's.
    ///
    /// # Errors
    ///
    /// Returns [`MithraError::InsufficientData`] with no profiles, and
    /// [`MithraError::Uncertifiable`] if even threshold 0 (all-precise)
    /// cannot be certified.
    pub fn optimize_routed(
        &self,
        pool: &ApproximatorPool,
        member_profiles: &[Vec<DatasetProfile>],
    ) -> Result<RoutedThresholdOutcome> {
        let trials = check_member_profile_table(pool, member_profiles)?;
        if trials == 0 {
            return Err(MithraError::InsufficientData {
                stage: "threshold optimization",
                available: 0,
                needed: 1,
            });
        }

        // Upper end of the search range: the largest error observed by
        // any member. (For a pool of one this is the binary range.)
        let max_err = member_profiles
            .iter()
            .flat_map(|mp| mp.iter())
            .flat_map(|p| p.errors().iter().copied())
            .fold(0.0f32, f32::max)
            .max(1e-6);

        // Threshold 0 filters every erroneous invocation: quality loss 0.
        let origin = self.certify_routed(pool, member_profiles, 0.0)?;
        if origin.certified_rate < self.spec.success_rate {
            return Err(MithraError::Uncertifiable {
                quality_target: self.spec.max_quality_loss,
                required_rate: self.spec.success_rate,
                best_rate: origin.certified_rate,
            });
        }

        // If even the loosest threshold certifies, take it.
        let loosest = self.certify_routed(pool, member_profiles, max_err)?;
        if loosest.certified_rate >= self.spec.success_rate {
            return Ok(loosest);
        }

        // Bisection: lo certifies, hi does not.
        let (mut lo, mut hi) = (0.0f32, max_err);
        let mut best = origin;
        for _ in 0..self.iterations {
            let mid = 0.5 * (lo + hi);
            let probe = self.certify_routed(pool, member_profiles, mid)?;
            if probe.certified_rate >= self.spec.success_rate {
                best = probe;
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Ok(best)
    }

    /// The paper's literal Algorithm 1: delta-stepping from an initial
    /// threshold, loosening while certification holds and tightening while
    /// it fails, terminating at the boundary crossing.
    ///
    /// Provided for fidelity and cross-validation against [`optimize`];
    /// bisection reaches the same boundary in fewer probes.
    ///
    /// [`optimize`]: Self::optimize
    ///
    /// # Errors
    ///
    /// Same as [`optimize`](Self::optimize).
    pub fn optimize_stepping(
        &self,
        function: &AcceleratedFunction,
        profiles: &[DatasetProfile],
        initial: f32,
        delta: f32,
        max_steps: u32,
    ) -> Result<ThresholdOutcome> {
        if profiles.is_empty() {
            return Err(MithraError::InsufficientData {
                stage: "threshold optimization",
                available: 0,
                needed: 1,
            });
        }
        let mut th = initial.max(0.0);
        let mut last_pass: Option<(f32, u64, f64, f64)> = None;
        for _ in 0..max_steps {
            let (s, bound, inv) = self.certify(function, profiles, th)?;
            let pass = bound >= self.spec.success_rate;
            if pass {
                last_pass = Some((th, s, bound, inv));
                // Success: loosen the knob (step 5: increase threshold).
                th += delta;
            } else {
                // Failure right after a pass: the boundary is crossed
                // (step 6 terminates).
                if last_pass.is_some() {
                    break;
                }
                // Failure: tighten the knob (step 5: decrease threshold).
                th -= delta;
                if th < 0.0 {
                    th = 0.0;
                }
            }
        }
        match last_pass {
            Some((threshold, successes, certified_rate, mean_invocation_rate)) => {
                Ok(ThresholdOutcome {
                    threshold,
                    successes,
                    trials: profiles.len() as u64,
                    certified_rate,
                    mean_invocation_rate,
                })
            }
            None => {
                let (s, bound, inv) = self.certify(function, profiles, 0.0)?;
                if bound >= self.spec.success_rate {
                    Ok(ThresholdOutcome {
                        threshold: 0.0,
                        successes: s,
                        trials: profiles.len() as u64,
                        certified_rate: bound,
                        mean_invocation_rate: inv,
                    })
                } else {
                    Err(MithraError::Uncertifiable {
                        quality_target: self.spec.max_quality_loss,
                        required_rate: self.spec.success_rate,
                        best_rate: bound,
                    })
                }
            }
        }
    }
}

/// Validates a per-member profile table (`member_profiles[m][i]` = member
/// `m`'s profile of dataset `i`), returning the dataset count.
fn check_member_profile_table(
    pool: &ApproximatorPool,
    member_profiles: &[Vec<DatasetProfile>],
) -> Result<usize> {
    if member_profiles.len() != pool.len() {
        return Err(MithraError::InsufficientData {
            stage: "routed threshold optimization",
            available: member_profiles.len(),
            needed: pool.len(),
        });
    }
    let trials = member_profiles[0].len();
    for mp in member_profiles {
        if mp.len() != trials {
            return Err(MithraError::InsufficientData {
                stage: "routed threshold optimization",
                available: mp.len(),
                needed: trials,
            });
        }
    }
    Ok(trials)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::NpuTrainConfig;
    use mithra_axbench::benchmark::Benchmark;
    use mithra_axbench::dataset::{Dataset, DatasetScale};
    use mithra_axbench::suite;
    use std::sync::Arc;

    fn setup(name: &str, n_profiles: u64) -> (AcceleratedFunction, Vec<DatasetProfile>) {
        let bench: Arc<dyn Benchmark> = suite::by_name(name).unwrap().into();
        let train: Vec<Dataset> = (0..2)
            .map(|s| bench.dataset(s, DatasetScale::Smoke))
            .collect();
        let f = AcceleratedFunction::train(
            bench,
            &train,
            &NpuTrainConfig {
                epochs: Some(25),
                max_samples: 1500,
                seed: 7,
            },
        )
        .unwrap();
        let profiles: Vec<DatasetProfile> = (100..100 + n_profiles)
            .map(|s| DatasetProfile::collect(&f, f.dataset(s, DatasetScale::Smoke)))
            .collect();
        (f, profiles)
    }

    #[test]
    fn spec_validation() {
        assert!(QualitySpec::new(0.05, 0.95, 0.9).is_ok());
        assert!(QualitySpec::new(0.0, 0.95, 0.9).is_err());
        assert!(QualitySpec::new(0.05, 1.0, 0.9).is_err());
        assert!(QualitySpec::new(0.05, 0.95, 1.5).is_err());
        let spec = QualitySpec::paper_default(0.05).unwrap();
        assert_eq!(spec.max_quality_loss, 0.05);
    }

    #[test]
    fn optimizer_certifies_loose_targets() {
        // With a generous quality target and modest success rate the
        // optimizer must find a positive threshold.
        let (f, profiles) = setup("sobel", 30);
        let spec = QualitySpec::new(0.30, 0.9, 0.5).unwrap();
        let outcome = ThresholdOptimizer::new(spec)
            .optimize(&f, &profiles)
            .unwrap();
        assert!(outcome.threshold > 0.0);
        assert!(outcome.certified_rate >= 0.5);
        assert!(outcome.mean_invocation_rate > 0.0);
        assert_eq!(outcome.trials, 30);
    }

    #[test]
    fn stricter_targets_give_tighter_thresholds() {
        let (f, profiles) = setup("sobel", 30);
        let loose = ThresholdOptimizer::new(QualitySpec::new(0.30, 0.9, 0.5).unwrap())
            .optimize(&f, &profiles)
            .unwrap();
        let tight = ThresholdOptimizer::new(QualitySpec::new(0.02, 0.9, 0.5).unwrap())
            .optimize(&f, &profiles)
            .unwrap();
        assert!(tight.threshold <= loose.threshold);
        assert!(tight.mean_invocation_rate <= loose.mean_invocation_rate + 1e-9);
    }

    #[test]
    fn impossible_success_rate_errors() {
        // 5 datasets cannot certify 99% at 95% confidence.
        let (f, profiles) = setup("sobel", 5);
        let spec = QualitySpec::new(0.05, 0.95, 0.99).unwrap();
        let err = ThresholdOptimizer::new(spec)
            .optimize(&f, &profiles)
            .unwrap_err();
        assert!(matches!(err, MithraError::Uncertifiable { .. }));
    }

    #[test]
    fn empty_profiles_error() {
        let (f, _) = setup("sobel", 1);
        let spec = QualitySpec::paper_default(0.05).unwrap();
        assert!(matches!(
            ThresholdOptimizer::new(spec).optimize(&f, &[]),
            Err(MithraError::InsufficientData { .. })
        ));
    }

    #[test]
    fn stepping_agrees_with_bisection() {
        let (f, profiles) = setup("sobel", 20);
        let spec = QualitySpec::new(0.20, 0.9, 0.5).unwrap();
        let opt = ThresholdOptimizer::new(spec);
        let bisect = opt.optimize(&f, &profiles).unwrap();
        let stepped = opt
            .optimize_stepping(&f, &profiles, 0.05, 0.01, 200)
            .unwrap();
        // Same boundary to within the step size.
        assert!(
            (bisect.threshold - stepped.threshold).abs() <= 0.011,
            "bisect {} vs stepped {}",
            bisect.threshold,
            stepped.threshold
        );
    }

    #[test]
    fn routed_pool_of_one_matches_binary_bit_for_bit() {
        let (f, profiles) = setup("sobel", 25);
        let spec = QualitySpec::new(0.30, 0.9, 0.5).unwrap();
        let opt = ThresholdOptimizer::new(spec);
        let binary = opt.optimize(&f, &profiles).unwrap();
        let pool =
            ApproximatorPool::from_members(vec![f.clone()], vec![f.benchmark().npu_topology()]);
        let routed = opt
            .optimize_routed(&pool, std::slice::from_ref(&profiles))
            .unwrap();
        assert_eq!(binary.threshold.to_bits(), routed.threshold.to_bits());
        assert_eq!(binary.successes, routed.successes);
        assert_eq!(binary.trials, routed.trials);
        assert_eq!(
            binary.certified_rate.to_bits(),
            routed.certified_rate.to_bits()
        );
        assert_eq!(
            binary.mean_invocation_rate.to_bits(),
            routed.mean_invocation_rate.to_bits()
        );
        assert_eq!(
            routed.member_invocation_rates[0].to_bits(),
            routed.mean_invocation_rate.to_bits()
        );
        assert_eq!(
            routed.successes + routed.member_violations.iter().sum::<u64>(),
            routed.trials
        );
    }

    #[test]
    fn routed_pool_accounting_is_conserved() {
        let (f, profiles) = setup("sobel", 20);
        let bench = f.benchmark();
        let spec = QualitySpec::new(0.20, 0.9, 0.5).unwrap();
        let cheap = crate::route::PoolSpec::tiered(&bench.npu_topology());
        let train: Vec<mithra_axbench::dataset::Dataset> = (0..2)
            .map(|s| bench.dataset(s, DatasetScale::Smoke))
            .collect();
        let pool = ApproximatorPool::train(
            bench,
            &train,
            &NpuTrainConfig {
                epochs: Some(25),
                max_samples: 1500,
                seed: 7,
            },
            &cheap,
            Some(1),
            Some(&f),
        )
        .unwrap();
        let member_profiles: Vec<Vec<DatasetProfile>> = pool
            .members()
            .iter()
            .map(|m| {
                (100..120)
                    .map(|s| DatasetProfile::collect(m, m.dataset(s, DatasetScale::Smoke)))
                    .collect()
            })
            .collect();
        let _ = profiles;
        let routed = ThresholdOptimizer::new(spec)
            .optimize_routed(&pool, &member_profiles)
            .unwrap();
        assert_eq!(routed.member_invocation_rates.len(), pool.len());
        assert_eq!(routed.member_violations.len(), pool.len());
        assert_eq!(
            routed.successes + routed.member_violations.iter().sum::<u64>(),
            routed.trials
        );
        let member_sum: f64 = routed.member_invocation_rates.iter().sum();
        assert!((member_sum - routed.mean_invocation_rate).abs() < 1e-9);
    }

    #[test]
    fn certified_rate_is_conservative() {
        let (f, profiles) = setup("inversek2j", 25);
        let spec = QualitySpec::new(0.25, 0.9, 0.5).unwrap();
        let outcome = ThresholdOptimizer::new(spec)
            .optimize(&f, &profiles)
            .unwrap();
        // The certified (lower-bound) rate never exceeds the empirical one.
        let empirical = outcome.successes as f64 / outcome.trials as f64;
        assert!(outcome.certified_rate <= empirical + 1e-12);
    }
}
