//! The statistical threshold optimizer (paper §III-A, Algorithm 1).
//!
//! The knob MITHRA exposes is a threshold on the *local accelerator error*.
//! The optimizer picks the loosest threshold whose final-quality behaviour,
//! measured over the representative compilation datasets, can be certified
//! with the Clopper–Pearson exact method: with confidence β, at least a
//! fraction S of unseen datasets will meet the quality-loss target `q`.
//!
//! The search exploits monotonicity: loosening the threshold can only send
//! more invocations to the accelerator, degrading (weakly) each dataset's
//! quality. Bisection over the threshold therefore finds the boundary the
//! paper's delta-stepping loop converges to, with the same certification
//! test at every probe. [`ThresholdOptimizer::optimize_stepping`] also
//! provides the paper's literal Algorithm 1 for comparison.

use crate::function::AcceleratedFunction;
use crate::parallel::par_map_indexed;
use crate::profile::DatasetProfile;
use crate::{MithraError, Result};
use mithra_stats::clopper_pearson::{lower_bound, Confidence};

/// The programmer's quality requirement: target loss, confidence, and
/// required success rate (paper: "5% quality loss, with 95% confidence and
/// 90% success rate").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualitySpec {
    /// Maximum acceptable final-output quality loss `q` (fraction).
    pub max_quality_loss: f64,
    /// Confidence level β of the statistical guarantee.
    pub confidence: Confidence,
    /// Required success rate S over unseen datasets.
    pub success_rate: f64,
}

impl QualitySpec {
    /// The paper's main configuration for a given quality-loss target:
    /// 95% confidence, 90% success rate.
    ///
    /// # Errors
    ///
    /// Returns an error if `max_quality_loss` is outside `(0, 1]`.
    pub fn paper_default(max_quality_loss: f64) -> Result<Self> {
        Self::new(max_quality_loss, 0.95, 0.90)
    }

    /// Creates a fully custom specification.
    ///
    /// # Errors
    ///
    /// Returns [`MithraError::InvalidConfig`] for out-of-range values.
    pub fn new(max_quality_loss: f64, confidence: f64, success_rate: f64) -> Result<Self> {
        if !(0.0..=1.0).contains(&max_quality_loss) || max_quality_loss == 0.0 {
            return Err(MithraError::InvalidConfig {
                parameter: "max_quality_loss",
                constraint: "0 < q <= 1",
            });
        }
        if !(0.0..=1.0).contains(&success_rate) {
            return Err(MithraError::InvalidConfig {
                parameter: "success_rate",
                constraint: "0 <= S <= 1",
            });
        }
        let confidence = Confidence::new(confidence).map_err(|_| MithraError::InvalidConfig {
            parameter: "confidence",
            constraint: "0 < beta < 1",
        })?;
        Ok(Self {
            max_quality_loss,
            confidence,
            success_rate,
        })
    }
}

/// The optimizer's result: the certified threshold and its statistics.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ThresholdOutcome {
    /// The certified accelerator-error threshold (normalized output space).
    pub threshold: f32,
    /// Datasets meeting the quality target at this threshold.
    pub successes: u64,
    /// Total datasets evaluated.
    pub trials: u64,
    /// The Clopper–Pearson lower bound on the unseen-dataset success rate.
    pub certified_rate: f64,
    /// Mean accelerator invocation rate over the datasets at this threshold.
    pub mean_invocation_rate: f64,
}

/// Searches for the optimal threshold over a set of dataset profiles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThresholdOptimizer {
    spec: QualitySpec,
    /// Bisection probes; 24 localizes the threshold to ~1e-7 of its range.
    iterations: u32,
    /// Worker threads for per-profile replay during certification
    /// (`Some(1)` = sequential, `None`/`Some(0)` = available parallelism).
    threads: Option<usize>,
}

impl ThresholdOptimizer {
    /// Creates an optimizer for the given specification.
    pub fn new(spec: QualitySpec) -> Self {
        Self {
            spec,
            iterations: 24,
            threads: Some(1),
        }
    }

    /// Replays each profile's certification probe on up to `threads`
    /// workers (`None`/`Some(0)` = available parallelism).
    ///
    /// Each profile replays independently; the success count and the
    /// invocation-rate sum are folded sequentially in profile order from
    /// the per-profile results, so every outcome is bit-identical at any
    /// thread count.
    pub fn with_threads(mut self, threads: Option<usize>) -> Self {
        self.threads = threads;
        self
    }

    /// The specification being optimized for.
    pub fn spec(&self) -> &QualitySpec {
        &self.spec
    }

    /// Certification probe: successes and the Clopper–Pearson bound at one
    /// candidate threshold.
    pub fn certify(
        &self,
        function: &AcceleratedFunction,
        profiles: &[DatasetProfile],
        threshold: f32,
    ) -> Result<(u64, f64, f64)> {
        // Replays are independent per profile; the floating-point
        // invocation-rate sum below folds their results in profile order.
        let replays = par_map_indexed(profiles.len(), self.threads, |i| {
            profiles[i].replay_with_threshold(function, threshold)
        });
        let mut successes = 0u64;
        let mut invocation_rates = 0.0f64;
        for replay in replays {
            if replay.quality_loss <= self.spec.max_quality_loss {
                successes += 1;
            }
            invocation_rates += replay.invocation_rate();
        }
        let bound = lower_bound(successes, profiles.len() as u64, self.spec.confidence)?;
        Ok((successes, bound, invocation_rates / profiles.len() as f64))
    }

    /// Finds the loosest certifiable threshold by bisection.
    ///
    /// # Errors
    ///
    /// Returns [`MithraError::InsufficientData`] with no profiles, and
    /// [`MithraError::Uncertifiable`] if even threshold 0 (all-precise)
    /// cannot be certified — i.e. the dataset count is too small for the
    /// requested confidence/success rate.
    pub fn optimize(
        &self,
        function: &AcceleratedFunction,
        profiles: &[DatasetProfile],
    ) -> Result<ThresholdOutcome> {
        if profiles.is_empty() {
            return Err(MithraError::InsufficientData {
                stage: "threshold optimization",
                available: 0,
                needed: 1,
            });
        }

        // Upper end of the search range: the largest observed error.
        let max_err = profiles
            .iter()
            .flat_map(|p| p.errors().iter().copied())
            .fold(0.0f32, f32::max)
            .max(1e-6);

        // Threshold 0 filters every erroneous invocation: quality loss 0.
        let (s0, bound0, _) = self.certify(function, profiles, 0.0)?;
        if bound0 < self.spec.success_rate {
            return Err(MithraError::Uncertifiable {
                quality_target: self.spec.max_quality_loss,
                required_rate: self.spec.success_rate,
                best_rate: bound0,
            });
        }
        let _ = s0;

        // If even the loosest threshold certifies, take it.
        let (s_hi, bound_hi, inv_hi) = self.certify(function, profiles, max_err)?;
        if bound_hi >= self.spec.success_rate {
            return Ok(ThresholdOutcome {
                threshold: max_err,
                successes: s_hi,
                trials: profiles.len() as u64,
                certified_rate: bound_hi,
                mean_invocation_rate: inv_hi,
            });
        }

        // Bisection: lo certifies, hi does not.
        let (mut lo, mut hi) = (0.0f32, max_err);
        let mut best = (0.0f32, 0u64, bound0, 0.0f64);
        for _ in 0..self.iterations {
            let mid = 0.5 * (lo + hi);
            let (s, bound, inv) = self.certify(function, profiles, mid)?;
            if bound >= self.spec.success_rate {
                best = (mid, s, bound, inv);
                lo = mid;
            } else {
                hi = mid;
            }
        }

        // `best` may still be the all-precise origin if nothing in between
        // certified; recompute its invocation rate for reporting.
        let (threshold, successes, certified_rate, mean_invocation_rate) = if best.0 == 0.0 {
            let (s, b, inv) = self.certify(function, profiles, 0.0)?;
            (0.0, s, b, inv)
        } else {
            best
        };

        Ok(ThresholdOutcome {
            threshold,
            successes,
            trials: profiles.len() as u64,
            certified_rate,
            mean_invocation_rate,
        })
    }

    /// The paper's literal Algorithm 1: delta-stepping from an initial
    /// threshold, loosening while certification holds and tightening while
    /// it fails, terminating at the boundary crossing.
    ///
    /// Provided for fidelity and cross-validation against [`optimize`];
    /// bisection reaches the same boundary in fewer probes.
    ///
    /// [`optimize`]: Self::optimize
    ///
    /// # Errors
    ///
    /// Same as [`optimize`](Self::optimize).
    pub fn optimize_stepping(
        &self,
        function: &AcceleratedFunction,
        profiles: &[DatasetProfile],
        initial: f32,
        delta: f32,
        max_steps: u32,
    ) -> Result<ThresholdOutcome> {
        if profiles.is_empty() {
            return Err(MithraError::InsufficientData {
                stage: "threshold optimization",
                available: 0,
                needed: 1,
            });
        }
        let mut th = initial.max(0.0);
        let mut last_pass: Option<(f32, u64, f64, f64)> = None;
        for _ in 0..max_steps {
            let (s, bound, inv) = self.certify(function, profiles, th)?;
            let pass = bound >= self.spec.success_rate;
            if pass {
                last_pass = Some((th, s, bound, inv));
                // Success: loosen the knob (step 5: increase threshold).
                th += delta;
            } else {
                // Failure right after a pass: the boundary is crossed
                // (step 6 terminates).
                if last_pass.is_some() {
                    break;
                }
                // Failure: tighten the knob (step 5: decrease threshold).
                th -= delta;
                if th < 0.0 {
                    th = 0.0;
                }
            }
        }
        match last_pass {
            Some((threshold, successes, certified_rate, mean_invocation_rate)) => {
                Ok(ThresholdOutcome {
                    threshold,
                    successes,
                    trials: profiles.len() as u64,
                    certified_rate,
                    mean_invocation_rate,
                })
            }
            None => {
                let (s, bound, inv) = self.certify(function, profiles, 0.0)?;
                if bound >= self.spec.success_rate {
                    Ok(ThresholdOutcome {
                        threshold: 0.0,
                        successes: s,
                        trials: profiles.len() as u64,
                        certified_rate: bound,
                        mean_invocation_rate: inv,
                    })
                } else {
                    Err(MithraError::Uncertifiable {
                        quality_target: self.spec.max_quality_loss,
                        required_rate: self.spec.success_rate,
                        best_rate: bound,
                    })
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::NpuTrainConfig;
    use mithra_axbench::benchmark::Benchmark;
    use mithra_axbench::dataset::{Dataset, DatasetScale};
    use mithra_axbench::suite;
    use std::sync::Arc;

    fn setup(name: &str, n_profiles: u64) -> (AcceleratedFunction, Vec<DatasetProfile>) {
        let bench: Arc<dyn Benchmark> = suite::by_name(name).unwrap().into();
        let train: Vec<Dataset> = (0..2)
            .map(|s| bench.dataset(s, DatasetScale::Smoke))
            .collect();
        let f = AcceleratedFunction::train(
            bench,
            &train,
            &NpuTrainConfig {
                epochs: Some(25),
                max_samples: 1500,
                seed: 7,
            },
        )
        .unwrap();
        let profiles: Vec<DatasetProfile> = (100..100 + n_profiles)
            .map(|s| DatasetProfile::collect(&f, f.dataset(s, DatasetScale::Smoke)))
            .collect();
        (f, profiles)
    }

    #[test]
    fn spec_validation() {
        assert!(QualitySpec::new(0.05, 0.95, 0.9).is_ok());
        assert!(QualitySpec::new(0.0, 0.95, 0.9).is_err());
        assert!(QualitySpec::new(0.05, 1.0, 0.9).is_err());
        assert!(QualitySpec::new(0.05, 0.95, 1.5).is_err());
        let spec = QualitySpec::paper_default(0.05).unwrap();
        assert_eq!(spec.max_quality_loss, 0.05);
    }

    #[test]
    fn optimizer_certifies_loose_targets() {
        // With a generous quality target and modest success rate the
        // optimizer must find a positive threshold.
        let (f, profiles) = setup("sobel", 30);
        let spec = QualitySpec::new(0.30, 0.9, 0.5).unwrap();
        let outcome = ThresholdOptimizer::new(spec)
            .optimize(&f, &profiles)
            .unwrap();
        assert!(outcome.threshold > 0.0);
        assert!(outcome.certified_rate >= 0.5);
        assert!(outcome.mean_invocation_rate > 0.0);
        assert_eq!(outcome.trials, 30);
    }

    #[test]
    fn stricter_targets_give_tighter_thresholds() {
        let (f, profiles) = setup("sobel", 30);
        let loose = ThresholdOptimizer::new(QualitySpec::new(0.30, 0.9, 0.5).unwrap())
            .optimize(&f, &profiles)
            .unwrap();
        let tight = ThresholdOptimizer::new(QualitySpec::new(0.02, 0.9, 0.5).unwrap())
            .optimize(&f, &profiles)
            .unwrap();
        assert!(tight.threshold <= loose.threshold);
        assert!(tight.mean_invocation_rate <= loose.mean_invocation_rate + 1e-9);
    }

    #[test]
    fn impossible_success_rate_errors() {
        // 5 datasets cannot certify 99% at 95% confidence.
        let (f, profiles) = setup("sobel", 5);
        let spec = QualitySpec::new(0.05, 0.95, 0.99).unwrap();
        let err = ThresholdOptimizer::new(spec)
            .optimize(&f, &profiles)
            .unwrap_err();
        assert!(matches!(err, MithraError::Uncertifiable { .. }));
    }

    #[test]
    fn empty_profiles_error() {
        let (f, _) = setup("sobel", 1);
        let spec = QualitySpec::paper_default(0.05).unwrap();
        assert!(matches!(
            ThresholdOptimizer::new(spec).optimize(&f, &[]),
            Err(MithraError::InsufficientData { .. })
        ));
    }

    #[test]
    fn stepping_agrees_with_bisection() {
        let (f, profiles) = setup("sobel", 20);
        let spec = QualitySpec::new(0.20, 0.9, 0.5).unwrap();
        let opt = ThresholdOptimizer::new(spec);
        let bisect = opt.optimize(&f, &profiles).unwrap();
        let stepped = opt
            .optimize_stepping(&f, &profiles, 0.05, 0.01, 200)
            .unwrap();
        // Same boundary to within the step size.
        assert!(
            (bisect.threshold - stepped.threshold).abs() <= 0.011,
            "bisect {} vs stepped {}",
            bisect.threshold,
            stepped.threshold
        );
    }

    #[test]
    fn certified_rate_is_conservative() {
        let (f, profiles) = setup("inversek2j", 25);
        let spec = QualitySpec::new(0.25, 0.9, 0.5).unwrap();
        let outcome = ThresholdOptimizer::new(spec)
            .optimize(&f, &profiles)
            .unwrap();
        // The certified (lower-bound) rate never exceeds the empirical one.
        let empirical = outcome.successes as f64 / outcome.trials as f64;
        assert!(outcome.certified_rate <= empirical + 1e-12);
    }
}
