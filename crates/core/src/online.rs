//! Online training for the neural design (paper §IV-C2).
//!
//! "An alternative design could train the neural design concurrently with
//! in-vivo operation. Online training could improve accuracy but would
//! result in runtime overheads. To mitigate these overheads, an online
//! training system could offload neural training to a remote server on
//! the cloud."
//!
//! [`OnlineNeuralClassifier`] implements that alternative: runtime error
//! samples (the same sporadic sampling that drives the table design's
//! updates) accumulate in a buffer; every `refresh_period` observations
//! the buffered window — together with a retained fraction of the original
//! compile-time tuples — retrains the network "remotely". Decisions keep
//! flowing from the current network while training happens off the
//! critical path; only the configuration upload (a config-FIFO stream) is
//! charged locally.

use crate::classifier::{Classifier, ClassifierOverhead, Decision};
use crate::neural::{NeuralClassifier, NeuralTrainConfig};
use crate::training::TrainingExample;
use crate::Result;

/// The neural classifier with cloud-offloaded online retraining.
#[derive(Debug, Clone)]
pub struct OnlineNeuralClassifier {
    current: NeuralClassifier,
    train_config: NeuralTrainConfig,
    input_dim: usize,
    /// Compile-time tuples retained as the stable part of every retrain.
    baseline: Vec<TrainingExample>,
    /// Runtime observations since the last refresh.
    buffer: Vec<TrainingExample>,
    refresh_period: usize,
    refreshes: usize,
}

impl OnlineNeuralClassifier {
    /// Wraps an offline-trained classifier with online retraining.
    ///
    /// `baseline` is (a sample of) the compile-time training data;
    /// `refresh_period` is how many runtime observations trigger a
    /// retrain.
    pub fn new(
        initial: NeuralClassifier,
        baseline: Vec<TrainingExample>,
        input_dim: usize,
        train_config: NeuralTrainConfig,
        refresh_period: usize,
    ) -> Self {
        Self {
            current: initial,
            train_config,
            input_dim,
            baseline,
            buffer: Vec::new(),
            refresh_period: refresh_period.max(1),
            refreshes: 0,
        }
    }

    /// Trains the initial network and wraps it, in one step.
    ///
    /// # Errors
    ///
    /// Propagates training failures.
    pub fn train(
        input_dim: usize,
        examples: &[TrainingExample],
        config: &NeuralTrainConfig,
        refresh_period: usize,
    ) -> Result<Self> {
        let initial = NeuralClassifier::train(input_dim, examples, config)?;
        Ok(Self::new(
            initial,
            examples.to_vec(),
            input_dim,
            config.clone(),
            refresh_period,
        ))
    }

    /// Number of completed retrains.
    pub fn refresh_count(&self) -> usize {
        self.refreshes
    }

    /// Observations waiting for the next retrain.
    pub fn pending_observations(&self) -> usize {
        self.buffer.len()
    }

    /// The currently deployed network.
    pub fn current(&self) -> &NeuralClassifier {
        &self.current
    }

    fn maybe_refresh(&mut self) {
        if self.buffer.len() < self.refresh_period {
            return;
        }
        // The "remote server" trains on baseline + the fresh window.
        let mut combined = self.baseline.clone();
        combined.extend(self.buffer.iter().cloned());
        let mut config = self.train_config.clone();
        // Vary the seed per refresh so retrains explore; keep determinism.
        config.seed ^= (self.refreshes as u64 + 1).wrapping_mul(0x9E37_79B9);
        if let Ok(next) = NeuralClassifier::train(self.input_dim, &combined, &config) {
            self.current = next;
            self.refreshes += 1;
        }
        // Fold the window into the baseline (bounded) and clear it.
        let keep = self.refresh_period * 4;
        self.baseline.append(&mut self.buffer);
        if self.baseline.len() > keep.max(1000) {
            let excess = self.baseline.len() - keep.max(1000);
            self.baseline.drain(..excess);
        }
    }
}

impl Classifier for OnlineNeuralClassifier {
    fn name(&self) -> &'static str {
        "neural-online"
    }

    fn classify(&mut self, index: usize, input: &[f32]) -> Decision {
        self.current.classify(index, input)
    }

    fn overhead(&self) -> ClassifierOverhead {
        // Decisions cost the same as the offline neural design; training
        // is remote. (Config re-upload cost is charged by the simulator's
        // table-decompression path analogue and is negligible per quantum.)
        self.current.overhead()
    }

    fn observe(&mut self, _index: usize, input: &[f32], reject: bool) {
        self.buffer.push(TrainingExample {
            input: input.to_vec(),
            reject,
        });
        self.maybe_refresh();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn boundary_examples(split: f32, n: usize) -> Vec<TrainingExample> {
        (0..n)
            .map(|i| {
                let x = i as f32 / (n - 1) as f32;
                TrainingExample {
                    input: vec![x, 1.0 - x],
                    reject: x > split,
                }
            })
            .collect()
    }

    fn quick_config() -> NeuralTrainConfig {
        NeuralTrainConfig {
            hidden_candidates: vec![4],
            epochs: 120,
            ..NeuralTrainConfig::default()
        }
    }

    #[test]
    fn starts_with_offline_behaviour() {
        let ex = boundary_examples(0.7, 200);
        let mut online = OnlineNeuralClassifier::train(2, &ex, &quick_config(), 50).unwrap();
        assert_eq!(online.refresh_count(), 0);
        assert_eq!(online.classify(0, &[0.95, 0.05]), Decision::Precise);
        assert_eq!(online.classify(1, &[0.1, 0.9]), Decision::Approximate);
    }

    #[test]
    fn refresh_fires_after_period() {
        let ex = boundary_examples(0.7, 200);
        let mut online = OnlineNeuralClassifier::train(2, &ex, &quick_config(), 30).unwrap();
        for i in 0..30 {
            let x = i as f32 / 29.0;
            online.observe(i, &[x, 1.0 - x], x > 0.7);
        }
        assert_eq!(online.refresh_count(), 1);
        assert_eq!(online.pending_observations(), 0);
    }

    #[test]
    fn adapts_to_a_drifted_boundary() {
        // Train at split 0.7, then stream observations from a drifted
        // regime where errors start at 0.4. After enough refreshes the
        // classifier should reject at 0.55 (clearly accept-side before).
        let ex = boundary_examples(0.7, 300);
        let mut online = OnlineNeuralClassifier::train(2, &ex, &quick_config(), 150).unwrap();
        assert_eq!(online.classify(0, &[0.55, 0.45]), Decision::Approximate);

        let mut i = 0;
        while online.refresh_count() < 3 {
            let x = (i % 100) as f32 / 99.0;
            online.observe(i, &[x, 1.0 - x], x > 0.4);
            i += 1;
            assert!(i < 10_000, "refresh never fired");
        }
        assert_eq!(
            online.classify(0, &[0.55, 0.45]),
            Decision::Precise,
            "classifier failed to adapt to the drifted boundary"
        );
    }

    #[test]
    fn overhead_matches_deployed_network() {
        let ex = boundary_examples(0.5, 100);
        let online = OnlineNeuralClassifier::train(2, &ex, &quick_config(), 10).unwrap();
        assert_eq!(online.overhead(), online.current().overhead());
    }
}
