//! The table-based classifier (paper §IV-A).
//!
//! An ensemble of equally sized single-bit tables, each indexed by a
//! different MISR hash of the quantized accelerator inputs. Entries start
//! at `0` ("invoke the accelerator"); training sets an entry to `1` when
//! any training input hashing there exceeded the error threshold — the
//! conservative policy that biases toward quality. At runtime the ensemble
//! ORs the per-table bits: any table saying "precise" wins. The compiler
//! assigns MISR configurations greedily from the fixed pool of 16,
//! minimizing the ensemble's false decisions on the training data. Trained
//! tables ship in the binary compressed with Base-Delta-Immediate.

use crate::classifier::{Classifier, ClassifierOverhead, Decision};
use crate::misr::{InputQuantizer, Misr, MisrConfig, QuantizedGrid};
use crate::parallel::par_map_indexed;
use crate::training::TrainingExample;
use crate::{MithraError, Result};
use mithra_bdi::CompressedTable;
use mithra_npu::fault::FaultSite;
use serde::{Deserialize, Serialize};

/// Geometry of a table design point: `aT × bKB` in the paper's notation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TableDesign {
    /// Number of parallel tables.
    pub tables: usize,
    /// Entries (bits) per table; must be a power of two.
    pub entries_per_table: usize,
}

impl TableDesign {
    /// The paper's Pareto-optimal default: 8 tables × 0.5 KB.
    pub fn paper_default() -> Self {
        Self {
            tables: 8,
            entries_per_table: 4096, // 0.5 KB of single-bit entries
        }
    }

    /// The Pareto-analysis grid of Figure 11: {1,2,4,8} tables ×
    /// {0.125, 0.5, 2, 4} KB.
    pub fn pareto_grid() -> Vec<TableDesign> {
        let mut grid = Vec::new();
        for &tables in &[1usize, 2, 4, 8] {
            for &kb in &[0.125f64, 0.5, 2.0, 4.0] {
                grid.push(TableDesign {
                    tables,
                    entries_per_table: (kb * 8.0 * 1024.0) as usize,
                });
            }
        }
        grid
    }

    /// Size of one table in kilobytes (single-bit entries).
    pub fn table_kb(&self) -> f64 {
        self.entries_per_table as f64 / 8.0 / 1024.0
    }

    /// Total uncompressed size in kilobytes.
    pub fn total_kb(&self) -> f64 {
        self.table_kb() * self.tables as f64
    }

    /// Index width in bits (`log2` of entries).
    pub fn index_width(&self) -> u32 {
        self.entries_per_table.trailing_zeros()
    }

    fn validate(&self) -> Result<()> {
        if self.tables == 0 || self.tables > 16 {
            return Err(MithraError::InvalidConfig {
                parameter: "tables",
                constraint: "1..=16 (the MISR configuration pool size)",
            });
        }
        if !self.entries_per_table.is_power_of_two() || self.entries_per_table < 256 {
            return Err(MithraError::InvalidConfig {
                parameter: "entries_per_table",
                constraint: "a power of two >= 256",
            });
        }
        Ok(())
    }
}

impl std::fmt::Display for TableDesign {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}T x {}KB", self.tables, self.table_kb())
    }
}

/// A single-bit direct-mapped table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub(crate) struct BitTable {
    bits: Vec<u64>,
    entries: usize,
}

impl BitTable {
    fn new(entries: usize) -> Self {
        Self {
            bits: vec![0; entries.div_ceil(64)],
            entries,
        }
    }

    fn get(&self, idx: usize) -> bool {
        (self.bits[idx / 64] >> (idx % 64)) & 1 == 1
    }

    fn set(&mut self, idx: usize) {
        self.bits[idx / 64] |= 1 << (idx % 64);
    }

    fn ones(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Inverts one entry — an SRAM upset in the table array. A flipped `1`
    /// loses a learned reject (aliasing toward the accelerator); a flipped
    /// `0` falsely rejects a bucket.
    fn flip(&mut self, idx: usize) {
        self.bits[idx / 64] ^= 1 << (idx % 64);
    }

    /// Byte representation for compression (entry `i` is bit `i%8` of
    /// byte `i/8`, matching a hardware row layout).
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.entries / 8);
        for i in 0..self.entries.div_ceil(8) {
            let mut b = 0u8;
            for bit in 0..8 {
                let idx = i * 8 + bit;
                if idx < self.entries && self.get(idx) {
                    b |= 1 << bit;
                }
            }
            out.push(b);
        }
        out
    }
}

/// The trained multi-table classifier.
///
/// Construct with [`TableClassifier::train`]; at runtime it implements
/// [`Classifier`]. The online-update path ([`Classifier::observe`]) applies
/// the same conservative rule as pre-training.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableClassifier {
    design: TableDesign,
    configs: Vec<MisrConfig>,
    tables: Vec<BitTable>,
    quantizer: InputQuantizer,
    vote_threshold: f64,
    #[serde(skip)]
    scratch: Vec<u8>,
}

impl TableClassifier {
    /// Trains the ensemble, searching the MISR input-quantization
    /// granularity per application.
    ///
    /// The paper's MISR is "reconfigurable to work across different
    /// applications", with the configuration "decided at compile time for
    /// each application". Granularity is the reconfiguration that matters
    /// for generalization: too fine and unseen inputs never revisit
    /// trained buckets (every reject-aliased bucket then falsely fires
    /// through the ensemble's OR); too coarse and accept/reject inputs
    /// share patterns. The compiler holds out 25% of the training tuples,
    /// trains an ensemble at each candidate granularity, and keeps the one
    /// with the fewest held-out false decisions (false negatives weighted
    /// heavier — quality first).
    ///
    /// # Errors
    ///
    /// Returns [`MithraError::InvalidConfig`] for a bad geometry and
    /// [`MithraError::InsufficientData`] if no examples are given.
    pub fn train(
        design: TableDesign,
        quantizer: InputQuantizer,
        examples: &[TrainingExample],
    ) -> Result<Self> {
        Self::train_with_threads(design, quantizer, examples, Some(1))
    }

    /// [`TableClassifier::train`] with the `(levels, vote)` candidate grid
    /// scored across up to `threads` workers (`None`/`Some(0)` = available
    /// parallelism).
    ///
    /// Every candidate is built from pre-computed hashes shared read-only
    /// across workers, and the winner is selected by folding scores in the
    /// original candidate order — so the trained classifier is
    /// bit-identical at any thread count.
    ///
    /// # Errors
    ///
    /// Same as [`TableClassifier::train`].
    pub fn train_with_threads(
        design: TableDesign,
        quantizer: InputQuantizer,
        examples: &[TrainingExample],
        threads: Option<usize>,
    ) -> Result<Self> {
        const CANDIDATE_LEVELS: [u16; 5] = [2, 4, 8, 16, 32];
        const CANDIDATE_VOTES: [f64; 3] = [0.0, 0.15, 0.35];
        if examples.len() < 8 {
            // Too little data to hold anything out; train directly.
            return Self::train_with_policy(design, quantizer, 0.0, examples);
        }
        design.validate()?;
        let holdout = examples.len() / 4;
        let fit_len = examples.len() - holdout;
        let (_, eval) = examples.split_at(fit_len);

        // Quality is a constraint, not a linear tradeoff: a candidate is
        // feasible when its held-out false-negative rate stays within a
        // small fraction of the reject rate (missed rejects directly
        // breach the certified threshold). Among feasible candidates the
        // cheapest false-positive rate wins; if none is feasible the
        // design degrades conservatively — fewest missed rejects first —
        // which is exactly the paper's jmeint behaviour ("it
        // conservatively falls back to the original precise code").
        let eval_rejects = eval.iter().filter(|e| e.reject).count();
        let rejects: Vec<bool> = examples.iter().map(|e| e.reject).collect();

        let width = design.index_width();
        let pool = MisrConfig::pool();

        // Hashes depend only on the granularity, never on the vote
        // threshold, so one quantizer, one quantized grid and one set of
        // 16 pool-configuration hash rows serve every vote candidate at
        // that granularity — and the final full-set retrain. The grid
        // covers the *full* example set; candidates train on the fit
        // prefix and score on the eval suffix of the same rows.
        let grids: Vec<(InputQuantizer, Vec<Vec<usize>>)> =
            par_map_indexed(CANDIDATE_LEVELS.len(), threads, |li| {
                let q = quantizer.clone().with_levels(CANDIDATE_LEVELS[li]);
                let grid = QuantizedGrid::from_inputs(&q, examples.iter().map(|e| &e.input[..]));
                let hashes = pool.iter().map(|&cfg| grid.hash_all(cfg, width)).collect();
                (q, hashes)
            });

        // Score every candidate once, each on its own worker; the scored
        // vector keeps levels-major candidate order regardless of which
        // worker finished first.
        let scored: Vec<(usize, usize, u16, f64)> = par_map_indexed(
            CANDIDATE_LEVELS.len() * CANDIDATE_VOTES.len(),
            threads,
            |k| {
                let (li, vi) = (k / CANDIDATE_VOTES.len(), k % CANDIDATE_VOTES.len());
                let vote = CANDIDATE_VOTES[vi];
                let hashes = &grids[li].1;
                let ensemble = Ensemble::build(design, vote, &rejects[..fit_len], hashes);
                let (mut fp, mut fn_) = (0usize, 0usize);
                for (j, ex) in eval.iter().enumerate() {
                    let rejected = ensemble.rejects_row(hashes, fit_len + j);
                    match (rejected, ex.reject) {
                        (true, false) => fp += 1,
                        (false, true) => fn_ += 1,
                        _ => {}
                    }
                }
                (fn_, fp, CANDIDATE_LEVELS[li], vote)
            },
        );
        // Tiered selection: prefer candidates whose missed-reject rate
        // stays within an increasingly lax fraction of the reject
        // population; within a tier, fewest false positives wins. If no
        // tier admits anyone, degrade to fewest misses — the design then
        // "conservatively falls back to the original precise code".
        let pick = |cap: f64| -> Option<(u16, f64)> {
            scored
                .iter()
                .filter(|(fn_, _, _, _)| {
                    (*fn_ as f64) <= (eval_rejects as f64 * cap).max(eval.len() as f64 * 0.02)
                })
                .min_by(|a, b| (a.1, a.0).cmp(&(b.1, b.0)))
                .map(|&(_, _, l, v)| (l, v))
        };
        let (levels, vote) = pick(0.25).or_else(|| pick(0.5)).unwrap_or_else(|| {
            let &(_, _, l, v) = scored
                .iter()
                .min_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)))
                .expect("the candidate grid is non-empty");
            (l, v)
        });
        // Retrain the winning policy on the full example set, reusing the
        // winner's cached quantizer and full-set hash rows.
        let li = CANDIDATE_LEVELS
            .iter()
            .position(|&l| l == levels)
            .expect("the winner came from the candidate grid");
        let (winner_quantizer, hashes) = &grids[li];
        let ensemble = Ensemble::build(design, vote, &rejects, hashes);
        Ok(ensemble.into_classifier(design, winner_quantizer.clone(), vote, &pool))
    }

    /// Trains the ensemble with the paper's conservative rule at a fixed
    /// quantizer granularity (any reject in a bucket sets its bit).
    ///
    /// # Errors
    ///
    /// Same as [`train`](Self::train).
    pub fn train_with_quantizer(
        design: TableDesign,
        quantizer: InputQuantizer,
        examples: &[TrainingExample],
    ) -> Result<Self> {
        Self::train_with_policy(design, quantizer, 0.0, examples)
    }

    /// Trains the ensemble at a fixed quantizer granularity and bucket
    /// vote threshold.
    ///
    /// `vote_threshold = 0` is the paper's conservative rule: a single
    /// rejected training input sets its bucket's bit. Positive thresholds
    /// require that fraction of a bucket's training inputs to be rejects —
    /// an adaptation needed when continuous synthetic inputs make buckets
    /// impure (the conservative rule then rejects nearly everything
    /// through the ensemble OR). The compile-time search in
    /// [`train`](Self::train) picks the value per application.
    ///
    /// The compiler's greedy assignment (paper §IV-A2): the first table
    /// takes the pool configuration with the fewest false decisions on its
    /// own; each subsequent table takes the unused configuration that
    /// minimizes the *ensemble's* false decisions so far.
    ///
    /// # Errors
    ///
    /// Returns [`MithraError::InvalidConfig`] for a bad geometry or
    /// out-of-range `vote_threshold`, and
    /// [`MithraError::InsufficientData`] if no examples are given.
    pub fn train_with_policy(
        design: TableDesign,
        quantizer: InputQuantizer,
        vote_threshold: f64,
        examples: &[TrainingExample],
    ) -> Result<Self> {
        design.validate()?;
        if !(0.0..=1.0).contains(&vote_threshold) {
            return Err(MithraError::InvalidConfig {
                parameter: "vote_threshold",
                constraint: "0.0..=1.0",
            });
        }
        if examples.is_empty() {
            return Err(MithraError::InsufficientData {
                stage: "table classifier training",
                available: 0,
                needed: 1,
            });
        }

        let width = design.index_width();
        // Quantize every example once, then batch-hash the grid under
        // every pool configuration.
        let pool = MisrConfig::pool();
        let grid = QuantizedGrid::from_inputs(&quantizer, examples.iter().map(|e| &e.input[..]));
        let hashes: Vec<Vec<usize>> = pool.iter().map(|&cfg| grid.hash_all(cfg, width)).collect();
        let rejects: Vec<bool> = examples.iter().map(|e| e.reject).collect();
        let ensemble = Ensemble::build(design, vote_threshold, &rejects, &hashes);
        Ok(ensemble.into_classifier(design, quantizer, vote_threshold, &pool))
    }

    /// The geometry of this classifier.
    pub fn design(&self) -> TableDesign {
        self.design
    }

    /// The MISR configurations assigned to the tables, in table order.
    pub fn configs(&self) -> &[MisrConfig] {
        &self.configs
    }

    /// The input quantizer (including the granularity the compile-time
    /// search selected).
    pub fn quantizer(&self) -> &InputQuantizer {
        &self.quantizer
    }

    /// The bucket-vote threshold the compile-time search selected
    /// (0 = the paper's conservative "any reject" rule).
    pub fn vote_threshold(&self) -> f64 {
        self.vote_threshold
    }

    /// Fraction of table entries set to `1` (reject), across the ensemble.
    pub fn fill_ratio(&self) -> f64 {
        let ones: usize = self.tables.iter().map(BitTable::ones).sum();
        ones as f64 / (self.design.tables * self.design.entries_per_table) as f64
    }

    /// Compresses the trained tables with Base-Delta-Immediate, as they
    /// would be encoded into the program binary (paper Table II).
    pub fn compress(&self) -> CompressedTable {
        let mut bytes = Vec::new();
        for t in &self.tables {
            bytes.extend_from_slice(&t.to_bytes());
        }
        CompressedTable::new(&bytes)
    }

    /// Reconfigures one table's MISR — the "control-register corruption"
    /// fault: the table still reads, but its hash no longer matches the
    /// one it was trained under, so learned rejects alias away and stale
    /// buckets fire. `table` is taken modulo the ensemble size;
    /// `taps_mask` is XORed into the feedback taps and `rotate_delta`
    /// added to both rotations (the input rotation too — for short input
    /// vectors the register never wraps, so taps and register rotation
    /// alone would leave the hash unchanged).
    pub fn corrupt_misr(&mut self, table: usize, taps_mask: u32, rotate_delta: u32) {
        let idx = table % self.configs.len();
        let cfg = &mut self.configs[idx];
        cfg.taps ^= taps_mask;
        cfg.rotate = cfg.rotate.wrapping_add(rotate_delta);
        cfg.input_rotate = cfg.input_rotate.wrapping_add(rotate_delta);
    }

    /// The decision for a raw input vector without mutating online state —
    /// used by trainers evaluating candidate designs.
    pub fn decide(&mut self, input: &[f32]) -> Decision {
        let width = self.design.index_width();
        let mut qbuf = std::mem::take(&mut self.scratch);
        self.quantizer.quantize_into(input, &mut qbuf);
        let mut reject = false;
        for (cfg, table) in self.configs.iter().zip(&self.tables) {
            if table.get(Misr::hash(*cfg, width, &qbuf)) {
                reject = true;
                break;
            }
        }
        self.scratch = qbuf;
        Decision::from_reject(reject)
    }
}

/// One greedy ensemble build — the chosen pool indices (in table order)
/// and their trained tables, before binding to a quantizer. Built purely
/// from pre-computed hash rows so candidate sweeps never re-quantize or
/// re-hash.
#[derive(Debug)]
struct Ensemble {
    chosen: Vec<usize>,
    tables: Vec<BitTable>,
}

impl Ensemble {
    /// Builds each pool configuration's trained table and greedily selects
    /// the ensemble, exactly as the paper's compiler does (§IV-A2).
    ///
    /// `rejects` may cover only a *prefix* of the hash rows: candidates
    /// train on the fit prefix of full-set rows and are later scored
    /// against the eval suffix via [`Ensemble::rejects_row`].
    fn build(
        design: TableDesign,
        vote_threshold: f64,
        rejects: &[bool],
        hashes: &[Vec<usize>],
    ) -> Self {
        let n = rejects.len();
        // Build each pool configuration's trained table once: a bucket's
        // bit is set when its reject share passes the vote threshold
        // (threshold 0 = the paper's "any reject" rule).
        let candidate_tables: Vec<BitTable> = hashes
            .iter()
            .map(|per_cfg| {
                let mut reject_counts = vec![0u32; design.entries_per_table];
                let mut totals = vec![0u32; design.entries_per_table];
                for (i, &h) in per_cfg[..n].iter().enumerate() {
                    totals[h] += 1;
                    if rejects[i] {
                        reject_counts[h] += 1;
                    }
                }
                let mut t = BitTable::new(design.entries_per_table);
                for (idx, (&r, &tot)) in reject_counts.iter().zip(&totals).enumerate() {
                    if r > 0 && f64::from(r) >= vote_threshold * f64::from(tot) {
                        t.set(idx);
                    }
                }
                t
            })
            .collect();

        // Greedy selection: minimize ensemble false decisions.
        let mut chosen: Vec<usize> = Vec::with_capacity(design.tables);
        let mut ensemble_says_reject = vec![false; n];
        for _slot in 0..design.tables {
            let mut best: Option<(usize, usize)> = None; // (cfg index, false count)
            for (c, per_cfg) in hashes.iter().enumerate() {
                if chosen.contains(&c) {
                    continue;
                }
                let mut false_decisions = 0usize;
                for (i, &r) in rejects.iter().enumerate() {
                    let reject = ensemble_says_reject[i] || candidate_tables[c].get(per_cfg[i]);
                    if reject != r {
                        false_decisions += 1;
                    }
                }
                if best.is_none_or(|(_, f)| false_decisions < f) {
                    best = Some((c, false_decisions));
                }
            }
            let (c, _) = best.expect("pool is larger than any valid design");
            for (i, r) in ensemble_says_reject.iter_mut().enumerate() {
                *r = *r || candidate_tables[c].get(hashes[c][i]);
            }
            chosen.push(c);
        }

        let tables = chosen
            .iter()
            .map(|&c| candidate_tables[c].clone())
            .collect();
        Self { chosen, tables }
    }

    /// Whether the ensemble rejects hash row `i` — the OR of the chosen
    /// tables' bits, identical to [`TableClassifier::decide`] on the input
    /// that produced the row.
    fn rejects_row(&self, hashes: &[Vec<usize>], i: usize) -> bool {
        self.chosen
            .iter()
            .zip(&self.tables)
            .any(|(&c, t)| t.get(hashes[c][i]))
    }

    fn into_classifier(
        self,
        design: TableDesign,
        quantizer: InputQuantizer,
        vote_threshold: f64,
        pool: &[MisrConfig; 16],
    ) -> TableClassifier {
        TableClassifier {
            design,
            configs: self.chosen.iter().map(|&c| pool[c]).collect(),
            tables: self.tables,
            quantizer,
            vote_threshold,
            scratch: Vec::new(),
        }
    }
}

impl FaultSite for TableClassifier {
    /// Bits are the table entries, enumerated table-major: bit
    /// `t * entries_per_table + e` is entry `e` of table `t`.
    fn fault_bits(&self) -> u64 {
        (self.design.tables * self.design.entries_per_table) as u64
    }

    fn flip_bit(&mut self, index: u64) {
        let entries = self.design.entries_per_table as u64;
        let table = (index / entries) as usize;
        let entry = (index % entries) as usize;
        self.tables[table].flip(entry);
    }
}

impl Classifier for TableClassifier {
    fn name(&self) -> &'static str {
        "table"
    }

    fn classify(&mut self, _index: usize, input: &[f32]) -> Decision {
        self.decide(input)
    }

    fn overhead(&self) -> ClassifierOverhead {
        // Hashing overlaps with input enqueue; after the last element the
        // tri-state gates open, the tables are read in parallel and the OR
        // reduces them: a small fixed latency.
        ClassifierOverhead {
            decision_cycles: 4,
            misr_shifts: (self.design.tables * self.quantizer.dims()) as u64,
            table_bit_reads: self.design.tables as u64,
            npu_topology: None,
        }
    }

    fn observe(&mut self, _index: usize, input: &[f32], reject: bool) {
        if !reject {
            return; // entries only ever turn 1 (conservative policy)
        }
        let width = self.design.index_width();
        let mut qbuf = std::mem::take(&mut self.scratch);
        self.quantizer.quantize_into(input, &mut qbuf);
        for (cfg, table) in self.configs.iter().zip(self.tables.iter_mut()) {
            let idx = Misr::hash(*cfg, width, &qbuf);
            table.set(idx);
        }
        self.scratch = qbuf;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quantizer_1d() -> InputQuantizer {
        InputQuantizer::new(vec![0.0], vec![1.0])
    }

    fn examples_1d(rejects: &[f32], accepts: &[f32]) -> Vec<TrainingExample> {
        rejects
            .iter()
            .map(|&v| TrainingExample {
                input: vec![v],
                reject: true,
            })
            .chain(accepts.iter().map(|&v| TrainingExample {
                input: vec![v],
                reject: false,
            }))
            .collect()
    }

    #[test]
    fn trained_table_rejects_trained_inputs() {
        let ex = examples_1d(&[0.9, 0.95], &[0.1, 0.2, 0.3]);
        let mut c =
            TableClassifier::train(TableDesign::paper_default(), quantizer_1d(), &ex).unwrap();
        assert_eq!(c.decide(&[0.9]), Decision::Precise);
        assert_eq!(c.decide(&[0.95]), Decision::Precise);
        assert_eq!(c.decide(&[0.1]), Decision::Approximate);
    }

    #[test]
    fn untouched_inputs_default_to_accelerator() {
        let ex = examples_1d(&[0.9], &[0.1]);
        let mut c =
            TableClassifier::train(TableDesign::paper_default(), quantizer_1d(), &ex).unwrap();
        // 0.5 hashes to buckets no training example touched.
        assert_eq!(c.decide(&[0.5]), Decision::Approximate);
    }

    #[test]
    fn online_update_flips_future_decisions() {
        let ex = examples_1d(&[0.9], &[0.1]);
        let mut c =
            TableClassifier::train(TableDesign::paper_default(), quantizer_1d(), &ex).unwrap();
        assert_eq!(c.decide(&[0.5]), Decision::Approximate);
        c.observe(0, &[0.5], true);
        assert_eq!(c.decide(&[0.5]), Decision::Precise);
        // Observing a non-reject never clears a bit.
        c.observe(1, &[0.5], false);
        assert_eq!(c.decide(&[0.5]), Decision::Precise);
    }

    #[test]
    fn greedy_assignment_uses_distinct_configs() {
        let ex = examples_1d(&[0.8, 0.85, 0.9], &[0.1, 0.2, 0.3, 0.4]);
        let c = TableClassifier::train(TableDesign::paper_default(), quantizer_1d(), &ex).unwrap();
        let set: std::collections::HashSet<_> = c.configs().iter().collect();
        assert_eq!(set.len(), 8, "configs must be distinct pool entries");
    }

    #[test]
    fn fresh_tables_compress_16x() {
        let ex = examples_1d(&[], &[0.5]);
        let c = TableClassifier::train(TableDesign::paper_default(), quantizer_1d(), &ex).unwrap();
        let stats = c.compress().stats();
        assert!(stats.ratio() >= 16.0, "ratio {}", stats.ratio());
        assert_eq!(stats.uncompressed_bytes, 4096); // 8 tables x 0.5 KB
    }

    #[test]
    fn fill_ratio_tracks_rejects() {
        let ex = examples_1d(&[0.7, 0.8, 0.9], &[]);
        let c = TableClassifier::train(TableDesign::paper_default(), quantizer_1d(), &ex).unwrap();
        assert!(c.fill_ratio() > 0.0);
        assert!(c.fill_ratio() < 0.01);
    }

    #[test]
    fn aliasing_is_conservative() {
        // Train a tiny single table so aliasing is likely: when an accept
        // and a reject collide, the decision must be Precise.
        let design = TableDesign {
            tables: 1,
            entries_per_table: 256,
        };
        let rejects: Vec<f32> = (0..50).map(|i| i as f32 / 100.0).collect();
        let accepts: Vec<f32> = (50..100).map(|i| i as f32 / 100.0).collect();
        let ex = examples_1d(&rejects, &accepts);
        let mut c = TableClassifier::train(design, quantizer_1d(), &ex).unwrap();
        for &r in &rejects {
            assert_eq!(c.decide(&[r]), Decision::Precise, "input {r}");
        }
    }

    #[test]
    fn design_validation() {
        let q = quantizer_1d();
        let ex = examples_1d(&[0.9], &[0.1]);
        assert!(TableClassifier::train(
            TableDesign {
                tables: 0,
                entries_per_table: 4096
            },
            q.clone(),
            &ex
        )
        .is_err());
        assert!(TableClassifier::train(
            TableDesign {
                tables: 17,
                entries_per_table: 4096
            },
            q.clone(),
            &ex
        )
        .is_err());
        assert!(TableClassifier::train(
            TableDesign {
                tables: 4,
                entries_per_table: 1000
            },
            q.clone(),
            &ex
        )
        .is_err());
        assert!(TableClassifier::train(TableDesign::paper_default(), q, &[]).is_err());
    }

    #[test]
    fn pareto_grid_is_16_points_including_default() {
        let grid = TableDesign::pareto_grid();
        assert_eq!(grid.len(), 16);
        assert!(grid.contains(&TableDesign::paper_default()));
    }

    #[test]
    fn design_display_and_sizes() {
        let d = TableDesign::paper_default();
        assert_eq!(d.to_string(), "8T x 0.5KB");
        assert!((d.total_kb() - 4.0).abs() < 1e-12);
        assert_eq!(d.index_width(), 12);
    }

    #[test]
    fn fault_bits_cover_all_entries_and_flips_invert() {
        let ex = examples_1d(&[0.9], &[0.1]);
        let mut c =
            TableClassifier::train(TableDesign::paper_default(), quantizer_1d(), &ex).unwrap();
        assert_eq!(c.fault_bits(), 8 * 4096);
        let before = c.clone();
        // Flip an entry in the last table; decisions over a trained reject
        // may or may not change, but state must, and a second flip must
        // restore it bit-exactly.
        let bit = c.fault_bits() - 7;
        c.flip_bit(bit);
        assert_ne!(c, before);
        c.flip_bit(bit);
        assert_eq!(c, before);
    }

    #[test]
    fn flipped_zero_entry_falsely_rejects() {
        let ex = examples_1d(&[], &[0.1, 0.5, 0.9]);
        let mut c = TableClassifier::train(
            TableDesign {
                tables: 1,
                entries_per_table: 256,
            },
            quantizer_1d(),
            &ex,
        )
        .unwrap();
        assert_eq!(c.decide(&[0.5]), Decision::Approximate);
        // Corrupt the exact bucket 0.5 hashes to.
        let qbuf = c.quantizer().quantize(&[0.5]);
        let idx = Misr::hash(c.configs()[0], c.design().index_width(), &qbuf);
        c.flip_bit(idx as u64);
        assert_eq!(c.decide(&[0.5]), Decision::Precise);
    }

    #[test]
    fn corrupted_misr_aliases_learned_rejects() {
        let ex = examples_1d(&[0.9], &[0.1]);
        let mut c = TableClassifier::train(
            TableDesign {
                tables: 1,
                entries_per_table: 4096,
            },
            quantizer_1d(),
            &ex,
        )
        .unwrap();
        assert_eq!(c.decide(&[0.9]), Decision::Precise);
        let original = c.configs()[0];
        c.corrupt_misr(0, 0x155, 3);
        assert_ne!(c.configs()[0], original, "reconfiguration must stick");
        // The trained reject now hashes elsewhere; with a sparse table the
        // aliased bucket is almost surely clear.
        assert_eq!(c.decide(&[0.9]), Decision::Approximate);
    }

    #[test]
    fn overhead_shape() {
        let ex = examples_1d(&[0.9], &[0.1]);
        let c = TableClassifier::train(TableDesign::paper_default(), quantizer_1d(), &ex).unwrap();
        let o = c.overhead();
        assert_eq!(o.table_bit_reads, 8);
        assert_eq!(o.misr_shifts, 8); // 8 tables x 1 input dim
        assert!(o.npu_topology.is_none());
    }
}
