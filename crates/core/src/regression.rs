//! Error-regression filtering — the Rumba-style alternative (paper §VI).
//!
//! Rumba (concurrent work) predicts the accelerator's *error value* with a
//! regression model and rejects invocations whose predicted error exceeds
//! the threshold. The paper argues this is "significantly more demanding
//! and less reliable than MITHRA's binary classification solution": the
//! regressor must learn the whole error surface, while the classifier only
//! learns one level set of it. This module implements the regression
//! design so the claim can be measured (see the `ablation_designs`
//! experiment binary).

use crate::classifier::{Classifier, ClassifierOverhead, Decision};
use crate::profile::DatasetProfile;
use crate::{MithraError, Result};
use mithra_npu::mlp::{Activation, Mlp};
use mithra_npu::topology::Topology;
use mithra_npu::train::{Normalizer, Trainer};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Training settings for the error regressor.
#[derive(Debug, Clone, PartialEq)]
pub struct RegressionTrainConfig {
    /// Hidden-layer width of the regression network.
    pub hidden: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Cap on training samples drawn from the profiles.
    pub max_samples: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RegressionTrainConfig {
    fn default() -> Self {
        Self {
            hidden: 8,
            epochs: 80,
            max_samples: 30_000,
            seed: 0x5245_4752,
        }
    }
}

/// A classifier that predicts the accelerator error and compares it with
/// the threshold at runtime.
#[derive(Debug, Clone)]
pub struct RegressionFilter {
    mlp: Mlp,
    input_norm: Normalizer,
    /// Error values are trained in a normalized space; this maps the
    /// network's output back to raw error units.
    error_scale: f32,
    threshold: f32,
    scratch: Vec<f32>,
}

impl RegressionFilter {
    /// Trains the error regressor on profiled invocations and binds it to
    /// `threshold`.
    ///
    /// # Errors
    ///
    /// Returns [`MithraError::InsufficientData`] with no profiled
    /// invocations and propagates training failures.
    pub fn train(
        profiles: &[DatasetProfile],
        threshold: f32,
        config: &RegressionTrainConfig,
    ) -> Result<Self> {
        let mut samples: Vec<(Vec<f32>, f32)> = profiles
            .iter()
            .flat_map(|p| {
                (0..p.invocation_count())
                    .map(move |i| (p.dataset().input(i).to_vec(), p.max_error(i)))
            })
            .collect();
        if samples.is_empty() {
            return Err(MithraError::InsufficientData {
                stage: "regression filter training",
                available: 0,
                needed: 1,
            });
        }
        let mut rng = StdRng::seed_from_u64(config.seed);
        samples.shuffle(&mut rng);
        samples.truncate(config.max_samples);

        let inputs: Vec<Vec<f32>> = samples.iter().map(|(x, _)| x.clone()).collect();
        let input_norm = Normalizer::fit(&inputs, 0.0, 1.0);
        let error_scale = samples
            .iter()
            .map(|&(_, e)| e)
            .fold(0.0f32, f32::max)
            .max(1e-6);

        let pairs: Vec<(Vec<f32>, Vec<f32>)> = samples
            .iter()
            .map(|(x, e)| (input_norm.forward(x), vec![e / error_scale]))
            .collect();
        let input_dim = inputs[0].len();
        let topology = Topology::new(&[input_dim, config.hidden, 1])?;
        let mlp = Trainer::new(topology)
            .epochs(config.epochs)
            .learning_rate(0.3)
            .batch_size(32)
            .output_activation(Activation::Linear)
            .seed(config.seed)
            .train(&pairs)?;
        Ok(Self {
            mlp,
            input_norm,
            error_scale,
            threshold,
            scratch: Vec::new(),
        })
    }

    /// The regression network's topology.
    pub fn topology(&self) -> &Topology {
        self.mlp.topology()
    }

    /// Predicts the accelerator error for one input (raw units).
    pub fn predict_error(&mut self, input: &[f32]) -> f32 {
        let normalized = self.input_norm.forward(input);
        let mut out = std::mem::take(&mut self.scratch);
        self.mlp
            .run_into(&normalized, &mut out)
            .expect("input width fixed at training time");
        let predicted = out[0] * self.error_scale;
        self.scratch = out;
        predicted
    }
}

impl Classifier for RegressionFilter {
    fn name(&self) -> &'static str {
        "regression"
    }

    fn classify(&mut self, _index: usize, input: &[f32]) -> Decision {
        let predicted = self.predict_error(input);
        Decision::from_reject(predicted > self.threshold)
    }

    fn overhead(&self) -> ClassifierOverhead {
        // Like the neural design, the regressor runs on the NPU; the
        // comparison against the threshold is one extra ALU op.
        ClassifierOverhead {
            decision_cycles: 1,
            misr_shifts: 0,
            table_bit_reads: 0,
            npu_topology: Some(self.mlp.topology().clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::{AcceleratedFunction, NpuTrainConfig};
    use mithra_axbench::benchmark::Benchmark;
    use mithra_axbench::dataset::DatasetScale;
    use mithra_axbench::suite;
    use std::sync::Arc;

    fn profiles_for(name: &str, n: u64) -> (AcceleratedFunction, Vec<DatasetProfile>) {
        let bench: Arc<dyn Benchmark> = suite::by_name(name).unwrap().into();
        let train: Vec<_> = (0..2)
            .map(|s| bench.dataset(s, DatasetScale::Smoke))
            .collect();
        let f = AcceleratedFunction::train(
            bench,
            &train,
            &NpuTrainConfig {
                epochs: Some(25),
                max_samples: 1500,
                seed: 5,
            },
        )
        .unwrap();
        let profiles = (0..n)
            .map(|s| DatasetProfile::collect(&f, f.dataset(400 + s, DatasetScale::Smoke)))
            .collect();
        (f, profiles)
    }

    #[test]
    fn regressor_learns_error_ordering() {
        let (_, profiles) = profiles_for("sobel", 8);
        let mut filter =
            RegressionFilter::train(&profiles, 0.05, &RegressionTrainConfig::default()).unwrap();
        // Predicted errors should correlate with measured ones: compare
        // mean prediction on the top-error decile vs the bottom decile.
        let mut pairs: Vec<(f32, f32)> = Vec::new();
        for p in &profiles {
            for i in 0..p.invocation_count() {
                pairs.push((p.max_error(i), filter.predict_error(p.dataset().input(i))));
            }
        }
        pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let decile = pairs.len() / 10;
        let low: f32 = pairs[..decile].iter().map(|p| p.1).sum::<f32>() / decile as f32;
        let high: f32 = pairs[pairs.len() - decile..]
            .iter()
            .map(|p| p.1)
            .sum::<f32>()
            / decile as f32;
        assert!(
            high > low,
            "regressor failed to order errors: low {low} vs high {high}"
        );
    }

    #[test]
    fn threshold_drives_decisions() {
        let (_, profiles) = profiles_for("sobel", 4);
        let cfg = RegressionTrainConfig::default();
        let mut strict = RegressionFilter::train(&profiles, 0.0, &cfg).unwrap();
        let mut lax = RegressionFilter::train(&profiles, 10.0, &cfg).unwrap();
        let input = profiles[0].dataset().input(0);
        // With threshold 0 everything with positive predicted error is
        // rejected; with threshold 10 (far above the error scale) nothing.
        assert_eq!(lax.classify(0, input), Decision::Approximate);
        let _ = strict.classify(0, input); // must not panic either way
    }

    #[test]
    fn empty_profiles_rejected() {
        assert!(matches!(
            RegressionFilter::train(&[], 0.05, &RegressionTrainConfig::default()),
            Err(MithraError::InsufficientData { .. })
        ));
    }

    #[test]
    fn overhead_is_npu_class() {
        let (_, profiles) = profiles_for("sobel", 2);
        let filter =
            RegressionFilter::train(&profiles, 0.05, &RegressionTrainConfig::default()).unwrap();
        assert!(filter.overhead().npu_topology.is_some());
    }
}
