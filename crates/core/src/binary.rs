//! The MITHRA binary section — how a compiled configuration ships inside
//! the program executable.
//!
//! The compile flow's outputs "are incorporated in the accelerator
//! configuration and loaded in the classifiers when the program is loaded
//! to the memory for execution" (§III). This module defines that artifact
//! concretely: a versioned, self-describing byte section containing
//!
//! * the accelerator's config-FIFO word stream (topology + Q16.16 weights),
//! * the certified threshold,
//! * the table classifier (MISR configurations, quantizer, BDI-compressed
//!   table content),
//! * the neural classifier's config stream,
//!
//! with encode/decode round-tripping through plain bytes — what a loader
//! would map and stream to the hardware.

use crate::misr::InputQuantizer;
use crate::neural::NeuralClassifier;
use crate::pipeline::Compiled;
use crate::table::TableClassifier;
use crate::{MithraError, Result};
use mithra_npu::config as npu_config;
use mithra_npu::train::Normalizer;
use serde::{Deserialize, Serialize};

/// Current format version.
pub const FORMAT_VERSION: u32 = 1;
/// Section magic: "MTHR".
pub const MAGIC: [u8; 4] = *b"MTHR";

/// The deserialized content of a MITHRA binary section.
///
/// The section carries everything the runtime needs *except* the precise
/// function itself (which is ordinary program text) and the benchmark's
/// application layer (which is the program). Loading therefore pairs a
/// section with a benchmark to rebuild a runnable system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BinarySection {
    /// Format version for forward compatibility.
    pub version: u32,
    /// The accelerator's config-FIFO word stream.
    pub accelerator_words: Vec<u32>,
    /// Input/output normalizers of the accelerated function.
    pub input_norm: Normalizer,
    /// Output normalizer (see [`input_norm`](Self::input_norm)).
    pub output_norm: Normalizer,
    /// The certified accelerator-error threshold.
    pub threshold: f32,
    /// The trained table classifier (tables stored uncompressed in the
    /// serialized form; the loader applies BDI when sizing the image —
    /// see [`compressed_table_bytes`](Self::compressed_table_bytes)).
    pub table: TableClassifier,
    /// The neural classifier's config-FIFO word stream.
    pub neural_words: Vec<u32>,
    /// The neural classifier's input quantizer/normalizer.
    pub neural_input_norm: Normalizer,
}

impl BinarySection {
    /// Captures a compiled application into a section.
    pub fn capture(compiled: &Compiled) -> Self {
        Self {
            version: FORMAT_VERSION,
            accelerator_words: npu_config::encode(compiled.function.npu()),
            input_norm: compiled.function.input_normalizer().clone(),
            output_norm: compiled.function.output_normalizer().clone(),
            threshold: compiled.threshold.threshold,
            table: compiled.table.clone(),
            neural_words: npu_config::encode(compiled.neural.network()),
            neural_input_norm: compiled.neural.input_normalizer().clone(),
        }
    }

    /// Serializes the section to bytes: magic, a little-endian length, and
    /// a JSON payload (a self-describing container keeps the format
    /// inspectable; hardware-bound streams inside it are already word
    /// encodings).
    pub fn to_bytes(&self) -> Vec<u8> {
        let payload = serde_json::to_vec(self).expect("section serializes");
        let mut out = Vec::with_capacity(8 + payload.len());
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Parses a section from bytes.
    ///
    /// # Errors
    ///
    /// Returns [`MithraError::InvalidConfig`] for a malformed or
    /// wrong-version section.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let bad = |constraint: &'static str| MithraError::InvalidConfig {
            parameter: "binary section",
            constraint,
        };
        if bytes.len() < 8 || bytes[..4] != MAGIC {
            return Err(bad("starts with the MTHR magic"));
        }
        let len = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes")) as usize;
        if bytes.len() < 8 + len {
            return Err(bad("payload length matches the header"));
        }
        let section: BinarySection = serde_json::from_slice(&bytes[8..8 + len])
            .map_err(|_| bad("contains a valid payload"))?;
        if section.version != FORMAT_VERSION {
            return Err(bad("matches the supported format version"));
        }
        Ok(section)
    }

    /// Rebuilds the runtime classifiers and accelerator from the section.
    ///
    /// # Errors
    ///
    /// Propagates config-stream decoding failures.
    pub fn load(
        &self,
        benchmark: std::sync::Arc<dyn mithra_axbench::benchmark::Benchmark>,
    ) -> Result<LoadedSection> {
        let npu = npu_config::decode(&self.accelerator_words)?;
        let function = crate::function::AcceleratedFunction::from_parts(
            benchmark,
            npu,
            self.input_norm.clone(),
            self.output_norm.clone(),
        );
        let neural_mlp = npu_config::decode(&self.neural_words)?;
        let neural = NeuralClassifier::from_parts(neural_mlp, self.neural_input_norm.clone());
        Ok(LoadedSection {
            function,
            threshold: self.threshold,
            table: self.table.clone(),
            neural,
        })
    }

    /// Size of the table content after BDI compression — what the image
    /// actually carries (paper Table II).
    pub fn compressed_table_bytes(&self) -> usize {
        self.table.compress().stats().compressed_bytes
    }

    /// The quantizer the table classifier hashes through.
    pub fn table_quantizer(&self) -> &InputQuantizer {
        self.table.quantizer()
    }
}

/// A binary section rebuilt into runnable runtime components.
#[derive(Debug)]
pub struct LoadedSection {
    /// The accelerated function (benchmark + decoded NPU).
    pub function: crate::function::AcceleratedFunction,
    /// The certified threshold.
    pub threshold: f32,
    /// The table classifier, ready to decide.
    pub table: TableClassifier,
    /// The neural classifier, ready to decide.
    pub neural: NeuralClassifier,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::Classifier;
    use crate::pipeline::{compile, CompileConfig};
    use mithra_axbench::benchmark::Benchmark;
    use mithra_axbench::dataset::DatasetScale;
    use mithra_axbench::suite;
    use std::sync::Arc;

    fn compiled() -> (Arc<dyn Benchmark>, Compiled) {
        let bench: Arc<dyn Benchmark> = suite::by_name("inversek2j").unwrap().into();
        let c = compile(Arc::clone(&bench), &CompileConfig::smoke()).unwrap();
        (bench, c)
    }

    #[test]
    fn byte_round_trip() {
        let (_, c) = compiled();
        let section = BinarySection::capture(&c);
        let bytes = section.to_bytes();
        let parsed = BinarySection::from_bytes(&bytes).unwrap();
        assert_eq!(parsed, section);
    }

    #[test]
    fn loaded_section_reproduces_decisions() {
        let (bench, c) = compiled();
        let section = BinarySection::capture(&c);
        let loaded = section.load(Arc::clone(&bench)).unwrap();
        assert_eq!(loaded.threshold, c.threshold.threshold);

        let ds = bench.dataset(12_345, DatasetScale::Smoke);
        let mut original_table = c.table.clone();
        let mut loaded_table = loaded.table.clone();
        let mut original_neural = c.neural.clone();
        let mut loaded_neural = loaded.neural.clone();
        for (i, input) in ds.iter().enumerate() {
            assert_eq!(
                original_table.classify(i, input),
                loaded_table.classify(i, input),
                "table decision diverged at {i}"
            );
            assert_eq!(
                original_neural.classify(i, input),
                loaded_neural.classify(i, input),
                "neural decision diverged at {i}"
            );
        }
    }

    #[test]
    fn loaded_accelerator_matches_original_outputs() {
        let (bench, c) = compiled();
        let section = BinarySection::capture(&c);
        let loaded = section.load(Arc::clone(&bench)).unwrap();
        let ds = bench.dataset(54_321, DatasetScale::Smoke);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        for input in ds.iter().take(32) {
            c.function.approx_into(input, &mut a);
            loaded.function.approx_into(input, &mut b);
            for (x, y) in a.iter().zip(&b) {
                // Q16.16 weight quantization bounds the divergence.
                assert!((x - y).abs() < 1e-2, "{x} vs {y}");
            }
        }
    }

    #[test]
    fn malformed_sections_rejected() {
        let (_, c) = compiled();
        let bytes = BinarySection::capture(&c).to_bytes();
        assert!(BinarySection::from_bytes(&[]).is_err());
        assert!(BinarySection::from_bytes(b"NOPE0000").is_err());
        assert!(BinarySection::from_bytes(&bytes[..bytes.len() / 2]).is_err());
        let mut bad_version = bytes.clone();
        // Corrupt the payload.
        let n = bad_version.len();
        bad_version[n / 2] = 0;
        let _ = BinarySection::from_bytes(&bad_version); // must not panic
    }

    #[test]
    fn compressed_size_matches_table_ii_accounting() {
        let (_, c) = compiled();
        let section = BinarySection::capture(&c);
        assert_eq!(
            section.compressed_table_bytes(),
            c.table.compress().stats().compressed_bytes
        );
        assert!(section.table_quantizer().dims() > 0);
    }
}
