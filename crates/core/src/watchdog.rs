//! The runtime quality watchdog: sequential drift detection with graceful
//! precise-fallback degradation.
//!
//! MITHRA's compile-time certificate (paper §III) holds for inputs drawn
//! from the profiled distribution and for the hardware the classifiers
//! were trained against. A deployed system can leave that envelope: SRAM
//! upsets corrupt NPU weights or classifier tables, and the input
//! distribution itself can drift. The watchdog is the runtime guardband:
//! it *sporadically samples* accelerator-admitted invocations (the same
//! sampling hardware the paper's online-update path uses), shadow-executes
//! the precise function, and runs a one-sided sequential test on the
//! observed threshold-violation rate using the same Clopper–Pearson
//! machinery as the compile-time certificate:
//!
//! * the **breach** test asks whether, at confidence β, the true violation
//!   rate of admitted invocations *exceeds* the calibrated limit (the
//!   exact lower confidence bound clears the limit);
//! * the **recovery** test asks whether the *observed* rate over a full
//!   recovery window is within the limit. Recovery is deliberately a
//!   point estimate, not an exact bound — with a 5% limit the exact upper
//!   bound on a perfectly clean window would need ~60 samples to clear it,
//!   stranding the system in fallback. The [`GuardState::Probing`] stage
//!   is the statistical backstop: a wrong re-enable only exposes a
//!   throttled trickle, and the breach test fires again.
//!
//! Degradation is graceful rather than binary. On a breach the watchdog
//! first **throttles** accelerator admission (1 in `throttle_factor`
//! invocations may still use the NPU — quality exposure drops immediately
//! while evidence accumulates); if the breach persists it falls back to
//! **all-precise** execution; after a recovery window it **probes** with a
//! trickle of accelerator invocations and re-enables full admission only
//! when the violation rate tests clean again. A transient fault costs a
//! bounded quality excursion; a permanent fault costs speedup, never the
//! certified quality target.
//!
//! Everything is deterministic: the same sample stream produces the same
//! transitions, which the robustness property tests rely on.

use crate::classifier::{Classifier, Decision};
use crate::profile::DatasetProfile;
use crate::Result;
use mithra_stats::clopper_pearson::{lower_bound, Confidence};

/// The watchdog's degradation ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GuardState {
    /// Full accelerator admission; the sequential test watches for a
    /// breach.
    Monitoring,
    /// Breach detected: 1 in `throttle_factor` admissions still reach the
    /// accelerator while evidence accumulates.
    Throttled,
    /// Persistent breach: every invocation runs precise. Sampling
    /// continues on shadow accelerator outputs so recovery is detectable.
    Fallback,
    /// Recovery window passed: a trickle of accelerator invocations probes
    /// whether full admission is safe again.
    Probing,
}

impl std::fmt::Display for GuardState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            GuardState::Monitoring => "monitoring",
            GuardState::Throttled => "throttled",
            GuardState::Fallback => "fallback",
            GuardState::Probing => "probing",
        };
        f.write_str(s)
    }
}

/// Tuning for the sequential test and the degradation ladder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WatchdogConfig {
    /// Calibrated ceiling on the violation rate of admitted invocations.
    /// The compile-time certificate tolerates a small false-negative rate;
    /// the limit sits above the clean-run rate with a guardband (see
    /// [`calibrate`]).
    pub max_violation_rate: f64,
    /// Confidence of both one-sided tests.
    pub confidence: Confidence,
    /// Samples required before the sequential test may fire. Small enough
    /// to react within one dataset, large enough that a single unlucky
    /// sample cannot trip it.
    pub min_samples: u64,
    /// In [`GuardState::Throttled`] and [`GuardState::Probing`], one in
    /// this many accelerator admissions goes through.
    pub throttle_factor: u64,
    /// Shadow samples to accumulate in [`GuardState::Fallback`] before
    /// testing for recovery.
    pub recovery_samples: u64,
    /// Samples to accumulate in [`GuardState::Probing`] before deciding
    /// between re-enabling and falling back again.
    pub probe_samples: u64,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        Self {
            max_violation_rate: 0.05,
            confidence: Confidence::new(0.95).expect("0.95 is a valid confidence"),
            min_samples: 12,
            throttle_factor: 4,
            recovery_samples: 24,
            probe_samples: 12,
        }
    }
}

/// One recorded rung change of the degradation ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GuardTransition {
    /// Lifetime shadow-sample count at which the transition fired.
    pub at_sample: u64,
    /// State left.
    pub from: GuardState,
    /// State entered.
    pub to: GuardState,
}

/// Shadow samples spent in each [`GuardState`] — the watchdog's clock is
/// its sample stream, so these are a deterministic time-in-state measure
/// (proportional to wall invocations at a fixed sampling period).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StateResidence {
    /// Samples observed while in [`GuardState::Monitoring`].
    pub monitoring: u64,
    /// Samples observed while in [`GuardState::Throttled`].
    pub throttled: u64,
    /// Samples observed while in [`GuardState::Fallback`].
    pub fallback: u64,
    /// Samples observed while in [`GuardState::Probing`].
    pub probing: u64,
}

impl StateResidence {
    /// Samples spent in `state`.
    pub fn in_state(&self, state: GuardState) -> u64 {
        match state {
            GuardState::Monitoring => self.monitoring,
            GuardState::Throttled => self.throttled,
            GuardState::Fallback => self.fallback,
            GuardState::Probing => self.probing,
        }
    }

    /// Total samples across all states.
    pub fn total(&self) -> u64 {
        self.monitoring + self.throttled + self.fallback + self.probing
    }

    /// Fraction of samples spent in degraded (non-Monitoring) states;
    /// `0.0` on an empty record.
    pub fn degraded_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        (total - self.monitoring) as f64 / total as f64
    }

    /// Element-wise accumulation (folding shard residences into an
    /// endpoint total).
    pub fn merge(&mut self, other: &StateResidence) {
        self.monitoring += other.monitoring;
        self.throttled += other.throttled;
        self.fallback += other.fallback;
        self.probing += other.probing;
    }

    fn bump(&mut self, state: GuardState) {
        match state {
            GuardState::Monitoring => self.monitoring += 1,
            GuardState::Throttled => self.throttled += 1,
            GuardState::Fallback => self.fallback += 1,
            GuardState::Probing => self.probing += 1,
        }
    }
}

/// Transition-log capacity. The ladder has four rungs; a healthy system
/// transitions a handful of times, and a flapping one is fully described
/// by its first few dozen transitions plus the drop counter.
const MAX_TRANSITIONS: usize = 64;

/// Summary of a watchdog's run, for reports and figures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WatchdogReport {
    /// Final state.
    pub state: GuardState,
    /// Total shadow samples observed.
    pub samples: u64,
    /// Total sampled violations.
    pub violations: u64,
    /// Times the ladder stepped down (into Throttled or Fallback).
    pub breaches: u64,
    /// Times full admission was restored (back to Monitoring).
    pub recoveries: u64,
    /// Samples spent on each rung of the ladder.
    pub time_in: StateResidence,
    /// Rung changes in order, capped at an internal bound.
    pub transitions: Vec<GuardTransition>,
    /// Transitions beyond the log cap (0 unless the ladder flapped).
    pub transitions_dropped: u64,
}

/// The runtime quality watchdog. Feed it with [`QualityWatchdog::admit`]
/// on every decision and [`QualityWatchdog::record`] on every shadow
/// sample.
#[derive(Debug, Clone)]
pub struct QualityWatchdog {
    config: WatchdogConfig,
    state: GuardState,
    // Current evidence window.
    samples: u64,
    violations: u64,
    // Deterministic trickle counter for throttled/probing admission.
    admissions_seen: u64,
    // Lifetime accounting.
    total_samples: u64,
    total_violations: u64,
    breaches: u64,
    recoveries: u64,
    residence: StateResidence,
    transitions: Vec<GuardTransition>,
    transitions_dropped: u64,
}

impl QualityWatchdog {
    /// A watchdog in [`GuardState::Monitoring`] with the given tuning.
    pub fn new(config: WatchdogConfig) -> Self {
        Self {
            config,
            state: GuardState::Monitoring,
            samples: 0,
            violations: 0,
            admissions_seen: 0,
            total_samples: 0,
            total_violations: 0,
            breaches: 0,
            recoveries: 0,
            residence: StateResidence::default(),
            transitions: Vec::new(),
            transitions_dropped: 0,
        }
    }

    /// A fresh watchdog with this one's tuning but none of its evidence:
    /// still in [`GuardState::Monitoring`] with empty windows and counters.
    /// This is how a sharded serving worker derives its own guard from an
    /// endpoint's calibrated prototype — [`calibrate`] runs once per
    /// endpoint, then every worker forks the prototype, so each shard
    /// guards its own traffic without sharing mutable state (a `clone`
    /// would smuggle one shard's evidence into another's test).
    pub fn fork(&self) -> Self {
        Self::new(self.config)
    }

    /// Current rung of the degradation ladder.
    pub fn state(&self) -> GuardState {
        self.state
    }

    /// The tuning this watchdog runs with.
    pub fn config(&self) -> &WatchdogConfig {
        &self.config
    }

    /// Gates one classifier decision through the current state. Call this
    /// on *every* invocation; it is a counter bump and a match — no
    /// statistics.
    pub fn admit(&mut self, decision: Decision) -> Decision {
        if decision == Decision::Precise {
            return Decision::Precise;
        }
        match self.state {
            GuardState::Monitoring => Decision::Approximate,
            GuardState::Fallback => Decision::Precise,
            GuardState::Throttled | GuardState::Probing => {
                self.admissions_seen += 1;
                if self
                    .admissions_seen
                    .is_multiple_of(self.config.throttle_factor)
                {
                    Decision::Approximate
                } else {
                    Decision::Precise
                }
            }
        }
    }

    /// Feeds one shadow sample: did a sampled accelerator-bound invocation
    /// violate the certified threshold? Returns the new state when this
    /// sample causes a transition.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::MithraError::Stats`] from the exact bounds
    /// (cannot occur for the count invariants this type maintains).
    pub fn record(&mut self, violation: bool) -> Result<Option<GuardState>> {
        self.samples += 1;
        self.total_samples += 1;
        self.residence.bump(self.state);
        if violation {
            self.violations += 1;
            self.total_violations += 1;
        }
        let limit = self.config.max_violation_rate;
        let conf = self.config.confidence;
        let next = match self.state {
            GuardState::Monitoring => {
                if self.samples >= self.config.min_samples && self.breached(conf, limit)? {
                    Some(GuardState::Throttled)
                } else {
                    // Forget stale evidence so late-onset drift is not
                    // diluted by a long clean prefix.
                    if self.samples >= 4 * self.config.min_samples {
                        self.reset_window();
                    }
                    None
                }
            }
            GuardState::Throttled => {
                if self.samples >= self.config.min_samples {
                    if self.breached(conf, limit)? {
                        Some(GuardState::Fallback)
                    } else if self.recovered(limit) {
                        Some(GuardState::Monitoring)
                    } else if self.samples >= 4 * self.config.min_samples {
                        self.reset_window();
                        None
                    } else {
                        None
                    }
                } else {
                    None
                }
            }
            GuardState::Fallback => {
                if self.samples >= self.config.recovery_samples {
                    if self.recovered(limit) {
                        Some(GuardState::Probing)
                    } else {
                        // Still dirty: restart the recovery window.
                        self.reset_window();
                        None
                    }
                } else {
                    None
                }
            }
            GuardState::Probing => {
                if self.samples >= self.config.probe_samples {
                    if self.recovered(limit) {
                        Some(GuardState::Monitoring)
                    } else {
                        Some(GuardState::Fallback)
                    }
                } else {
                    None
                }
            }
        };
        if let Some(state) = next {
            match state {
                GuardState::Throttled | GuardState::Fallback => self.breaches += 1,
                GuardState::Monitoring => self.recoveries += 1,
                GuardState::Probing => {}
            }
            if self.transitions.len() < MAX_TRANSITIONS {
                self.transitions.push(GuardTransition {
                    at_sample: self.total_samples,
                    from: self.state,
                    to: state,
                });
            } else {
                self.transitions_dropped += 1;
            }
            self.state = state;
            self.reset_window();
        }
        Ok(next)
    }

    /// Lifetime summary.
    pub fn report(&self) -> WatchdogReport {
        WatchdogReport {
            state: self.state,
            samples: self.total_samples,
            violations: self.total_violations,
            breaches: self.breaches,
            recoveries: self.recoveries,
            time_in: self.residence,
            transitions: self.transitions.clone(),
            transitions_dropped: self.transitions_dropped,
        }
    }

    /// Shadow samples spent on each rung of the ladder so far.
    pub fn residence(&self) -> &StateResidence {
        &self.residence
    }

    /// Forces the ladder onto `state` with a fresh evidence window,
    /// recording the transition. This is the re-certifier's hot-swap
    /// entry point: after certifying a new operating point it re-enables
    /// full admission directly (the statistical justification lives in the
    /// sequential certificate, not in this watchdog's recovery test, which
    /// judges the *old* operating point).
    pub fn force_state(&mut self, state: GuardState) {
        if state == self.state {
            return;
        }
        match state {
            GuardState::Throttled | GuardState::Fallback => self.breaches += 1,
            GuardState::Monitoring => self.recoveries += 1,
            GuardState::Probing => {}
        }
        if self.transitions.len() < MAX_TRANSITIONS {
            self.transitions.push(GuardTransition {
                at_sample: self.total_samples,
                from: self.state,
                to: state,
            });
        } else {
            self.transitions_dropped += 1;
        }
        self.state = state;
        self.reset_window();
    }

    /// Adopts a freshly calibrated tuning, keeping the lifetime counters,
    /// residence and transition log but dropping the current evidence
    /// window — evidence gathered against the *old* operating point says
    /// nothing about the pair the re-certifier just swapped in.
    pub fn reconfigure(&mut self, config: WatchdogConfig) {
        self.config = config;
        self.admissions_seen = 0;
        self.reset_window();
    }

    fn breached(&self, conf: Confidence, limit: f64) -> Result<bool> {
        Ok(lower_bound(self.violations, self.samples, conf)? > limit)
    }

    fn recovered(&self, limit: f64) -> bool {
        self.violations as f64 <= limit * self.samples as f64
    }

    fn reset_window(&mut self) {
        self.samples = 0;
        self.violations = 0;
    }
}

/// Calibrates a watchdog limit from the *clean* certified behaviour: runs
/// the classifier over the given profiles, measures the violation rate of
/// admitted invocations at the certified `threshold`, and sets the limit
/// a guardband above it — three times the clean rate or the clean rate
/// plus three points, whichever is larger, floored at 2%. Clean runs then
/// sit far below the limit (the no-false-alarm property), while the fault
/// modes this crate models push the rate past it quickly.
///
/// # Errors
///
/// Propagates statistics errors from the confidence machinery (none occur
/// for valid inputs).
pub fn calibrate(
    classifier: &mut dyn Classifier,
    profiles: &[DatasetProfile],
    threshold: f32,
    confidence: Confidence,
) -> Result<WatchdogConfig> {
    let mut admitted = 0u64;
    let mut violations = 0u64;
    for profile in profiles {
        for (i, input) in profile.dataset().iter().enumerate() {
            if classifier.classify(i, input) == Decision::Approximate {
                admitted += 1;
                if profile.max_error(i) > threshold {
                    violations += 1;
                }
            }
        }
    }
    let clean_rate = if admitted == 0 {
        0.0
    } else {
        violations as f64 / admitted as f64
    };
    let limit = (clean_rate * 3.0).max(clean_rate + 0.03).max(0.02);
    Ok(WatchdogConfig {
        max_violation_rate: limit.min(1.0),
        confidence,
        ..WatchdogConfig::default()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dog() -> QualityWatchdog {
        QualityWatchdog::new(WatchdogConfig::default())
    }

    #[test]
    fn clean_stream_never_leaves_monitoring() {
        let mut w = dog();
        for _ in 0..10_000 {
            assert_eq!(w.record(false).unwrap(), None);
        }
        assert_eq!(w.state(), GuardState::Monitoring);
        let r = w.report();
        assert_eq!(r.breaches, 0);
        assert_eq!(r.samples, 10_000);
    }

    #[test]
    fn rare_violations_within_limit_never_fire() {
        // 2% observed violations against a 5% limit: the lower bound
        // never clears the limit.
        let mut w = dog();
        for i in 0..5_000u64 {
            assert_eq!(w.record(i % 50 == 0).unwrap(), None, "sample {i}");
        }
        assert_eq!(w.state(), GuardState::Monitoring);
    }

    #[test]
    fn saturated_violations_walk_the_ladder_down() {
        let mut w = dog();
        let mut states = Vec::new();
        for _ in 0..200 {
            if let Some(s) = w.record(true).unwrap() {
                states.push(s);
            }
        }
        assert_eq!(states, vec![GuardState::Throttled, GuardState::Fallback]);
        assert_eq!(w.state(), GuardState::Fallback);
        assert_eq!(w.report().breaches, 2);
    }

    #[test]
    fn fallback_recovers_through_probing() {
        let mut w = dog();
        // Breach hard.
        for _ in 0..50 {
            w.record(true).unwrap();
        }
        assert_eq!(w.state(), GuardState::Fallback);
        // Fault clears: clean shadow samples walk the ladder back up,
        // through Probing, never skipping it.
        let mut states = Vec::new();
        for _ in 0..200 {
            if let Some(s) = w.record(false).unwrap() {
                states.push(s);
            }
            if w.state() == GuardState::Monitoring {
                break;
            }
        }
        assert_eq!(states, vec![GuardState::Probing, GuardState::Monitoring]);
        assert_eq!(w.report().recoveries, 1);
    }

    #[test]
    fn probing_relapses_on_dirty_samples() {
        let mut w = dog();
        for _ in 0..50 {
            w.record(true).unwrap();
        }
        assert_eq!(w.state(), GuardState::Fallback);
        // Recover exactly into probing...
        let mut fed = 0;
        while w.state() == GuardState::Fallback {
            w.record(false).unwrap();
            fed += 1;
            assert!(fed < 500, "never reached probing");
        }
        assert_eq!(w.state(), GuardState::Probing);
        // ...but the probe trickle still violates.
        for _ in 0..20 {
            w.record(true).unwrap();
        }
        assert_eq!(w.state(), GuardState::Fallback);
    }

    #[test]
    fn admission_gating_per_state() {
        let mut w = dog();
        assert_eq!(w.admit(Decision::Approximate), Decision::Approximate);
        assert_eq!(w.admit(Decision::Precise), Decision::Precise);

        w.state = GuardState::Fallback;
        assert_eq!(w.admit(Decision::Approximate), Decision::Precise);

        w.state = GuardState::Throttled;
        let admitted = (0..16)
            .filter(|_| w.admit(Decision::Approximate) == Decision::Approximate)
            .count();
        assert_eq!(admitted, 4, "1 in 4 admissions under default throttle");
    }

    #[test]
    fn min_samples_gate_prevents_single_sample_trips() {
        let mut w = dog();
        for i in 0..11 {
            assert_eq!(w.record(true).unwrap(), None, "sample {i} fired early");
        }
        assert_eq!(w.state(), GuardState::Monitoring);
    }

    #[test]
    fn transitions_are_deterministic() {
        let stream: Vec<bool> = (0..400).map(|i| (i / 40) % 2 == 0 && i % 2 == 0).collect();
        let run = |mut w: QualityWatchdog| -> Vec<GuardState> {
            let mut out = Vec::new();
            for &v in &stream {
                if let Some(s) = w.record(v).unwrap() {
                    out.push(s);
                }
            }
            out
        };
        assert_eq!(run(dog()), run(dog()));
    }

    #[test]
    fn fork_keeps_tuning_but_drops_evidence() {
        let mut w = QualityWatchdog::new(WatchdogConfig {
            max_violation_rate: 0.11,
            ..WatchdogConfig::default()
        });
        for _ in 0..50 {
            w.record(true).unwrap();
        }
        assert_ne!(w.state(), GuardState::Monitoring);
        let f = w.fork();
        assert_eq!(f.config().max_violation_rate, 0.11);
        assert_eq!(f.state(), GuardState::Monitoring);
        assert_eq!(f.report().samples, 0);
        assert_eq!(f.report().breaches, 0);
    }

    #[test]
    fn residence_partitions_samples_and_log_matches_transitions() {
        let mut w = dog();
        // Down the ladder, then back up.
        for _ in 0..50 {
            w.record(true).unwrap();
        }
        for _ in 0..200 {
            w.record(false).unwrap();
            if w.state() == GuardState::Monitoring {
                break;
            }
        }
        let r = w.report();
        assert_eq!(
            r.time_in.total(),
            r.samples,
            "residence must partition samples"
        );
        assert!(r.time_in.monitoring > 0);
        assert!(r.time_in.fallback > 0);
        assert!(r.time_in.degraded_fraction() > 0.0);
        let logged: Vec<GuardState> = r.transitions.iter().map(|t| t.to).collect();
        assert_eq!(
            logged,
            vec![
                GuardState::Throttled,
                GuardState::Fallback,
                GuardState::Probing,
                GuardState::Monitoring
            ]
        );
        assert_eq!(r.transitions_dropped, 0);
        // at_sample is nondecreasing and within the lifetime count.
        for pair in r.transitions.windows(2) {
            assert!(pair[0].at_sample <= pair[1].at_sample);
        }
        assert!(r.transitions.last().unwrap().at_sample <= r.samples);
    }

    #[test]
    fn transition_log_caps_and_counts_drops() {
        let mut w = QualityWatchdog::new(WatchdogConfig {
            max_violation_rate: 0.02,
            ..WatchdogConfig::default()
        });
        // Flap the ladder far past the cap: alternate dirty and clean
        // phases long enough for hundreds of transitions.
        for phase in 0..400 {
            let dirty = phase % 2 == 0;
            for _ in 0..60 {
                w.record(dirty).unwrap();
            }
        }
        let r = w.report();
        assert_eq!(r.transitions.len(), 64);
        assert!(r.transitions_dropped > 0, "flapping must overflow the log");
        assert!(r.breaches + r.recoveries + r.transitions_dropped >= r.transitions.len() as u64);
    }

    #[test]
    fn force_state_records_transition_and_resets_window() {
        let mut w = dog();
        for _ in 0..50 {
            w.record(true).unwrap();
        }
        assert_eq!(w.state(), GuardState::Fallback);
        let recoveries_before = w.report().recoveries;
        w.force_state(GuardState::Monitoring);
        assert_eq!(w.state(), GuardState::Monitoring);
        let r = w.report();
        assert_eq!(r.recoveries, recoveries_before + 1);
        assert_eq!(r.transitions.last().unwrap().to, GuardState::Monitoring);
        // A forced no-op transition records nothing.
        let n = r.transitions.len();
        w.force_state(GuardState::Monitoring);
        assert_eq!(w.report().transitions.len(), n);
    }

    #[test]
    fn calibration_sits_above_clean_rate_with_floor() {
        // No profiles at all: the limit still has its floor.
        let mut oracle = crate::random::RandomFilter::new(1.0, 7);
        let cfg = calibrate(&mut oracle, &[], 0.1, Confidence::new(0.95).unwrap()).unwrap();
        assert!(cfg.max_violation_rate >= 0.02);
        assert!(cfg.max_violation_rate <= 1.0);
    }
}
