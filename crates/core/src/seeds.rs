//! The workspace-wide dataset-seed partition.
//!
//! Every layer that draws Monte-Carlo datasets does so from a disjoint
//! window of the `u64` seed space, so no experiment can accidentally
//! validate (or fuzz) on data another layer already consumed. The bases
//! are pinned here, in one place; the consuming crates re-export them
//! rather than declaring their own copies, and the cross-crate partition
//! tests (`mithra-conform`, `mithra-fuzz`) assert both the values and
//! the pairwise disjointness of the windows.
//!
//! | window                     | base        | consumer                         |
//! |----------------------------|-------------|----------------------------------|
//! | compile / training         | 0           | `pipeline::CompileConfig`        |
//! | figure-harness validation  | 1,000,000   | `mithra-bench` runner            |
//! | serving load generation    | 2,000,000   | `bench_serve_throughput`         |
//! | conformance trials         | 3,000,000   | `mithra-conform`                 |
//! | drifted conformance trials | 3,500,000   | `mithra-conform` (drift window)  |
//! | differential fuzzing       | 4,000,000   | `mithra-fuzz`                    |
//! | extension tests            | 7,000,000   | `mithra-sim` route-parity pins   |

/// First seed of the compile/training window. Compile dataset `i` uses
/// seed `COMPILE_SEED_BASE + i`.
pub const COMPILE_SEED_BASE: u64 = 0;

/// First seed of the figure-harness validation window (unseen datasets
/// the figures score certified artifacts on).
pub const VALIDATION_SEED_BASE: u64 = 1_000_000;

/// First seed of the serving load-generation window.
pub const SERVE_SEED_BASE: u64 = 2_000_000;

/// First seed of the conformance Monte-Carlo window. Conformance trial
/// `i` uses seed `CONFORM_SEED_BASE + i`.
pub const CONFORM_SEED_BASE: u64 = 3_000_000;

/// First seed of the *drifted* conformance window (closed-loop
/// re-certification judges swapped pairs on these).
pub const DRIFT_CONFORM_SEED_BASE: u64 = CONFORM_SEED_BASE + 500_000;

/// First seed of the differential-fuzzing window (`mithra-fuzz`). Each
/// oracle family `f` draws case `i` from
/// `FUZZ_SEED_BASE + f * FUZZ_FAMILY_STRIDE + i`.
pub const FUZZ_SEED_BASE: u64 = 4_000_000;

/// Seeds reserved per fuzzing oracle family inside the fuzz window.
pub const FUZZ_FAMILY_STRIDE: u64 = 100_000;

/// First seed of the extension-test window (`mithra-sim` route-parity
/// pins exercise alternate bases here).
pub const EXTENSION_SEED_BASE: u64 = 7_000_000;

/// The pinned partition in ascending order, with the window each base
/// opens running to the next entry. Partition tests iterate this roster
/// so a new window cannot be added without joining the disjointness
/// proof.
pub const ALL_BASES: [(&str, u64); 7] = [
    ("compile", COMPILE_SEED_BASE),
    ("validation", VALIDATION_SEED_BASE),
    ("serve", SERVE_SEED_BASE),
    ("conform", CONFORM_SEED_BASE),
    ("drift-conform", DRIFT_CONFORM_SEED_BASE),
    ("fuzz", FUZZ_SEED_BASE),
    ("extension", EXTENSION_SEED_BASE),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bases_are_pinned() {
        assert_eq!(COMPILE_SEED_BASE, 0);
        assert_eq!(VALIDATION_SEED_BASE, 1_000_000);
        assert_eq!(SERVE_SEED_BASE, 2_000_000);
        assert_eq!(CONFORM_SEED_BASE, 3_000_000);
        assert_eq!(DRIFT_CONFORM_SEED_BASE, 3_500_000);
        assert_eq!(FUZZ_SEED_BASE, 4_000_000);
        assert_eq!(EXTENSION_SEED_BASE, 7_000_000);
    }

    #[test]
    fn roster_is_strictly_ascending() {
        for pair in ALL_BASES.windows(2) {
            assert!(
                pair[0].1 < pair[1].1,
                "{} >= {} — windows collide",
                pair[0].0,
                pair[1].0
            );
        }
    }

    #[test]
    fn fuzz_families_fit_their_window() {
        // Four oracle families, each with its own stride, must stay
        // below the extension base.
        let last = FUZZ_SEED_BASE + 4 * FUZZ_FAMILY_STRIDE;
        assert!(last < EXTENSION_SEED_BASE);
    }
}
