//! Closed-loop online re-certification: the recovery half of the guardband.
//!
//! The watchdog ([`crate::watchdog`]) detects that the deployed certificate
//! stopped describing reality — input drift pushed the violation rate of
//! admitted invocations past its calibrated limit — and parks the system in
//! [`GuardState::Fallback`]. That protects quality but permanently trades
//! away the speedup the certificate was supposed to protect. This module
//! recovers it **without downtime**: while every live invocation is served
//! precise (quality is safe by construction), the engine
//!
//! 1. **collects** a fresh calibration window of fully shadow-profiled
//!    datasets from the drifted stream (the precise outputs are free — the
//!    fallback path computes them anyway — and the accelerator runs in
//!    shadow, charged by the simulator's invocation model);
//! 2. **selects** a new operating point on that window: re-runs the
//!    threshold bisection with the *re-trained deployed classifier in the
//!    loop* (the PR-6 lesson: an oracle-only certificate collapses on
//!    unseen data) against a margin-tightened quality target, then
//!    **freezes** the `(threshold, classifier)` pair;
//! 3. **certifies** the frozen pair on *subsequent* fresh datasets only —
//!    never on the selection window, which would double-dip — under the
//!    always-valid sequential test ([`mithra_stats::sequential`]). The
//!    engine peeks after every dataset, so a naive repeated
//!    Clopper–Pearson test would silently spend its α; the e-process is
//!    safe under continuous monitoring by construction.
//!
//! Once the pair certifies, the engine emits a [`RecertOutcome`]: the new
//! epoch's artifacts plus a watchdog limit recalibrated against the new
//! pair on the drifted window. The caller hot-swaps them into serving and
//! forces the watchdog back to [`GuardState::Monitoring`] — the
//! statistical justification for re-enabling is the fresh sequential
//! certificate, not the watchdog's recovery test (which judges the *old*
//! operating point).
//!
//! **α accounting across attempts.** A frozen candidate that exhausts its
//! trial budget without certifying is abandoned and a new one is selected
//! from the (larger) window. Each candidate is a fresh hypothesis, so each
//! gets its own e-process — but testing `m` candidates at full α would
//! inflate the family-wise error to `m·α`. The engine therefore runs every
//! attempt at `α / max_attempts` (Bonferroni over the attempt budget), so
//! the probability that *any* still-violating candidate is ever certified
//! stays at most α.
//!
//! [`GuardState::Fallback`]: crate::watchdog::GuardState::Fallback
//! [`GuardState::Monitoring`]: crate::watchdog::GuardState::Monitoring

use crate::function::AcceleratedFunction;
use crate::pipeline::quantizer_from_profiles;
use crate::profile::DatasetProfile;
use crate::route::{ApproximatorPool, RouteClassifier};
use crate::table::{TableClassifier, TableDesign};
use crate::threshold::{QualitySpec, RoutedThresholdOutcome};
use crate::training::generate_training_data;
use crate::watchdog::{self, WatchdogConfig};
use crate::{MithraError, Result};
use mithra_stats::clopper_pearson::{lower_bound, Confidence};
use mithra_stats::sequential::SequentialBinomial;

/// Seed-stream splitting constant (same mixer as the fault layer).
const SEED_MIX: u64 = 0x9E37_79B9_7F4A_7C15;

/// Tuning for the re-certification loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecertConfig {
    /// Master switch. [`RecertConfig::off`] keeps the PR-2 guardband
    /// behaviour bit-identical: the engine observes nothing and never
    /// swaps.
    pub enabled: bool,
    /// Calibration datasets collected before the first candidate is
    /// selected (and added between selection retries).
    pub select_after: usize,
    /// Fresh certification datasets a frozen candidate may consume before
    /// it is abandoned and reselected.
    pub max_certify_trials: u64,
    /// Selection attempts before the engine gives up and leaves the
    /// system in fallback. Each attempt's sequential test runs at
    /// `α / max_attempts` so the family-wise error stays at α.
    pub max_attempts: u64,
    /// Quality-target margin for *selection*: candidates must meet
    /// `margin × q` on the window so their true pass rate at the full `q`
    /// sits comfortably above `S` — a boundary candidate with true rate
    /// exactly `S` would (correctly) never certify. Tightened
    /// geometrically on each retry.
    pub selection_margin: f64,
    /// Minimum mean accelerator invocation rate a candidate must achieve
    /// on the window. Below this the swap would be vacuous (an all-precise
    /// classifier in Monitoring clothes) and staying in fallback — where
    /// the watchdog's own recovery path can still fire if the drift
    /// reverts — is strictly better.
    pub min_invocation_rate: f64,
    /// Training tuples sampled from the window per classifier retrain.
    pub train_samples: usize,
    /// Table-classifier design for retrained candidates.
    pub table_design: TableDesign,
    /// Consecutive healthy serving checkpoints (reported through
    /// [`RecertEngine::note_health`]) after which an in-flight collection
    /// or certification is aborted: the guard recovered *on its own*, so
    /// the window describes a distribution that no longer serves traffic.
    /// Kept well above one because a degradation ladder near its limit
    /// flaps — a single healthy checkpoint is not proof of recovery.
    pub abort_after_healthy: u64,
    /// Bisection probes per selection (each retrains the classifier).
    pub select_iterations: u32,
    /// Seed for training-tuple sampling (attempt-salted).
    pub seed: u64,
    /// Worker threads for selection replays (`Some(1)` = sequential).
    pub threads: Option<usize>,
}

impl RecertConfig {
    /// Re-certification disabled: the engine is inert and serving
    /// behaviour is bit-identical to the guardband without it.
    pub fn off() -> Self {
        Self {
            enabled: false,
            ..Self::paper_default()
        }
    }

    /// The default closed-loop configuration.
    pub fn paper_default() -> Self {
        Self {
            enabled: true,
            select_after: 12,
            max_certify_trials: 80,
            max_attempts: 3,
            selection_margin: 0.8,
            min_invocation_rate: 0.02,
            train_samples: 4_000,
            table_design: TableDesign::paper_default(),
            abort_after_healthy: 6,
            select_iterations: 10,
            seed: 0x5EC2_17F1,
            threads: Some(1),
        }
    }

    /// Validates the numeric ranges.
    ///
    /// # Errors
    ///
    /// Returns [`MithraError::InvalidConfig`] for out-of-range fields.
    pub fn validate(&self) -> Result<()> {
        if self.select_after == 0 {
            return Err(MithraError::InvalidConfig {
                parameter: "select_after",
                constraint: "> 0",
            });
        }
        if self.max_attempts == 0 {
            return Err(MithraError::InvalidConfig {
                parameter: "max_attempts",
                constraint: "> 0",
            });
        }
        if !(0.0..=1.0).contains(&self.selection_margin) || self.selection_margin == 0.0 {
            return Err(MithraError::InvalidConfig {
                parameter: "selection_margin",
                constraint: "0 < margin <= 1",
            });
        }
        if !(0.0..=1.0).contains(&self.min_invocation_rate) {
            return Err(MithraError::InvalidConfig {
                parameter: "min_invocation_rate",
                constraint: "0 <= rate <= 1",
            });
        }
        if self.abort_after_healthy == 0 {
            return Err(MithraError::InvalidConfig {
                parameter: "abort_after_healthy",
                constraint: "> 0",
            });
        }
        Ok(())
    }
}

/// A frozen `(threshold, classifier)` pair under sequential certification.
#[derive(Debug, Clone)]
struct Candidate {
    threshold: f32,
    classifier: TableClassifier,
}

/// Where the engine is in its collect → select → certify loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecertPhase {
    /// No calibration traffic observed since the last reset.
    Idle,
    /// Accumulating the selection window.
    Collecting,
    /// A frozen candidate is under sequential certification.
    Certifying,
    /// The attempt budget is spent; the system stays in fallback.
    Exhausted,
}

/// A successful re-certification: the new epoch's serving artifacts.
#[derive(Debug, Clone)]
pub struct RecertOutcome {
    /// Monotone epoch number (1 for the first swap of an engine).
    pub epoch: u64,
    /// The re-certified accelerator-error threshold.
    pub threshold: f32,
    /// The re-trained deployed classifier, certified as deployed.
    pub classifier: TableClassifier,
    /// Watchdog tuning recalibrated against the new pair on the drifted
    /// calibration window.
    pub watchdog: WatchdogConfig,
    /// Fresh datasets the winning candidate's sequential test consumed.
    pub certify_trials: u64,
    /// Selection attempts used (1 = first candidate certified).
    pub attempts: u64,
    /// Total calibration datasets consumed since the trigger.
    pub calibration_datasets: u64,
}

/// Lifetime counters for reports and figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecertReport {
    /// Candidates frozen (selection runs).
    pub attempts: u64,
    /// Successful re-certifications (epoch swaps).
    pub swaps: u64,
    /// Calibration datasets consumed across all triggers.
    pub calibration_datasets: u64,
    /// Engines that spent their attempt budget without certifying.
    pub exhausted: u64,
}

/// The online re-certification engine. Drive it with one fully
/// shadow-profiled dataset per call while the watchdog sits in fallback;
/// abort it if the watchdog recovers on its own (drift reverted).
#[derive(Debug, Clone)]
pub struct RecertEngine {
    config: RecertConfig,
    spec: QualitySpec,
    /// Per-attempt test confidence: `1 − α/max_attempts`.
    attempt_confidence: Confidence,
    phase: RecertPhase,
    window: Vec<DatasetProfile>,
    /// Window length at which the next selection fires.
    next_select_at: usize,
    candidate: Option<Candidate>,
    test: SequentialBinomial,
    attempt: u64,
    // Lifetime accounting (survives resets between triggers).
    total_attempts: u64,
    swaps: u64,
    calibration_datasets: u64,
    exhausted_runs: u64,
    healthy_streak: u64,
}

impl RecertEngine {
    /// Creates an engine for the given certified quality spec.
    ///
    /// # Errors
    ///
    /// Returns [`MithraError::InvalidConfig`] for invalid tuning.
    pub fn new(spec: QualitySpec, config: RecertConfig) -> Result<Self> {
        config.validate()?;
        let alpha = spec.confidence.alpha() / config.max_attempts as f64;
        let attempt_confidence =
            Confidence::new(1.0 - alpha).map_err(|_| MithraError::InvalidConfig {
                parameter: "max_attempts",
                constraint: "1 - alpha/max_attempts must be a valid confidence",
            })?;
        Ok(Self {
            config,
            spec,
            attempt_confidence,
            phase: RecertPhase::Idle,
            window: Vec::new(),
            next_select_at: config.select_after,
            candidate: None,
            test: SequentialBinomial::new(),
            attempt: 0,
            total_attempts: 0,
            swaps: 0,
            calibration_datasets: 0,
            exhausted_runs: 0,
            healthy_streak: 0,
        })
    }

    /// Whether the closed loop is armed at all.
    pub fn is_enabled(&self) -> bool {
        self.config.enabled
    }

    /// The engine's current phase.
    pub fn phase(&self) -> RecertPhase {
        self.phase
    }

    /// The tuning this engine runs with.
    pub fn config(&self) -> &RecertConfig {
        &self.config
    }

    /// Epochs swapped in so far (0 before the first re-certification).
    pub fn epoch(&self) -> u64 {
        self.swaps
    }

    /// Lifetime counters.
    pub fn report(&self) -> RecertReport {
        RecertReport {
            attempts: self.total_attempts,
            swaps: self.swaps,
            calibration_datasets: self.calibration_datasets,
            exhausted: self.exhausted_runs,
        }
    }

    /// Drops any in-flight calibration state (window, frozen candidate,
    /// test). Call when the watchdog recovers on its own — the drift
    /// reverted and the *original* certificate is back in force, so the
    /// evidence collected against the drifted distribution is stale.
    pub fn abort(&mut self) {
        self.phase = RecertPhase::Idle;
        self.window.clear();
        self.next_select_at = self.config.select_after;
        self.candidate = None;
        self.test.reset();
        self.attempt = 0;
        self.healthy_streak = 0;
    }

    /// Reports one serving checkpoint's health (one dataset, one batch —
    /// whatever granularity the host loop uses). A degraded checkpoint
    /// resets the streak; [`RecertConfig::abort_after_healthy`]
    /// consecutive healthy ones abort any in-flight collection or
    /// certification via [`RecertEngine::abort`] — the guard recovered on
    /// its own, so the window describes a distribution that no longer
    /// serves traffic. Returns `true` when this call aborted in-flight
    /// work. Inert while the engine is idle, exhausted or disabled.
    pub fn note_health(&mut self, healthy: bool) -> bool {
        if !self.config.enabled {
            return false;
        }
        if healthy {
            self.healthy_streak += 1;
        } else {
            self.healthy_streak = 0;
        }
        let in_flight = !matches!(self.phase, RecertPhase::Idle | RecertPhase::Exhausted);
        if in_flight && self.healthy_streak >= self.config.abort_after_healthy {
            self.abort();
            return true;
        }
        false
    }

    /// Feeds one fully shadow-profiled calibration dataset observed while
    /// the watchdog is in fallback. Returns the new epoch's artifacts when
    /// this dataset completes a re-certification.
    ///
    /// # Errors
    ///
    /// Propagates classifier-training and statistics failures.
    pub fn observe(
        &mut self,
        function: &AcceleratedFunction,
        profile: DatasetProfile,
    ) -> Result<Option<RecertOutcome>> {
        if !self.config.enabled || self.phase == RecertPhase::Exhausted {
            return Ok(None);
        }
        self.calibration_datasets += 1;
        if self.phase == RecertPhase::Idle {
            self.phase = RecertPhase::Collecting;
        }

        if self.phase == RecertPhase::Certifying {
            // Score the frozen pair on this FRESH dataset before it joins
            // the window: certification data and selection data must stay
            // disjoint or the test is answering a question about data it
            // was chosen on.
            let cand = self.candidate.as_ref().expect("certifying has a candidate");
            let mut deployed = cand.classifier.clone();
            let replay = profile.replay_with_classifier(function, &mut deployed, cand.threshold, 0);
            let success = replay.quality_loss <= self.spec.max_quality_loss;
            self.test.observe(success);
            self.window.push(profile);

            if self
                .test
                .certifies(self.spec.success_rate, self.attempt_confidence)?
            {
                return Ok(Some(self.swap()?));
            }
            if self.test.trials() >= self.config.max_certify_trials {
                // Budget spent: abandon the candidate and collect more
                // evidence before reselecting on the larger window.
                self.candidate = None;
                self.test.reset();
                if self.attempt >= self.config.max_attempts {
                    self.phase = RecertPhase::Exhausted;
                    self.exhausted_runs += 1;
                } else {
                    self.phase = RecertPhase::Collecting;
                    self.next_select_at = self.window.len() + self.config.select_after;
                }
            }
            return Ok(None);
        }

        // Collecting.
        self.window.push(profile);
        if self.window.len() >= self.next_select_at {
            self.attempt += 1;
            self.total_attempts += 1;
            match self.select(function)? {
                Some(candidate) => {
                    self.candidate = Some(candidate);
                    self.test.reset();
                    self.phase = RecertPhase::Certifying;
                }
                None => {
                    // Nothing selectable above the vacuity floor: consume
                    // the attempt and keep collecting, or give up.
                    if self.attempt >= self.config.max_attempts {
                        self.phase = RecertPhase::Exhausted;
                        self.exhausted_runs += 1;
                    } else {
                        self.next_select_at = self.window.len() + self.config.select_after;
                    }
                }
            }
        }
        Ok(None)
    }

    /// Emits the outcome for the just-certified candidate and resets the
    /// per-trigger state for a future drift episode.
    fn swap(&mut self) -> Result<RecertOutcome> {
        let cand = self.candidate.take().expect("swap requires a candidate");
        self.swaps += 1;
        // Recalibrate the watchdog limit against the NEW pair on the
        // drifted window (selection + certification datasets): the old
        // limit described the old pair on the old distribution.
        let mut calibrated = cand.classifier.clone();
        let wconfig = watchdog::calibrate(
            &mut calibrated,
            &self.window,
            cand.threshold,
            self.spec.confidence,
        )?;
        let outcome = RecertOutcome {
            epoch: self.swaps,
            threshold: cand.threshold,
            classifier: cand.classifier,
            watchdog: wconfig,
            certify_trials: self.test.trials(),
            attempts: self.attempt,
            calibration_datasets: self.calibration_datasets,
        };
        self.abort();
        Ok(outcome)
    }

    /// Selects the candidate whose **deployed** replay meets the
    /// margin-tightened quality target on every window dataset while
    /// admitting the most invocations. Returns `None` when the best such
    /// candidate is vacuous (invocation rate below the floor).
    fn select(&self, function: &AcceleratedFunction) -> Result<Option<Candidate>> {
        // Margin tightens geometrically with each retry: a candidate that
        // failed certification was too close to the boundary.
        let margin = self
            .config
            .selection_margin
            .powi(self.attempt.min(8) as i32);
        let target = self.spec.max_quality_loss * margin;

        // Hold out the tail of the window: classifiers train on the head
        // and every probe is scored on datasets the trainer never saw.
        // Scoring a probe on its own training datasets is systematically
        // optimistic (the tables memorize the training buckets), which
        // froze candidates that looked clean on the window and then
        // failed certification on fresh traffic.
        let holdout = (self.window.len() / 3).max(1);
        let (fit, eval) = self.window.split_at(self.window.len() - holdout);
        if fit.is_empty() {
            return Ok(None);
        }

        let mut errors: Vec<f32> = fit
            .iter()
            .flat_map(|p| p.errors().iter().copied())
            .collect();
        errors.sort_by(f32::total_cmp);
        if errors.is_empty() {
            return Ok(None);
        }

        let probe = |threshold: f32| -> Result<Option<(TableClassifier, f64)>> {
            let classifier = self.train_at(fit, threshold)?;
            let mut rate_sum = 0.0f64;
            for profile in eval {
                let mut deployed = classifier.clone();
                let replay = profile.replay_with_classifier(function, &mut deployed, threshold, 0);
                if replay.quality_loss > target {
                    return Ok(None);
                }
                rate_sum += replay.invocation_rate();
            }
            Ok(Some((classifier, rate_sum / eval.len() as f64)))
        };

        // Probe thresholds at evenly spaced quantiles of the window's
        // error distribution and keep the quality-passing candidate that
        // admits the most work. A bisection for the loosest passing
        // threshold would be wrong here: each probe retrains the deployed
        // classifier, and past the point where rejects stop being
        // separable the trainer degrades to an all-reject ensemble whose
        // replay passes the quality target *vacuously* — monotone search
        // then converges on exactly those vacuous candidates.
        let probes = self.config.select_iterations.max(1) as usize;
        let mut best: Option<(f32, TableClassifier, f64)> = None;
        let mut last = f32::NAN;
        for i in 1..=probes {
            let q = i as f64 / (probes + 1) as f64;
            let idx = ((errors.len() - 1) as f64 * q).round() as usize;
            let threshold = errors[idx].max(1e-6);
            if threshold == last {
                continue;
            }
            last = threshold;
            if let Some((classifier, rate)) = probe(threshold)? {
                if best.as_ref().is_none_or(|(_, _, r)| rate > *r) {
                    best = Some((threshold, classifier, rate));
                }
            }
        }
        Ok(best
            .filter(|(_, _, rate)| *rate >= self.config.min_invocation_rate)
            .map(|(threshold, classifier, _)| Candidate {
                threshold,
                classifier,
            }))
    }

    /// Retrains the table classifier on `profiles` labeled at `threshold`.
    fn train_at(&self, profiles: &[DatasetProfile], threshold: f32) -> Result<TableClassifier> {
        let seed = self.config.seed ^ self.attempt.wrapping_mul(SEED_MIX);
        let data = generate_training_data(profiles, threshold, self.config.train_samples, seed);
        let quantizer = quantizer_from_profiles(profiles);
        TableClassifier::train_with_threads(
            self.config.table_design,
            quantizer,
            &data,
            self.config.threads,
        )
    }
}

/// Selects a re-certified **routed** operating point on a calibration
/// window: re-runs the deployed-in-the-loop routed bisection
/// ([`ThresholdOptimizer::optimize_routed_deployed`]) against a
/// window-relaxed success rate (the strictest rate a window of this size
/// can certify — all datasets passing) and a margin-tightened quality
/// target, then retrains the K-ary cascade at the winning threshold.
///
/// The returned pair is a *candidate*: like the binary engine's frozen
/// pair it must still earn its live certificate from the sequential test
/// on fresh data before being swapped in.
///
/// [`ThresholdOptimizer::optimize_routed_deployed`]:
///     crate::threshold::ThresholdOptimizer::optimize_routed_deployed
///
/// # Errors
///
/// Returns [`MithraError::InsufficientData`] for an empty window,
/// [`MithraError::Uncertifiable`] when even all-precise routing misses the
/// tightened target, and propagates router-training failures.
pub fn select_routed_candidate(
    pool: &ApproximatorPool,
    member_window: &[Vec<DatasetProfile>],
    spec: &QualitySpec,
    config: &RecertConfig,
) -> Result<(RoutedThresholdOutcome, RouteClassifier)> {
    config.validate()?;
    let trials = member_window.first().map_or(0, Vec::len);
    if trials == 0 {
        return Err(MithraError::InsufficientData {
            stage: "routed re-certification window",
            available: 0,
            needed: 1,
        });
    }
    // The strictest success rate a window of `trials` datasets can
    // certify at β is the all-successes Clopper–Pearson bound; shave a
    // hair so exactly all-successes clears it.
    let all_pass = lower_bound(trials as u64, trials as u64, spec.confidence)?;
    let window_spec = QualitySpec::new(
        spec.max_quality_loss * config.selection_margin,
        spec.confidence.level(),
        (all_pass * 0.999).max(f64::MIN_POSITIVE),
    )?;
    let optimizer =
        crate::threshold::ThresholdOptimizer::new(window_spec).with_threads(config.threads);
    let outcome = optimizer.optimize_routed_deployed(pool, member_window, |threshold| {
        RouteClassifier::train(
            member_window,
            threshold,
            &config.table_design,
            config.train_samples,
            config.seed,
            config.threads,
        )
    })?;
    let router = RouteClassifier::train(
        member_window,
        outcome.threshold,
        &config.table_design,
        config.train_samples,
        config.seed,
        config.threads,
    )?;
    Ok((outcome, router))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{compile, CompileConfig};
    use crate::route::PoolSpec;
    use crate::threshold::ThresholdOptimizer;
    use mithra_axbench::dataset::{DatasetScale, DriftSpec};
    use mithra_axbench::suite;
    use std::sync::Arc;

    fn compiled_sobel() -> crate::pipeline::Compiled {
        let bench: Arc<dyn mithra_axbench::benchmark::Benchmark> =
            suite::by_name("sobel").unwrap().into();
        compile(bench, &CompileConfig::smoke()).unwrap()
    }

    fn drifted_profile(
        compiled: &crate::pipeline::Compiled,
        seed: u64,
        drift: &DriftSpec,
    ) -> DatasetProfile {
        let ds = compiled
            .function
            .dataset(seed, DatasetScale::Smoke)
            .drifted(drift);
        DatasetProfile::collect(&compiled.function, ds)
    }

    fn mild_drift() -> DriftSpec {
        DriftSpec {
            scale: 1.25,
            offset: 0.15,
            noise_std: 0.0,
            seed: 41,
        }
    }

    #[test]
    fn off_engine_is_inert() {
        let compiled = compiled_sobel();
        let spec = QualitySpec::paper_default(0.1).unwrap();
        let mut engine = RecertEngine::new(spec, RecertConfig::off()).unwrap();
        for s in 0..5 {
            let p = drifted_profile(&compiled, 9_000_000 + s, &mild_drift());
            assert!(engine.observe(&compiled.function, p).unwrap().is_none());
        }
        assert_eq!(engine.phase(), RecertPhase::Idle);
        assert_eq!(engine.report(), RecertReport::default());
    }

    #[test]
    fn config_validation_rejects_degenerate_tuning() {
        let mut cfg = RecertConfig::paper_default();
        cfg.select_after = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = RecertConfig::paper_default();
        cfg.selection_margin = 0.0;
        assert!(cfg.validate().is_err());
        let mut cfg = RecertConfig::paper_default();
        cfg.max_attempts = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn engine_recertifies_under_mild_drift_and_pair_holds() {
        // The end-to-end core loop: drifted calibration traffic in, a
        // certified (threshold, classifier) pair out, and that pair holds
        // its quality target on unseen drifted datasets.
        let compiled = compiled_sobel();
        let spec = QualitySpec::new(0.1, 0.9, 0.8).unwrap();
        let mut cfg = RecertConfig::paper_default();
        cfg.select_after = 8;
        cfg.train_samples = 1_500;
        cfg.select_iterations = 6;
        let mut engine = RecertEngine::new(spec, cfg).unwrap();
        let drift = mild_drift();

        let mut outcome = None;
        for s in 0..80u64 {
            let p = drifted_profile(&compiled, 9_100_000 + s, &drift);
            if let Some(o) = engine.observe(&compiled.function, p).unwrap() {
                outcome = Some(o);
                break;
            }
        }
        let outcome = outcome.expect("mild drift must re-certify within 80 datasets");
        assert_eq!(outcome.epoch, 1);
        assert!(outcome.threshold > 0.0, "non-vacuous threshold");
        assert!(outcome.certify_trials > 0);
        assert_eq!(
            engine.phase(),
            RecertPhase::Idle,
            "engine resets after swap"
        );
        assert_eq!(engine.epoch(), 1);

        // The re-certified pair on fresh drifted datasets. The
        // certificate says "at least S = 80% of unseen datasets meet q"
        // — a sample of 20 can sit a little under S without contradicting
        // it, so assert a floor one binomial standard deviation below.
        let mut ok = 0u32;
        let n = 20u32;
        for s in 0..n {
            let p = drifted_profile(&compiled, 9_200_000 + u64::from(s), &drift);
            let mut cls = outcome.classifier.clone();
            let replay =
                p.replay_with_classifier(&compiled.function, &mut cls, outcome.threshold, 0);
            if replay.quality_loss <= spec.max_quality_loss {
                ok += 1;
            }
        }
        assert!(
            ok >= 14,
            "re-certified pair held on only {ok}/{n} unseen datasets"
        );
    }

    #[test]
    fn abort_drops_inflight_state_but_keeps_lifetime_counters() {
        let compiled = compiled_sobel();
        let spec = QualitySpec::paper_default(0.1).unwrap();
        let mut cfg = RecertConfig::paper_default();
        cfg.select_after = 4;
        cfg.train_samples = 500;
        cfg.select_iterations = 4;
        let mut engine = RecertEngine::new(spec, cfg).unwrap();
        for s in 0..4 {
            let p = drifted_profile(&compiled, 9_300_000 + s, &mild_drift());
            engine.observe(&compiled.function, p).unwrap();
        }
        assert_ne!(engine.phase(), RecertPhase::Idle);
        let datasets_before = engine.report().calibration_datasets;
        engine.abort();
        assert_eq!(engine.phase(), RecertPhase::Idle);
        assert_eq!(engine.report().calibration_datasets, datasets_before);
    }

    #[test]
    fn certification_never_uses_selection_data() {
        // White-box: once Certifying, the e-process trial count must equal
        // the datasets fed AFTER selection fired, never the window size.
        let compiled = compiled_sobel();
        let spec = QualitySpec::new(0.1, 0.9, 0.8).unwrap();
        let mut cfg = RecertConfig::paper_default();
        cfg.select_after = 6;
        cfg.train_samples = 800;
        cfg.select_iterations = 4;
        let mut engine = RecertEngine::new(spec, cfg).unwrap();
        let drift = mild_drift();
        let mut fed_after_select = 0u64;
        for s in 0..30u64 {
            let was_certifying = engine.phase() == RecertPhase::Certifying;
            let p = drifted_profile(&compiled, 9_400_000 + s, &drift);
            let done = engine.observe(&compiled.function, p).unwrap().is_some();
            if was_certifying {
                fed_after_select += 1;
            }
            if done {
                break;
            }
            if engine.phase() == RecertPhase::Certifying {
                assert_eq!(engine.test.trials(), fed_after_select);
            }
        }
    }

    #[test]
    fn routed_candidate_certifies_its_window() {
        // Pool-of-one smoke: the routed selection must produce a cascade
        // whose deployed replay certifies the window-relaxed spec.
        let compiled = compiled_sobel();
        let bench = compiled.function.benchmark().clone();
        let datasets: Vec<_> = (0..3)
            .map(|s| compiled.function.dataset(s, DatasetScale::Smoke))
            .collect();
        let pool = ApproximatorPool::train(
            &bench,
            &datasets,
            &crate::pipeline::CompileConfig::smoke().npu,
            &PoolSpec::sized(&bench.npu_topology(), 1),
            Some(1),
            Some(&compiled.function),
        )
        .unwrap();
        let drift = mild_drift();
        let window: Vec<DatasetProfile> = (0..8u64)
            .map(|s| {
                let ds = compiled
                    .function
                    .dataset(9_500_000 + s, DatasetScale::Smoke)
                    .drifted(&drift);
                DatasetProfile::collect(&compiled.function, ds)
            })
            .collect();
        let member_window = vec![window];
        let spec = QualitySpec::new(0.1, 0.9, 0.8).unwrap();
        let mut cfg = RecertConfig::paper_default();
        cfg.train_samples = 800;
        let (outcome, router) =
            select_routed_candidate(&pool, &member_window, &spec, &cfg).unwrap();
        assert_eq!(router.len(), 1);
        assert_eq!(outcome.trials, 8);
        // The deployed probe at the returned threshold reproduces the
        // outcome's success count.
        let optimizer = ThresholdOptimizer::new(
            QualitySpec::new(
                spec.max_quality_loss * cfg.selection_margin,
                spec.confidence.level(),
                0.5,
            )
            .unwrap(),
        );
        let recheck = optimizer
            .certify_routed_deployed(&pool, &member_window, &router, outcome.threshold)
            .unwrap();
        assert_eq!(recheck.successes, outcome.successes);
    }

    #[test]
    fn window_invocation_rate_floor_rejects_vacuous_candidates() {
        // A floor of 1.0 is unreachable: selection must decline, consume
        // attempts, and eventually exhaust rather than swap in an
        // all-precise pair.
        let compiled = compiled_sobel();
        let spec = QualitySpec::new(0.1, 0.9, 0.8).unwrap();
        let mut cfg = RecertConfig::paper_default();
        cfg.select_after = 4;
        cfg.max_attempts = 2;
        cfg.train_samples = 500;
        cfg.select_iterations = 3;
        cfg.min_invocation_rate = 1.0;
        let mut engine = RecertEngine::new(spec, cfg).unwrap();
        let drift = mild_drift();
        for s in 0..12u64 {
            let p = drifted_profile(&compiled, 9_600_000 + s, &drift);
            let out = engine.observe(&compiled.function, p).unwrap();
            assert!(out.is_none(), "vacuous candidate must never swap");
        }
        assert_eq!(engine.phase(), RecertPhase::Exhausted);
        assert_eq!(engine.report().exhausted, 1);
        assert_eq!(engine.report().swaps, 0);
    }
}
