//! Multiple accelerated functions per application (paper §III-A).
//!
//! "If the application offloads multiple functions to the accelerator,
//! this algorithm can be extended to greedily find a tuple of thresholds.
//! Due to the complexity of application behavior, this greedy approach
//! will find suboptimal thresholds if the number of offloaded functions
//! increases."
//!
//! The model: an application has `k` accelerated regions; its final
//! quality loss is scored once over the combined output. Profiles are
//! collected per region, and a *joint replay* mixes each region's decision
//! stream. The greedy optimizer orders regions by their potential benefit
//! (invocations × per-invocation saving) and, one region at a time, finds
//! the loosest threshold that keeps the joint certification passing while
//! all not-yet-optimized regions stay fully precise.

use crate::function::AcceleratedFunction;
use crate::profile::DatasetProfile;
use crate::threshold::QualitySpec;
use crate::{MithraError, Result};
use mithra_stats::clopper_pearson::lower_bound;

/// One accelerated region of a multi-function application: its function
/// and its per-dataset profiles (same dataset order across regions).
#[derive(Debug)]
pub struct Region {
    /// The region's accelerated function.
    pub function: AcceleratedFunction,
    /// One profile per application dataset, index-aligned across regions.
    pub profiles: Vec<DatasetProfile>,
    /// Relative weight of this region's output in the application's final
    /// quality (regions contribute `weight / Σ weights` of the score).
    pub weight: f64,
}

impl Region {
    /// Per-dataset quality loss of this region when filtered at `th`.
    fn quality_at(&self, th: f32) -> Vec<f64> {
        self.profiles
            .iter()
            .map(|p| p.replay_with_threshold(&self.function, th).quality_loss)
            .collect()
    }

    /// Mean invocation rate at `th`.
    fn invocation_at(&self, th: f32) -> f64 {
        let sum: f64 = self
            .profiles
            .iter()
            .map(|p| {
                p.replay_with_threshold(&self.function, th)
                    .invocation_rate()
            })
            .sum();
        sum / self.profiles.len().max(1) as f64
    }

    /// A proxy for the benefit of accelerating this region: invocations
    /// per dataset times the kernel cycles an invocation saves.
    fn benefit_proxy(&self) -> f64 {
        let profile = self.function.benchmark().profile();
        let per_ds = self
            .profiles
            .first()
            .map_or(0, DatasetProfile::invocation_count);
        per_ds as f64 * profile.kernel_cycles as f64
    }

    /// The largest observed accelerator error — the threshold search's
    /// upper bound.
    fn max_error(&self) -> f32 {
        self.profiles
            .iter()
            .flat_map(|p| p.errors().iter().copied())
            .fold(0.0f32, f32::max)
            .max(1e-6)
    }
}

/// The jointly certified thresholds for a multi-region application.
#[derive(Debug, Clone, PartialEq)]
pub struct TupleOutcome {
    /// One threshold per region, in input order.
    pub thresholds: Vec<f32>,
    /// Joint successes over the application datasets.
    pub successes: u64,
    /// Total application datasets.
    pub trials: u64,
    /// Clopper–Pearson lower bound on the joint success rate.
    pub certified_rate: f64,
    /// Mean invocation rate per region at the chosen thresholds.
    pub invocation_rates: Vec<f64>,
}

/// Greedy tuple-threshold optimizer over multiple regions.
#[derive(Debug, Clone, Copy)]
pub struct TupleOptimizer {
    spec: QualitySpec,
    iterations: u32,
}

impl TupleOptimizer {
    /// Creates an optimizer for the given quality specification.
    pub fn new(spec: QualitySpec) -> Self {
        Self {
            spec,
            iterations: 20,
        }
    }

    /// Joint per-dataset quality: the weighted sum of regional losses
    /// (the model of an application whose output concatenates the
    /// regions' outputs with the given weights).
    fn joint_quality(regions: &[Region], per_region: &[Vec<f64>]) -> Vec<f64> {
        let n = per_region.first().map_or(0, Vec::len);
        let total_weight: f64 = regions.iter().map(|r| r.weight).sum();
        (0..n)
            .map(|d| {
                regions
                    .iter()
                    .zip(per_region)
                    .map(|(r, q)| r.weight * q[d])
                    .sum::<f64>()
                    / total_weight
            })
            .collect()
    }

    fn certify(&self, joint: &[f64]) -> Result<(u64, f64)> {
        let successes = joint
            .iter()
            .filter(|&&q| q <= self.spec.max_quality_loss)
            .count() as u64;
        let bound = lower_bound(successes, joint.len() as u64, self.spec.confidence)?;
        Ok((successes, bound))
    }

    /// Finds the tuple of thresholds greedily.
    ///
    /// Regions are processed in descending benefit order. For each region
    /// in turn, the loosest threshold passing the joint certification —
    /// with already-optimized regions at their chosen thresholds and
    /// remaining regions fully precise — is found by bisection.
    ///
    /// # Errors
    ///
    /// Returns [`MithraError::InsufficientData`] for empty inputs or
    /// misaligned profile counts, and
    /// [`MithraError::Uncertifiable`] if even the all-precise tuple fails
    /// certification.
    pub fn optimize(&self, regions: &[Region]) -> Result<TupleOutcome> {
        if regions.is_empty() {
            return Err(MithraError::InsufficientData {
                stage: "tuple threshold optimization",
                available: 0,
                needed: 1,
            });
        }
        let n_datasets = regions[0].profiles.len();
        if n_datasets == 0 || regions.iter().any(|r| r.profiles.len() != n_datasets) {
            return Err(MithraError::InsufficientData {
                stage: "tuple threshold optimization (aligned profiles)",
                available: regions.iter().map(|r| r.profiles.len()).min().unwrap_or(0),
                needed: n_datasets.max(1),
            });
        }

        // All-precise baseline must certify.
        let mut qualities: Vec<Vec<f64>> = regions.iter().map(|r| r.quality_at(-1.0)).collect();
        let joint = Self::joint_quality(regions, &qualities);
        let (_, bound0) = self.certify(&joint)?;
        if bound0 < self.spec.success_rate {
            return Err(MithraError::Uncertifiable {
                quality_target: self.spec.max_quality_loss,
                required_rate: self.spec.success_rate,
                best_rate: bound0,
            });
        }

        // Benefit-descending greedy order.
        let mut order: Vec<usize> = (0..regions.len()).collect();
        order.sort_by(|&a, &b| {
            regions[b]
                .benefit_proxy()
                .partial_cmp(&regions[a].benefit_proxy())
                .expect("benefit proxies are finite")
        });

        let mut thresholds = vec![0.0f32; regions.len()];
        for &r in &order {
            let region = &regions[r];
            let (mut lo, mut hi) = (0.0f32, region.max_error());
            // Try the loosest end first.
            qualities[r] = region.quality_at(hi);
            let joint = Self::joint_quality(regions, &qualities);
            let (_, bound) = self.certify(&joint)?;
            if bound >= self.spec.success_rate {
                thresholds[r] = hi;
                continue;
            }
            let mut best = 0.0f32;
            for _ in 0..self.iterations {
                let mid = 0.5 * (lo + hi);
                qualities[r] = region.quality_at(mid);
                let joint = Self::joint_quality(regions, &qualities);
                let (_, bound) = self.certify(&joint)?;
                if bound >= self.spec.success_rate {
                    best = mid;
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            thresholds[r] = best;
            qualities[r] = region.quality_at(best);
        }

        let joint = Self::joint_quality(regions, &qualities);
        let (successes, certified_rate) = self.certify(&joint)?;
        let invocation_rates = regions
            .iter()
            .zip(&thresholds)
            .map(|(r, &th)| r.invocation_at(th))
            .collect();
        Ok(TupleOutcome {
            thresholds,
            successes,
            trials: n_datasets as u64,
            certified_rate,
            invocation_rates,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::NpuTrainConfig;
    use mithra_axbench::benchmark::Benchmark;
    use mithra_axbench::dataset::{Dataset, DatasetScale};
    use mithra_axbench::suite;
    use std::sync::Arc;

    fn region_for(name: &str, weight: f64, n: u64) -> Region {
        let bench: Arc<dyn Benchmark> = suite::by_name(name).unwrap().into();
        let train: Vec<Dataset> = (0..2)
            .map(|s| bench.dataset(s, DatasetScale::Smoke))
            .collect();
        let function = AcceleratedFunction::train(
            bench,
            &train,
            &NpuTrainConfig {
                epochs: Some(25),
                max_samples: 1200,
                seed: 17,
            },
        )
        .unwrap();
        let profiles = (300..300 + n)
            .map(|s| DatasetProfile::collect(&function, function.dataset(s, DatasetScale::Smoke)))
            .collect();
        Region {
            function,
            profiles,
            weight,
        }
    }

    #[test]
    fn two_region_application_certifies() {
        let regions = vec![
            region_for("sobel", 1.0, 20),
            region_for("inversek2j", 1.0, 20),
        ];
        let spec = QualitySpec::new(0.15, 0.9, 0.5).unwrap();
        let outcome = TupleOptimizer::new(spec).optimize(&regions).unwrap();
        assert_eq!(outcome.thresholds.len(), 2);
        assert!(outcome.certified_rate >= 0.5);
        assert!(outcome.thresholds.iter().any(|&t| t > 0.0));
        assert_eq!(outcome.invocation_rates.len(), 2);
    }

    #[test]
    fn single_region_reduces_to_plain_optimization() {
        let regions = vec![region_for("sobel", 1.0, 20)];
        let spec = QualitySpec::new(0.20, 0.9, 0.5).unwrap();
        let outcome = TupleOptimizer::new(spec).optimize(&regions).unwrap();
        assert!(outcome.thresholds[0] > 0.0);
        assert!(outcome.invocation_rates[0] > 0.0);
    }

    #[test]
    fn tighter_joint_targets_tighten_all_thresholds() {
        let make = || {
            vec![
                region_for("sobel", 1.0, 15),
                region_for("inversek2j", 1.0, 15),
            ]
        };
        let loose = TupleOptimizer::new(QualitySpec::new(0.25, 0.9, 0.5).unwrap())
            .optimize(&make())
            .unwrap();
        let tight = TupleOptimizer::new(QualitySpec::new(0.03, 0.9, 0.5).unwrap())
            .optimize(&make())
            .unwrap();
        let loose_sum: f32 = loose.thresholds.iter().sum();
        let tight_sum: f32 = tight.thresholds.iter().sum();
        assert!(tight_sum <= loose_sum + 1e-6);
    }

    #[test]
    fn misaligned_profiles_rejected() {
        let mut regions = vec![
            region_for("sobel", 1.0, 10),
            region_for("inversek2j", 1.0, 10),
        ];
        regions[1].profiles.pop();
        let spec = QualitySpec::new(0.10, 0.9, 0.5).unwrap();
        assert!(matches!(
            TupleOptimizer::new(spec).optimize(&regions),
            Err(MithraError::InsufficientData { .. })
        ));
    }

    #[test]
    fn empty_regions_rejected() {
        let spec = QualitySpec::new(0.10, 0.9, 0.5).unwrap();
        assert!(TupleOptimizer::new(spec).optimize(&[]).is_err());
    }

    #[test]
    fn impossible_success_rate_uncertifiable() {
        let regions = vec![region_for("sobel", 1.0, 5)];
        let spec = QualitySpec::new(0.10, 0.95, 0.99).unwrap();
        assert!(matches!(
            TupleOptimizer::new(spec).optimize(&regions),
            Err(MithraError::Uncertifiable { .. })
        ));
    }
}
