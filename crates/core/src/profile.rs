//! Profiling: the cached per-invocation data the compiler's statistical
//! optimization runs over.
//!
//! Algorithm 1 instruments the program to run *both* the precise function
//! and the accelerator for every invocation, then re-evaluates final
//! quality at each candidate threshold. Re-running the accelerator per
//! candidate would repeat identical work, so the profiler executes both
//! paths **once** per dataset and caches the precise outputs, accelerator
//! outputs and per-invocation accelerator error; threshold candidates then
//! only re-mix cached outputs and re-run the (cheap) application layer.
//! This is an implementation optimization of the paper's loop, not a
//! semantic change.

use crate::classifier::{Classifier, Decision};
use crate::function::{AcceleratedFunction, InvokeScratch};
use crate::Result;
use mithra_axbench::dataset::{Dataset, OutputBuffer};

/// Invocations per accelerator batch inside [`DatasetProfile::collect`].
/// Large enough to amortize one weight-matrix traversal per SIMD tile,
/// small enough that the staging buffers stay cache-resident.
const PROFILE_BLOCK: usize = 64;

/// Where one invocation's output came from when a run is scored after the
/// fact — the generalization of [`Decision`] the fault model needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// The precise function produced this output.
    Precise,
    /// The accelerator produced this output.
    Approx,
    /// A FIFO drop left the core reading a *stale* accelerator output:
    /// the consumer dequeued what invocation `0..i` had left behind.
    ApproxFrom(usize),
}

/// Cached profile of one dataset: inputs, both output streams, and the
/// per-invocation accelerator error.
///
/// Profiles dominate a compile session's memory and cache footprint, so
/// the artifact cache stores them in the flat binary format of
/// [`crate::cache::encode_profiles`] rather than through serde.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetProfile {
    dataset: Dataset,
    precise: OutputBuffer,
    approx: OutputBuffer,
    max_err: Vec<f32>,
    final_precise: Vec<f64>,
}

/// Outcome of replaying a dataset under some filtering policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplayOutcome {
    /// Final-output quality loss versus the all-precise run.
    pub quality_loss: f64,
    /// Invocations delegated to the accelerator.
    pub invoked: usize,
    /// Total invocations.
    pub total: usize,
}

impl ReplayOutcome {
    /// Fraction of invocations delegated to the accelerator.
    pub fn invocation_rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.invoked as f64 / self.total as f64
        }
    }
}

impl DatasetProfile {
    /// Profiles one dataset: runs the precise function and the accelerator
    /// for every invocation and caches everything the optimizer needs.
    ///
    /// The accelerator side runs through
    /// [`AcceleratedFunction::approx_batch_with`] in blocks of
    /// [`PROFILE_BLOCK`] invocations, amortizing one weight traversal per
    /// block on the SIMD backend; per-invocation results are
    /// bit-identical to the one-at-a-time loop on whichever backend the
    /// function carries, so the scalar default reproduces every pinned
    /// number.
    pub fn collect(function: &AcceleratedFunction, dataset: Dataset) -> Self {
        let bench = function.benchmark();
        let n = dataset.invocation_count();
        let in_dim = dataset.input_dim();
        let out_dim = bench.output_dim();
        let mut precise = OutputBuffer::with_capacity(out_dim, n);
        let mut approx = OutputBuffer::with_capacity(out_dim, n);
        let mut max_err = Vec::with_capacity(n);
        let mut p = Vec::new();
        let mut block_out = Vec::new();
        // One scratch across the whole dataset: the profiling loop is the
        // compile path's hottest, and per-invocation allocation would
        // dominate the network arithmetic.
        let mut scratch = InvokeScratch::new();
        let flat = dataset.as_flat();
        let mut base = 0;
        while base < n {
            let count = PROFILE_BLOCK.min(n - base);
            function.approx_batch_with(
                &flat[base * in_dim..(base + count) * in_dim],
                count,
                &mut block_out,
                &mut scratch,
            );
            for j in 0..count {
                let input = dataset.input(base + j);
                function.precise_into(input, &mut p);
                let a = &block_out[j * out_dim..(j + 1) * out_dim];
                max_err.push(function.max_normalized_error_with(&p, a, &mut scratch));
                precise.push(&p);
                approx.push(a);
            }
            base += count;
        }
        let final_precise = bench.run_application(&dataset, &precise);
        Self {
            dataset,
            precise,
            approx,
            max_err,
            final_precise,
        }
    }

    /// Reassembles a profile from its stored parts (the artifact cache's
    /// deserialization path).
    ///
    /// # Panics
    ///
    /// Panics if the part lengths disagree on the invocation count — a
    /// corrupt artifact must be rejected by the decoder before this.
    pub fn from_parts(
        dataset: Dataset,
        precise: OutputBuffer,
        approx: OutputBuffer,
        max_err: Vec<f32>,
        final_precise: Vec<f64>,
    ) -> Self {
        let n = dataset.invocation_count();
        assert_eq!(precise.len(), n, "precise output count mismatch");
        assert_eq!(approx.len(), n, "approx output count mismatch");
        assert_eq!(max_err.len(), n, "error count mismatch");
        Self {
            dataset,
            precise,
            approx,
            max_err,
            final_precise,
        }
    }

    /// The profiled dataset.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// Number of profiled invocations.
    pub fn invocation_count(&self) -> usize {
        self.max_err.len()
    }

    /// The accelerator error of invocation `i` (normalized max-element).
    pub fn max_error(&self, i: usize) -> f32 {
        self.max_err[i]
    }

    /// All per-invocation accelerator errors.
    pub fn errors(&self) -> &[f32] {
        &self.max_err
    }

    /// The cached precise output of invocation `i`.
    pub fn precise_output(&self, i: usize) -> &[f32] {
        self.precise.get(i)
    }

    /// The cached accelerator output of invocation `i`.
    pub fn approx_output(&self, i: usize) -> &[f32] {
        self.approx.get(i)
    }

    /// The whole precise output stream.
    pub fn precise_outputs(&self) -> &OutputBuffer {
        &self.precise
    }

    /// The whole accelerator output stream.
    pub fn approx_outputs(&self) -> &OutputBuffer {
        &self.approx
    }

    /// The final application output of the all-precise run.
    pub fn final_precise(&self) -> &[f64] {
        &self.final_precise
    }

    /// Replays the dataset with the **oracle filter at `threshold`**: an
    /// invocation uses the accelerator exactly when its measured error is
    /// within the threshold (this is what Algorithm 1's instrumented run
    /// computes).
    pub fn replay_with_threshold(
        &self,
        function: &AcceleratedFunction,
        threshold: f32,
    ) -> ReplayOutcome {
        self.replay_with(function, |i, _input| {
            Decision::from_reject(self.max_err[i] > threshold)
        })
    }

    /// Replays the dataset with an arbitrary per-invocation policy.
    pub fn replay_with(
        &self,
        function: &AcceleratedFunction,
        mut policy: impl FnMut(usize, &[f32]) -> Decision,
    ) -> ReplayOutcome {
        let bench = function.benchmark();
        let n = self.invocation_count();
        let mut mixed = OutputBuffer::with_capacity(bench.output_dim(), n);
        let mut invoked = 0usize;
        for (i, input) in self.dataset.iter().enumerate() {
            match policy(i, input) {
                Decision::Approximate => {
                    invoked += 1;
                    mixed.push(self.approx.get(i));
                }
                Decision::Precise => mixed.push(self.precise.get(i)),
            }
        }
        let final_mixed = bench.run_application(&self.dataset, &mixed);
        let quality_loss = bench
            .quality_metric()
            .quality_loss(&self.final_precise, &final_mixed);
        ReplayOutcome {
            quality_loss,
            invoked,
            total: n,
        }
    }

    /// Replays the dataset with a per-invocation [`Route`], scoring final
    /// quality without panicking — the fault model's scoring path, where a
    /// FIFO drop can route a *stale* accelerator output
    /// ([`Route::ApproxFrom`]) into the output stream.
    ///
    /// With routes of only [`Route::Precise`]/[`Route::Approx`] this is
    /// numerically identical to [`DatasetProfile::replay_with`].
    ///
    /// # Errors
    ///
    /// Returns an error if `routes` does not cover every invocation or if
    /// the final outputs cannot be scored.
    pub fn try_replay_routed(
        &self,
        function: &AcceleratedFunction,
        routes: &[Route],
    ) -> Result<ReplayOutcome> {
        let n = self.invocation_count();
        if routes.len() != n {
            return Err(crate::MithraError::InsufficientData {
                stage: "routed replay",
                available: routes.len(),
                needed: n,
            });
        }
        let bench = function.benchmark();
        let mut mixed = OutputBuffer::with_capacity(bench.output_dim(), n);
        let mut invoked = 0usize;
        for (i, route) in routes.iter().enumerate() {
            match route {
                Route::Precise => mixed.push(self.precise.get(i)),
                Route::Approx => {
                    invoked += 1;
                    mixed.push(self.approx.get(i));
                }
                Route::ApproxFrom(j) => {
                    invoked += 1;
                    mixed.push(self.approx.get((*j).min(n - 1)));
                }
            }
        }
        let final_mixed = bench.run_application(&self.dataset, &mixed);
        let quality_loss = bench
            .quality_metric()
            .try_quality_loss(&self.final_precise, &final_mixed)?;
        Ok(ReplayOutcome {
            quality_loss,
            invoked,
            total: n,
        })
    }

    /// Replays the dataset driving a [`Classifier`], optionally applying
    /// online updates every `online_update_period` invocations (0 = no
    /// updates) using the measured error at `threshold` — the paper's
    /// sporadic error sampling.
    pub fn replay_with_classifier(
        &self,
        function: &AcceleratedFunction,
        classifier: &mut dyn Classifier,
        threshold: f32,
        online_update_period: usize,
    ) -> ReplayOutcome {
        let bench = function.benchmark();
        let n = self.invocation_count();
        let mut mixed = OutputBuffer::with_capacity(bench.output_dim(), n);
        let mut invoked = 0usize;
        for (i, input) in self.dataset.iter().enumerate() {
            let decision = classifier.classify(i, input);
            match decision {
                Decision::Approximate => {
                    invoked += 1;
                    mixed.push(self.approx.get(i));
                }
                Decision::Precise => mixed.push(self.precise.get(i)),
            }
            if online_update_period > 0 && i % online_update_period == 0 {
                classifier.observe(i, input, self.max_err[i] > threshold);
            }
        }
        let final_mixed = bench.run_application(&self.dataset, &mixed);
        let quality_loss = bench
            .quality_metric()
            .quality_loss(&self.final_precise, &final_mixed);
        ReplayOutcome {
            quality_loss,
            invoked,
            total: n,
        }
    }

    /// Per-element final error of the full-approximation run — the sample
    /// Figure 1 plots.
    pub fn full_approx_element_errors(&self, function: &AcceleratedFunction) -> Vec<f64> {
        let bench = function.benchmark();
        let final_approx = bench.run_application(&self.dataset, &self.approx);
        bench
            .quality_metric()
            .element_errors(&self.final_precise, &final_approx)
    }

    /// The oracle decision (reject?) of every invocation at `threshold` —
    /// ground truth for false-positive/negative accounting.
    pub fn oracle_rejects(&self, threshold: f32) -> Vec<bool> {
        self.max_err.iter().map(|&e| e > threshold).collect()
    }
}

/// The default worker-thread count: the machine's available parallelism
/// (4 when it cannot be queried). One `--threads` flag governs both
/// parallel profiling here and the serving worker pool in `mithra-serve`,
/// and this is the value both default to.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4)
}

/// Profiles `count` seeded datasets in parallel across worker threads.
///
/// `threads` overrides the worker count (`None` or `Some(0)` = available
/// parallelism via [`default_threads`]; always clamped to `count`). The
/// request is additionally bounded by
/// [`crate::parallel::work_bounded_threads`] over the job's total
/// invocation count, so small jobs — where thread setup costs more than
/// the arithmetic — run sequentially even under `--threads 2`.
/// Dataset `i` uses seed `seed_base + i`, exactly as the sequential loop
/// would. Each profile is computed independently from its own dataset, so
/// the result is bit-identical to calling [`DatasetProfile::collect`]
/// sequentially — parallelism changes wall time only, never the numbers.
pub fn collect_profiles_parallel(
    function: &AcceleratedFunction,
    seed_base: u64,
    count: usize,
    scale: mithra_axbench::dataset::DatasetScale,
    threads: Option<usize>,
) -> Vec<DatasetProfile> {
    // Invocation count is constant across seeds for a benchmark/scale, so
    // one probe dataset prices the whole job.
    let per_dataset = if count == 0 {
        0
    } else {
        function.dataset(seed_base, scale).invocation_count()
    };
    let bounded = crate::parallel::work_bounded_threads(threads, per_dataset * count);
    crate::parallel::par_map_indexed(count, Some(bounded), |i| {
        let ds = function.dataset(seed_base + i as u64, scale);
        DatasetProfile::collect(function, ds)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::NpuTrainConfig;
    use mithra_axbench::benchmark::Benchmark;
    use mithra_axbench::dataset::DatasetScale;
    use mithra_axbench::suite;
    use std::sync::Arc;

    fn profile_for(name: &str) -> (AcceleratedFunction, DatasetProfile) {
        let bench: Arc<dyn Benchmark> = suite::by_name(name).unwrap().into();
        let datasets: Vec<Dataset> = (0..2)
            .map(|s| bench.dataset(s, DatasetScale::Smoke))
            .collect();
        let f = AcceleratedFunction::train(
            bench,
            &datasets,
            &NpuTrainConfig {
                epochs: Some(25),
                max_samples: 1500,
                seed: 3,
            },
        )
        .unwrap();
        let ds = f.dataset(100, DatasetScale::Smoke);
        let p = DatasetProfile::collect(&f, ds);
        (f, p)
    }

    #[test]
    fn infinite_threshold_is_full_approximation() {
        let (f, p) = profile_for("sobel");
        let replay = p.replay_with_threshold(&f, f32::INFINITY);
        assert_eq!(replay.invoked, replay.total);
        assert!(replay.quality_loss > 0.0, "approximation should be lossy");
    }

    #[test]
    fn negative_threshold_is_all_precise() {
        let (f, p) = profile_for("sobel");
        let replay = p.replay_with_threshold(&f, -1.0);
        assert_eq!(replay.invoked, 0);
        assert_eq!(replay.quality_loss, 0.0);
        assert_eq!(replay.invocation_rate(), 0.0);
    }

    #[test]
    fn tighter_threshold_never_invokes_more() {
        let (f, p) = profile_for("inversek2j");
        let loose = p.replay_with_threshold(&f, 0.2);
        let tight = p.replay_with_threshold(&f, 0.05);
        assert!(tight.invoked <= loose.invoked);
    }

    #[test]
    fn oracle_rejects_match_threshold_replay() {
        let (f, p) = profile_for("blackscholes");
        let th = 0.05;
        let rejects = p.oracle_rejects(th);
        let replay = p.replay_with_threshold(&f, th);
        let expected_invoked = rejects.iter().filter(|&&r| !r).count();
        assert_eq!(replay.invoked, expected_invoked);
    }

    #[test]
    fn parallel_profiling_is_bit_identical_to_sequential() {
        let (f, _) = profile_for("sobel");
        let par = collect_profiles_parallel(&f, 40, 6, DatasetScale::Smoke, None);
        assert_eq!(par.len(), 6);
        for (i, p) in par.iter().enumerate() {
            let ds = f.dataset(40 + i as u64, DatasetScale::Smoke);
            let seq = DatasetProfile::collect(&f, ds);
            assert_eq!(p.dataset(), seq.dataset(), "dataset {i} differs");
            assert_eq!(p.errors(), seq.errors(), "errors {i} differ");
            assert_eq!(p.final_precise(), seq.final_precise(), "finals {i} differ");
        }
        // An explicit thread count changes scheduling only, never results.
        for threads in [Some(1), Some(2), Some(0)] {
            let alt = collect_profiles_parallel(&f, 40, 6, DatasetScale::Smoke, threads);
            for (i, (a, b)) in par.iter().zip(&alt).enumerate() {
                assert_eq!(a.errors(), b.errors(), "threads {threads:?} profile {i}");
            }
        }
    }

    #[test]
    fn routed_replay_matches_replay_with_on_clean_routes() {
        let (f, p) = profile_for("sobel");
        let th = 0.08;
        let routes: Vec<Route> = p
            .oracle_rejects(th)
            .iter()
            .map(|&r| if r { Route::Precise } else { Route::Approx })
            .collect();
        let routed = p.try_replay_routed(&f, &routes).unwrap();
        let direct = p.replay_with_threshold(&f, th);
        assert_eq!(routed.quality_loss, direct.quality_loss);
        assert_eq!(routed.invoked, direct.invoked);
    }

    #[test]
    fn stale_route_degrades_quality() {
        let (f, p) = profile_for("sobel");
        // All approx, but every invocation reads invocation 0's output.
        let stale: Vec<Route> = (0..p.invocation_count())
            .map(|_| Route::ApproxFrom(0))
            .collect();
        let fresh: Vec<Route> = (0..p.invocation_count()).map(|_| Route::Approx).collect();
        let s = p.try_replay_routed(&f, &stale).unwrap();
        let fr = p.try_replay_routed(&f, &fresh).unwrap();
        assert!(
            s.quality_loss > fr.quality_loss,
            "stale {} vs fresh {}",
            s.quality_loss,
            fr.quality_loss
        );
    }

    #[test]
    fn routed_replay_rejects_short_routes() {
        let (f, p) = profile_for("sobel");
        assert!(p.try_replay_routed(&f, &[Route::Precise]).is_err());
    }

    #[test]
    fn element_errors_have_final_output_length() {
        let (f, p) = profile_for("sobel");
        let errs = p.full_approx_element_errors(&f);
        assert_eq!(errs.len(), p.final_precise().len());
        assert!(errs.iter().all(|&e| (0.0..=1.0).contains(&e)));
    }
}
