//! The neural classifier (paper §IV-B).
//!
//! A three-layer MLP — input layer matching the accelerator's inputs, one
//! hidden layer of 2/4/8/16/32 neurons, and two output neurons (one per
//! decision) — executed on the NPU itself. The compiler trains all five
//! topologies and keeps "the one that provides the highest accuracy with
//! the fewest neurons". The classifier spends some of the acceleration
//! gains (an extra network evaluation per invocation) to buy better
//! filtering accuracy than the table design on high-dimensional inputs.

use crate::classifier::{Classifier, ClassifierOverhead, Decision};
use crate::parallel::par_map_indexed;
use crate::training::{split_examples, TrainingExample};
use crate::{MithraError, Result};
use mithra_npu::mlp::{Activation, ForwardScratch, Mlp};
use mithra_npu::topology::Topology;
use mithra_npu::train::{Normalizer, Trainer};

/// Hidden-layer widths the paper's topology search explores.
pub const HIDDEN_CANDIDATES: [usize; 5] = [2, 4, 8, 16, 32];

/// Training settings for the neural classifier.
#[derive(Debug, Clone, PartialEq)]
pub struct NeuralTrainConfig {
    /// Hidden-layer widths to try.
    pub hidden_candidates: Vec<usize>,
    /// Training epochs per candidate.
    pub epochs: usize,
    /// Fraction of examples held out to score candidates.
    pub validation_fraction: f64,
    /// Accuracy slack within which a smaller network wins the tie.
    pub accuracy_tolerance: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for NeuralTrainConfig {
    fn default() -> Self {
        Self {
            hidden_candidates: HIDDEN_CANDIDATES.to_vec(),
            epochs: 60,
            validation_fraction: 0.2,
            accuracy_tolerance: 0.005,
            seed: 0x4E45_5552,
        }
    }
}

/// Reusable decision buffers: the normalized-input staging vector and the
/// network's per-layer activations. Carried per classifier instance so the
/// per-invocation decision path allocates nothing.
#[derive(Debug, Clone, Default)]
struct DecideScratch {
    normalized: Vec<f32>,
    fwd: ForwardScratch,
}

/// The trained neural classifier.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct NeuralClassifier {
    mlp: Mlp,
    input_norm: Normalizer,
    validation_accuracy: f64,
    #[serde(skip)]
    scratch: DecideScratch,
}

impl NeuralClassifier {
    /// Trains the classifier with the paper's topology search.
    ///
    /// # Errors
    ///
    /// Returns [`MithraError::InsufficientData`] with fewer than 10
    /// examples, and propagates NPU training errors.
    pub fn train(
        input_dim: usize,
        examples: &[TrainingExample],
        config: &NeuralTrainConfig,
    ) -> Result<Self> {
        Self::train_with_threads(input_dim, examples, config, Some(1))
    }

    /// [`NeuralClassifier::train`] with the hidden-width candidates trained
    /// across up to `threads` workers (`None`/`Some(0)` = available
    /// parallelism).
    ///
    /// Each candidate trains independently with its own seeded RNG, and
    /// the winner is selected by folding candidate results in the original
    /// candidate order — so the trained classifier is bit-identical at any
    /// thread count.
    ///
    /// # Errors
    ///
    /// Same as [`NeuralClassifier::train`].
    pub fn train_with_threads(
        input_dim: usize,
        examples: &[TrainingExample],
        config: &NeuralTrainConfig,
        threads: Option<usize>,
    ) -> Result<Self> {
        if examples.len() < 10 {
            return Err(MithraError::InsufficientData {
                stage: "neural classifier training",
                available: examples.len(),
                needed: 10,
            });
        }
        if config.hidden_candidates.is_empty() {
            return Err(MithraError::InvalidConfig {
                parameter: "hidden_candidates",
                constraint: "at least one hidden width",
            });
        }

        let inputs: Vec<Vec<f32>> = examples.iter().map(|e| e.input.clone()).collect();
        let input_norm = Normalizer::fit(&inputs, 0.0, 1.0);

        let (train_set, val_set) =
            split_examples(examples.to_vec(), config.validation_fraction, config.seed);
        let to_pairs = |set: &[TrainingExample]| -> Vec<(Vec<f32>, Vec<f32>)> {
            set.iter()
                .map(|e| {
                    let target = if e.reject {
                        vec![0.0, 1.0] // output 1 = precise
                    } else {
                        vec![1.0, 0.0] // output 0 = approximate
                    };
                    (input_norm.forward(&e.input), target)
                })
                .collect()
        };
        // Rejects are the minority class (only a small fraction of
        // invocations cause large errors); oversample them so the MSE
        // objective does not learn to always answer "approximate" —
        // missed rejects are what breach the quality target.
        let mut train_pairs = to_pairs(&train_set);
        let reject_count = train_set.iter().filter(|e| e.reject).count();
        if reject_count > 0 && reject_count * 4 < train_set.len() {
            let replicas = ((train_set.len() - reject_count) / reject_count.max(1)).min(5);
            let rejects: Vec<(Vec<f32>, Vec<f32>)> = train_set
                .iter()
                .zip(&train_pairs)
                .filter(|(e, _)| e.reject)
                .map(|(_, p)| p.clone())
                .collect();
            for _ in 1..replicas {
                train_pairs.extend(rejects.iter().cloned());
            }
        }
        let val_pairs = to_pairs(if val_set.is_empty() {
            &train_set
        } else {
            &val_set
        });

        // Every hidden-width candidate trains from its own seeded RNG on
        // the same (shared, read-only) pair sets, so candidates are
        // independent and can run concurrently. Selection stays a
        // sequential fold in candidate order below.
        let candidates: Vec<Result<(usize, f64, Mlp)>> =
            par_map_indexed(config.hidden_candidates.len(), threads, |i| {
                let hidden = config.hidden_candidates[i];
                let topology = Topology::new(&[input_dim, hidden, 2])?;
                let mlp = Trainer::new(topology)
                    .epochs(config.epochs)
                    .learning_rate(0.5)
                    .batch_size(32)
                    .output_activation(Activation::Sigmoid)
                    .seed(config.seed ^ hidden as u64)
                    .train(&train_pairs)?;
                let accuracy = classification_accuracy(&mlp, &val_pairs);
                Ok((hidden, accuracy, mlp))
            });
        let mut best: Option<(usize, f64, Mlp)> = None;
        for candidate in candidates {
            let (hidden, accuracy, mlp) = candidate?;
            let better = match &best {
                None => true,
                Some((best_hidden, best_acc, _)) => {
                    accuracy > best_acc + config.accuracy_tolerance
                        || (accuracy >= best_acc - config.accuracy_tolerance
                            && hidden < *best_hidden
                            && accuracy >= *best_acc)
                }
            };
            if better {
                best = Some((hidden, accuracy, mlp));
            }
        }
        let (_, validation_accuracy, mlp) = best.expect("at least one candidate trained");
        Ok(Self {
            mlp,
            input_norm,
            validation_accuracy,
            scratch: DecideScratch::default(),
        })
    }

    /// Builds a classifier from a pre-trained network (loading a stored
    /// configuration).
    pub fn from_parts(mlp: Mlp, input_norm: Normalizer) -> Self {
        Self {
            mlp,
            input_norm,
            validation_accuracy: f64::NAN,
            scratch: DecideScratch::default(),
        }
    }

    /// The selected network topology.
    pub fn topology(&self) -> &Topology {
        self.mlp.topology()
    }

    /// The trained network itself (for configuration encoding).
    pub fn network(&self) -> &Mlp {
        &self.mlp
    }

    /// The fitted input normalizer.
    pub fn input_normalizer(&self) -> &Normalizer {
        &self.input_norm
    }

    /// Held-out accuracy of the selected candidate (NaN when loaded from
    /// parts).
    pub fn validation_accuracy(&self) -> f64 {
        self.validation_accuracy
    }

    /// Storage footprint of the network parameters in kilobytes, at 16-bit
    /// fixed-point weights (how Table II sizes the neural design).
    pub fn size_kb(&self) -> f64 {
        self.mlp.topology().parameter_bytes(2) as f64 / 1024.0
    }

    /// The decision for one input vector.
    pub fn decide(&mut self, input: &[f32]) -> Decision {
        self.input_norm
            .forward_into(input, &mut self.scratch.normalized);
        let out = self
            .mlp
            .forward_into(&self.scratch.normalized, &mut self.scratch.fwd)
            .expect("input width fixed at training time");
        // Output neuron 0 votes approximate, neuron 1 votes precise; the
        // larger value wins (paper §IV-B).
        Decision::from_reject(out[1] > out[0])
    }
}

/// One labeled K-ary training tuple: an input vector and the class it
/// maps to (for routing: class `m` = pool member `m`, class `K` =
/// precise).
#[derive(Debug, Clone, PartialEq)]
pub struct KaryExample {
    /// The raw input vector.
    pub input: Vec<f32>,
    /// The target class, `0..classes`.
    pub class: usize,
}

/// The K-ary generalization of [`NeuralClassifier`] (§IV-B extended):
/// the same three-layer MLP and topology search, but with one sigmoid
/// output neuron per class instead of the approximate/precise pair. The
/// largest output wins; ties break toward the lowest class index, so
/// decisions are deterministic.
///
/// Used as the swept *neural router* axis of the design-space explorer —
/// a single K+1-class network consulted once per invocation, against the
/// table cascade's one-stage-per-member walk. With `classes == 2` the
/// decision rule degenerates to the binary classifier's
/// (`out[1] > out[0]` = reject).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct KaryNeuralClassifier {
    mlp: Mlp,
    input_norm: Normalizer,
    classes: usize,
    validation_accuracy: f64,
    #[serde(skip)]
    scratch: DecideScratch,
}

impl KaryNeuralClassifier {
    /// Trains the K-class classifier with the paper's topology search,
    /// spread across up to `threads` workers. Candidates train from
    /// their own seeded RNGs and the winner is selected by a sequential
    /// fold in candidate order, so the result is bit-identical at any
    /// thread count.
    ///
    /// The rarest class is oversampled the same way the binary trainer
    /// oversamples rejects: under an MSE objective the majority route
    /// would otherwise drown out the precise fallback, and missed
    /// fallbacks are what breach the quality target.
    ///
    /// # Errors
    ///
    /// Returns [`MithraError::InsufficientData`] with fewer than 10
    /// examples, [`MithraError::InvalidConfig`] for fewer than two
    /// classes or an out-of-range label, and propagates NPU training
    /// errors.
    pub fn train_with_threads(
        input_dim: usize,
        examples: &[KaryExample],
        classes: usize,
        config: &NeuralTrainConfig,
        threads: Option<usize>,
    ) -> Result<Self> {
        if examples.len() < 10 {
            return Err(MithraError::InsufficientData {
                stage: "k-ary neural classifier training",
                available: examples.len(),
                needed: 10,
            });
        }
        if classes < 2 {
            return Err(MithraError::InvalidConfig {
                parameter: "classes",
                constraint: "at least two classes",
            });
        }
        if examples.iter().any(|e| e.class >= classes) {
            return Err(MithraError::InvalidConfig {
                parameter: "examples",
                constraint: "every class label below `classes`",
            });
        }
        if config.hidden_candidates.is_empty() {
            return Err(MithraError::InvalidConfig {
                parameter: "hidden_candidates",
                constraint: "at least one hidden width",
            });
        }

        let inputs: Vec<Vec<f32>> = examples.iter().map(|e| e.input.clone()).collect();
        let input_norm = Normalizer::fit(&inputs, 0.0, 1.0);

        // Reuse the binary splitter by smuggling the class through a
        // parallel vector: shuffle indices, not examples.
        let index_examples: Vec<crate::training::TrainingExample> = examples
            .iter()
            .enumerate()
            .map(|(i, _)| crate::training::TrainingExample {
                input: vec![i as f32],
                reject: false,
            })
            .collect();
        let (train_idx, val_idx) =
            split_examples(index_examples, config.validation_fraction, config.seed);
        let to_pairs = |set: &[crate::training::TrainingExample]| -> Vec<(Vec<f32>, Vec<f32>)> {
            set.iter()
                .map(|ie| {
                    let e = &examples[ie.input[0] as usize];
                    let mut target = vec![0.0; classes];
                    target[e.class] = 1.0;
                    (input_norm.forward(&e.input), target)
                })
                .collect()
        };
        let mut train_pairs = to_pairs(&train_idx);

        // Oversample the rarest class (ties break toward the highest
        // class index — the precise fallback, the costly one to miss).
        let mut counts = vec![0usize; classes];
        for ie in &train_idx {
            counts[examples[ie.input[0] as usize].class] += 1;
        }
        let rare = (0..classes)
            .rev()
            .filter(|&c| counts[c] > 0)
            .min_by_key(|&c| counts[c])
            .unwrap_or(0);
        if counts[rare] > 0 && counts[rare] * 4 < train_idx.len() {
            let replicas = ((train_idx.len() - counts[rare]) / counts[rare].max(1)).min(5);
            let rares: Vec<(Vec<f32>, Vec<f32>)> = train_idx
                .iter()
                .zip(&train_pairs)
                .filter(|(ie, _)| examples[ie.input[0] as usize].class == rare)
                .map(|(_, p)| p.clone())
                .collect();
            for _ in 1..replicas {
                train_pairs.extend(rares.iter().cloned());
            }
        }
        let val_pairs = to_pairs(if val_idx.is_empty() {
            &train_idx
        } else {
            &val_idx
        });

        let candidates: Vec<Result<(usize, f64, Mlp)>> =
            par_map_indexed(config.hidden_candidates.len(), threads, |i| {
                let hidden = config.hidden_candidates[i];
                let topology = Topology::new(&[input_dim, hidden, classes])?;
                let mlp = Trainer::new(topology)
                    .epochs(config.epochs)
                    .learning_rate(0.5)
                    .batch_size(32)
                    .output_activation(Activation::Sigmoid)
                    .seed(config.seed ^ hidden as u64)
                    .train(&train_pairs)?;
                let accuracy = kary_accuracy(&mlp, &val_pairs);
                Ok((hidden, accuracy, mlp))
            });
        let mut best: Option<(usize, f64, Mlp)> = None;
        for candidate in candidates {
            let (hidden, accuracy, mlp) = candidate?;
            let better = match &best {
                None => true,
                Some((best_hidden, best_acc, _)) => {
                    accuracy > best_acc + config.accuracy_tolerance
                        || (accuracy >= best_acc - config.accuracy_tolerance
                            && hidden < *best_hidden
                            && accuracy >= *best_acc)
                }
            };
            if better {
                best = Some((hidden, accuracy, mlp));
            }
        }
        let (_, validation_accuracy, mlp) = best.expect("at least one candidate trained");
        Ok(Self {
            mlp,
            input_norm,
            classes,
            validation_accuracy,
            scratch: DecideScratch::default(),
        })
    }

    /// Number of output classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// The selected network topology.
    pub fn topology(&self) -> &Topology {
        self.mlp.topology()
    }

    /// Held-out accuracy of the selected candidate.
    pub fn validation_accuracy(&self) -> f64 {
        self.validation_accuracy
    }

    /// The class decision for one input vector: the largest output wins,
    /// ties toward the lowest class index.
    pub fn decide_class(&mut self, input: &[f32]) -> usize {
        self.input_norm
            .forward_into(input, &mut self.scratch.normalized);
        let out = self
            .mlp
            .forward_into(&self.scratch.normalized, &mut self.scratch.fwd)
            .expect("input width fixed at training time");
        let mut best = 0usize;
        for (c, v) in out.iter().enumerate() {
            if *v > out[best] {
                best = c;
            }
        }
        best
    }
}

fn kary_accuracy(mlp: &Mlp, pairs: &[(Vec<f32>, Vec<f32>)]) -> f64 {
    if pairs.is_empty() {
        return 0.0;
    }
    let argmax = |v: &[f32]| -> usize {
        let mut best = 0usize;
        for (c, x) in v.iter().enumerate() {
            if *x > v[best] {
                best = c;
            }
        }
        best
    };
    let mut scratch = ForwardScratch::new();
    let correct = pairs
        .iter()
        .filter(|(x, target)| {
            let out = mlp.forward_into(x, &mut scratch).expect("widths match");
            argmax(out) == argmax(target)
        })
        .count();
    correct as f64 / pairs.len() as f64
}

fn classification_accuracy(mlp: &Mlp, pairs: &[(Vec<f32>, Vec<f32>)]) -> f64 {
    if pairs.is_empty() {
        return 0.0;
    }
    let mut scratch = ForwardScratch::new();
    let correct = pairs
        .iter()
        .filter(|(x, target)| {
            let out = mlp.forward_into(x, &mut scratch).expect("widths match");
            (out[1] > out[0]) == (target[1] > target[0])
        })
        .count();
    correct as f64 / pairs.len() as f64
}

impl Classifier for NeuralClassifier {
    fn name(&self) -> &'static str {
        "neural"
    }

    fn classify(&mut self, _index: usize, input: &[f32]) -> Decision {
        self.decide(input)
    }

    fn overhead(&self) -> ClassifierOverhead {
        // The classifier network runs on the NPU before the accelerator
        // network: a full extra invocation of its topology.
        ClassifierOverhead {
            decision_cycles: 0,
            misr_shifts: 0,
            table_bit_reads: 0,
            npu_topology: Some(self.mlp.topology().clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A linearly separable task: reject when x > 0.7.
    fn separable_examples(n: usize) -> Vec<TrainingExample> {
        (0..n)
            .map(|i| {
                let x = i as f32 / (n - 1) as f32;
                TrainingExample {
                    input: vec![x, 1.0 - x],
                    reject: x > 0.7,
                }
            })
            .collect()
    }

    fn quick_config() -> NeuralTrainConfig {
        NeuralTrainConfig {
            hidden_candidates: vec![2, 4],
            epochs: 150,
            ..NeuralTrainConfig::default()
        }
    }

    #[test]
    fn learns_separable_boundary() {
        let ex = separable_examples(200);
        let mut c = NeuralClassifier::train(2, &ex, &quick_config()).unwrap();
        assert_eq!(c.decide(&[0.95, 0.05]), Decision::Precise);
        assert_eq!(c.decide(&[0.1, 0.9]), Decision::Approximate);
        assert!(
            c.validation_accuracy() > 0.85,
            "{}",
            c.validation_accuracy()
        );
    }

    #[test]
    fn topology_search_prefers_small_networks_on_easy_tasks() {
        let ex = separable_examples(300);
        let cfg = NeuralTrainConfig {
            hidden_candidates: vec![2, 4, 8, 16, 32],
            epochs: 120,
            ..NeuralTrainConfig::default()
        };
        let c = NeuralClassifier::train(2, &ex, &cfg).unwrap();
        // A 2-neuron hidden layer suffices for a linear boundary; the
        // search must not pick 32.
        let hidden = c.topology().layers()[1];
        assert!(hidden <= 8, "picked {hidden} hidden neurons");
    }

    #[test]
    fn output_layer_always_two_neurons() {
        let ex = separable_examples(100);
        let c = NeuralClassifier::train(2, &ex, &quick_config()).unwrap();
        assert_eq!(c.topology().outputs(), 2);
    }

    #[test]
    fn size_kb_matches_parameter_count() {
        let ex = separable_examples(100);
        let c = NeuralClassifier::train(2, &ex, &quick_config()).unwrap();
        let expected = c.topology().parameter_bytes(2) as f64 / 1024.0;
        assert_eq!(c.size_kb(), expected);
    }

    #[test]
    fn rejects_tiny_training_sets() {
        let ex = separable_examples(5);
        assert!(matches!(
            NeuralClassifier::train(2, &ex, &quick_config()),
            Err(MithraError::InsufficientData { .. })
        ));
    }

    #[test]
    fn overhead_charges_npu_invocation() {
        let ex = separable_examples(100);
        let c = NeuralClassifier::train(2, &ex, &quick_config()).unwrap();
        let o = c.overhead();
        assert!(o.npu_topology.is_some());
        assert_eq!(o.table_bit_reads, 0);
    }

    #[test]
    fn training_is_deterministic() {
        let ex = separable_examples(150);
        let a = NeuralClassifier::train(2, &ex, &quick_config()).unwrap();
        let b = NeuralClassifier::train(2, &ex, &quick_config()).unwrap();
        assert_eq!(a.mlp.to_parameters(), b.mlp.to_parameters());
    }

    /// Three bands on one axis: class 0 below 0.33, class 1 below 0.66,
    /// class 2 (the "precise" fallback) above.
    fn banded_examples(n: usize) -> Vec<KaryExample> {
        (0..n)
            .map(|i| {
                let x = i as f32 / (n - 1) as f32;
                let class = if x < 0.33 {
                    0
                } else if x < 0.66 {
                    1
                } else {
                    2
                };
                KaryExample {
                    input: vec![x, 1.0 - x],
                    class,
                }
            })
            .collect()
    }

    #[test]
    fn kary_learns_banded_classes() {
        let ex = banded_examples(300);
        let mut c =
            KaryNeuralClassifier::train_with_threads(2, &ex, 3, &quick_config(), Some(1)).unwrap();
        assert_eq!(c.classes(), 3);
        assert_eq!(c.topology().outputs(), 3);
        assert_eq!(c.decide_class(&[0.1, 0.9]), 0);
        assert_eq!(c.decide_class(&[0.5, 0.5]), 1);
        assert_eq!(c.decide_class(&[0.95, 0.05]), 2);
        assert!(c.validation_accuracy() > 0.8, "{}", c.validation_accuracy());
    }

    #[test]
    fn kary_is_bit_identical_across_thread_counts() {
        let ex = banded_examples(200);
        let cfg = NeuralTrainConfig {
            hidden_candidates: vec![2, 4, 8],
            epochs: 60,
            ..NeuralTrainConfig::default()
        };
        let a = KaryNeuralClassifier::train_with_threads(2, &ex, 3, &cfg, Some(1)).unwrap();
        let b = KaryNeuralClassifier::train_with_threads(2, &ex, 3, &cfg, Some(4)).unwrap();
        assert_eq!(a.mlp.to_parameters(), b.mlp.to_parameters());
    }

    #[test]
    fn kary_rejects_bad_configs() {
        let ex = banded_examples(100);
        assert!(matches!(
            KaryNeuralClassifier::train_with_threads(2, &ex, 1, &quick_config(), Some(1)),
            Err(MithraError::InvalidConfig { .. })
        ));
        assert!(matches!(
            KaryNeuralClassifier::train_with_threads(2, &ex, 2, &quick_config(), Some(1)),
            Err(MithraError::InvalidConfig { .. })
        ));
        assert!(matches!(
            KaryNeuralClassifier::train_with_threads(2, &ex[..5], 3, &quick_config(), Some(1)),
            Err(MithraError::InsufficientData { .. })
        ));
    }
}
