//! The neural classifier (paper §IV-B).
//!
//! A three-layer MLP — input layer matching the accelerator's inputs, one
//! hidden layer of 2/4/8/16/32 neurons, and two output neurons (one per
//! decision) — executed on the NPU itself. The compiler trains all five
//! topologies and keeps "the one that provides the highest accuracy with
//! the fewest neurons". The classifier spends some of the acceleration
//! gains (an extra network evaluation per invocation) to buy better
//! filtering accuracy than the table design on high-dimensional inputs.

use crate::classifier::{Classifier, ClassifierOverhead, Decision};
use crate::parallel::par_map_indexed;
use crate::training::{split_examples, TrainingExample};
use crate::{MithraError, Result};
use mithra_npu::mlp::{Activation, ForwardScratch, Mlp};
use mithra_npu::topology::Topology;
use mithra_npu::train::{Normalizer, Trainer};

/// Hidden-layer widths the paper's topology search explores.
pub const HIDDEN_CANDIDATES: [usize; 5] = [2, 4, 8, 16, 32];

/// Training settings for the neural classifier.
#[derive(Debug, Clone, PartialEq)]
pub struct NeuralTrainConfig {
    /// Hidden-layer widths to try.
    pub hidden_candidates: Vec<usize>,
    /// Training epochs per candidate.
    pub epochs: usize,
    /// Fraction of examples held out to score candidates.
    pub validation_fraction: f64,
    /// Accuracy slack within which a smaller network wins the tie.
    pub accuracy_tolerance: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for NeuralTrainConfig {
    fn default() -> Self {
        Self {
            hidden_candidates: HIDDEN_CANDIDATES.to_vec(),
            epochs: 60,
            validation_fraction: 0.2,
            accuracy_tolerance: 0.005,
            seed: 0x4E45_5552,
        }
    }
}

/// Reusable decision buffers: the normalized-input staging vector and the
/// network's per-layer activations. Carried per classifier instance so the
/// per-invocation decision path allocates nothing.
#[derive(Debug, Clone, Default)]
struct DecideScratch {
    normalized: Vec<f32>,
    fwd: ForwardScratch,
}

/// The trained neural classifier.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct NeuralClassifier {
    mlp: Mlp,
    input_norm: Normalizer,
    validation_accuracy: f64,
    #[serde(skip)]
    scratch: DecideScratch,
}

impl NeuralClassifier {
    /// Trains the classifier with the paper's topology search.
    ///
    /// # Errors
    ///
    /// Returns [`MithraError::InsufficientData`] with fewer than 10
    /// examples, and propagates NPU training errors.
    pub fn train(
        input_dim: usize,
        examples: &[TrainingExample],
        config: &NeuralTrainConfig,
    ) -> Result<Self> {
        Self::train_with_threads(input_dim, examples, config, Some(1))
    }

    /// [`NeuralClassifier::train`] with the hidden-width candidates trained
    /// across up to `threads` workers (`None`/`Some(0)` = available
    /// parallelism).
    ///
    /// Each candidate trains independently with its own seeded RNG, and
    /// the winner is selected by folding candidate results in the original
    /// candidate order — so the trained classifier is bit-identical at any
    /// thread count.
    ///
    /// # Errors
    ///
    /// Same as [`NeuralClassifier::train`].
    pub fn train_with_threads(
        input_dim: usize,
        examples: &[TrainingExample],
        config: &NeuralTrainConfig,
        threads: Option<usize>,
    ) -> Result<Self> {
        if examples.len() < 10 {
            return Err(MithraError::InsufficientData {
                stage: "neural classifier training",
                available: examples.len(),
                needed: 10,
            });
        }
        if config.hidden_candidates.is_empty() {
            return Err(MithraError::InvalidConfig {
                parameter: "hidden_candidates",
                constraint: "at least one hidden width",
            });
        }

        let inputs: Vec<Vec<f32>> = examples.iter().map(|e| e.input.clone()).collect();
        let input_norm = Normalizer::fit(&inputs, 0.0, 1.0);

        let (train_set, val_set) =
            split_examples(examples.to_vec(), config.validation_fraction, config.seed);
        let to_pairs = |set: &[TrainingExample]| -> Vec<(Vec<f32>, Vec<f32>)> {
            set.iter()
                .map(|e| {
                    let target = if e.reject {
                        vec![0.0, 1.0] // output 1 = precise
                    } else {
                        vec![1.0, 0.0] // output 0 = approximate
                    };
                    (input_norm.forward(&e.input), target)
                })
                .collect()
        };
        // Rejects are the minority class (only a small fraction of
        // invocations cause large errors); oversample them so the MSE
        // objective does not learn to always answer "approximate" —
        // missed rejects are what breach the quality target.
        let mut train_pairs = to_pairs(&train_set);
        let reject_count = train_set.iter().filter(|e| e.reject).count();
        if reject_count > 0 && reject_count * 4 < train_set.len() {
            let replicas = ((train_set.len() - reject_count) / reject_count.max(1)).min(5);
            let rejects: Vec<(Vec<f32>, Vec<f32>)> = train_set
                .iter()
                .zip(&train_pairs)
                .filter(|(e, _)| e.reject)
                .map(|(_, p)| p.clone())
                .collect();
            for _ in 1..replicas {
                train_pairs.extend(rejects.iter().cloned());
            }
        }
        let val_pairs = to_pairs(if val_set.is_empty() {
            &train_set
        } else {
            &val_set
        });

        // Every hidden-width candidate trains from its own seeded RNG on
        // the same (shared, read-only) pair sets, so candidates are
        // independent and can run concurrently. Selection stays a
        // sequential fold in candidate order below.
        let candidates: Vec<Result<(usize, f64, Mlp)>> =
            par_map_indexed(config.hidden_candidates.len(), threads, |i| {
                let hidden = config.hidden_candidates[i];
                let topology = Topology::new(&[input_dim, hidden, 2])?;
                let mlp = Trainer::new(topology)
                    .epochs(config.epochs)
                    .learning_rate(0.5)
                    .batch_size(32)
                    .output_activation(Activation::Sigmoid)
                    .seed(config.seed ^ hidden as u64)
                    .train(&train_pairs)?;
                let accuracy = classification_accuracy(&mlp, &val_pairs);
                Ok((hidden, accuracy, mlp))
            });
        let mut best: Option<(usize, f64, Mlp)> = None;
        for candidate in candidates {
            let (hidden, accuracy, mlp) = candidate?;
            let better = match &best {
                None => true,
                Some((best_hidden, best_acc, _)) => {
                    accuracy > best_acc + config.accuracy_tolerance
                        || (accuracy >= best_acc - config.accuracy_tolerance
                            && hidden < *best_hidden
                            && accuracy >= *best_acc)
                }
            };
            if better {
                best = Some((hidden, accuracy, mlp));
            }
        }
        let (_, validation_accuracy, mlp) = best.expect("at least one candidate trained");
        Ok(Self {
            mlp,
            input_norm,
            validation_accuracy,
            scratch: DecideScratch::default(),
        })
    }

    /// Builds a classifier from a pre-trained network (loading a stored
    /// configuration).
    pub fn from_parts(mlp: Mlp, input_norm: Normalizer) -> Self {
        Self {
            mlp,
            input_norm,
            validation_accuracy: f64::NAN,
            scratch: DecideScratch::default(),
        }
    }

    /// The selected network topology.
    pub fn topology(&self) -> &Topology {
        self.mlp.topology()
    }

    /// The trained network itself (for configuration encoding).
    pub fn network(&self) -> &Mlp {
        &self.mlp
    }

    /// The fitted input normalizer.
    pub fn input_normalizer(&self) -> &Normalizer {
        &self.input_norm
    }

    /// Held-out accuracy of the selected candidate (NaN when loaded from
    /// parts).
    pub fn validation_accuracy(&self) -> f64 {
        self.validation_accuracy
    }

    /// Storage footprint of the network parameters in kilobytes, at 16-bit
    /// fixed-point weights (how Table II sizes the neural design).
    pub fn size_kb(&self) -> f64 {
        self.mlp.topology().parameter_bytes(2) as f64 / 1024.0
    }

    /// The decision for one input vector.
    pub fn decide(&mut self, input: &[f32]) -> Decision {
        self.input_norm
            .forward_into(input, &mut self.scratch.normalized);
        let out = self
            .mlp
            .forward_into(&self.scratch.normalized, &mut self.scratch.fwd)
            .expect("input width fixed at training time");
        // Output neuron 0 votes approximate, neuron 1 votes precise; the
        // larger value wins (paper §IV-B).
        Decision::from_reject(out[1] > out[0])
    }
}

fn classification_accuracy(mlp: &Mlp, pairs: &[(Vec<f32>, Vec<f32>)]) -> f64 {
    if pairs.is_empty() {
        return 0.0;
    }
    let mut scratch = ForwardScratch::new();
    let correct = pairs
        .iter()
        .filter(|(x, target)| {
            let out = mlp.forward_into(x, &mut scratch).expect("widths match");
            (out[1] > out[0]) == (target[1] > target[0])
        })
        .count();
    correct as f64 / pairs.len() as f64
}

impl Classifier for NeuralClassifier {
    fn name(&self) -> &'static str {
        "neural"
    }

    fn classify(&mut self, _index: usize, input: &[f32]) -> Decision {
        self.decide(input)
    }

    fn overhead(&self) -> ClassifierOverhead {
        // The classifier network runs on the NPU before the accelerator
        // network: a full extra invocation of its topology.
        ClassifierOverhead {
            decision_cycles: 0,
            misr_shifts: 0,
            table_bit_reads: 0,
            npu_topology: Some(self.mlp.topology().clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A linearly separable task: reject when x > 0.7.
    fn separable_examples(n: usize) -> Vec<TrainingExample> {
        (0..n)
            .map(|i| {
                let x = i as f32 / (n - 1) as f32;
                TrainingExample {
                    input: vec![x, 1.0 - x],
                    reject: x > 0.7,
                }
            })
            .collect()
    }

    fn quick_config() -> NeuralTrainConfig {
        NeuralTrainConfig {
            hidden_candidates: vec![2, 4],
            epochs: 150,
            ..NeuralTrainConfig::default()
        }
    }

    #[test]
    fn learns_separable_boundary() {
        let ex = separable_examples(200);
        let mut c = NeuralClassifier::train(2, &ex, &quick_config()).unwrap();
        assert_eq!(c.decide(&[0.95, 0.05]), Decision::Precise);
        assert_eq!(c.decide(&[0.1, 0.9]), Decision::Approximate);
        assert!(
            c.validation_accuracy() > 0.85,
            "{}",
            c.validation_accuracy()
        );
    }

    #[test]
    fn topology_search_prefers_small_networks_on_easy_tasks() {
        let ex = separable_examples(300);
        let cfg = NeuralTrainConfig {
            hidden_candidates: vec![2, 4, 8, 16, 32],
            epochs: 120,
            ..NeuralTrainConfig::default()
        };
        let c = NeuralClassifier::train(2, &ex, &cfg).unwrap();
        // A 2-neuron hidden layer suffices for a linear boundary; the
        // search must not pick 32.
        let hidden = c.topology().layers()[1];
        assert!(hidden <= 8, "picked {hidden} hidden neurons");
    }

    #[test]
    fn output_layer_always_two_neurons() {
        let ex = separable_examples(100);
        let c = NeuralClassifier::train(2, &ex, &quick_config()).unwrap();
        assert_eq!(c.topology().outputs(), 2);
    }

    #[test]
    fn size_kb_matches_parameter_count() {
        let ex = separable_examples(100);
        let c = NeuralClassifier::train(2, &ex, &quick_config()).unwrap();
        let expected = c.topology().parameter_bytes(2) as f64 / 1024.0;
        assert_eq!(c.size_kb(), expected);
    }

    #[test]
    fn rejects_tiny_training_sets() {
        let ex = separable_examples(5);
        assert!(matches!(
            NeuralClassifier::train(2, &ex, &quick_config()),
            Err(MithraError::InsufficientData { .. })
        ));
    }

    #[test]
    fn overhead_charges_npu_invocation() {
        let ex = separable_examples(100);
        let c = NeuralClassifier::train(2, &ex, &quick_config()).unwrap();
        let o = c.overhead();
        assert!(o.npu_topology.is_some());
        assert_eq!(o.table_bit_reads, 0);
    }

    #[test]
    fn training_is_deterministic() {
        let ex = separable_examples(150);
        let a = NeuralClassifier::train(2, &ex, &quick_config()).unwrap();
        let b = NeuralClassifier::train(2, &ex, &quick_config()).unwrap();
        assert_eq!(a.mlp.to_parameters(), b.mlp.to_parameters());
    }
}
