//! The runtime classifier abstraction.
//!
//! MITHRA's microarchitectural component "maps an accelerator input vector
//! with multiple elements to a single-bit binary decision" (paper §IV).
//! Every design — table-based, neural, oracle, random — implements
//! [`Classifier`]; the system simulator is generic over it.

use mithra_npu::topology::Topology;

/// The single-bit decision MITHRA makes per invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Decision {
    /// Delegate this invocation to the approximate accelerator
    /// (the paper's training label `0`).
    Approximate,
    /// Run the original precise function on the core
    /// (the paper's training label `1`; the special branch is taken).
    Precise,
}

impl Decision {
    /// The paper's binary encoding: `false` = approximate, `true` =
    /// precise (filtered out).
    pub fn from_reject(reject: bool) -> Self {
        if reject {
            Decision::Precise
        } else {
            Decision::Approximate
        }
    }

    /// Whether this decision falls back to the precise function.
    pub fn is_precise(&self) -> bool {
        matches!(self, Decision::Precise)
    }
}

/// Per-invocation cost footprint of a classifier, interpreted by the
/// system simulator's timing/energy model.
///
/// The table design's hashing overlaps with input enqueue (the paper sends
/// inputs "to both the accelerator and the classifier simultaneously"), so
/// only a small fixed decision latency lands on the critical path; the
/// neural design executes a whole extra network on the NPU.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ClassifierOverhead {
    /// Cycles on the critical path after the last input element arrives.
    pub decision_cycles: u64,
    /// MISR shift operations per invocation (energy accounting).
    pub misr_shifts: u64,
    /// Single-bit table reads per invocation (energy accounting).
    pub table_bit_reads: u64,
    /// If the classifier is itself a network run on the NPU, its topology
    /// (the simulator charges a full NPU invocation for it).
    pub npu_topology: Option<Topology>,
}

/// A runtime quality-control classifier.
///
/// `classify` takes the invocation index alongside the input vector: the
/// oracle uses the index (it has per-invocation ground truth), hardware
/// designs use only the input — mirroring that the oracle is "ideal but
/// infeasible" while the realistic designs rely exclusively on information
/// local to the invocation.
pub trait Classifier: std::fmt::Debug {
    /// Short display name (`"table"`, `"neural"`, `"oracle"`, …).
    fn name(&self) -> &'static str;

    /// Decides whether invocation `index` with `input` goes to the
    /// accelerator or the precise function.
    fn classify(&mut self, index: usize, input: &[f32]) -> Decision;

    /// The per-invocation cost footprint of this design.
    fn overhead(&self) -> ClassifierOverhead;

    /// Observes the measured outcome of a sampled invocation (the online
    /// update path of the table design; a no-op for the others).
    ///
    /// `reject` is `true` when the measured accelerator error exceeded the
    /// threshold.
    fn observe(&mut self, index: usize, input: &[f32], reject: bool) {
        let _ = (index, input, reject);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decision_encoding_matches_paper() {
        assert_eq!(Decision::from_reject(false), Decision::Approximate);
        assert_eq!(Decision::from_reject(true), Decision::Precise);
        assert!(Decision::Precise.is_precise());
        assert!(!Decision::Approximate.is_precise());
    }

    #[test]
    fn default_overhead_is_free() {
        let o = ClassifierOverhead::default();
        assert_eq!(o.decision_cycles, 0);
        assert!(o.npu_topology.is_none());
    }
}
