//! Multi-approximator routing: an ordered pool of NPU topologies plus the
//! machinery to route each invocation to the *cheapest* member that still
//! meets the certified local-error threshold.
//!
//! The binary pipeline asks one question per invocation — "is the (single)
//! accelerator's error acceptable?" — and answers it with one bit. This
//! module generalizes the question to an ordered [`ApproximatorPool`] of
//! cheap → accurate topologies: invocation `i` is served by the first
//! member whose profiled error is within the threshold, and falls back to
//! the precise function when no member qualifies ([`RouteChoice`]). The
//! Clopper–Pearson certificate is then taken over the *routed mixture*
//! (`core::threshold::optimize_routed`), with dataset-level violations
//! attributed to whichever member served the worst invocation.
//!
//! A pool of size 1 whose only member is the benchmark's default topology
//! reduces to the binary pipeline **bit for bit**: the same trained
//! network, the same per-dataset replays, the same bisection probes, and a
//! router whose single stage is the binary table classifier (same training
//! seed, same quantizer). That identity is what keeps every committed
//! result of the single-approximator experiments byte-stable.

use crate::classifier::{Classifier, ClassifierOverhead, Decision};
use crate::function::{AcceleratedFunction, NpuTrainConfig};
use crate::parallel::par_map_indexed;
use crate::pipeline::quantizer_from_profiles;
use crate::profile::DatasetProfile;
use crate::table::{TableClassifier, TableDesign};
use crate::threshold::RoutedThresholdOutcome;
use crate::training::generate_training_data;
use crate::{MithraError, Result};
use mithra_axbench::benchmark::Benchmark;
use mithra_axbench::dataset::{Dataset, DatasetScale, OutputBuffer};
use mithra_npu::kernel::KernelBackend;
use mithra_npu::topology::Topology;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Where one invocation is served in a multi-approximator system: a pool
/// member (by index, cheapest first) or the precise function.
///
/// This is the K-ary generalization of [`Decision`]; encoding a choice
/// takes ⌈log₂(K+1)⌉ bits (see [`route_bits`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteChoice {
    /// Pool member `m` (0 = cheapest) serves the invocation.
    Member(usize),
    /// The precise function serves the invocation.
    Precise,
}

impl RouteChoice {
    /// Whether the invocation runs on the precise core.
    pub fn is_precise(&self) -> bool {
        matches!(self, RouteChoice::Precise)
    }

    /// The pool member index, if an approximator serves the invocation.
    pub fn member(&self) -> Option<usize> {
        match self {
            RouteChoice::Member(m) => Some(*m),
            RouteChoice::Precise => None,
        }
    }
}

/// Bits required to encode a route over a pool of `pool_size` members plus
/// the precise fallback: ⌈log₂(K+1)⌉. A binary pipeline (K = 1) needs the
/// familiar single bit.
pub fn route_bits(pool_size: usize) -> u32 {
    usize::BITS - pool_size.leading_zeros()
}

/// Which deployed router a routed design point uses — a swept axis of
/// the design-space explorer, not a fixed choice.
#[derive(Debug, Clone, PartialEq)]
pub enum RouterKind {
    /// The default K-stage table-classifier cascade, consulted
    /// cheapest-first (one MISR-table stage per pool member).
    TableCascade,
    /// A single K+1-class neural network consulted once per invocation
    /// (one output class per pool member plus the precise fallback),
    /// trained with the carried configuration. Motivated by the
    /// invocation-driven multiclass-classifier line of work.
    KaryNeural(crate::neural::NeuralTrainConfig),
}

impl RouterKind {
    /// The neural router axis with a compact default configuration: a
    /// narrow candidate set and a short epoch budget, because the
    /// deployed-in-the-loop certifier retrains the router at every
    /// bisection probe.
    pub fn kary_neural_default() -> Self {
        RouterKind::KaryNeural(crate::neural::NeuralTrainConfig {
            hidden_candidates: vec![8],
            epochs: 30,
            ..crate::neural::NeuralTrainConfig::default()
        })
    }
}

/// An ordered pool specification: NPU topologies, cheapest first (the last
/// member is conventionally the benchmark's default "accurate" topology),
/// plus the routed design point's swept parameters — the deployed router
/// kind and the per-member labeling margins.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolSpec {
    /// Member topologies, cheapest first.
    pub topologies: Vec<Topology>,
    /// The deployed router kind. `TableCascade` is the default and the
    /// only kind whose artifacts predate the explorer (cache keys for it
    /// are unchanged).
    pub router: RouterKind,
    /// Per-member labeling margins: stage/class `m` labels an invocation
    /// acceptable when its error is within `threshold * margins[m]`.
    /// Empty means 1.0 everywhere — bit-identical to the unmargined
    /// pipeline. Tightening a cheap member's margin below 1.0 trades some
    /// of its serving share for fewer compounded false-accepts.
    pub margins: Vec<f64>,
}

impl PoolSpec {
    /// A pool of exactly one member — the configuration that must stay
    /// bit-identical to the binary pipeline.
    pub fn single(topology: Topology) -> Self {
        Self {
            topologies: vec![topology],
            router: RouterKind::TableCascade,
            margins: Vec::new(),
        }
    }

    /// The default tiered pool derived from an accurate topology: hidden
    /// widths quartered (cheap) and halved (medium), then the accurate
    /// topology itself. Duplicate topologies (tiny networks where the
    /// tiers collapse) are dropped, keeping cheapest-first order.
    pub fn tiered(accurate: &Topology) -> Self {
        Self::sized(accurate, 3)
    }

    /// A tiered pool of up to `pool_size` members ending in `accurate`:
    /// 1 = just the accurate topology, 2 = cheap + accurate, 3 or more =
    /// cheap + medium + accurate (deduplicated).
    pub fn sized(accurate: &Topology, pool_size: usize) -> Self {
        let mut divisors = Vec::new();
        if pool_size >= 3 {
            divisors.push(4);
            divisors.push(2);
        } else if pool_size == 2 {
            divisors.push(4);
        }
        divisors.push(1);
        Self::from_divisors(accurate, &divisors)
    }

    /// A pool whose member `m` runs `accurate` with every hidden width
    /// divided by `divisors[m]` (floor, clamped to 2; divisor 1 is the
    /// accurate topology itself). Divisors are expected cheapest-first
    /// (descending); duplicate topologies collapse. This is the
    /// explorer's enumeration primitive — `sized(t, 3)` is exactly
    /// `from_divisors(t, &[4, 2, 1])`, which is what pins the fixed
    /// PR-6 tiering as one enumerated candidate verbatim.
    pub fn from_divisors(accurate: &Topology, divisors: &[usize]) -> Self {
        let mut topologies: Vec<Topology> = divisors
            .iter()
            .map(|&d| {
                if d <= 1 {
                    accurate.clone()
                } else {
                    scale_hidden(accurate, d)
                }
            })
            .collect();
        topologies.dedup();
        Self {
            topologies,
            router: RouterKind::TableCascade,
            margins: Vec::new(),
        }
    }

    /// This spec with the deployed router kind replaced.
    pub fn with_router(mut self, router: RouterKind) -> Self {
        self.router = router;
        self
    }

    /// This spec with per-member labeling margins. Margins are truncated
    /// or padded (with 1.0) to the member count elsewhere via
    /// [`PoolSpec::margin_for`]; an all-1.0 vector normalizes to empty so
    /// the default spec compares (and cache-keys) identically.
    pub fn with_margins(mut self, margins: Vec<f64>) -> Self {
        self.margins = if margins.iter().all(|m| *m == 1.0) {
            Vec::new()
        } else {
            margins
        };
        self
    }

    /// Member `m`'s labeling margin (1.0 when unset).
    pub fn margin_for(&self, m: usize) -> f64 {
        self.margins.get(m).copied().unwrap_or(1.0)
    }

    /// Whether this spec is a plain unmargined table-cascade design — the
    /// configuration whose cache keys and artifacts predate the explorer.
    pub fn is_default_routing(&self) -> bool {
        self.router == RouterKind::TableCascade && self.margins.is_empty()
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.topologies.len()
    }

    /// Whether the spec has no members (never produced by the
    /// constructors, but checkable for hand-built specs).
    pub fn is_empty(&self) -> bool {
        self.topologies.is_empty()
    }
}

/// Divides every hidden-layer width by `divisor` (floor, clamped to 2),
/// keeping the input and output widths the benchmark fixes.
fn scale_hidden(topology: &Topology, divisor: usize) -> Topology {
    let layers = topology.layers();
    let scaled: Vec<usize> = layers
        .iter()
        .enumerate()
        .map(|(i, &w)| {
            if i == 0 || i == layers.len() - 1 {
                w
            } else {
                (w / divisor).max(2)
            }
        })
        .collect();
    Topology::new(&scaled).expect("scaling hidden widths preserves validity")
}

/// One dataset replayed through the routed mixture: the quality loss of
/// the mixed output stream plus per-member accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutedReplay {
    /// Final-output quality loss versus the all-precise run.
    pub quality_loss: f64,
    /// Invocations served by any pool member.
    pub invoked: usize,
    /// Total invocations.
    pub total: usize,
    /// Invocations served per pool member.
    pub member_invocations: Vec<usize>,
    /// The member that served the invocation with the largest profiled
    /// error — the member a dataset-level violation is attributed to
    /// (0 when nothing was approximated).
    pub worst_member: usize,
}

impl RoutedReplay {
    /// Fraction of invocations served by any pool member.
    pub fn invocation_rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.invoked as f64 / self.total as f64
        }
    }
}

/// An ordered pool of trained approximators, cheapest first.
#[derive(Debug, Clone)]
pub struct ApproximatorPool {
    members: Vec<AcceleratedFunction>,
    topologies: Vec<Topology>,
}

impl ApproximatorPool {
    /// Trains every member of `spec` on the same profile datasets the
    /// binary NPU trains on. A member whose topology equals `primary`'s
    /// benchmark topology reuses the already-trained `primary` network
    /// instead of retraining — which is both faster and what makes the
    /// pool-of-one configuration bit-identical to the binary pipeline.
    ///
    /// Members train under [`par_map_indexed`], so the pool is
    /// bit-identical at any thread count.
    ///
    /// # Errors
    ///
    /// Returns [`MithraError::InvalidConfig`] for an empty spec and
    /// propagates NPU training failures.
    pub fn train(
        benchmark: &Arc<dyn Benchmark>,
        datasets: &[Dataset],
        config: &NpuTrainConfig,
        spec: &PoolSpec,
        threads: Option<usize>,
        primary: Option<&AcceleratedFunction>,
    ) -> Result<Self> {
        Self::train_with_kernel(
            benchmark,
            datasets,
            config,
            spec,
            threads,
            primary,
            KernelBackend::Scalar,
        )
    }

    /// [`ApproximatorPool::train`] on an explicit kernel backend: every
    /// freshly trained member uses `kernel` for its arithmetic. A reused
    /// `primary` keeps whatever backend it carries — the session resolved
    /// both from the same configuration, so they agree.
    ///
    /// # Errors
    ///
    /// Returns [`MithraError::InvalidConfig`] for an empty spec and
    /// propagates NPU training failures.
    pub fn train_with_kernel(
        benchmark: &Arc<dyn Benchmark>,
        datasets: &[Dataset],
        config: &NpuTrainConfig,
        spec: &PoolSpec,
        threads: Option<usize>,
        primary: Option<&AcceleratedFunction>,
        kernel: KernelBackend,
    ) -> Result<Self> {
        if spec.is_empty() {
            return Err(MithraError::InvalidConfig {
                parameter: "pool",
                constraint: "at least one member topology",
            });
        }
        let default_topology = benchmark.npu_topology();
        let results = par_map_indexed(spec.len(), threads, |m| {
            let topology = &spec.topologies[m];
            if let Some(primary) = primary {
                if *topology == default_topology {
                    return Ok(primary.clone());
                }
            }
            AcceleratedFunction::train_with_topology_kernel(
                Arc::clone(benchmark),
                datasets,
                config,
                topology,
                kernel,
            )
        });
        let members = results.into_iter().collect::<Result<Vec<_>>>()?;
        Ok(Self {
            members,
            topologies: spec.topologies.clone(),
        })
    }

    /// Rebuilds a pool from already-trained members (the artifact-cache
    /// load path).
    ///
    /// # Panics
    ///
    /// Panics on an empty member list or a member/topology count mismatch.
    pub fn from_members(members: Vec<AcceleratedFunction>, topologies: Vec<Topology>) -> Self {
        assert!(!members.is_empty(), "a pool needs at least one member");
        assert_eq!(members.len(), topologies.len(), "member/topology mismatch");
        Self {
            members,
            topologies,
        }
    }

    /// This pool with every member's kernel backend replaced — the
    /// artifact-cache reattach, mirroring
    /// [`AcceleratedFunction::with_kernel`].
    #[must_use]
    pub fn with_kernel(mut self, kernel: KernelBackend) -> Self {
        self.members = self
            .members
            .into_iter()
            .map(|m| m.with_kernel(kernel))
            .collect();
        self
    }

    /// The trained members, cheapest first.
    pub fn members(&self) -> &[AcceleratedFunction] {
        &self.members
    }

    /// Member `m`'s trained function.
    pub fn member(&self, m: usize) -> &AcceleratedFunction {
        &self.members[m]
    }

    /// Member topologies, cheapest first.
    pub fn topologies(&self) -> &[Topology] {
        &self.topologies
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the pool is empty (never true for a constructed pool).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The most accurate member (by construction, the last).
    pub fn accurate(&self) -> &AcceleratedFunction {
        self.members.last().expect("pools are non-empty")
    }

    /// The benchmark all members accelerate.
    pub fn benchmark(&self) -> &Arc<dyn Benchmark> {
        self.members[0].benchmark()
    }

    /// Profiles `count` seeded datasets through **every** member:
    /// `result[m][i]` is member `m`'s profile of dataset `seed_base + i`.
    /// Each member profiles the same seeded datasets the binary profiler
    /// would, so member profiles of the default topology are bit-identical
    /// to the binary pipeline's.
    pub fn profile_members(
        &self,
        seed_base: u64,
        count: usize,
        scale: DatasetScale,
        threads: Option<usize>,
    ) -> Vec<Vec<DatasetProfile>> {
        self.members
            .iter()
            .map(|member| {
                crate::profile::collect_profiles_parallel(member, seed_base, count, scale, threads)
            })
            .collect()
    }

    /// Replays one dataset under the **oracle router at `threshold`**:
    /// invocation `i` is served by the first (cheapest) member whose
    /// profiled error is within the threshold, falling back to precise.
    /// `members[m]` must be member `m`'s profile of the same dataset.
    ///
    /// With a pool of one this reproduces
    /// [`DatasetProfile::replay_with_threshold`] bit for bit.
    ///
    /// # Errors
    ///
    /// Returns [`MithraError::InsufficientData`] when the profile slice
    /// does not cover every member or the members disagree on the
    /// invocation count, and propagates quality-scoring failures.
    pub fn replay_routed_threshold(
        &self,
        members: &[&DatasetProfile],
        threshold: f32,
    ) -> Result<RoutedReplay> {
        let n = self.check_member_profiles(members)?;
        let choices: Vec<RouteChoice> = (0..n)
            .map(|i| oracle_route(members, i, threshold))
            .collect();
        self.replay_routed_choices(members, &choices)
    }

    /// Replays one dataset under explicit per-invocation [`RouteChoice`]s
    /// (the deployed router's decisions), mixing each invocation's output
    /// from the chosen member's cached accelerator output.
    ///
    /// # Errors
    ///
    /// Returns [`MithraError::InsufficientData`] for mismatched profile or
    /// choice lengths and propagates quality-scoring failures.
    pub fn replay_routed_choices(
        &self,
        members: &[&DatasetProfile],
        choices: &[RouteChoice],
    ) -> Result<RoutedReplay> {
        let n = self.check_member_profiles(members)?;
        if choices.len() != n {
            return Err(MithraError::InsufficientData {
                stage: "routed mixture replay",
                available: choices.len(),
                needed: n,
            });
        }
        let bench = self.benchmark();
        let base = members[0];
        let mut mixed = OutputBuffer::with_capacity(bench.output_dim(), n);
        let mut invoked = 0usize;
        let mut member_invocations = vec![0usize; self.len()];
        let mut worst_member = 0usize;
        let mut worst_err = f32::NEG_INFINITY;
        for (i, choice) in choices.iter().enumerate() {
            match choice {
                RouteChoice::Member(m) => {
                    invoked += 1;
                    member_invocations[*m] += 1;
                    let err = members[*m].max_error(i);
                    if err > worst_err {
                        worst_err = err;
                        worst_member = *m;
                    }
                    mixed.push(members[*m].approx_output(i));
                }
                RouteChoice::Precise => mixed.push(base.precise_output(i)),
            }
        }
        let final_mixed = bench.run_application(base.dataset(), &mixed);
        let quality_loss = bench
            .quality_metric()
            .try_quality_loss(base.final_precise(), &final_mixed)?;
        Ok(RoutedReplay {
            quality_loss,
            invoked,
            total: n,
            member_invocations,
            worst_member,
        })
    }

    /// Validates a per-member profile slice for one dataset, returning the
    /// common invocation count.
    fn check_member_profiles(&self, members: &[&DatasetProfile]) -> Result<usize> {
        if members.len() != self.len() {
            return Err(MithraError::InsufficientData {
                stage: "routed mixture replay",
                available: members.len(),
                needed: self.len(),
            });
        }
        let n = members[0].invocation_count();
        for p in members {
            if p.invocation_count() != n {
                return Err(MithraError::InsufficientData {
                    stage: "routed mixture replay",
                    available: p.invocation_count(),
                    needed: n,
                });
            }
        }
        Ok(n)
    }
}

/// The oracle route of invocation `i` at `threshold`: the first (cheapest)
/// member whose profiled error is within the threshold, else precise.
pub fn oracle_route(members: &[&DatasetProfile], i: usize, threshold: f32) -> RouteChoice {
    for (m, profile) in members.iter().enumerate() {
        if profile.max_error(i) <= threshold {
            return RouteChoice::Member(m);
        }
    }
    RouteChoice::Precise
}

/// [`oracle_route`] under per-member labeling margins: member `m`
/// qualifies when its error is within `threshold * spec.margin_for(m)`.
/// With no margins set this is `oracle_route` exactly (a 1.0 margin
/// multiplies to the identical `f32`).
pub fn oracle_route_margined(
    members: &[&DatasetProfile],
    i: usize,
    threshold: f32,
    spec: &PoolSpec,
) -> RouteChoice {
    for (m, profile) in members.iter().enumerate() {
        if profile.max_error(i) <= threshold * spec.margin_for(m) as f32 {
            return RouteChoice::Member(m);
        }
    }
    RouteChoice::Precise
}

/// Labels routed K-ary training tuples for the neural router: sampled
/// invocations (the same deterministic shuffle-and-truncate scheme as the
/// binary [`generate_training_data`]) labeled with the margined oracle
/// route — class `m` = pool member `m`, class `K` = precise.
pub fn generate_route_training_data(
    member_profiles: &[Vec<DatasetProfile>],
    threshold: f32,
    spec: &PoolSpec,
    max_samples: usize,
    seed: u64,
) -> Vec<crate::neural::KaryExample> {
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    let base = &member_profiles[0];
    let mut indices: Vec<(usize, usize)> = base
        .iter()
        .enumerate()
        .flat_map(|(d, p)| (0..p.invocation_count()).map(move |i| (d, i)))
        .collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    indices.shuffle(&mut rng);
    indices.truncate(max_samples);

    let k = member_profiles.len();
    indices
        .into_iter()
        .map(|(d, i)| {
            let members: Vec<&DatasetProfile> = member_profiles.iter().map(|m| &m[d]).collect();
            let class = match oracle_route_margined(&members, i, threshold, spec) {
                RouteChoice::Member(m) => m,
                RouteChoice::Precise => k,
            };
            crate::neural::KaryExample {
                input: base[d].dataset().input(i).to_vec(),
                class,
            }
        })
        .collect()
}

/// The deployed K-ary router: one table-classifier stage per pool member,
/// consulted cheapest-first. Stage `m` answers "is member `m`'s error
/// acceptable for this input?"; the first accepting stage wins, and an
/// invocation every stage rejects runs precise. The output is therefore a
/// ⌈log₂(K+1)⌉-bit route rather than the binary design's single bit.
#[derive(Debug, Clone)]
pub struct RouteClassifier {
    stages: Vec<TableClassifier>,
    /// The neural router variant: a single K+1-class network replacing
    /// the cascade (in which case `stages` is empty). Absent on every
    /// table-cascade router, so cascade artifacts — including all cached
    /// ones written before this field existed — serialize byte-identically
    /// and deserialize via the hand-written impls below.
    neural: Option<crate::neural::KaryNeuralClassifier>,
}

// Hand-written (de)serialization: the `neural` field is emitted only when
// present and tolerated when absent, keeping every pre-explorer cascade
// artifact both readable and byte-identical on rewrite. (The vendored
// serde derive has no `skip_serializing_if`.)
impl Serialize for RouteClassifier {
    fn serialize(&self) -> serde::Value {
        let mut fields: Vec<(String, serde::Value)> =
            vec![(String::from("stages"), self.stages.serialize())];
        if let Some(neural) = &self.neural {
            fields.push((String::from("neural"), neural.serialize()));
        }
        serde::Value::Object(fields)
    }
}

impl Deserialize for RouteClassifier {
    fn deserialize(value: &serde::Value) -> std::result::Result<Self, serde::DeError> {
        let stages = Deserialize::deserialize(serde::get_field(value, "stages")?)?;
        let neural = match serde::get_field(value, "neural") {
            Ok(v) => Some(Deserialize::deserialize(v)?),
            Err(_) => None,
        };
        Ok(Self { stages, neural })
    }
}

impl RouteClassifier {
    /// Trains one stage per pool member on that member's profiled errors
    /// against the shared routed threshold. Stage `m` trains with seed
    /// `seed ^ m` and the quantizer fitted to member `m`'s profiles, so
    /// stage 0 of a pool-of-one router is bit-identical to the binary
    /// pipeline's table classifier.
    ///
    /// # Errors
    ///
    /// Propagates table-training failures.
    pub fn train(
        member_profiles: &[Vec<DatasetProfile>],
        threshold: f32,
        design: &TableDesign,
        max_samples: usize,
        seed: u64,
        threads: Option<usize>,
    ) -> Result<Self> {
        let mut stages = Vec::with_capacity(member_profiles.len());
        for (m, profiles) in member_profiles.iter().enumerate() {
            let examples =
                generate_training_data(profiles, threshold, max_samples, seed ^ m as u64);
            let quantizer = quantizer_from_profiles(profiles);
            stages.push(TableClassifier::train_with_threads(
                *design, quantizer, &examples, threads,
            )?);
        }
        Ok(Self {
            stages,
            neural: None,
        })
    }

    /// Trains the router a [`PoolSpec`] asks for. A table cascade labels
    /// stage `m` at `threshold * spec.margin_for(m)`; with no margins set
    /// this is [`RouteClassifier::train`] bit for bit (a 1.0 margin
    /// multiplies to the identical `f32`). The K-ary neural kind trains
    /// one K+1-class network on margined-oracle route labels instead.
    ///
    /// # Errors
    ///
    /// Propagates table- or neural-training failures.
    pub fn train_for_spec(
        spec: &PoolSpec,
        member_profiles: &[Vec<DatasetProfile>],
        threshold: f32,
        design: &TableDesign,
        max_samples: usize,
        seed: u64,
        threads: Option<usize>,
    ) -> Result<Self> {
        match &spec.router {
            RouterKind::TableCascade => {
                let mut stages = Vec::with_capacity(member_profiles.len());
                for (m, profiles) in member_profiles.iter().enumerate() {
                    let stage_threshold = threshold * spec.margin_for(m) as f32;
                    let examples = generate_training_data(
                        profiles,
                        stage_threshold,
                        max_samples,
                        seed ^ m as u64,
                    );
                    let quantizer = quantizer_from_profiles(profiles);
                    stages.push(TableClassifier::train_with_threads(
                        *design, quantizer, &examples, threads,
                    )?);
                }
                Ok(Self {
                    stages,
                    neural: None,
                })
            }
            RouterKind::KaryNeural(config) => {
                let examples = generate_route_training_data(
                    member_profiles,
                    threshold,
                    spec,
                    max_samples,
                    seed,
                );
                let input_dim = member_profiles[0][0].dataset().input_dim();
                let neural = crate::neural::KaryNeuralClassifier::train_with_threads(
                    input_dim,
                    &examples,
                    member_profiles.len() + 1,
                    config,
                    threads,
                )?;
                Ok(Self {
                    stages: Vec::new(),
                    neural: Some(neural),
                })
            }
        }
    }

    /// Rebuilds a router from trained stages (the artifact-cache load
    /// path).
    ///
    /// # Panics
    ///
    /// Panics on an empty stage list.
    pub fn from_stages(stages: Vec<TableClassifier>) -> Self {
        assert!(!stages.is_empty(), "a router needs at least one stage");
        Self {
            stages,
            neural: None,
        }
    }

    /// The per-member cascade stages, cheapest first (empty for a neural
    /// router).
    pub fn stages(&self) -> &[TableClassifier] {
        &self.stages
    }

    /// The K-ary neural network, when this router is the neural kind.
    pub fn neural(&self) -> Option<&crate::neural::KaryNeuralClassifier> {
        self.neural.as_ref()
    }

    /// Number of routable pool members: cascade stages, or the neural
    /// network's classes minus the precise fallback.
    pub fn len(&self) -> usize {
        match &self.neural {
            Some(n) => n.classes().saturating_sub(1),
            None => self.stages.len(),
        }
    }

    /// Whether the router has no stages (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bits of route output: ⌈log₂(K+1)⌉ for K stages.
    pub fn route_bits(&self) -> u32 {
        route_bits(self.len())
    }

    /// Routes one invocation. A cascade walks its stages cheapest-first
    /// and the first accepting stage wins; the neural kind consults its
    /// single network once and takes the argmax class (the last class is
    /// the precise fallback).
    pub fn classify_route(&mut self, index: usize, input: &[f32]) -> RouteChoice {
        if let Some(neural) = &mut self.neural {
            let class = neural.decide_class(input);
            return if class + 1 == neural.classes() {
                RouteChoice::Precise
            } else {
                RouteChoice::Member(class)
            };
        }
        for (m, stage) in self.stages.iter_mut().enumerate() {
            if stage.classify(index, input) == Decision::Approximate {
                return RouteChoice::Member(m);
            }
        }
        RouteChoice::Precise
    }

    /// The classifier overhead actually incurred on `route`. For the
    /// cascade: the summed footprint of every stage consulted before the
    /// decision settled (stages `0..=m` for member `m`; all stages for a
    /// precise fallback) — costing is per-route, a cheap route consults
    /// fewer stages than the precise fallback. The neural router runs its
    /// one network regardless of the decision, so every route is charged
    /// the same single NPU invocation of the router topology.
    pub fn overhead_for(&self, route: RouteChoice) -> ClassifierOverhead {
        if let Some(neural) = &self.neural {
            return ClassifierOverhead {
                decision_cycles: 0,
                misr_shifts: 0,
                table_bit_reads: 0,
                npu_topology: Some(neural.topology().clone()),
            };
        }
        let consulted = match route {
            RouteChoice::Member(m) => m + 1,
            RouteChoice::Precise => self.len(),
        };
        sum_overheads(self.stages[..consulted].iter().map(|s| s.overhead()))
    }

    /// The worst-case overhead (every stage consulted) — what sizes the
    /// one-time table decompression at program load.
    pub fn max_overhead(&self) -> ClassifierOverhead {
        self.overhead_for(RouteChoice::Precise)
    }
}

/// Sums classifier overheads across consulted stages. The NPU-topology
/// footprint, when a stage carries one, is taken per stage (never cloned
/// from the primary function); table stages carry none.
fn sum_overheads(overheads: impl Iterator<Item = ClassifierOverhead>) -> ClassifierOverhead {
    let mut total = ClassifierOverhead::default();
    for o in overheads {
        total.decision_cycles += o.decision_cycles;
        total.misr_shifts += o.misr_shifts;
        total.table_bit_reads += o.table_bit_reads;
        if o.npu_topology.is_some() {
            total.npu_topology = o.npu_topology;
        }
    }
    total
}

/// The routed compile product: the trained pool, its per-member compile
/// profiles, the mixture-certified threshold, and the deployed router.
#[derive(Debug, Clone)]
pub struct RoutedCompiled {
    /// The trained approximator pool, cheapest first.
    pub pool: ApproximatorPool,
    /// `member_profiles[m][i]` = member `m`'s profile of compile dataset
    /// `i`.
    pub member_profiles: Vec<Vec<DatasetProfile>>,
    /// The threshold certified over the routed mixture.
    pub threshold: RoutedThresholdOutcome,
    /// The deployed K-ary router.
    pub router: RouteClassifier,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo(layers: &[usize]) -> Topology {
        Topology::new(layers).unwrap()
    }

    #[test]
    fn route_bits_is_ceil_log2() {
        assert_eq!(route_bits(1), 1); // {member 0, precise}
        assert_eq!(route_bits(2), 2);
        assert_eq!(route_bits(3), 2);
        assert_eq!(route_bits(4), 3);
        assert_eq!(route_bits(7), 3);
        assert_eq!(route_bits(8), 4);
    }

    #[test]
    fn tiered_spec_orders_cheapest_first() {
        let accurate = topo(&[2, 8, 16, 1]);
        let spec = PoolSpec::tiered(&accurate);
        assert_eq!(spec.len(), 3);
        assert_eq!(spec.topologies[0].layers(), &[2, 2, 4, 1]);
        assert_eq!(spec.topologies[1].layers(), &[2, 4, 8, 1]);
        assert_eq!(spec.topologies[2].layers(), &[2, 8, 16, 1]);
        let mut macs = spec
            .topologies
            .iter()
            .map(Topology::macs_per_invocation)
            .collect::<Vec<_>>();
        let sorted = {
            macs.sort_unstable();
            macs
        };
        assert_eq!(
            sorted,
            spec.topologies
                .iter()
                .map(Topology::macs_per_invocation)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn tiny_topologies_deduplicate() {
        let accurate = topo(&[2, 2, 1]);
        let spec = PoolSpec::tiered(&accurate);
        assert_eq!(spec.len(), 1, "all tiers collapse to the same topology");
        assert_eq!(spec.topologies[0].layers(), &[2, 2, 1]);
    }

    #[test]
    fn sized_spec_sizes() {
        let accurate = topo(&[2, 8, 1]);
        assert_eq!(PoolSpec::sized(&accurate, 1).len(), 1);
        assert_eq!(PoolSpec::sized(&accurate, 2).len(), 2);
        assert_eq!(PoolSpec::sized(&accurate, 3).len(), 3);
        // Every sized pool ends in the accurate topology.
        for k in 1..=3 {
            let spec = PoolSpec::sized(&accurate, k);
            assert_eq!(spec.topologies.last().unwrap(), &accurate);
        }
    }

    #[test]
    fn input_and_output_widths_are_preserved() {
        let accurate = topo(&[9, 32, 16, 2]);
        for t in &PoolSpec::tiered(&accurate).topologies {
            assert_eq!(t.inputs(), 9);
            assert_eq!(t.layers().last(), Some(&2));
        }
    }

    #[test]
    fn from_divisors_421_is_the_fixed_tiering_verbatim() {
        let accurate = topo(&[2, 8, 16, 1]);
        assert_eq!(
            PoolSpec::from_divisors(&accurate, &[4, 2, 1]),
            PoolSpec::tiered(&accurate)
        );
        assert_eq!(
            PoolSpec::from_divisors(&accurate, &[1]),
            PoolSpec::single(accurate.clone())
        );
    }

    #[test]
    fn default_spec_routing_is_default() {
        let accurate = topo(&[2, 8, 1]);
        let spec = PoolSpec::tiered(&accurate);
        assert!(spec.is_default_routing());
        assert!(!spec
            .clone()
            .with_router(RouterKind::kary_neural_default())
            .is_default_routing());
        assert!(!spec
            .clone()
            .with_margins(vec![0.75, 1.0, 1.0])
            .is_default_routing());
        // All-1.0 margins normalize away: still the default design point.
        assert!(spec.with_margins(vec![1.0, 1.0, 1.0]).is_default_routing());
    }

    #[test]
    fn margin_for_defaults_to_unity() {
        let accurate = topo(&[2, 8, 1]);
        let spec = PoolSpec::tiered(&accurate).with_margins(vec![0.75]);
        assert_eq!(spec.margin_for(0), 0.75);
        assert_eq!(spec.margin_for(1), 1.0);
        assert_eq!(spec.margin_for(7), 1.0);
    }
}
