//! MITHRA: a hardware–software co-design for controlling quality tradeoffs
//! in approximate acceleration (ISCA 2016).
//!
//! An approximate accelerator (the NPU in `mithra-npu`) conventionally
//! replaces *every* invocation of a target function. MITHRA instead decides
//! **per invocation** whether the accelerator's error would be acceptable,
//! falling back to the precise function when it would not. The design has
//! two halves:
//!
//! * **Software (compile time)** — [`threshold`] solves a statistical
//!   optimization problem: it converts the programmer's final-quality
//!   target into a *local accelerator error threshold*, certified with the
//!   Clopper–Pearson exact method so that, with confidence β, at least a
//!   fraction S of unseen datasets will meet the quality target.
//!   [`training`] then labels profiled invocations against the threshold
//!   and pre-trains the hardware classifiers.
//!
//! * **Hardware (runtime)** — [`table`] implements the MISR-hashed
//!   multi-table classifier (an ensemble of 1-bit tables combined with an
//!   OR, compressed with Base-Delta-Immediate for the binary); [`neural`]
//!   implements the MLP classifier executed on the NPU itself. [`oracle`]
//!   and [`random`] provide the paper's upper-bound and lower-bound
//!   comparison designs.
//!
//! The end-to-end compile flow — train the NPU, profile, find the
//! threshold, train both classifiers — is a staged [`session`] pipeline
//! ([`session::CompileSession`]) with parallel profiling, per-stage
//! instrumentation and an optional on-disk artifact [`cache`]; the
//! one-call wrappers live in [`pipeline`].
//!
//! # Example
//!
//! ```no_run
//! use mithra_core::pipeline::{compile, CompileConfig};
//! use mithra_core::threshold::QualitySpec;
//! use mithra_axbench::suite;
//! use std::sync::Arc;
//!
//! let bench: Arc<_> = suite::by_name("sobel").unwrap().into();
//! let mut cfg = CompileConfig::default();
//! cfg.spec = QualitySpec::paper_default(0.05)?;
//! let compiled = compile(bench, &cfg)?;
//! println!("threshold = {}", compiled.threshold.threshold);
//! # Ok::<(), mithra_core::MithraError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod binary;
pub mod cache;
pub mod classifier;
pub mod context;
pub mod function;
pub mod misr;
pub mod multi;
pub mod neural;
pub mod online;
pub mod oracle;
pub mod parallel;
pub mod pipeline;
pub mod profile;
pub mod random;
pub mod recert;
pub mod regression;
pub mod route;
pub mod seeds;
pub mod session;
pub mod table;
pub mod threshold;
pub mod training;
pub mod tree;
pub mod watchdog;

mod error;

pub use error::MithraError;

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, MithraError>;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use crate::cache::{ArtifactCache, CacheConfig};
    pub use crate::classifier::{Classifier, ClassifierOverhead, Decision};
    pub use crate::function::AcceleratedFunction;
    pub use crate::neural::NeuralClassifier;
    pub use crate::oracle::OracleClassifier;
    pub use crate::pipeline::{compile, CompileConfig, Compiled};
    pub use crate::profile::{collect_profiles_parallel, DatasetProfile};
    pub use crate::random::RandomFilter;
    pub use crate::recert::{RecertConfig, RecertEngine, RecertOutcome, RecertPhase};
    pub use crate::route::{
        ApproximatorPool, PoolSpec, RouteChoice, RouteClassifier, RoutedCompiled,
    };
    pub use crate::session::{CompileSession, SessionReport, Stage, StageReport};
    pub use crate::table::{TableClassifier, TableDesign};
    pub use crate::threshold::{QualitySpec, RoutedThresholdOutcome, ThresholdOutcome};
    pub use crate::watchdog::{GuardState, QualityWatchdog, WatchdogConfig};
    pub use crate::MithraError;
}
