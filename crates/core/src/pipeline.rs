//! The end-to-end compile pipeline (paper Figure 2, left half).
//!
//! Given a benchmark and a quality specification, the compiler:
//!
//! 1. trains the NPU on the compilation datasets (the standard approximate
//!    acceleration workflow);
//! 2. profiles every compilation dataset, caching precise/approximate
//!    outputs and per-invocation errors;
//! 3. runs the statistical threshold optimization (Algorithm 1 +
//!    Clopper–Pearson);
//! 4. labels training data at the threshold and trains both hardware
//!    classifiers (table + neural);
//! 5. compresses the table content for the binary.
//!
//! The output, [`Compiled`], carries everything the runtime (and the
//! system simulator in `mithra-sim`) needs.

use crate::cache::CacheConfig;
use crate::function::{AcceleratedFunction, NpuTrainConfig};
use crate::misr::InputQuantizer;
use crate::neural::{NeuralClassifier, NeuralTrainConfig};
use crate::oracle::OracleClassifier;
use crate::profile::DatasetProfile;
use crate::session::{CompileSession, SessionReport};
use crate::table::{TableClassifier, TableDesign};
use crate::threshold::{QualitySpec, ThresholdOutcome};
use crate::training::TrainingExample;
use mithra_axbench::benchmark::Benchmark;
use mithra_axbench::dataset::DatasetScale;
use mithra_npu::kernel::KernelBackend;
use std::sync::Arc;

use crate::Result;

/// Configuration of the whole compile flow.
#[derive(Debug, Clone)]
pub struct CompileConfig {
    /// Dataset scale (smoke for tests, full for experiments).
    pub scale: DatasetScale,
    /// Number of representative compilation datasets (paper: 250).
    pub compile_datasets: usize,
    /// Seed base for compilation datasets; dataset `i` uses
    /// `seed_base + i`.
    pub seed_base: u64,
    /// The quality requirement to certify.
    pub spec: QualitySpec,
    /// NPU training settings.
    pub npu: NpuTrainConfig,
    /// Table classifier geometry.
    pub table_design: TableDesign,
    /// Neural classifier training settings.
    pub neural: NeuralTrainConfig,
    /// Cap on labeled classifier-training tuples.
    pub classifier_train_samples: usize,
    /// How many compilation datasets feed NPU training (profiling still
    /// uses all of them).
    pub npu_train_datasets: usize,
    /// Optional on-disk artifact cache; `None` recomputes every stage.
    pub cache: Option<CacheConfig>,
    /// Worker threads for parallel profiling (`None` = available
    /// parallelism). Affects wall time only, never results, so the
    /// artifact cache ignores it.
    pub threads: Option<usize>,
    /// Arithmetic kernel backend for NPU training and inference.
    /// [`KernelBackend::Scalar`] (the default) is the bit-exact reference
    /// every committed result pins; [`KernelBackend::Simd`] opts into the
    /// vectorized path, which is deterministic but rounds differently, so
    /// the artifact cache keys on it (scalar keys stay unchanged).
    pub kernel: KernelBackend,
}

impl Default for CompileConfig {
    fn default() -> Self {
        Self {
            scale: DatasetScale::Full,
            compile_datasets: 250,
            seed_base: 0,
            spec: QualitySpec::paper_default(0.05).expect("0.05 is a valid target"),
            npu: NpuTrainConfig::default(),
            table_design: TableDesign::paper_default(),
            neural: NeuralTrainConfig::default(),
            classifier_train_samples: 30_000,
            npu_train_datasets: 10,
            cache: None,
            threads: None,
            kernel: KernelBackend::Scalar,
        }
    }
}

impl CompileConfig {
    /// A reduced configuration for unit tests: smoke-scale datasets, few
    /// of them, quick training.
    pub fn smoke() -> Self {
        Self {
            scale: DatasetScale::Smoke,
            compile_datasets: 20,
            spec: QualitySpec::new(0.10, 0.9, 0.5).expect("valid test spec"),
            npu: NpuTrainConfig {
                epochs: Some(25),
                max_samples: 1500,
                seed: 11,
            },
            neural: NeuralTrainConfig {
                hidden_candidates: vec![2, 4],
                epochs: 40,
                ..NeuralTrainConfig::default()
            },
            classifier_train_samples: 2_000,
            npu_train_datasets: 3,
            ..Self::default()
        }
    }
}

/// Everything the compile flow produces.
#[derive(Debug)]
pub struct Compiled {
    /// The benchmark bound to its trained accelerator.
    pub function: AcceleratedFunction,
    /// The certified threshold and its statistics.
    pub threshold: ThresholdOutcome,
    /// The trained table-based classifier.
    pub table: TableClassifier,
    /// The trained neural classifier.
    pub neural: NeuralClassifier,
    /// The profiles of the compilation datasets (reusable by harnesses).
    pub profiles: Vec<DatasetProfile>,
    /// The labeled training tuples used for both classifiers.
    pub training_data: Vec<TrainingExample>,
}

impl Compiled {
    /// Builds the oracle for a profiled dataset at the compiled threshold.
    pub fn oracle_for(&self, profile: &DatasetProfile) -> OracleClassifier {
        OracleClassifier::for_profile(profile, self.threshold.threshold)
    }

    /// A copy of this artifact with the runtime operating point replaced —
    /// the re-certifier's hot-swap. Only the `threshold` value and the
    /// table classifier change; the accelerator and neural classifier are
    /// shared unchanged, and the compile-time profiles and training data
    /// (which describe the *original* compile, not the new pair) are not
    /// carried over. The remaining [`crate::threshold::ThresholdOutcome`]
    /// statistics still describe the original certificate — the swapped
    /// pair's certificate lives with whoever performed the swap.
    pub fn with_operating_point(
        &self,
        threshold: f32,
        table: crate::table::TableClassifier,
    ) -> Compiled {
        Compiled {
            function: self.function.clone(),
            threshold: crate::threshold::ThresholdOutcome {
                threshold,
                ..self.threshold
            },
            table,
            neural: self.neural.clone(),
            profiles: Vec::new(),
            training_data: Vec::new(),
        }
    }
}

/// Runs the full compile flow for one benchmark.
///
/// # Errors
///
/// Propagates failures from any stage: NPU training, certification
/// ([`crate::MithraError::Uncertifiable`] when the spec cannot be met), or
/// classifier training.
pub fn compile(benchmark: Arc<dyn Benchmark>, config: &CompileConfig) -> Result<Compiled> {
    Ok(compile_with_report(benchmark, config)?.0)
}

/// [`compile`], additionally returning the per-stage instrumentation.
///
/// # Errors
///
/// Same as [`compile`].
pub fn compile_with_report(
    benchmark: Arc<dyn Benchmark>,
    config: &CompileConfig,
) -> Result<(Compiled, SessionReport)> {
    let session = CompileSession::new(benchmark, config.clone())
        .train_npu()?
        .profile()?
        .certify()?
        .train_classifiers()?;
    Ok(session.finish())
}

/// Runs the **routed** compile flow for one benchmark: the shared NPU
/// training and profiling stages, then the routing branch — pool
/// training, routed-mixture certification, router training. A
/// [`PoolSpec::single`] over the benchmark's default topology produces a
/// pool-of-one whose threshold and router are bit-identical to
/// [`compile`]'s.
///
/// [`PoolSpec::single`]: crate::route::PoolSpec::single
///
/// # Errors
///
/// Same as [`compile`], plus [`crate::MithraError::Uncertifiable`] when
/// the routed mixture cannot be certified.
pub fn compile_routed(
    benchmark: Arc<dyn Benchmark>,
    config: &CompileConfig,
    spec: &crate::route::PoolSpec,
) -> Result<crate::route::RoutedCompiled> {
    Ok(compile_routed_with_report(benchmark, config, spec)?.0)
}

/// [`compile_routed`], additionally returning per-stage instrumentation.
///
/// # Errors
///
/// Same as [`compile_routed`].
pub fn compile_routed_with_report(
    benchmark: Arc<dyn Benchmark>,
    config: &CompileConfig,
    spec: &crate::route::PoolSpec,
) -> Result<(crate::route::RoutedCompiled, SessionReport)> {
    let session = CompileSession::new(benchmark, config.clone())
        .train_npu()?
        .profile()?
        .train_pool(spec)?
        .certify_routed()?
        .train_router()?;
    Ok(session.finish_routed())
}

/// The compile flow from certification onward, for callers that already
/// hold a trained function and its profiles (the Pareto sweep retrains
/// the table at many design points without re-profiling).
///
/// # Errors
///
/// Same as [`compile`].
pub fn compile_with_profiles(
    function: AcceleratedFunction,
    profiles: Vec<DatasetProfile>,
    config: &CompileConfig,
) -> Result<Compiled> {
    let session = CompileSession::resume_with_profiles(function, profiles, config.clone())
        .certify()?
        .train_classifiers()?;
    Ok(session.finish().0)
}

/// Fits the table classifier's input quantizer from profiled inputs.
pub fn quantizer_from_profiles(profiles: &[DatasetProfile]) -> InputQuantizer {
    InputQuantizer::fit(profiles.iter().flat_map(|p| p.dataset().iter()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::{Classifier, Decision};
    use mithra_axbench::suite;

    fn compile_smoke(name: &str) -> Compiled {
        let bench: Arc<dyn Benchmark> = suite::by_name(name).unwrap().into();
        compile(bench, &CompileConfig::smoke()).unwrap()
    }

    #[test]
    fn compile_produces_consistent_artifacts() {
        let compiled = compile_smoke("sobel");
        assert!(compiled.threshold.threshold >= 0.0);
        assert_eq!(compiled.profiles.len(), 20);
        assert!(!compiled.training_data.is_empty());
        assert_eq!(compiled.table.design(), TableDesign::paper_default());
        assert_eq!(compiled.neural.topology().inputs(), 9);
    }

    #[test]
    fn validation_quality_usually_within_target() {
        // The statistical machinery promises most *unseen* datasets meet
        // the target; check on fresh seeds.
        let compiled = compile_smoke("sobel");
        let spec = CompileConfig::smoke().spec;
        let mut ok = 0;
        let n = 10u64;
        for s in 0..n {
            let ds = compiled
                .function
                .dataset(1_000_000 + s, DatasetScale::Smoke);
            let profile = DatasetProfile::collect(&compiled.function, ds);
            let replay =
                profile.replay_with_threshold(&compiled.function, compiled.threshold.threshold);
            if replay.quality_loss <= spec.max_quality_loss {
                ok += 1;
            }
        }
        assert!(ok >= n / 2, "only {ok}/{n} unseen datasets met the target");
    }

    #[test]
    fn classifiers_decide_for_real_inputs() {
        let mut compiled = compile_smoke("inversek2j");
        let ds = compiled.function.dataset(500, DatasetScale::Smoke);
        let mut table_rejects = 0;
        for (i, input) in ds.iter().enumerate() {
            let d1 = compiled.table.classify(i, input);
            let d2 = compiled.neural.classify(i, input);
            if d1 == Decision::Precise {
                table_rejects += 1;
            }
            let _ = d2;
        }
        // The table must not reject everything.
        assert!(table_rejects < ds.invocation_count());
    }

    #[test]
    fn oracle_matches_profile_ground_truth() {
        let compiled = compile_smoke("blackscholes");
        let profile = &compiled.profiles[0];
        let mut oracle = compiled.oracle_for(profile);
        for i in 0..profile.invocation_count() {
            let expected = profile.max_error(i) > compiled.threshold.threshold;
            assert_eq!(
                oracle.classify(i, profile.dataset().input(i)).is_precise(),
                expected
            );
        }
    }

    #[test]
    fn compile_with_profiles_reuses_work() {
        let compiled = compile_smoke("sobel");
        let mut cfg = CompileConfig::smoke();
        cfg.table_design = TableDesign {
            tables: 2,
            entries_per_table: 1024,
        };
        let recompiled =
            compile_with_profiles(compiled.function.clone(), compiled.profiles.clone(), &cfg)
                .unwrap();
        assert_eq!(recompiled.table.design().tables, 2);
        // Threshold depends only on function+profiles+spec: unchanged.
        assert_eq!(recompiled.threshold.threshold, compiled.threshold.threshold);
    }
}
