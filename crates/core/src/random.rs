//! Random filtering — the paper's input-oblivious baseline (§V-B1,
//! "Comparison with random filtering").
//!
//! "The decision to delegate a function invocation to the accelerator is
//! random, irrespective of the inputs." Matching MITHRA's invocation rate
//! with random decisions isolates the value of *input-conscious* filtering:
//! anything MITHRA gains beyond this baseline comes from actually
//! recognizing the inputs that cause large errors.

use crate::classifier::{Classifier, ClassifierOverhead, Decision};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A classifier that invokes the accelerator with fixed probability,
/// ignoring the input.
#[derive(Debug, Clone)]
pub struct RandomFilter {
    invoke_probability: f64,
    rng: StdRng,
}

impl RandomFilter {
    /// Creates a random filter that approximates with probability
    /// `invoke_probability` (clamped to `[0, 1]`).
    pub fn new(invoke_probability: f64, seed: u64) -> Self {
        Self {
            invoke_probability: invoke_probability.clamp(0.0, 1.0),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The configured accelerator-invocation probability.
    pub fn invoke_probability(&self) -> f64 {
        self.invoke_probability
    }
}

impl Classifier for RandomFilter {
    fn name(&self) -> &'static str {
        "random"
    }

    fn classify(&mut self, _index: usize, _input: &[f32]) -> Decision {
        Decision::from_reject(!self.rng.gen_bool(self.invoke_probability))
    }

    fn overhead(&self) -> ClassifierOverhead {
        // A hardware RNG decision is effectively free.
        ClassifierOverhead::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_matches_probability() {
        let mut f = RandomFilter::new(0.7, 42);
        let n = 20_000;
        let invoked = (0..n)
            .filter(|&i| f.classify(i, &[]) == Decision::Approximate)
            .count();
        let rate = invoked as f64 / n as f64;
        assert!((rate - 0.7).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn extremes() {
        let mut always = RandomFilter::new(1.0, 1);
        let mut never = RandomFilter::new(0.0, 1);
        for i in 0..100 {
            assert_eq!(always.classify(i, &[]), Decision::Approximate);
            assert_eq!(never.classify(i, &[]), Decision::Precise);
        }
    }

    #[test]
    fn probability_clamped() {
        assert_eq!(RandomFilter::new(1.5, 0).invoke_probability(), 1.0);
        assert_eq!(RandomFilter::new(-0.5, 0).invoke_probability(), 0.0);
    }

    #[test]
    fn seeded_reproducibility() {
        let run = |seed| {
            let mut f = RandomFilter::new(0.5, seed);
            (0..50)
                .map(|i| f.classify(i, &[]).is_precise())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }
}
