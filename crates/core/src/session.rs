//! The staged compile pipeline (paper Figure 2, left half) as a typestate
//! session.
//!
//! A [`CompileSession`] advances through typed stage artifacts:
//!
//! ```text
//! Pending ──train_npu()──▶ TrainedFunction ──profile()──▶ Profiles
//!     ──certify()──▶ CertifiedThreshold ──train_classifiers()──▶
//!     Classifiers ──finish()──▶ (Compiled, SessionReport)
//! ```
//!
//! Each transition consumes the session and returns it in the next state,
//! so stage ordering is enforced at compile time — there is no way to
//! certify a threshold before profiling, or to train classifiers against
//! a stale threshold. Every transition:
//!
//! * consults the optional on-disk [`ArtifactCache`] first (keyed by a
//!   config+benchmark+seed fingerprint that also covers all upstream
//!   stages), skipping the work entirely on a hit;
//! * records a [`StageReport`] — wall time, invocation count and cache
//!   outcome — so harnesses can show exactly where compile time went.
//!
//! Sweeps that reuse a quality-independent base (retrained thresholds at
//! many quality levels, table-design grids) enter mid-pipeline with
//! [`CompileSession::resume_with_profiles`]; `mithra_core::pipeline`'s
//! `compile`/`compile_with_profiles` and `mithra-bench`'s
//! `prepare_base`/`certify_at` are all thin wrappers over this type.

use crate::cache::{
    fingerprint, ArtifactCache, ClassifierArtifact, PoolArtifact, TrainedNpuArtifact,
    CACHE_FORMAT_VERSION,
};
use crate::function::AcceleratedFunction;
use crate::neural::NeuralClassifier;
use crate::pipeline::{quantizer_from_profiles, CompileConfig, Compiled};
use crate::profile::{collect_profiles_parallel, DatasetProfile};
use crate::route::{ApproximatorPool, PoolSpec, RouteClassifier, RoutedCompiled};
use crate::table::TableClassifier;
use crate::threshold::{RoutedThresholdOutcome, ThresholdOptimizer, ThresholdOutcome};
use crate::training::{generate_training_data, TrainingExample};
use crate::Result;
use mithra_axbench::benchmark::Benchmark;
use mithra_axbench::dataset::Dataset;
use mithra_npu::kernel::KernelBackend;
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One stage of the compile pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Stage {
    /// Offline NPU training on the leading compilation datasets.
    NpuTraining,
    /// Profiling every compilation dataset (both execution paths).
    Profiling,
    /// Profiling unseen validation datasets (harness stage).
    ValidationProfiling,
    /// Statistical threshold optimization (Clopper–Pearson).
    Certification,
    /// Labeling tuples and training the table + neural classifiers.
    ClassifierTraining,
    /// Training every member of an approximator pool and profiling the
    /// compilation datasets through each (routing branch).
    PoolTraining,
    /// Statistical threshold optimization over the routed mixture.
    RoutedCertification,
    /// Training the K-ary route classifier, one stage per pool member.
    RouterTraining,
}

impl Stage {
    /// Stable lowercase label, also used as the cache file-name prefix.
    pub fn label(self) -> &'static str {
        match self {
            Stage::NpuTraining => "npu-training",
            Stage::Profiling => "profiling",
            Stage::ValidationProfiling => "validation-profiling",
            Stage::Certification => "certification",
            Stage::ClassifierTraining => "classifier-training",
            Stage::PoolTraining => "pool-training",
            Stage::RoutedCertification => "routed-certification",
            Stage::RouterTraining => "router-training",
        }
    }
}

/// How a stage interacted with the artifact cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// No cache configured for this session.
    Disabled,
    /// A cache was consulted but held no usable artifact; the stage ran
    /// and (best-effort) stored its result.
    Miss,
    /// The artifact was loaded from disk; the stage's work was skipped.
    Hit,
}

impl CacheOutcome {
    /// Stable lowercase label for reports.
    pub fn label(self) -> &'static str {
        match self {
            CacheOutcome::Disabled => "cache off",
            CacheOutcome::Miss => "cache miss",
            CacheOutcome::Hit => "cache hit",
        }
    }
}

/// Instrumentation record of one executed stage transition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageReport {
    /// Which stage ran.
    pub stage: Stage,
    /// Wall time of the transition, including cache I/O.
    pub wall: Duration,
    /// Function invocations the stage performed (0 on a cache hit —
    /// this is what "the second run skipped the work" looks like).
    pub invocations: u64,
    /// Cache interaction.
    pub cache: CacheOutcome,
    /// Artifact-cache lookups this stage satisfied from disk. Most stages
    /// perform a single lookup; pool stages perform one per artifact
    /// (the pool itself plus each non-default member's profiles), so a
    /// partially warm sweep shows up as hits *and* misses on one stage.
    pub cache_hits: u32,
    /// Artifact-cache lookups that found nothing usable (the stage
    /// recomputed and re-stored those artifacts). Zero when no cache is
    /// configured: disabled lookups are neither hits nor misses.
    pub cache_misses: u32,
}

impl StageReport {
    /// Whether the stage's work was skipped via the cache.
    pub fn is_cache_hit(&self) -> bool {
        self.cache == CacheOutcome::Hit
    }
}

/// Per-lookup counters for a stage that consults exactly one artifact.
fn counters_for(outcome: CacheOutcome) -> (u32, u32) {
    match outcome {
        CacheOutcome::Hit => (1, 0),
        CacheOutcome::Miss => (0, 1),
        CacheOutcome::Disabled => (0, 0),
    }
}

/// The full per-stage instrumentation of one compile session.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SessionReport {
    /// The benchmark compiled.
    pub benchmark: String,
    /// One entry per executed stage, in execution order.
    pub stages: Vec<StageReport>,
}

impl SessionReport {
    /// The report of `stage`, if that stage ran.
    pub fn stage(&self, stage: Stage) -> Option<&StageReport> {
        self.stages.iter().find(|r| r.stage == stage)
    }

    /// Total wall time across all recorded stages.
    pub fn total_wall(&self) -> Duration {
        self.stages.iter().map(|r| r.wall).sum()
    }

    /// Total invocations across all recorded stages.
    pub fn total_invocations(&self) -> u64 {
        self.stages.iter().map(|r| r.invocations).sum()
    }

    /// Total artifact-cache hits across all recorded stages.
    pub fn cache_hits(&self) -> u32 {
        self.stages.iter().map(|r| r.cache_hits).sum()
    }

    /// Total artifact-cache misses across all recorded stages.
    pub fn cache_misses(&self) -> u32 {
        self.stages.iter().map(|r| r.cache_misses).sum()
    }
}

impl fmt::Display for SessionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "compile session [{}]: {:.2?} total",
            self.benchmark,
            self.total_wall()
        )?;
        for r in &self.stages {
            let cache = match r.cache {
                CacheOutcome::Disabled => r.cache.label().to_string(),
                _ => format!(
                    "{}, {} hit / {} miss",
                    r.cache.label(),
                    r.cache_hits,
                    r.cache_misses
                ),
            };
            writeln!(
                f,
                "  {:<22} {:>10.2?}  {:>10} invocations  [{cache}]",
                r.stage.label(),
                r.wall,
                r.invocations,
            )?;
        }
        Ok(())
    }
}

/// Initial state: nothing computed yet.
#[derive(Debug, Clone, Copy, Default)]
pub struct Pending;

/// State after NPU training: the benchmark bound to its accelerator.
#[derive(Debug)]
pub struct TrainedFunction {
    function: AcceleratedFunction,
}

/// State after profiling: function plus all compilation-dataset profiles.
#[derive(Debug)]
pub struct Profiles {
    function: AcceleratedFunction,
    profiles: Vec<DatasetProfile>,
}

/// State after certification: the statistically certified threshold.
#[derive(Debug)]
pub struct CertifiedThreshold {
    function: AcceleratedFunction,
    profiles: Vec<DatasetProfile>,
    threshold: ThresholdOutcome,
}

/// Final state: both classifiers trained; ready to [`finish`].
///
/// [`finish`]: CompileSession::finish
#[derive(Debug)]
pub struct Classifiers {
    function: AcceleratedFunction,
    profiles: Vec<DatasetProfile>,
    threshold: ThresholdOutcome,
    table: TableClassifier,
    neural: NeuralClassifier,
    training_data: Vec<TrainingExample>,
}

/// State after pool training (routing branch): every member of the
/// approximator pool trained, with the compilation datasets profiled
/// through each member.
#[derive(Debug)]
pub struct PooledProfiles {
    spec: PoolSpec,
    pool: ApproximatorPool,
    member_profiles: Vec<Vec<DatasetProfile>>,
}

/// State after routed certification: the threshold certified over the
/// routed mixture.
#[derive(Debug)]
pub struct RoutedCertified {
    spec: PoolSpec,
    pool: ApproximatorPool,
    member_profiles: Vec<Vec<DatasetProfile>>,
    threshold: RoutedThresholdOutcome,
}

/// Final state of the routing branch: the K-ary router trained; ready to
/// [`finish_routed`].
///
/// [`finish_routed`]: CompileSession::finish_routed
#[derive(Debug)]
pub struct RoutedClassifiers {
    pool: ApproximatorPool,
    member_profiles: Vec<Vec<DatasetProfile>>,
    threshold: RoutedThresholdOutcome,
    router: RouteClassifier,
}

/// A compile-pipeline run in progress, parameterized by its stage.
#[derive(Debug)]
pub struct CompileSession<S> {
    benchmark: Arc<dyn Benchmark>,
    config: CompileConfig,
    cache: Option<ArtifactCache>,
    stages: Vec<StageReport>,
    state: S,
}

impl<S> CompileSession<S> {
    /// The configuration driving this session.
    pub fn config(&self) -> &CompileConfig {
        &self.config
    }

    /// Stage reports recorded so far, in execution order.
    pub fn stage_reports(&self) -> &[StageReport] {
        &self.stages
    }

    fn advance<T>(self, report: StageReport, next: impl FnOnce(S) -> T) -> CompileSession<T> {
        let mut stages = self.stages;
        stages.push(report);
        CompileSession {
            benchmark: self.benchmark,
            config: self.config,
            cache: self.cache,
            stages,
            state: next(self.state),
        }
    }

    fn load_cached<T: serde::Deserialize>(&self, stage: Stage, key: u64) -> Option<T> {
        self.cache.as_ref().and_then(|c| c.load(stage.label(), key))
    }

    fn store_cached<T: serde::Serialize>(&self, stage: Stage, key: u64, value: &T) {
        if let Some(cache) = &self.cache {
            let _ = cache.store(stage.label(), key, value);
        }
    }

    fn miss_outcome(&self) -> CacheOutcome {
        if self.cache.is_some() {
            CacheOutcome::Miss
        } else {
            CacheOutcome::Disabled
        }
    }

    fn report(&self) -> SessionReport {
        SessionReport {
            benchmark: self.benchmark.name().to_string(),
            stages: self.stages.clone(),
        }
    }
}

// Cache keys. Each stage's canonical key string embeds its upstream
// stage's key, so an artifact can only hit when every configuration
// choice that influenced it (transitively) matches.

fn npu_key(benchmark: &str, config: &CompileConfig) -> String {
    let mut key = format!(
        "v{CACHE_FORMAT_VERSION}/{benchmark}/scale={:?}/seed_base={}/train_datasets={}/npu={:?}",
        config.scale, config.seed_base, config.npu_train_datasets, config.npu
    );
    // The SIMD backend rounds differently, so its artifacts get distinct
    // keys; the scalar default stays suffix-free so every artifact
    // written before the kernel axis existed keeps its key.
    if config.kernel != KernelBackend::Scalar {
        key.push_str(&format!("/kernel={}", config.kernel));
    }
    key
}

fn profiles_key(benchmark: &str, config: &CompileConfig) -> String {
    format!(
        "{}/compile_datasets={}",
        npu_key(benchmark, config),
        config.compile_datasets
    )
}

fn threshold_key(benchmark: &str, config: &CompileConfig) -> String {
    format!("{}/spec={:?}", profiles_key(benchmark, config), config.spec)
}

fn classifier_key(benchmark: &str, config: &CompileConfig) -> String {
    format!(
        "{}/table={:?}/neural={:?}/train_samples={}",
        threshold_key(benchmark, config),
        config.table_design,
        config.neural,
        config.classifier_train_samples
    )
}

fn pool_key(benchmark: &str, config: &CompileConfig, spec: &PoolSpec) -> String {
    format!("{}/pool={:?}", npu_key(benchmark, config), spec.topologies)
}

/// Compile profiles of pool member `m`. A member running the benchmark's
/// default topology trains to the same network as the binary pipeline's
/// (same datasets, same `NpuTrainConfig`, same trainer path), so it keys
/// to the plain profiling artifact and shares its cache entry.
fn pool_member_profiles_key(
    benchmark: &Arc<dyn Benchmark>,
    config: &CompileConfig,
    topology: &mithra_npu::topology::Topology,
) -> String {
    if *topology == benchmark.npu_topology() {
        profiles_key(benchmark.name(), config)
    } else {
        format!(
            "{}/pool_member_topology={:?}/compile_datasets={}",
            npu_key(benchmark.name(), config),
            topology,
            config.compile_datasets
        )
    }
}

/// Key fragment for the swept routing axes (router kind, per-member
/// margins). Empty for the default unmargined table cascade, so every
/// artifact written before these axes existed keeps its key — only
/// non-default design points get distinct entries.
fn spec_suffix(spec: &PoolSpec) -> String {
    if spec.is_default_routing() {
        String::new()
    } else {
        format!("/router={:?}/margins={:?}", spec.router, spec.margins)
    }
}

fn routed_threshold_key(benchmark: &str, config: &CompileConfig, spec: &PoolSpec) -> String {
    // Multi-member pools certify with the deployed router in the loop, so
    // the certificate depends on the router's design and training inputs
    // too; a pool of one keeps the binary oracle probe, whose key fields
    // below are simply redundant. The `certifier` tag retires artifacts
    // certified under the older oracle-only probe.
    format!(
        "{}/compile_datasets={}/spec={:?}/table={:?}/train_samples={}/certifier=deployed{}",
        pool_key(benchmark, config, spec),
        config.compile_datasets,
        config.spec,
        config.table_design,
        config.classifier_train_samples,
        spec_suffix(spec)
    )
}

fn router_key(benchmark: &str, config: &CompileConfig, spec: &PoolSpec) -> String {
    format!(
        "{}/table={:?}/train_samples={}",
        routed_threshold_key(benchmark, config, spec),
        config.table_design,
        config.classifier_train_samples
    )
}

impl CompileSession<Pending> {
    /// Opens a session for one benchmark. No work happens until the first
    /// stage transition.
    ///
    /// The kernel backend is resolved here — `MITHRA_KERNEL` env override,
    /// then the configured request, then scalar fallback when SIMD is
    /// unavailable — so cache keys and training always agree on which
    /// arithmetic produced an artifact.
    pub fn new(benchmark: Arc<dyn Benchmark>, mut config: CompileConfig) -> Self {
        config.kernel = KernelBackend::resolve(config.kernel);
        let cache = config
            .cache
            .as_ref()
            .map(|c| ArtifactCache::open(c, benchmark.name()));
        Self {
            benchmark,
            config,
            cache,
            stages: Vec::new(),
            state: Pending,
        }
    }

    /// Stage 1: trains the NPU on the leading `npu_train_datasets`
    /// compilation datasets (or loads the trained network from the cache).
    ///
    /// # Errors
    ///
    /// Propagates NPU training failures.
    pub fn train_npu(self) -> Result<CompileSession<TrainedFunction>> {
        let started = Instant::now();
        let key = fingerprint(&npu_key(self.benchmark.name(), &self.config));
        let (function, invocations, cache) = match self
            .load_cached::<TrainedNpuArtifact>(Stage::NpuTraining, key)
        {
            Some(artifact) => (
                // Reattach the session's kernel so inference (profiling,
                // serving) runs the same arithmetic the key promises.
                artifact
                    .into_function(Arc::clone(&self.benchmark))
                    .with_kernel(self.config.kernel),
                0,
                CacheOutcome::Hit,
            ),
            None => {
                let train_sets: Vec<Dataset> = (0..self.config.npu_train_datasets as u64)
                    .map(|i| {
                        self.benchmark
                            .dataset(self.config.seed_base + i, self.config.scale)
                    })
                    .collect();
                let invocations: u64 = train_sets.iter().map(|d| d.invocation_count() as u64).sum();
                let function = AcceleratedFunction::train_with_kernel(
                    Arc::clone(&self.benchmark),
                    &train_sets,
                    &self.config.npu,
                    self.config.kernel,
                )?;
                self.store_cached(Stage::NpuTraining, key, &TrainedNpuArtifact::of(&function));
                (function, invocations, self.miss_outcome())
            }
        };
        let (cache_hits, cache_misses) = counters_for(cache);
        let report = StageReport {
            stage: Stage::NpuTraining,
            wall: started.elapsed(),
            invocations,
            cache,
            cache_hits,
            cache_misses,
        };
        Ok(self.advance(report, |_| TrainedFunction { function }))
    }
}

impl CompileSession<TrainedFunction> {
    /// The trained accelerated function.
    pub fn function(&self) -> &AcceleratedFunction {
        &self.state.function
    }

    /// Dismantles the session after training only, for harnesses that
    /// need the function but not the compile profiles.
    pub fn into_parts(self) -> (AcceleratedFunction, SessionReport) {
        let report = self.report();
        (self.state.function, report)
    }

    /// Stage 2: profiles all `compile_datasets` compilation datasets in
    /// parallel (or loads the profiles from the cache). Profiles are
    /// bit-identical to the sequential path — see
    /// [`collect_profiles_parallel`].
    ///
    /// # Errors
    ///
    /// Currently infallible in practice; `Result` keeps the stage
    /// signature uniform and future-proof.
    pub fn profile(self) -> Result<CompileSession<Profiles>> {
        let started = Instant::now();
        let key = fingerprint(&profiles_key(self.benchmark.name(), &self.config));
        let cached = self
            .cache
            .as_ref()
            .and_then(|c| c.load_profiles(Stage::Profiling.label(), key));
        let (profiles, invocations, cache) = match cached {
            Some(profiles) => (profiles, 0, CacheOutcome::Hit),
            None => {
                let profiles = collect_profiles_parallel(
                    &self.state.function,
                    self.config.seed_base,
                    self.config.compile_datasets,
                    self.config.scale,
                    self.config.threads,
                );
                let invocations: u64 = profiles.iter().map(|p| p.invocation_count() as u64).sum();
                if let Some(c) = &self.cache {
                    let _ = c.store_profiles(Stage::Profiling.label(), key, &profiles);
                }
                (profiles, invocations, self.miss_outcome())
            }
        };
        let (cache_hits, cache_misses) = counters_for(cache);
        let report = StageReport {
            stage: Stage::Profiling,
            wall: started.elapsed(),
            invocations,
            cache,
            cache_hits,
            cache_misses,
        };
        Ok(self.advance(report, |s| Profiles {
            function: s.function,
            profiles,
        }))
    }
}

impl CompileSession<Profiles> {
    /// Re-enters the pipeline at the `Profiles` stage with a function and
    /// profiles computed earlier — the base-reuse path sweeps use to
    /// re-certify many quality levels without re-profiling.
    pub fn resume_with_profiles(
        function: AcceleratedFunction,
        profiles: Vec<DatasetProfile>,
        config: CompileConfig,
    ) -> Self {
        let benchmark = Arc::clone(function.benchmark());
        let cache = config
            .cache
            .as_ref()
            .map(|c| ArtifactCache::open(c, benchmark.name()));
        Self {
            benchmark,
            config,
            cache,
            stages: Vec::new(),
            state: Profiles { function, profiles },
        }
    }

    /// The trained accelerated function.
    pub fn function(&self) -> &AcceleratedFunction {
        &self.state.function
    }

    /// The compilation-dataset profiles.
    pub fn profiles(&self) -> &[DatasetProfile] {
        &self.state.profiles
    }

    /// Dismantles the session after profiling, for harnesses that build
    /// a reusable quality-independent base.
    pub fn into_parts(self) -> (AcceleratedFunction, Vec<DatasetProfile>, SessionReport) {
        let report = self.report();
        (self.state.function, self.state.profiles, report)
    }

    /// Stage 3: statistical threshold optimization against the profiles
    /// (or loads the certified outcome from the cache).
    ///
    /// # Errors
    ///
    /// Returns [`crate::MithraError::Uncertifiable`] when the quality
    /// spec cannot be met on the compilation datasets.
    pub fn certify(self) -> Result<CompileSession<CertifiedThreshold>> {
        let started = Instant::now();
        let key = fingerprint(&threshold_key(self.benchmark.name(), &self.config));
        let (threshold, invocations, cache) =
            match self.load_cached::<ThresholdOutcome>(Stage::Certification, key) {
                Some(threshold) => (threshold, 0, CacheOutcome::Hit),
                None => {
                    let threshold = ThresholdOptimizer::new(self.config.spec)
                        .with_threads(self.config.threads)
                        .optimize(&self.state.function, &self.state.profiles)?;
                    self.store_cached(Stage::Certification, key, &threshold);
                    (threshold, threshold.trials, self.miss_outcome())
                }
            };
        let (cache_hits, cache_misses) = counters_for(cache);
        let report = StageReport {
            stage: Stage::Certification,
            wall: started.elapsed(),
            invocations,
            cache,
            cache_hits,
            cache_misses,
        };
        Ok(self.advance(report, |s| CertifiedThreshold {
            function: s.function,
            profiles: s.profiles,
            threshold,
        }))
    }

    /// Routing branch, stage 3′: trains every member of the approximator
    /// pool `spec` and profiles the compilation datasets through each (or
    /// loads both from the cache).
    ///
    /// The member matching the benchmark's default topology reuses this
    /// session's already-trained function and already-collected profiles
    /// verbatim — zero extra work, and the reason a pool of one is
    /// bit-identical to the binary pipeline. Cheaper members train with
    /// the same `NpuTrainConfig` (same seed, samples and epochs) on their
    /// own topology and are profiled with the same parallel collector.
    ///
    /// # Errors
    ///
    /// Propagates NPU training failures.
    pub fn train_pool(self, spec: &PoolSpec) -> Result<CompileSession<PooledProfiles>> {
        let started = Instant::now();
        let name = self.benchmark.name().to_string();
        let default_topology = self.benchmark.npu_topology();

        // The pool itself: cache the non-default members' networks.
        let key = fingerprint(&pool_key(&name, &self.config, spec));
        let cached_pool = self
            .load_cached::<PoolArtifact>(Stage::PoolTraining, key)
            .and_then(|a| a.into_pool(&self.benchmark, spec.topologies.clone()))
            .map(|p| p.with_kernel(self.config.kernel));
        let mut invocations = 0u64;
        let mut cache_hits = 0u32;
        let mut cache_misses = 0u32;
        if self.cache.is_some() {
            if cached_pool.is_some() {
                cache_hits += 1;
            } else {
                cache_misses += 1;
            }
        }
        let (pool, mut all_hit) = match cached_pool {
            Some(pool) => (pool, self.cache.is_some()),
            None => {
                let train_sets: Vec<Dataset> = (0..self.config.npu_train_datasets as u64)
                    .map(|i| {
                        self.benchmark
                            .dataset(self.config.seed_base + i, self.config.scale)
                    })
                    .collect();
                for t in &spec.topologies {
                    if *t != default_topology {
                        invocations += train_sets
                            .iter()
                            .map(|d| d.invocation_count() as u64)
                            .sum::<u64>();
                    }
                }
                let pool = ApproximatorPool::train_with_kernel(
                    &self.benchmark,
                    &train_sets,
                    &self.config.npu,
                    spec,
                    self.config.threads,
                    Some(&self.state.function),
                    self.config.kernel,
                )?;
                self.store_cached(Stage::PoolTraining, key, &PoolArtifact::of(&pool));
                (pool, false)
            }
        };

        // Per-member compile profiles. The default-topology member reuses
        // this session's profiles in memory; others go through the cache.
        let mut member_profiles = Vec::with_capacity(pool.len());
        for (m, topology) in pool.topologies().iter().enumerate() {
            if *topology == default_topology {
                member_profiles.push(self.state.profiles.clone());
                continue;
            }
            let key = fingerprint(&pool_member_profiles_key(
                &self.benchmark,
                &self.config,
                topology,
            ));
            let cached = self
                .cache
                .as_ref()
                .and_then(|c| c.load_profiles(Stage::Profiling.label(), key));
            if self.cache.is_some() {
                if cached.is_some() {
                    cache_hits += 1;
                } else {
                    cache_misses += 1;
                }
            }
            match cached {
                Some(profiles) => member_profiles.push(profiles),
                None => {
                    all_hit = false;
                    let profiles = collect_profiles_parallel(
                        pool.member(m),
                        self.config.seed_base,
                        self.config.compile_datasets,
                        self.config.scale,
                        self.config.threads,
                    );
                    invocations += profiles
                        .iter()
                        .map(|p| p.invocation_count() as u64)
                        .sum::<u64>();
                    if let Some(c) = &self.cache {
                        let _ = c.store_profiles(Stage::Profiling.label(), key, &profiles);
                    }
                    member_profiles.push(profiles);
                }
            }
        }

        let cache = if all_hit {
            CacheOutcome::Hit
        } else {
            self.miss_outcome()
        };
        let report = StageReport {
            stage: Stage::PoolTraining,
            wall: started.elapsed(),
            invocations,
            cache,
            cache_hits,
            cache_misses,
        };
        let spec = spec.clone();
        Ok(self.advance(report, |_| PooledProfiles {
            spec,
            pool,
            member_profiles,
        }))
    }
}

impl CompileSession<PooledProfiles> {
    /// The trained approximator pool.
    pub fn pool(&self) -> &ApproximatorPool {
        &self.state.pool
    }

    /// Per-member compile profiles: `member_profiles()[m][i]` is member
    /// `m`'s profile of compilation dataset `i`.
    pub fn member_profiles(&self) -> &[Vec<DatasetProfile>] {
        &self.state.member_profiles
    }

    /// Routing branch, stage 4′: certifies the threshold over the routed
    /// mixture (or loads the certified outcome from the cache). Same
    /// Algorithm-1 bisection as the binary [`certify`]; violations are
    /// attributed to the member that served each violating dataset's
    /// worst invocation.
    ///
    /// A pool of one replays every probe through the oracle router —
    /// bit-identical to the binary pipeline, whose classifier fidelity
    /// the binary experiments validate separately. A larger pool
    /// certifies with the **deployed router in the loop**: each probe
    /// trains the table cascade at the candidate threshold and certifies
    /// the cascade's own routing decisions, because per-stage
    /// false-accepts compound across a cascade and an oracle-only
    /// certificate would not survive deployment.
    ///
    /// [`certify`]: CompileSession::certify
    ///
    /// # Errors
    ///
    /// Returns [`crate::MithraError::Uncertifiable`] when the quality
    /// spec cannot be met by the routed mixture.
    pub fn certify_routed(self) -> Result<CompileSession<RoutedCertified>> {
        let started = Instant::now();
        let key = fingerprint(&routed_threshold_key(
            self.benchmark.name(),
            &self.config,
            &self.state.spec,
        ));
        let (threshold, invocations, cache) =
            match self.load_cached::<RoutedThresholdOutcome>(Stage::RoutedCertification, key) {
                Some(threshold) => (threshold, 0, CacheOutcome::Hit),
                None => {
                    let optimizer =
                        ThresholdOptimizer::new(self.config.spec).with_threads(self.config.threads);
                    let threshold = if self.state.pool.len() <= 1 {
                        optimizer.optimize_routed(&self.state.pool, &self.state.member_profiles)?
                    } else {
                        let config = &self.config;
                        let spec = &self.state.spec;
                        let profiles = &self.state.member_profiles;
                        optimizer.optimize_routed_deployed(&self.state.pool, profiles, |t| {
                            RouteClassifier::train_for_spec(
                                spec,
                                profiles,
                                t,
                                &config.table_design,
                                config.classifier_train_samples,
                                config.seed_base ^ 0x7261_696E,
                                config.threads,
                            )
                        })?
                    };
                    self.store_cached(Stage::RoutedCertification, key, &threshold);
                    let trials = threshold.trials;
                    (threshold, trials, self.miss_outcome())
                }
            };
        let (cache_hits, cache_misses) = counters_for(cache);
        let report = StageReport {
            stage: Stage::RoutedCertification,
            wall: started.elapsed(),
            invocations,
            cache,
            cache_hits,
            cache_misses,
        };
        Ok(self.advance(report, |s| RoutedCertified {
            spec: s.spec,
            pool: s.pool,
            member_profiles: s.member_profiles,
            threshold,
        }))
    }
}

impl CompileSession<RoutedCertified> {
    /// The threshold certified over the routed mixture.
    pub fn routed_threshold(&self) -> &RoutedThresholdOutcome {
        &self.state.threshold
    }

    /// Routing branch, stage 5′: trains the K-ary route classifier — one
    /// table stage per pool member, labeled against that member's
    /// profiled errors at the shared certified threshold (or loads the
    /// router from the cache). Stage 0 of a pool-of-one router trains
    /// with the binary pipeline's seed and quantizer, so it is the binary
    /// table classifier bit for bit. For a larger pool, training is
    /// deterministic in the threshold, so this reproduces exactly the
    /// router whose decisions the deployed certification probe certified.
    ///
    /// # Errors
    ///
    /// Propagates classifier-training failures.
    pub fn train_router(self) -> Result<CompileSession<RoutedClassifiers>> {
        let started = Instant::now();
        let key = fingerprint(&router_key(
            self.benchmark.name(),
            &self.config,
            &self.state.spec,
        ));
        let (router, invocations, cache) =
            match self.load_cached::<RouteClassifier>(Stage::RouterTraining, key) {
                Some(router) => (router, 0, CacheOutcome::Hit),
                None => {
                    // `threads` is deliberately not part of the cache key: the
                    // parallel table trainer is bit-identical at every thread
                    // count, so artifacts stay interchangeable across runs.
                    let router = RouteClassifier::train_for_spec(
                        &self.state.spec,
                        &self.state.member_profiles,
                        self.state.threshold.threshold,
                        &self.config.table_design,
                        self.config.classifier_train_samples,
                        self.config.seed_base ^ 0x7261_696E,
                        self.config.threads,
                    )?;
                    self.store_cached(Stage::RouterTraining, key, &router);
                    let invocations = (self.config.classifier_train_samples * router.len()) as u64;
                    (router, invocations, self.miss_outcome())
                }
            };
        let (cache_hits, cache_misses) = counters_for(cache);
        let report = StageReport {
            stage: Stage::RouterTraining,
            wall: started.elapsed(),
            invocations,
            cache,
            cache_hits,
            cache_misses,
        };
        Ok(self.advance(report, |s| RoutedClassifiers {
            pool: s.pool,
            member_profiles: s.member_profiles,
            threshold: s.threshold,
            router,
        }))
    }
}

impl CompileSession<RoutedClassifiers> {
    /// Finalizes the routing branch into the routed compile product and
    /// its per-stage instrumentation.
    pub fn finish_routed(self) -> (RoutedCompiled, SessionReport) {
        let report = self.report();
        let routed = RoutedCompiled {
            pool: self.state.pool,
            member_profiles: self.state.member_profiles,
            threshold: self.state.threshold,
            router: self.state.router,
        };
        (routed, report)
    }
}

impl CompileSession<CertifiedThreshold> {
    /// The certified threshold and its statistics.
    pub fn threshold(&self) -> &ThresholdOutcome {
        &self.state.threshold
    }

    /// Stage 4: labels training tuples at the certified threshold and
    /// trains the table and neural classifiers (or loads both from the
    /// cache).
    ///
    /// The labeled tuples themselves are **not** stored: they are a
    /// deterministic (and cheap, invocation-free) function of the profiles
    /// already in memory, while serializing 30k of them costs more than
    /// relabeling. A hit therefore relabels and deserializes only the two
    /// trained classifiers.
    ///
    /// # Errors
    ///
    /// Propagates classifier-training failures.
    pub fn train_classifiers(self) -> Result<CompileSession<Classifiers>> {
        let started = Instant::now();
        let key = fingerprint(&classifier_key(self.benchmark.name(), &self.config));
        let training_data = generate_training_data(
            &self.state.profiles,
            self.state.threshold.threshold,
            self.config.classifier_train_samples,
            self.config.seed_base ^ 0x7261_696E,
        );
        let (artifact, invocations, cache) =
            match self.load_cached::<ClassifierArtifact>(Stage::ClassifierTraining, key) {
                Some(artifact) => (artifact, 0, CacheOutcome::Hit),
                None => {
                    let quantizer = quantizer_from_profiles(&self.state.profiles);
                    // `threads` is deliberately not part of any cache key:
                    // the parallel trainers are bit-identical at every thread
                    // count, so artifacts stay interchangeable across runs.
                    let table = TableClassifier::train_with_threads(
                        self.config.table_design,
                        quantizer,
                        &training_data,
                        self.config.threads,
                    )?;
                    let neural = NeuralClassifier::train_with_threads(
                        self.state.function.benchmark().input_dim(),
                        &training_data,
                        &self.config.neural,
                        self.config.threads,
                    )?;
                    let artifact = ClassifierArtifact { table, neural };
                    self.store_cached(Stage::ClassifierTraining, key, &artifact);
                    let invocations = training_data.len() as u64;
                    (artifact, invocations, self.miss_outcome())
                }
            };
        let (cache_hits, cache_misses) = counters_for(cache);
        let report = StageReport {
            stage: Stage::ClassifierTraining,
            wall: started.elapsed(),
            invocations,
            cache,
            cache_hits,
            cache_misses,
        };
        Ok(self.advance(report, |s| Classifiers {
            function: s.function,
            profiles: s.profiles,
            threshold: s.threshold,
            table: artifact.table,
            neural: artifact.neural,
            training_data,
        }))
    }
}

impl CompileSession<Classifiers> {
    /// Finalizes the session into the compile-flow output and its
    /// per-stage instrumentation.
    pub fn finish(self) -> (Compiled, SessionReport) {
        let report = self.report();
        let compiled = Compiled {
            function: self.state.function,
            threshold: self.state.threshold,
            table: self.state.table,
            neural: self.state.neural,
            profiles: self.state.profiles,
            training_data: self.state.training_data,
        };
        (compiled, report)
    }
}

/// Profiles `count` datasets seeded from `seed_base` in parallel, with
/// the same caching and instrumentation as the in-session stages. This
/// is the harness path for **validation** datasets, which sit outside
/// the compile pipeline proper (they must stay unseen by it) but share
/// its trained function, cache and reporting.
pub fn profile_validation(
    function: &AcceleratedFunction,
    config: &CompileConfig,
    seed_base: u64,
    count: usize,
) -> (Vec<DatasetProfile>, StageReport) {
    let started = Instant::now();
    let name = function.benchmark().name();
    let cache = config.cache.as_ref().map(|c| ArtifactCache::open(c, name));
    let key = fingerprint(&format!(
        "{}/validation_seed_base={seed_base}/validation_datasets={count}",
        npu_key(name, config)
    ));
    let stage = Stage::ValidationProfiling;
    let cached = cache
        .as_ref()
        .and_then(|c| c.load_profiles(stage.label(), key));
    let (profiles, invocations, outcome) = match cached {
        Some(profiles) => (profiles, 0, CacheOutcome::Hit),
        None => {
            let profiles =
                collect_profiles_parallel(function, seed_base, count, config.scale, config.threads);
            let invocations: u64 = profiles.iter().map(|p| p.invocation_count() as u64).sum();
            let outcome = if let Some(c) = &cache {
                let _ = c.store_profiles(stage.label(), key, &profiles);
                CacheOutcome::Miss
            } else {
                CacheOutcome::Disabled
            };
            (profiles, invocations, outcome)
        }
    };
    let (cache_hits, cache_misses) = counters_for(outcome);
    let report = StageReport {
        stage,
        wall: started.elapsed(),
        invocations,
        cache: outcome,
        cache_hits,
        cache_misses,
    };
    (profiles, report)
}

/// Profiles `count` validation datasets seeded from `seed_base` through
/// **every pool member**, with the same caching and instrumentation as
/// [`profile_validation`]: `result[m][i]` is member `m`'s profile of
/// dataset `seed_base + i`. The member running the benchmark's default
/// topology shares the binary pipeline's validation-profile cache entry.
pub fn profile_pool_validation(
    pool: &ApproximatorPool,
    config: &CompileConfig,
    seed_base: u64,
    count: usize,
) -> (Vec<Vec<DatasetProfile>>, StageReport) {
    let started = Instant::now();
    let benchmark = pool.benchmark();
    let name = benchmark.name();
    let cache = config.cache.as_ref().map(|c| ArtifactCache::open(c, name));
    let stage = Stage::ValidationProfiling;
    let default_topology = benchmark.npu_topology();
    let mut member_profiles = Vec::with_capacity(pool.len());
    let mut invocations = 0u64;
    let mut all_hit = true;
    let mut cache_hits = 0u32;
    let mut cache_misses = 0u32;
    for (m, topology) in pool.topologies().iter().enumerate() {
        let key = if *topology == default_topology {
            fingerprint(&format!(
                "{}/validation_seed_base={seed_base}/validation_datasets={count}",
                npu_key(name, config)
            ))
        } else {
            fingerprint(&format!(
                "{}/pool_member_topology={:?}/validation_seed_base={seed_base}/validation_datasets={count}",
                npu_key(name, config),
                topology
            ))
        };
        let cached = cache
            .as_ref()
            .and_then(|c| c.load_profiles(stage.label(), key));
        if cache.is_some() {
            if cached.is_some() {
                cache_hits += 1;
            } else {
                cache_misses += 1;
            }
        }
        match cached {
            Some(profiles) => member_profiles.push(profiles),
            None => {
                all_hit = false;
                let profiles = collect_profiles_parallel(
                    pool.member(m),
                    seed_base,
                    count,
                    config.scale,
                    config.threads,
                );
                invocations += profiles
                    .iter()
                    .map(|p| p.invocation_count() as u64)
                    .sum::<u64>();
                if let Some(c) = &cache {
                    let _ = c.store_profiles(stage.label(), key, &profiles);
                }
                member_profiles.push(profiles);
            }
        }
    }
    let outcome = if all_hit && cache.is_some() {
        CacheOutcome::Hit
    } else if cache.is_some() {
        CacheOutcome::Miss
    } else {
        CacheOutcome::Disabled
    };
    let report = StageReport {
        stage,
        wall: started.elapsed(),
        invocations,
        cache: outcome,
        cache_hits,
        cache_misses,
    };
    (member_profiles, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheConfig;
    use mithra_axbench::suite;

    fn session_config(cache: Option<CacheConfig>) -> CompileConfig {
        CompileConfig {
            cache,
            ..CompileConfig::smoke()
        }
    }

    fn sobel() -> Arc<dyn Benchmark> {
        suite::by_name("sobel").unwrap().into()
    }

    fn tmp_cache(tag: &str) -> CacheConfig {
        let dir =
            std::env::temp_dir().join(format!("mithra-session-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        CacheConfig::at(dir)
    }

    #[test]
    fn staged_session_matches_monolithic_compile() {
        let config = session_config(None);
        let session = CompileSession::new(sobel(), config.clone())
            .train_npu()
            .unwrap()
            .profile()
            .unwrap()
            .certify()
            .unwrap()
            .train_classifiers()
            .unwrap();
        let (compiled, report) = session.finish();

        let direct = crate::pipeline::compile(sobel(), &config).unwrap();
        assert_eq!(compiled.threshold, direct.threshold);
        assert_eq!(compiled.training_data, direct.training_data);
        assert_eq!(
            compiled.function.npu().to_parameters(),
            direct.function.npu().to_parameters()
        );

        assert_eq!(report.stages.len(), 4);
        assert!(report
            .stages
            .iter()
            .all(|r| r.cache == CacheOutcome::Disabled));
        assert!(report.stage(Stage::Profiling).unwrap().invocations > 0);
        assert_eq!(report.benchmark, "sobel");
    }

    #[test]
    fn warm_cache_skips_training_and_profiling() {
        let cache = tmp_cache("warm");
        let config = session_config(Some(cache.clone()));

        let (cold, cold_report) = CompileSession::new(sobel(), config.clone())
            .train_npu()
            .unwrap()
            .profile()
            .unwrap()
            .certify()
            .unwrap()
            .train_classifiers()
            .unwrap()
            .finish();
        assert!(cold_report
            .stages
            .iter()
            .all(|r| r.cache == CacheOutcome::Miss));

        let (warm, warm_report) = CompileSession::new(sobel(), config.clone())
            .train_npu()
            .unwrap()
            .profile()
            .unwrap()
            .certify()
            .unwrap()
            .train_classifiers()
            .unwrap()
            .finish();
        assert!(
            warm_report.stages.iter().all(|r| r.is_cache_hit()),
            "second run should hit every stage: {warm_report}"
        );
        assert_eq!(warm_report.total_invocations(), 0);
        // The lookup counters tell the same story from committed output.
        assert_eq!(cold_report.cache_hits(), 0);
        assert_eq!(cold_report.cache_misses(), 4);
        assert_eq!(warm_report.cache_hits(), 4);
        assert_eq!(warm_report.cache_misses(), 0);

        // The warm artifacts are equal to the cold ones.
        assert_eq!(warm.threshold, cold.threshold);
        assert_eq!(warm.training_data, cold.training_data);
        assert_eq!(warm.profiles.len(), cold.profiles.len());
        for (w, c) in warm.profiles.iter().zip(&cold.profiles) {
            assert_eq!(w.errors(), c.errors());
            assert_eq!(w.final_precise(), c.final_precise());
        }
        assert_eq!(
            warm.function.npu().to_parameters(),
            cold.function.npu().to_parameters()
        );
        let _ = std::fs::remove_dir_all(&cache.dir);
    }

    #[test]
    fn config_changes_invalidate_dependent_stages_only() {
        let cache = tmp_cache("keys");
        let config = session_config(Some(cache.clone()));
        let _ = CompileSession::new(sobel(), config.clone())
            .train_npu()
            .unwrap()
            .profile()
            .unwrap()
            .certify()
            .unwrap();

        // A different spec re-certifies but reuses training + profiling.
        let mut respec = config.clone();
        respec.spec = crate::threshold::QualitySpec::new(0.2, 0.9, 0.5).unwrap();
        let session = CompileSession::new(sobel(), respec)
            .train_npu()
            .unwrap()
            .profile()
            .unwrap()
            .certify()
            .unwrap();
        let reports = session.stage_reports();
        assert!(reports[0].is_cache_hit(), "npu should hit");
        assert!(reports[1].is_cache_hit(), "profiling should hit");
        assert_eq!(
            reports[2].cache,
            CacheOutcome::Miss,
            "new spec must re-certify"
        );
        let _ = std::fs::remove_dir_all(&cache.dir);
    }

    #[test]
    fn resume_with_profiles_matches_full_session() {
        let config = session_config(None);
        let (function, profiles, _) = CompileSession::new(sobel(), config.clone())
            .train_npu()
            .unwrap()
            .profile()
            .unwrap()
            .into_parts();
        let resumed = CompileSession::resume_with_profiles(function, profiles, config.clone())
            .certify()
            .unwrap();
        let direct = crate::pipeline::compile(sobel(), &config).unwrap();
        assert_eq!(*resumed.threshold(), direct.threshold);
        // Only the stages actually run are reported.
        assert_eq!(resumed.stage_reports().len(), 1);
        assert_eq!(resumed.stage_reports()[0].stage, Stage::Certification);
    }

    #[test]
    fn validation_profiles_cache_and_reload() {
        let cache = tmp_cache("validation");
        let config = session_config(Some(cache.clone()));
        let (function, _) = CompileSession::new(sobel(), config.clone())
            .train_npu()
            .unwrap()
            .into_parts();

        let (cold, cold_report) = profile_validation(&function, &config, 1_000_000, 4);
        assert_eq!(cold_report.cache, CacheOutcome::Miss);
        assert!(cold_report.invocations > 0);

        let (warm, warm_report) = profile_validation(&function, &config, 1_000_000, 4);
        assert!(warm_report.is_cache_hit());
        assert_eq!(warm_report.invocations, 0);
        assert_eq!(warm.len(), cold.len());
        for (w, c) in warm.iter().zip(&cold) {
            assert_eq!(w.errors(), c.errors());
        }
        let _ = std::fs::remove_dir_all(&cache.dir);
    }

    #[test]
    fn routed_pool_of_one_session_matches_binary() {
        let config = session_config(None);
        let binary = CompileSession::new(sobel(), config.clone())
            .train_npu()
            .unwrap()
            .profile()
            .unwrap()
            .certify()
            .unwrap()
            .train_classifiers()
            .unwrap();
        let (compiled, _) = binary.finish();

        let spec = PoolSpec::single(compiled.function.benchmark().npu_topology());
        let (routed, report) = CompileSession::new(sobel(), config)
            .train_npu()
            .unwrap()
            .profile()
            .unwrap()
            .train_pool(&spec)
            .unwrap()
            .certify_routed()
            .unwrap()
            .train_router()
            .unwrap()
            .finish_routed();

        // Shared threshold statistics are bit-identical.
        assert_eq!(
            routed.threshold.threshold.to_bits(),
            compiled.threshold.threshold.to_bits()
        );
        assert_eq!(routed.threshold.successes, compiled.threshold.successes);
        assert_eq!(
            routed.threshold.certified_rate.to_bits(),
            compiled.threshold.certified_rate.to_bits()
        );
        assert_eq!(
            routed.threshold.mean_invocation_rate.to_bits(),
            compiled.threshold.mean_invocation_rate.to_bits()
        );
        // The single router stage is the binary table classifier.
        assert_eq!(
            serde_json::to_string(&routed.router.stages()[0]).unwrap(),
            serde_json::to_string(&compiled.table).unwrap()
        );
        // The single member is the binary network.
        assert_eq!(
            routed.pool.member(0).npu().to_parameters(),
            compiled.function.npu().to_parameters()
        );
        assert!(report.stage(Stage::PoolTraining).is_some());
        // Pool-of-one reuses the binary function and profiles: no extra
        // invocations in pool training.
        assert_eq!(report.stage(Stage::PoolTraining).unwrap().invocations, 0);
    }

    #[test]
    fn warm_cache_skips_routed_stages() {
        let cache = tmp_cache("routed-warm");
        let config = session_config(Some(cache.clone()));
        let spec = PoolSpec::sized(&sobel().npu_topology(), 2);

        let run = |config: CompileConfig| {
            CompileSession::new(sobel(), config)
                .train_npu()
                .unwrap()
                .profile()
                .unwrap()
                .train_pool(&spec)
                .unwrap()
                .certify_routed()
                .unwrap()
                .train_router()
                .unwrap()
                .finish_routed()
        };
        let (cold, cold_report) = run(config.clone());
        assert!(cold_report
            .stages
            .iter()
            .all(|r| r.cache == CacheOutcome::Miss));

        let (warm, warm_report) = run(config);
        assert!(
            warm_report.stages.iter().all(|r| r.is_cache_hit()),
            "second routed run should hit every stage: {warm_report}"
        );
        assert_eq!(warm_report.total_invocations(), 0);
        // Pool training performs one lookup for the pool artifact and one
        // per non-default member's profiles: two hits for a sized-2 pool.
        let pool_stage = warm_report.stage(Stage::PoolTraining).unwrap();
        assert_eq!(pool_stage.cache_hits, 2);
        assert_eq!(pool_stage.cache_misses, 0);
        assert_eq!(warm_report.cache_misses(), 0);
        assert!(warm_report.cache_hits() >= 5);
        assert_eq!(warm.threshold, cold.threshold);
        assert_eq!(
            serde_json::to_string(&warm.router).unwrap(),
            serde_json::to_string(&cold.router).unwrap()
        );
        for (w, c) in warm.pool.members().iter().zip(cold.pool.members()) {
            assert_eq!(w.npu().to_parameters(), c.npu().to_parameters());
        }
        let _ = std::fs::remove_dir_all(&cache.dir);
    }

    #[test]
    fn old_format_version_artifacts_never_hit() {
        // Satellite: a cache written by a pre-routing build (format v1)
        // must recompute, never poison a routed compile. Plant a valid
        // artifact under the v1-prefixed key and check the session misses.
        let cache = tmp_cache("old-version");
        let config = session_config(Some(cache.clone()));
        let bench = sobel();

        let session = CompileSession::new(Arc::clone(&bench), config.clone())
            .train_npu()
            .unwrap();
        let artifact = TrainedNpuArtifact::of(session.function());

        let v2_key = npu_key(bench.name(), &config);
        assert!(v2_key.starts_with("v2/"), "key is {v2_key}");
        let v1_key = v2_key.replacen("v2/", "v1/", 1);
        let store = ArtifactCache::open(&cache, bench.name());
        // Wipe the v2 entry the session just wrote; keep only the v1 one.
        let _ = std::fs::remove_dir_all(store.dir());
        assert!(store.store(Stage::NpuTraining.label(), fingerprint(&v1_key), &artifact));

        let session = CompileSession::new(bench, config).train_npu().unwrap();
        assert_eq!(
            session.stage_reports()[0].cache,
            CacheOutcome::Miss,
            "v1 artifact must not satisfy a v2 lookup"
        );
        let _ = std::fs::remove_dir_all(&cache.dir);
    }

    #[test]
    fn pool_validation_profiles_cache_and_reload() {
        let cache = tmp_cache("pool-validation");
        let config = session_config(Some(cache.clone()));
        let spec = PoolSpec::sized(&sobel().npu_topology(), 2);
        let session = CompileSession::new(sobel(), config.clone())
            .train_npu()
            .unwrap()
            .profile()
            .unwrap()
            .train_pool(&spec)
            .unwrap();
        let pool = session.pool().clone();

        let (cold, cold_report) = profile_pool_validation(&pool, &config, 1_000_000, 3);
        assert_eq!(cold_report.cache, CacheOutcome::Miss);
        assert_eq!(cold.len(), pool.len());

        let (warm, warm_report) = profile_pool_validation(&pool, &config, 1_000_000, 3);
        assert!(warm_report.is_cache_hit());
        assert_eq!(warm_report.invocations, 0);
        for (w, c) in warm.iter().zip(&cold) {
            for (wp, cp) in w.iter().zip(c) {
                assert_eq!(wp.errors(), cp.errors());
            }
        }

        // The accurate member's validation profiles share the binary key.
        let (binary, binary_report) = profile_validation(pool.accurate(), &config, 1_000_000, 3);
        assert!(binary_report.is_cache_hit());
        for (bp, cp) in binary.iter().zip(cold.last().unwrap()) {
            assert_eq!(bp.errors(), cp.errors());
        }
        let _ = std::fs::remove_dir_all(&cache.dir);
    }

    #[test]
    fn non_default_routing_gets_distinct_cache_keys() {
        let config = session_config(None);
        let spec = PoolSpec::sized(&sobel().npu_topology(), 2);
        let default_key = routed_threshold_key("sobel", &config, &spec);
        assert!(
            default_key.ends_with("certifier=deployed"),
            "default routing must keep its pre-explorer key: {default_key}"
        );
        let margined = spec.clone().with_margins(vec![0.75, 1.0]);
        let neural = spec
            .clone()
            .with_router(crate::route::RouterKind::kary_neural_default());
        assert_ne!(
            routed_threshold_key("sobel", &config, &margined),
            default_key
        );
        assert_ne!(routed_threshold_key("sobel", &config, &neural), default_key);
        assert_ne!(
            router_key("sobel", &config, &margined),
            router_key("sobel", &config, &neural)
        );
    }

    #[test]
    fn report_display_lists_every_stage() {
        let config = session_config(None);
        let session = CompileSession::new(sobel(), config).train_npu().unwrap();
        let (_, report) = session.into_parts();
        let text = format!("{report}");
        assert!(text.contains("compile session [sobel]"));
        assert!(text.contains("npu-training"));
        assert!(text.contains("cache off"));
    }
}
