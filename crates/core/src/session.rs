//! The staged compile pipeline (paper Figure 2, left half) as a typestate
//! session.
//!
//! A [`CompileSession`] advances through typed stage artifacts:
//!
//! ```text
//! Pending ──train_npu()──▶ TrainedFunction ──profile()──▶ Profiles
//!     ──certify()──▶ CertifiedThreshold ──train_classifiers()──▶
//!     Classifiers ──finish()──▶ (Compiled, SessionReport)
//! ```
//!
//! Each transition consumes the session and returns it in the next state,
//! so stage ordering is enforced at compile time — there is no way to
//! certify a threshold before profiling, or to train classifiers against
//! a stale threshold. Every transition:
//!
//! * consults the optional on-disk [`ArtifactCache`] first (keyed by a
//!   config+benchmark+seed fingerprint that also covers all upstream
//!   stages), skipping the work entirely on a hit;
//! * records a [`StageReport`] — wall time, invocation count and cache
//!   outcome — so harnesses can show exactly where compile time went.
//!
//! Sweeps that reuse a quality-independent base (retrained thresholds at
//! many quality levels, table-design grids) enter mid-pipeline with
//! [`CompileSession::resume_with_profiles`]; `mithra_core::pipeline`'s
//! `compile`/`compile_with_profiles` and `mithra-bench`'s
//! `prepare_base`/`certify_at` are all thin wrappers over this type.

use crate::cache::{
    fingerprint, ArtifactCache, ClassifierArtifact, TrainedNpuArtifact, CACHE_FORMAT_VERSION,
};
use crate::function::AcceleratedFunction;
use crate::neural::NeuralClassifier;
use crate::pipeline::{quantizer_from_profiles, CompileConfig, Compiled};
use crate::profile::{collect_profiles_parallel, DatasetProfile};
use crate::table::TableClassifier;
use crate::threshold::{ThresholdOptimizer, ThresholdOutcome};
use crate::training::{generate_training_data, TrainingExample};
use crate::Result;
use mithra_axbench::benchmark::Benchmark;
use mithra_axbench::dataset::Dataset;
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One stage of the compile pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Stage {
    /// Offline NPU training on the leading compilation datasets.
    NpuTraining,
    /// Profiling every compilation dataset (both execution paths).
    Profiling,
    /// Profiling unseen validation datasets (harness stage).
    ValidationProfiling,
    /// Statistical threshold optimization (Clopper–Pearson).
    Certification,
    /// Labeling tuples and training the table + neural classifiers.
    ClassifierTraining,
}

impl Stage {
    /// Stable lowercase label, also used as the cache file-name prefix.
    pub fn label(self) -> &'static str {
        match self {
            Stage::NpuTraining => "npu-training",
            Stage::Profiling => "profiling",
            Stage::ValidationProfiling => "validation-profiling",
            Stage::Certification => "certification",
            Stage::ClassifierTraining => "classifier-training",
        }
    }
}

/// How a stage interacted with the artifact cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// No cache configured for this session.
    Disabled,
    /// A cache was consulted but held no usable artifact; the stage ran
    /// and (best-effort) stored its result.
    Miss,
    /// The artifact was loaded from disk; the stage's work was skipped.
    Hit,
}

impl CacheOutcome {
    /// Stable lowercase label for reports.
    pub fn label(self) -> &'static str {
        match self {
            CacheOutcome::Disabled => "cache off",
            CacheOutcome::Miss => "cache miss",
            CacheOutcome::Hit => "cache hit",
        }
    }
}

/// Instrumentation record of one executed stage transition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageReport {
    /// Which stage ran.
    pub stage: Stage,
    /// Wall time of the transition, including cache I/O.
    pub wall: Duration,
    /// Function invocations the stage performed (0 on a cache hit —
    /// this is what "the second run skipped the work" looks like).
    pub invocations: u64,
    /// Cache interaction.
    pub cache: CacheOutcome,
}

impl StageReport {
    /// Whether the stage's work was skipped via the cache.
    pub fn is_cache_hit(&self) -> bool {
        self.cache == CacheOutcome::Hit
    }
}

/// The full per-stage instrumentation of one compile session.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SessionReport {
    /// The benchmark compiled.
    pub benchmark: String,
    /// One entry per executed stage, in execution order.
    pub stages: Vec<StageReport>,
}

impl SessionReport {
    /// The report of `stage`, if that stage ran.
    pub fn stage(&self, stage: Stage) -> Option<&StageReport> {
        self.stages.iter().find(|r| r.stage == stage)
    }

    /// Total wall time across all recorded stages.
    pub fn total_wall(&self) -> Duration {
        self.stages.iter().map(|r| r.wall).sum()
    }

    /// Total invocations across all recorded stages.
    pub fn total_invocations(&self) -> u64 {
        self.stages.iter().map(|r| r.invocations).sum()
    }
}

impl fmt::Display for SessionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "compile session [{}]: {:.2?} total",
            self.benchmark,
            self.total_wall()
        )?;
        for r in &self.stages {
            writeln!(
                f,
                "  {:<22} {:>10.2?}  {:>10} invocations  [{}]",
                r.stage.label(),
                r.wall,
                r.invocations,
                r.cache.label()
            )?;
        }
        Ok(())
    }
}

/// Initial state: nothing computed yet.
#[derive(Debug, Clone, Copy, Default)]
pub struct Pending;

/// State after NPU training: the benchmark bound to its accelerator.
#[derive(Debug)]
pub struct TrainedFunction {
    function: AcceleratedFunction,
}

/// State after profiling: function plus all compilation-dataset profiles.
#[derive(Debug)]
pub struct Profiles {
    function: AcceleratedFunction,
    profiles: Vec<DatasetProfile>,
}

/// State after certification: the statistically certified threshold.
#[derive(Debug)]
pub struct CertifiedThreshold {
    function: AcceleratedFunction,
    profiles: Vec<DatasetProfile>,
    threshold: ThresholdOutcome,
}

/// Final state: both classifiers trained; ready to [`finish`].
///
/// [`finish`]: CompileSession::finish
#[derive(Debug)]
pub struct Classifiers {
    function: AcceleratedFunction,
    profiles: Vec<DatasetProfile>,
    threshold: ThresholdOutcome,
    table: TableClassifier,
    neural: NeuralClassifier,
    training_data: Vec<TrainingExample>,
}

/// A compile-pipeline run in progress, parameterized by its stage.
#[derive(Debug)]
pub struct CompileSession<S> {
    benchmark: Arc<dyn Benchmark>,
    config: CompileConfig,
    cache: Option<ArtifactCache>,
    stages: Vec<StageReport>,
    state: S,
}

impl<S> CompileSession<S> {
    /// The configuration driving this session.
    pub fn config(&self) -> &CompileConfig {
        &self.config
    }

    /// Stage reports recorded so far, in execution order.
    pub fn stage_reports(&self) -> &[StageReport] {
        &self.stages
    }

    fn advance<T>(self, report: StageReport, next: impl FnOnce(S) -> T) -> CompileSession<T> {
        let mut stages = self.stages;
        stages.push(report);
        CompileSession {
            benchmark: self.benchmark,
            config: self.config,
            cache: self.cache,
            stages,
            state: next(self.state),
        }
    }

    fn load_cached<T: serde::Deserialize>(&self, stage: Stage, key: u64) -> Option<T> {
        self.cache.as_ref().and_then(|c| c.load(stage.label(), key))
    }

    fn store_cached<T: serde::Serialize>(&self, stage: Stage, key: u64, value: &T) {
        if let Some(cache) = &self.cache {
            let _ = cache.store(stage.label(), key, value);
        }
    }

    fn miss_outcome(&self) -> CacheOutcome {
        if self.cache.is_some() {
            CacheOutcome::Miss
        } else {
            CacheOutcome::Disabled
        }
    }

    fn report(&self) -> SessionReport {
        SessionReport {
            benchmark: self.benchmark.name().to_string(),
            stages: self.stages.clone(),
        }
    }
}

// Cache keys. Each stage's canonical key string embeds its upstream
// stage's key, so an artifact can only hit when every configuration
// choice that influenced it (transitively) matches.

fn npu_key(benchmark: &str, config: &CompileConfig) -> String {
    format!(
        "v{CACHE_FORMAT_VERSION}/{benchmark}/scale={:?}/seed_base={}/train_datasets={}/npu={:?}",
        config.scale, config.seed_base, config.npu_train_datasets, config.npu
    )
}

fn profiles_key(benchmark: &str, config: &CompileConfig) -> String {
    format!(
        "{}/compile_datasets={}",
        npu_key(benchmark, config),
        config.compile_datasets
    )
}

fn threshold_key(benchmark: &str, config: &CompileConfig) -> String {
    format!("{}/spec={:?}", profiles_key(benchmark, config), config.spec)
}

fn classifier_key(benchmark: &str, config: &CompileConfig) -> String {
    format!(
        "{}/table={:?}/neural={:?}/train_samples={}",
        threshold_key(benchmark, config),
        config.table_design,
        config.neural,
        config.classifier_train_samples
    )
}

impl CompileSession<Pending> {
    /// Opens a session for one benchmark. No work happens until the first
    /// stage transition.
    pub fn new(benchmark: Arc<dyn Benchmark>, config: CompileConfig) -> Self {
        let cache = config
            .cache
            .as_ref()
            .map(|c| ArtifactCache::open(c, benchmark.name()));
        Self {
            benchmark,
            config,
            cache,
            stages: Vec::new(),
            state: Pending,
        }
    }

    /// Stage 1: trains the NPU on the leading `npu_train_datasets`
    /// compilation datasets (or loads the trained network from the cache).
    ///
    /// # Errors
    ///
    /// Propagates NPU training failures.
    pub fn train_npu(self) -> Result<CompileSession<TrainedFunction>> {
        let started = Instant::now();
        let key = fingerprint(&npu_key(self.benchmark.name(), &self.config));
        let (function, invocations, cache) = match self
            .load_cached::<TrainedNpuArtifact>(Stage::NpuTraining, key)
        {
            Some(artifact) => (
                artifact.into_function(Arc::clone(&self.benchmark)),
                0,
                CacheOutcome::Hit,
            ),
            None => {
                let train_sets: Vec<Dataset> = (0..self.config.npu_train_datasets as u64)
                    .map(|i| {
                        self.benchmark
                            .dataset(self.config.seed_base + i, self.config.scale)
                    })
                    .collect();
                let invocations: u64 = train_sets.iter().map(|d| d.invocation_count() as u64).sum();
                let function = AcceleratedFunction::train(
                    Arc::clone(&self.benchmark),
                    &train_sets,
                    &self.config.npu,
                )?;
                self.store_cached(Stage::NpuTraining, key, &TrainedNpuArtifact::of(&function));
                (function, invocations, self.miss_outcome())
            }
        };
        let report = StageReport {
            stage: Stage::NpuTraining,
            wall: started.elapsed(),
            invocations,
            cache,
        };
        Ok(self.advance(report, |_| TrainedFunction { function }))
    }
}

impl CompileSession<TrainedFunction> {
    /// The trained accelerated function.
    pub fn function(&self) -> &AcceleratedFunction {
        &self.state.function
    }

    /// Dismantles the session after training only, for harnesses that
    /// need the function but not the compile profiles.
    pub fn into_parts(self) -> (AcceleratedFunction, SessionReport) {
        let report = self.report();
        (self.state.function, report)
    }

    /// Stage 2: profiles all `compile_datasets` compilation datasets in
    /// parallel (or loads the profiles from the cache). Profiles are
    /// bit-identical to the sequential path — see
    /// [`collect_profiles_parallel`].
    ///
    /// # Errors
    ///
    /// Currently infallible in practice; `Result` keeps the stage
    /// signature uniform and future-proof.
    pub fn profile(self) -> Result<CompileSession<Profiles>> {
        let started = Instant::now();
        let key = fingerprint(&profiles_key(self.benchmark.name(), &self.config));
        let cached = self
            .cache
            .as_ref()
            .and_then(|c| c.load_profiles(Stage::Profiling.label(), key));
        let (profiles, invocations, cache) = match cached {
            Some(profiles) => (profiles, 0, CacheOutcome::Hit),
            None => {
                let profiles = collect_profiles_parallel(
                    &self.state.function,
                    self.config.seed_base,
                    self.config.compile_datasets,
                    self.config.scale,
                    self.config.threads,
                );
                let invocations: u64 = profiles.iter().map(|p| p.invocation_count() as u64).sum();
                if let Some(c) = &self.cache {
                    let _ = c.store_profiles(Stage::Profiling.label(), key, &profiles);
                }
                (profiles, invocations, self.miss_outcome())
            }
        };
        let report = StageReport {
            stage: Stage::Profiling,
            wall: started.elapsed(),
            invocations,
            cache,
        };
        Ok(self.advance(report, |s| Profiles {
            function: s.function,
            profiles,
        }))
    }
}

impl CompileSession<Profiles> {
    /// Re-enters the pipeline at the `Profiles` stage with a function and
    /// profiles computed earlier — the base-reuse path sweeps use to
    /// re-certify many quality levels without re-profiling.
    pub fn resume_with_profiles(
        function: AcceleratedFunction,
        profiles: Vec<DatasetProfile>,
        config: CompileConfig,
    ) -> Self {
        let benchmark = Arc::clone(function.benchmark());
        let cache = config
            .cache
            .as_ref()
            .map(|c| ArtifactCache::open(c, benchmark.name()));
        Self {
            benchmark,
            config,
            cache,
            stages: Vec::new(),
            state: Profiles { function, profiles },
        }
    }

    /// The trained accelerated function.
    pub fn function(&self) -> &AcceleratedFunction {
        &self.state.function
    }

    /// The compilation-dataset profiles.
    pub fn profiles(&self) -> &[DatasetProfile] {
        &self.state.profiles
    }

    /// Dismantles the session after profiling, for harnesses that build
    /// a reusable quality-independent base.
    pub fn into_parts(self) -> (AcceleratedFunction, Vec<DatasetProfile>, SessionReport) {
        let report = self.report();
        (self.state.function, self.state.profiles, report)
    }

    /// Stage 3: statistical threshold optimization against the profiles
    /// (or loads the certified outcome from the cache).
    ///
    /// # Errors
    ///
    /// Returns [`crate::MithraError::Uncertifiable`] when the quality
    /// spec cannot be met on the compilation datasets.
    pub fn certify(self) -> Result<CompileSession<CertifiedThreshold>> {
        let started = Instant::now();
        let key = fingerprint(&threshold_key(self.benchmark.name(), &self.config));
        let (threshold, invocations, cache) =
            match self.load_cached::<ThresholdOutcome>(Stage::Certification, key) {
                Some(threshold) => (threshold, 0, CacheOutcome::Hit),
                None => {
                    let threshold = ThresholdOptimizer::new(self.config.spec)
                        .with_threads(self.config.threads)
                        .optimize(&self.state.function, &self.state.profiles)?;
                    self.store_cached(Stage::Certification, key, &threshold);
                    (threshold, threshold.trials, self.miss_outcome())
                }
            };
        let report = StageReport {
            stage: Stage::Certification,
            wall: started.elapsed(),
            invocations,
            cache,
        };
        Ok(self.advance(report, |s| CertifiedThreshold {
            function: s.function,
            profiles: s.profiles,
            threshold,
        }))
    }
}

impl CompileSession<CertifiedThreshold> {
    /// The certified threshold and its statistics.
    pub fn threshold(&self) -> &ThresholdOutcome {
        &self.state.threshold
    }

    /// Stage 4: labels training tuples at the certified threshold and
    /// trains the table and neural classifiers (or loads both from the
    /// cache).
    ///
    /// The labeled tuples themselves are **not** stored: they are a
    /// deterministic (and cheap, invocation-free) function of the profiles
    /// already in memory, while serializing 30k of them costs more than
    /// relabeling. A hit therefore relabels and deserializes only the two
    /// trained classifiers.
    ///
    /// # Errors
    ///
    /// Propagates classifier-training failures.
    pub fn train_classifiers(self) -> Result<CompileSession<Classifiers>> {
        let started = Instant::now();
        let key = fingerprint(&classifier_key(self.benchmark.name(), &self.config));
        let training_data = generate_training_data(
            &self.state.profiles,
            self.state.threshold.threshold,
            self.config.classifier_train_samples,
            self.config.seed_base ^ 0x7261_696E,
        );
        let (artifact, invocations, cache) =
            match self.load_cached::<ClassifierArtifact>(Stage::ClassifierTraining, key) {
                Some(artifact) => (artifact, 0, CacheOutcome::Hit),
                None => {
                    let quantizer = quantizer_from_profiles(&self.state.profiles);
                    // `threads` is deliberately not part of any cache key:
                    // the parallel trainers are bit-identical at every thread
                    // count, so artifacts stay interchangeable across runs.
                    let table = TableClassifier::train_with_threads(
                        self.config.table_design,
                        quantizer,
                        &training_data,
                        self.config.threads,
                    )?;
                    let neural = NeuralClassifier::train_with_threads(
                        self.state.function.benchmark().input_dim(),
                        &training_data,
                        &self.config.neural,
                        self.config.threads,
                    )?;
                    let artifact = ClassifierArtifact { table, neural };
                    self.store_cached(Stage::ClassifierTraining, key, &artifact);
                    let invocations = training_data.len() as u64;
                    (artifact, invocations, self.miss_outcome())
                }
            };
        let report = StageReport {
            stage: Stage::ClassifierTraining,
            wall: started.elapsed(),
            invocations,
            cache,
        };
        Ok(self.advance(report, |s| Classifiers {
            function: s.function,
            profiles: s.profiles,
            threshold: s.threshold,
            table: artifact.table,
            neural: artifact.neural,
            training_data,
        }))
    }
}

impl CompileSession<Classifiers> {
    /// Finalizes the session into the compile-flow output and its
    /// per-stage instrumentation.
    pub fn finish(self) -> (Compiled, SessionReport) {
        let report = self.report();
        let compiled = Compiled {
            function: self.state.function,
            threshold: self.state.threshold,
            table: self.state.table,
            neural: self.state.neural,
            profiles: self.state.profiles,
            training_data: self.state.training_data,
        };
        (compiled, report)
    }
}

/// Profiles `count` datasets seeded from `seed_base` in parallel, with
/// the same caching and instrumentation as the in-session stages. This
/// is the harness path for **validation** datasets, which sit outside
/// the compile pipeline proper (they must stay unseen by it) but share
/// its trained function, cache and reporting.
pub fn profile_validation(
    function: &AcceleratedFunction,
    config: &CompileConfig,
    seed_base: u64,
    count: usize,
) -> (Vec<DatasetProfile>, StageReport) {
    let started = Instant::now();
    let name = function.benchmark().name();
    let cache = config.cache.as_ref().map(|c| ArtifactCache::open(c, name));
    let key = fingerprint(&format!(
        "{}/validation_seed_base={seed_base}/validation_datasets={count}",
        npu_key(name, config)
    ));
    let stage = Stage::ValidationProfiling;
    let cached = cache
        .as_ref()
        .and_then(|c| c.load_profiles(stage.label(), key));
    let (profiles, invocations, outcome) = match cached {
        Some(profiles) => (profiles, 0, CacheOutcome::Hit),
        None => {
            let profiles =
                collect_profiles_parallel(function, seed_base, count, config.scale, config.threads);
            let invocations: u64 = profiles.iter().map(|p| p.invocation_count() as u64).sum();
            let outcome = if let Some(c) = &cache {
                let _ = c.store_profiles(stage.label(), key, &profiles);
                CacheOutcome::Miss
            } else {
                CacheOutcome::Disabled
            };
            (profiles, invocations, outcome)
        }
    };
    let report = StageReport {
        stage,
        wall: started.elapsed(),
        invocations,
        cache: outcome,
    };
    (profiles, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheConfig;
    use mithra_axbench::suite;

    fn session_config(cache: Option<CacheConfig>) -> CompileConfig {
        CompileConfig {
            cache,
            ..CompileConfig::smoke()
        }
    }

    fn sobel() -> Arc<dyn Benchmark> {
        suite::by_name("sobel").unwrap().into()
    }

    fn tmp_cache(tag: &str) -> CacheConfig {
        let dir =
            std::env::temp_dir().join(format!("mithra-session-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        CacheConfig::at(dir)
    }

    #[test]
    fn staged_session_matches_monolithic_compile() {
        let config = session_config(None);
        let session = CompileSession::new(sobel(), config.clone())
            .train_npu()
            .unwrap()
            .profile()
            .unwrap()
            .certify()
            .unwrap()
            .train_classifiers()
            .unwrap();
        let (compiled, report) = session.finish();

        let direct = crate::pipeline::compile(sobel(), &config).unwrap();
        assert_eq!(compiled.threshold, direct.threshold);
        assert_eq!(compiled.training_data, direct.training_data);
        assert_eq!(
            compiled.function.npu().to_parameters(),
            direct.function.npu().to_parameters()
        );

        assert_eq!(report.stages.len(), 4);
        assert!(report
            .stages
            .iter()
            .all(|r| r.cache == CacheOutcome::Disabled));
        assert!(report.stage(Stage::Profiling).unwrap().invocations > 0);
        assert_eq!(report.benchmark, "sobel");
    }

    #[test]
    fn warm_cache_skips_training_and_profiling() {
        let cache = tmp_cache("warm");
        let config = session_config(Some(cache.clone()));

        let (cold, cold_report) = CompileSession::new(sobel(), config.clone())
            .train_npu()
            .unwrap()
            .profile()
            .unwrap()
            .certify()
            .unwrap()
            .train_classifiers()
            .unwrap()
            .finish();
        assert!(cold_report
            .stages
            .iter()
            .all(|r| r.cache == CacheOutcome::Miss));

        let (warm, warm_report) = CompileSession::new(sobel(), config.clone())
            .train_npu()
            .unwrap()
            .profile()
            .unwrap()
            .certify()
            .unwrap()
            .train_classifiers()
            .unwrap()
            .finish();
        assert!(
            warm_report.stages.iter().all(|r| r.is_cache_hit()),
            "second run should hit every stage: {warm_report}"
        );
        assert_eq!(warm_report.total_invocations(), 0);

        // The warm artifacts are equal to the cold ones.
        assert_eq!(warm.threshold, cold.threshold);
        assert_eq!(warm.training_data, cold.training_data);
        assert_eq!(warm.profiles.len(), cold.profiles.len());
        for (w, c) in warm.profiles.iter().zip(&cold.profiles) {
            assert_eq!(w.errors(), c.errors());
            assert_eq!(w.final_precise(), c.final_precise());
        }
        assert_eq!(
            warm.function.npu().to_parameters(),
            cold.function.npu().to_parameters()
        );
        let _ = std::fs::remove_dir_all(&cache.dir);
    }

    #[test]
    fn config_changes_invalidate_dependent_stages_only() {
        let cache = tmp_cache("keys");
        let config = session_config(Some(cache.clone()));
        let _ = CompileSession::new(sobel(), config.clone())
            .train_npu()
            .unwrap()
            .profile()
            .unwrap()
            .certify()
            .unwrap();

        // A different spec re-certifies but reuses training + profiling.
        let mut respec = config.clone();
        respec.spec = crate::threshold::QualitySpec::new(0.2, 0.9, 0.5).unwrap();
        let session = CompileSession::new(sobel(), respec)
            .train_npu()
            .unwrap()
            .profile()
            .unwrap()
            .certify()
            .unwrap();
        let reports = session.stage_reports();
        assert!(reports[0].is_cache_hit(), "npu should hit");
        assert!(reports[1].is_cache_hit(), "profiling should hit");
        assert_eq!(
            reports[2].cache,
            CacheOutcome::Miss,
            "new spec must re-certify"
        );
        let _ = std::fs::remove_dir_all(&cache.dir);
    }

    #[test]
    fn resume_with_profiles_matches_full_session() {
        let config = session_config(None);
        let (function, profiles, _) = CompileSession::new(sobel(), config.clone())
            .train_npu()
            .unwrap()
            .profile()
            .unwrap()
            .into_parts();
        let resumed = CompileSession::resume_with_profiles(function, profiles, config.clone())
            .certify()
            .unwrap();
        let direct = crate::pipeline::compile(sobel(), &config).unwrap();
        assert_eq!(*resumed.threshold(), direct.threshold);
        // Only the stages actually run are reported.
        assert_eq!(resumed.stage_reports().len(), 1);
        assert_eq!(resumed.stage_reports()[0].stage, Stage::Certification);
    }

    #[test]
    fn validation_profiles_cache_and_reload() {
        let cache = tmp_cache("validation");
        let config = session_config(Some(cache.clone()));
        let (function, _) = CompileSession::new(sobel(), config.clone())
            .train_npu()
            .unwrap()
            .into_parts();

        let (cold, cold_report) = profile_validation(&function, &config, 1_000_000, 4);
        assert_eq!(cold_report.cache, CacheOutcome::Miss);
        assert!(cold_report.invocations > 0);

        let (warm, warm_report) = profile_validation(&function, &config, 1_000_000, 4);
        assert!(warm_report.is_cache_hit());
        assert_eq!(warm_report.invocations, 0);
        assert_eq!(warm.len(), cold.len());
        for (w, c) in warm.iter().zip(&cold) {
            assert_eq!(w.errors(), c.errors());
        }
        let _ = std::fs::remove_dir_all(&cache.dir);
    }

    #[test]
    fn report_display_lists_every_stage() {
        let config = session_config(None);
        let session = CompileSession::new(sobel(), config).train_npu().unwrap();
        let (_, report) = session.into_parts();
        let text = format!("{report}");
        assert!(text.contains("compile session [sobel]"));
        assert!(text.contains("npu-training"));
        assert!(text.contains("cache off"));
    }
}
