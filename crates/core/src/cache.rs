//! On-disk artifact cache for the compile pipeline.
//!
//! Every quality-independent stage of the compile flow (NPU training,
//! dataset profiling) and the quality-dependent remainder (threshold
//! certification, classifier training) produces a serializable artifact.
//! The ten figure/table binaries previously recomputed the same base for
//! every figure; with the cache, a stage whose configuration fingerprint
//! matches a stored artifact is skipped entirely and the artifact is
//! deserialized instead.
//!
//! Layout: `<dir>/<benchmark>/<stage>-<fingerprint>.json` (or `.bin` for
//! dataset profiles), where the fingerprint is an FNV-1a 64-bit hash of a
//! canonical description of everything that influences the artifact
//! (benchmark name, dataset scale and seeds, stage configuration, and the
//! fingerprints of upstream stages). Files are written atomically (temp
//! file + rename) and any read failure — missing, truncated, garbage, or
//! schema-mismatched — falls back to recomputation: the cache can never
//! poison a run, only skip work.
//!
//! Small artifacts (trained NPU, threshold, classifiers) go through serde
//! as JSON. Dataset profiles are hundreds of megabytes of flat `f32`/`f64`
//! vectors, for which JSON costs more to parse than the profiling it
//! replaces; [`encode_profiles`]/[`decode_profiles`] store them in a raw
//! little-endian format instead, making a profile cache hit a bulk read.

use crate::function::AcceleratedFunction;
use crate::neural::NeuralClassifier;
use crate::profile::DatasetProfile;
use crate::table::TableClassifier;
use mithra_axbench::benchmark::Benchmark;
use mithra_axbench::dataset::{Dataset, OutputBuffer};
use mithra_npu::mlp::Mlp;
use mithra_npu::train::Normalizer;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Bumped whenever a cached artifact's schema or semantics change, so
/// stale caches from older builds miss instead of mis-deserializing.
/// Version 2: multi-approximator routing — key strings gained pool/router
/// stages, so every pre-routing (v1) artifact recomputes cleanly.
pub const CACHE_FORMAT_VERSION: u32 = 2;

/// Where (and whether) compile-stage artifacts are cached.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheConfig {
    /// Root directory of the cache.
    pub dir: PathBuf,
}

impl CacheConfig {
    /// A cache rooted at `dir`.
    pub fn at(dir: impl Into<PathBuf>) -> Self {
        Self { dir: dir.into() }
    }
}

/// FNV-1a 64-bit hash of a canonical key string.
pub fn fingerprint(key: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in key.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The stored form of a trained accelerator: the network and both
/// normalizers. The benchmark binding is re-established on load via
/// [`AcceleratedFunction::from_parts`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainedNpuArtifact {
    /// The trained network weights and topology.
    pub mlp: Mlp,
    /// Input normalizer fitted during training.
    pub input_norm: Normalizer,
    /// Output normalizer fitted during training.
    pub output_norm: Normalizer,
}

impl TrainedNpuArtifact {
    /// Captures the stored parts of a trained function.
    pub fn of(function: &AcceleratedFunction) -> Self {
        Self {
            mlp: function.npu().clone(),
            input_norm: function.input_normalizer().clone(),
            output_norm: function.output_normalizer().clone(),
        }
    }

    /// Rebinds the stored parts to their benchmark.
    pub fn into_function(self, benchmark: Arc<dyn Benchmark>) -> AcceleratedFunction {
        AcceleratedFunction::from_parts(benchmark, self.mlp, self.input_norm, self.output_norm)
    }
}

/// The stored form of a trained approximator pool: every member's
/// network and normalizers, cheapest first. Member topologies are not
/// stored — they are re-supplied by the [`crate::route::PoolSpec`] whose
/// fingerprint keyed the artifact.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PoolArtifact {
    /// One stored accelerator per pool member, cheapest first.
    pub members: Vec<TrainedNpuArtifact>,
}

impl PoolArtifact {
    /// Captures the stored parts of every pool member.
    pub fn of(pool: &crate::route::ApproximatorPool) -> Self {
        Self {
            members: pool.members().iter().map(TrainedNpuArtifact::of).collect(),
        }
    }

    /// Rebinds the stored members to their benchmark and topologies.
    pub fn into_pool(
        self,
        benchmark: &Arc<dyn Benchmark>,
        topologies: Vec<mithra_npu::topology::Topology>,
    ) -> Option<crate::route::ApproximatorPool> {
        if self.members.is_empty() || self.members.len() != topologies.len() {
            return None;
        }
        let members = self
            .members
            .into_iter()
            .map(|m| m.into_function(Arc::clone(benchmark)))
            .collect();
        Some(crate::route::ApproximatorPool::from_members(
            members, topologies,
        ))
    }
}

/// The stored form of the classifier-training stage: both trained
/// classifiers. The labeled training tuples are deliberately not stored —
/// they are regenerated deterministically from the profiles, which is
/// cheaper than deserializing them.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClassifierArtifact {
    /// The trained MISR multi-table classifier.
    pub table: TableClassifier,
    /// The trained neural classifier.
    pub neural: NeuralClassifier,
}

/// A benchmark-scoped handle on the on-disk artifact store.
#[derive(Debug, Clone)]
pub struct ArtifactCache {
    dir: PathBuf,
}

impl ArtifactCache {
    /// Opens the cache for one benchmark under `config.dir`. No I/O
    /// happens until the first load or store.
    pub fn open(config: &CacheConfig, benchmark: &str) -> Self {
        Self {
            dir: config.dir.join(benchmark),
        }
    }

    /// The file a `(stage, fingerprint)` pair maps to.
    pub fn path(&self, stage: &str, fingerprint: u64) -> PathBuf {
        self.dir.join(format!("{stage}-{fingerprint:016x}.json"))
    }

    /// Loads a stage artifact, or `None` when it is absent or unreadable
    /// (corrupt files are treated as misses, never errors).
    pub fn load<T: serde::Deserialize>(&self, stage: &str, fingerprint: u64) -> Option<T> {
        let bytes = std::fs::read(self.path(stage, fingerprint)).ok()?;
        serde_json::from_slice(&bytes).ok()
    }

    /// Stores a stage artifact, best-effort: an unwritable cache degrades
    /// to recomputation on the next run rather than failing the compile.
    /// Returns whether the artifact landed on disk.
    pub fn store<T: serde::Serialize>(&self, stage: &str, fingerprint: u64, value: &T) -> bool {
        if std::fs::create_dir_all(&self.dir).is_err() {
            return false;
        }
        let target = self.path(stage, fingerprint);
        let tmp = target.with_extension("json.tmp");
        let Ok(bytes) = serde_json::to_vec(value) else {
            return false;
        };
        if std::fs::write(&tmp, bytes).is_err() {
            return false;
        }
        // Atomic publish: readers only ever see whole files.
        std::fs::rename(&tmp, &target).is_ok()
    }

    /// The benchmark-scoped cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The file a binary `(stage, fingerprint)` pair maps to.
    pub fn bin_path(&self, stage: &str, fingerprint: u64) -> PathBuf {
        self.dir.join(format!("{stage}-{fingerprint:016x}.bin"))
    }

    /// Loads a profile artifact from the flat binary format, or `None`
    /// when it is absent or unreadable.
    pub fn load_profiles(&self, stage: &str, fingerprint: u64) -> Option<Vec<DatasetProfile>> {
        let bytes = std::fs::read(self.bin_path(stage, fingerprint)).ok()?;
        decode_profiles(&bytes)
    }

    /// Stores a profile artifact in the flat binary format, best-effort.
    /// Returns whether the artifact landed on disk.
    pub fn store_profiles(
        &self,
        stage: &str,
        fingerprint: u64,
        profiles: &[DatasetProfile],
    ) -> bool {
        if std::fs::create_dir_all(&self.dir).is_err() {
            return false;
        }
        let target = self.bin_path(stage, fingerprint);
        let tmp = target.with_extension("bin.tmp");
        if std::fs::write(&tmp, encode_profiles(profiles)).is_err() {
            return false;
        }
        std::fs::rename(&tmp, &target).is_ok()
    }
}

/// Magic prefix of the binary profile format; the trailing byte is its
/// version.
const PROFILE_MAGIC: &[u8; 8] = b"MITHRAP1";

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_f32s(out: &mut Vec<u8>, values: &[f32]) {
    out.reserve(values.len() * 4);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

fn push_f64s(out: &mut Vec<u8>, values: &[f64]) {
    out.reserve(values.len() * 8);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

/// Serializes profiles into the flat little-endian binary format.
pub fn encode_profiles(profiles: &[DatasetProfile]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(PROFILE_MAGIC);
    push_u64(&mut out, profiles.len() as u64);
    for p in profiles {
        push_u64(&mut out, p.dataset().seed());
        push_u64(&mut out, p.dataset().input_dim() as u64);
        push_u64(&mut out, p.dataset().as_flat().len() as u64);
        push_f32s(&mut out, p.dataset().as_flat());
        push_u64(&mut out, p.precise_outputs().dim() as u64);
        push_u64(&mut out, p.precise_outputs().as_flat().len() as u64);
        push_f32s(&mut out, p.precise_outputs().as_flat());
        push_u64(&mut out, p.approx_outputs().dim() as u64);
        push_u64(&mut out, p.approx_outputs().as_flat().len() as u64);
        push_f32s(&mut out, p.approx_outputs().as_flat());
        push_u64(&mut out, p.errors().len() as u64);
        push_f32s(&mut out, p.errors());
        push_u64(&mut out, p.final_precise().len() as u64);
        push_f64s(&mut out, p.final_precise());
    }
    out
}

struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let slice = self.bytes.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    /// A length prefix that must still fit in the remaining bytes, so a
    /// corrupted count cannot trigger a huge allocation.
    fn len(&mut self, elem_size: usize) -> Option<usize> {
        let n = usize::try_from(self.u64()?).ok()?;
        let bytes = n.checked_mul(elem_size)?;
        (self.pos.checked_add(bytes)? <= self.bytes.len()).then_some(n)
    }

    fn f32s(&mut self, n: usize) -> Option<Vec<f32>> {
        let raw = self.take(n.checked_mul(4)?)?;
        Some(
            raw.chunks_exact(4)
                .map(|c| f32::from_le_bytes(c.try_into().expect("chunk of 4")))
                .collect(),
        )
    }

    fn f64s(&mut self, n: usize) -> Option<Vec<f64>> {
        let raw = self.take(n.checked_mul(8)?)?;
        Some(
            raw.chunks_exact(8)
                .map(|c| f64::from_le_bytes(c.try_into().expect("chunk of 8")))
                .collect(),
        )
    }
}

/// Deserializes profiles from the flat binary format; `None` for any
/// truncated, garbage, or internally inconsistent input.
pub fn decode_profiles(bytes: &[u8]) -> Option<Vec<DatasetProfile>> {
    let mut r = ByteReader { bytes, pos: 0 };
    if r.take(PROFILE_MAGIC.len())? != PROFILE_MAGIC {
        return None;
    }
    let count = usize::try_from(r.u64()?).ok()?;
    let mut profiles = Vec::new();
    for _ in 0..count {
        let seed = r.u64()?;
        let input_dim = usize::try_from(r.u64()?).ok()?;
        let inputs = {
            let n = r.len(4)?;
            r.f32s(n)?
        };
        if input_dim == 0 || inputs.len() % input_dim != 0 {
            return None;
        }
        let dataset = Dataset::from_flat(seed, input_dim, inputs);
        let n = dataset.invocation_count();

        let buffer = |r: &mut ByteReader<'_>| -> Option<OutputBuffer> {
            let dim = usize::try_from(r.u64()?).ok()?;
            let len = r.len(4)?;
            let data = r.f32s(len)?;
            if dim == 0 || data.len() % dim != 0 || data.len() / dim != n {
                return None;
            }
            Some(OutputBuffer::from_flat(dim, data))
        };
        let precise = buffer(&mut r)?;
        let approx = buffer(&mut r)?;

        let err_len = r.len(4)?;
        if err_len != n {
            return None;
        }
        let max_err = r.f32s(err_len)?;
        let final_len = r.len(8)?;
        let final_precise = r.f64s(final_len)?;
        profiles.push(DatasetProfile::from_parts(
            dataset,
            precise,
            approx,
            max_err,
            final_precise,
        ));
    }
    (r.pos == bytes.len()).then_some(profiles)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_cache(tag: &str) -> (CacheConfig, ArtifactCache) {
        let dir =
            std::env::temp_dir().join(format!("mithra-cache-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = CacheConfig::at(&dir);
        let cache = ArtifactCache::open(&config, "sobel");
        (config, cache)
    }

    #[test]
    fn fingerprint_is_stable_and_input_sensitive() {
        assert_eq!(fingerprint("abc"), fingerprint("abc"));
        assert_ne!(fingerprint("abc"), fingerprint("abd"));
        // FNV-1a 64 reference value for the empty string.
        assert_eq!(fingerprint(""), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn missing_artifact_is_a_miss() {
        let (_config, cache) = tmp_cache("miss");
        assert!(cache.load::<Vec<f32>>("npu", 1).is_none());
    }

    #[test]
    fn round_trip_returns_stored_value() {
        let (config, cache) = tmp_cache("roundtrip");
        let value: Vec<f64> = vec![1.5, -2.25, 0.0];
        assert!(cache.store("profiles", 42, &value));
        assert_eq!(cache.load::<Vec<f64>>("profiles", 42), Some(value));
        let _ = std::fs::remove_dir_all(&config.dir);
    }

    fn tiny_profile(seed: u64) -> DatasetProfile {
        let dataset = Dataset::from_flat(seed, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let precise = OutputBuffer::from_flat(1, vec![0.5, 0.25]);
        let approx = OutputBuffer::from_flat(1, vec![0.55, 0.20]);
        DatasetProfile::from_parts(dataset, precise, approx, vec![0.1, 0.2], vec![9.0, 8.0])
    }

    #[test]
    fn profile_binary_round_trip() {
        let profiles = vec![tiny_profile(1), tiny_profile(2)];
        let bytes = encode_profiles(&profiles);
        assert_eq!(decode_profiles(&bytes).as_ref(), Some(&profiles));

        let (config, cache) = tmp_cache("profiles-bin");
        assert!(cache.store_profiles("profiling", 9, &profiles));
        assert_eq!(cache.load_profiles("profiling", 9), Some(profiles));
        let _ = std::fs::remove_dir_all(&config.dir);
    }

    #[test]
    fn corrupt_profile_binaries_are_misses() {
        let profiles = vec![tiny_profile(3)];
        let bytes = encode_profiles(&profiles);

        // Truncation anywhere must fail cleanly, never panic.
        for cut in 0..bytes.len() {
            assert_eq!(decode_profiles(&bytes[..cut]), None, "cut at {cut}");
        }
        // Trailing garbage, wrong magic, and non-format bytes all miss.
        let mut longer = bytes.clone();
        longer.push(0);
        assert_eq!(decode_profiles(&longer), None);
        let mut wrong_magic = bytes.clone();
        wrong_magic[0] = b'X';
        assert_eq!(decode_profiles(&wrong_magic), None);
        assert_eq!(decode_profiles(b"not a profile artifact"), None);

        // An absurd length prefix must not allocate; it just misses.
        let mut huge = bytes.clone();
        let count_at = PROFILE_MAGIC.len();
        huge[count_at..count_at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert_eq!(decode_profiles(&huge), None);

        // On-disk corruption goes through the same path.
        let (config, cache) = tmp_cache("profiles-corrupt");
        assert!(cache.store_profiles("profiling", 4, &profiles));
        let path = cache.bin_path("profiling", 4);
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() / 3]).unwrap();
        assert_eq!(cache.load_profiles("profiling", 4), None);
        let _ = std::fs::remove_dir_all(&config.dir);
    }

    #[test]
    fn truncated_and_garbage_files_fall_back_to_miss() {
        let (config, cache) = tmp_cache("corrupt");
        let value: Vec<f64> = vec![3.0; 8];
        assert!(cache.store("threshold", 7, &value));
        let path = cache.path("threshold", 7);

        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        assert!(cache.load::<Vec<f64>>("threshold", 7).is_none());

        std::fs::write(&path, b"not json at all {{{").unwrap();
        assert!(cache.load::<Vec<f64>>("threshold", 7).is_none());

        // Valid JSON of the wrong shape is also just a miss.
        std::fs::write(&path, b"{\"wrong\": true}").unwrap();
        assert!(cache.load::<Vec<f64>>("threshold", 7).is_none());
        let _ = std::fs::remove_dir_all(&config.dir);
    }
}
