use std::error::Error;
use std::fmt;

/// Errors produced by MITHRA's compile pipeline and classifiers.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MithraError {
    /// A configuration value was invalid.
    InvalidConfig {
        /// Which parameter was rejected.
        parameter: &'static str,
        /// The constraint it violates.
        constraint: &'static str,
    },
    /// The statistical optimizer could not certify any threshold for the
    /// requested quality specification.
    Uncertifiable {
        /// The quality-loss target that could not be certified.
        quality_target: f64,
        /// The success rate that was required.
        required_rate: f64,
        /// The best certified rate achievable (at threshold zero).
        best_rate: f64,
    },
    /// Not enough profiled data to train or certify.
    InsufficientData {
        /// What was being attempted.
        stage: &'static str,
        /// How many items were available.
        available: usize,
        /// How many were needed.
        needed: usize,
    },
    /// An error bubbled up from the NPU substrate.
    Npu(mithra_npu::NpuError),
    /// An error bubbled up from the statistics substrate.
    Stats(mithra_stats::StatsError),
    /// A quality comparison could not be scored.
    Quality(mithra_axbench::quality::QualityError),
}

impl fmt::Display for MithraError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MithraError::InvalidConfig {
                parameter,
                constraint,
            } => {
                write!(
                    f,
                    "invalid configuration `{parameter}`: expected {constraint}"
                )
            }
            MithraError::Uncertifiable {
                quality_target,
                required_rate,
                best_rate,
            } => write!(
                f,
                "cannot certify quality target {quality_target} at success rate {required_rate} \
                 (best certified rate {best_rate})"
            ),
            MithraError::InsufficientData {
                stage,
                available,
                needed,
            } => {
                write!(
                    f,
                    "{stage} needs {needed} items but only {available} are available"
                )
            }
            MithraError::Npu(e) => write!(f, "accelerator error: {e}"),
            MithraError::Stats(e) => write!(f, "statistics error: {e}"),
            MithraError::Quality(e) => write!(f, "quality error: {e}"),
        }
    }
}

impl Error for MithraError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MithraError::Npu(e) => Some(e),
            MithraError::Stats(e) => Some(e),
            MithraError::Quality(e) => Some(e),
            _ => None,
        }
    }
}

#[doc(hidden)]
impl From<mithra_npu::NpuError> for MithraError {
    fn from(e: mithra_npu::NpuError) -> Self {
        MithraError::Npu(e)
    }
}

#[doc(hidden)]
impl From<mithra_stats::StatsError> for MithraError {
    fn from(e: mithra_stats::StatsError) -> Self {
        MithraError::Stats(e)
    }
}

#[doc(hidden)]
impl From<mithra_axbench::quality::QualityError> for MithraError {
    fn from(e: mithra_axbench::quality::QualityError) -> Self {
        MithraError::Quality(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MithraError>();
    }

    #[test]
    fn source_chains() {
        let e = MithraError::Npu(mithra_npu::NpuError::InvalidTrainingSet {
            reason: "no samples",
        });
        assert!(e.source().is_some());
        assert!(e.to_string().contains("accelerator error"));
    }
}
