//! Property-based tests on the benchmark kernels and quality metrics.

use mithra_axbench::blackscholes::price_option;
use mithra_axbench::fft::{fft_with_twiddles, twiddle};
use mithra_axbench::jmeint::tri_tri_intersect;
use mithra_axbench::jpeg::{dct_8x8, decode_block, encode_block, idct_8x8};
use mithra_axbench::quality::QualityMetric;
use mithra_axbench::sobel::gradient_magnitude;
use proptest::prelude::*;

fn precise_twiddles(n: usize) -> Vec<(f32, f32)> {
    (0..n / 2).map(|k| twiddle(k as f32 / n as f32)).collect()
}

/// Naive O(n^2) DFT as an independent reference.
fn naive_dft(signal: &[f32]) -> Vec<(f64, f64)> {
    let n = signal.len();
    (0..n)
        .map(|k| {
            let mut re = 0.0f64;
            let mut im = 0.0f64;
            for (t, &x) in signal.iter().enumerate() {
                let angle = -2.0 * std::f64::consts::PI * (k * t) as f64 / n as f64;
                re += f64::from(x) * angle.cos();
                im += f64::from(x) * angle.sin();
            }
            (re, im)
        })
        .collect()
}

proptest! {
    #[test]
    fn fft_matches_naive_dft(signal in prop::collection::vec(-10.0f32..10.0, 16..=16)) {
        let fast = fft_with_twiddles(&signal, &precise_twiddles(16));
        let slow = naive_dft(&signal);
        for (k, (re, im)) in slow.iter().enumerate() {
            prop_assert!((fast[2 * k] - re).abs() < 1e-3, "re[{}]", k);
            prop_assert!((fast[2 * k + 1] - im).abs() < 1e-3, "im[{}]", k);
        }
    }

    #[test]
    fn dct_preserves_energy(block in prop::collection::vec(-128.0f32..128.0, 64..=64)) {
        // The orthonormal DCT is an isometry.
        let mut arr = [0.0f32; 64];
        arr.copy_from_slice(&block);
        let coeffs = dct_8x8(&arr);
        let time_energy: f64 = arr.iter().map(|&v| f64::from(v).powi(2)).sum();
        let freq_energy: f64 = coeffs.iter().map(|&v| f64::from(v).powi(2)).sum();
        prop_assert!((time_energy - freq_energy).abs() <= time_energy.max(1.0) * 1e-4);
    }

    #[test]
    fn dct_idct_is_identity(block in prop::collection::vec(-128.0f32..128.0, 64..=64)) {
        let mut arr = [0.0f32; 64];
        arr.copy_from_slice(&block);
        let back = idct_8x8(&dct_8x8(&arr));
        for (a, b) in arr.iter().zip(&back) {
            prop_assert!((a - b).abs() < 1e-2);
        }
    }

    #[test]
    fn jpeg_decode_is_bounded(block in prop::collection::vec(0.0f32..255.0, 64..=64)) {
        let decoded = decode_block(&encode_block(&block));
        prop_assert!(decoded.iter().all(|&p| (0.0..=255.0).contains(&p)));
    }

    #[test]
    fn sobel_nonnegative_and_clamped(window in prop::collection::vec(0.0f32..255.0, 9..=9)) {
        let g = gradient_magnitude(&window);
        prop_assert!((0.0..=255.0).contains(&g));
    }

    #[test]
    fn sobel_invariant_to_brightness_offset(
        window in prop::collection::vec(0.0f32..200.0, 9..=9),
        offset in 0.0f32..50.0,
    ) {
        let shifted: Vec<f32> = window.iter().map(|&v| v + offset).collect();
        let a = gradient_magnitude(&window);
        let b = gradient_magnitude(&shifted);
        prop_assert!((a - b).abs() < 1e-2);
    }

    #[test]
    fn call_price_bounded_by_spot(
        spot in 10.0f32..200.0,
        moneyness in 0.7f32..1.3,
        rate in 0.01f32..0.1,
        vol in 0.05f32..0.8,
        time in 0.1f32..2.0,
    ) {
        let strike = spot * moneyness;
        let call = price_option(spot, strike, rate, vol, time, 0.0);
        prop_assert!(call >= -1e-3, "negative call {}", call);
        prop_assert!(call <= spot + 1e-3, "call above spot {}", call);
        // Monotone in volatility.
        let call_hi_vol = price_option(spot, strike, rate, vol + 0.1, time, 0.0);
        prop_assert!(call_hi_vol >= call - 2e-2);
    }

    #[test]
    fn tri_tri_invariant_under_vertex_rotation(
        coords in prop::collection::vec(-1.0f32..1.0, 18..=18),
    ) {
        let v = |i: usize| [coords[3 * i], coords[3 * i + 1], coords[3 * i + 2]];
        let t1 = [v(0), v(1), v(2)];
        let t1_rot = [v(1), v(2), v(0)];
        let t2 = [v(3), v(4), v(5)];
        prop_assert_eq!(
            tri_tri_intersect(t1, t2),
            tri_tri_intersect(t1_rot, t2),
            "vertex rotation changed the verdict"
        );
    }

    #[test]
    fn quality_metrics_bounded(
        pairs in prop::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 1..100),
    ) {
        let precise: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let approx: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        for m in [
            QualityMetric::AvgRelativeError,
            QualityMetric::MissRate,
            QualityMetric::ImageDiff,
        ] {
            let loss = m.quality_loss(&precise, &approx);
            prop_assert!((0.0..=1.0).contains(&loss), "{} loss {}", m, loss);
        }
    }

    #[test]
    fn quality_zero_iff_identical_for_miss_rate(
        values in prop::collection::vec(-10.0f64..10.0, 1..50),
    ) {
        let loss = QualityMetric::MissRate.quality_loss(&values, &values);
        prop_assert_eq!(loss, 0.0);
    }
}
