//! `raytrace` — sphere ray-tracing shading kernel.
//!
//! The second workload grown past the paper's six. The target function
//! casts a primary ray through an image-plane coordinate `(u, v)` at a
//! fixed sphere and returns the shaded pixel intensity: Lambertian
//! diffuse plus ambient on a hit, a vertical background gradient on a
//! miss. The hit/miss decision makes the function discontinuous along
//! the sphere's silhouette, so the per-invocation error distribution is
//! heavy-tailed — near zero over the smooth interior and background,
//! with rare large errors where the NPU misjudges the silhouette. That
//! geometric tail is exactly the distribution shape the AxBench six
//! never produce and the one the classifier + Clopper–Pearson machinery
//! must filter. Topology `2→16→4→1`, image-diff metric; the
//! full-approximation error is measured, not taken from the paper.

use crate::benchmark::{Benchmark, WorkloadProfile};
use crate::dataset::{Dataset, DatasetScale, OutputBuffer};
use crate::quality::QualityMetric;
use mithra_npu::topology::Topology;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Sphere center on the camera axis (camera at the origin, looking +z).
pub const SPHERE_CENTER: [f32; 3] = [0.0, 0.0, 3.0];
/// Sphere radius.
pub const SPHERE_RADIUS: f32 = 1.0;
/// Directional light (unnormalized; `shade` normalizes once).
const LIGHT: [f32; 3] = [-0.5, 0.8, -0.6];
/// Ambient intensity floor for lit geometry.
const AMBIENT: f32 = 28.0;
/// Diffuse intensity scale.
const DIFFUSE: f32 = 204.0;

fn normalize(v: [f32; 3]) -> [f32; 3] {
    let n = (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]).sqrt();
    [v[0] / n, v[1] / n, v[2] / n]
}

fn dot(a: [f32; 3], b: [f32; 3]) -> f32 {
    a[0] * b[0] + a[1] * b[1] + a[2] * b[2]
}

/// Traces the primary ray through image-plane `(u, v)` and returns the
/// shaded intensity in `[0, 255]` — the accelerated kernel.
pub fn trace(u: f32, v: f32) -> f32 {
    let dir = normalize([u, v, 1.0]);
    // |o + t*dir - c|^2 = r^2 with o = 0: t^2 - 2 t (dir·c) + |c|^2 - r^2.
    let b = dot(dir, SPHERE_CENTER);
    let c = dot(SPHERE_CENTER, SPHERE_CENTER) - SPHERE_RADIUS * SPHERE_RADIUS;
    let disc = b * b - c;
    if disc >= 0.0 {
        let t = b - disc.sqrt();
        if t > 0.0 {
            let hit = [dir[0] * t, dir[1] * t, dir[2] * t];
            let normal = normalize([
                hit[0] - SPHERE_CENTER[0],
                hit[1] - SPHERE_CENTER[1],
                hit[2] - SPHERE_CENTER[2],
            ]);
            let light = normalize(LIGHT);
            let lambert = dot(normal, light).max(0.0);
            return (AMBIENT + DIFFUSE * lambert).clamp(0.0, 255.0);
        }
    }
    // Miss: smooth vertical background gradient.
    40.0 + 50.0 * (v + 0.6) / 1.2
}

/// The `raytrace` workload.
#[derive(Debug, Clone, Copy, Default)]
pub struct Raytrace;

impl Benchmark for Raytrace {
    fn name(&self) -> &'static str {
        "raytrace"
    }

    fn domain(&self) -> &'static str {
        "Rendering"
    }

    fn description(&self) -> &'static str {
        "Sphere ray-tracing shading kernel"
    }

    fn input_dim(&self) -> usize {
        2
    }

    fn output_dim(&self) -> usize {
        1
    }

    fn npu_topology(&self) -> Topology {
        Topology::new(&[2, 16, 4, 1]).expect("static topology is valid")
    }

    fn quality_metric(&self) -> QualityMetric {
        QualityMetric::ImageDiff
    }

    fn precise(&self, input: &[f32], output: &mut Vec<f32>) {
        output.clear();
        output.push(trace(input[0], input[1]));
    }

    fn dataset(&self, seed: u64, scale: DatasetScale) -> Dataset {
        let count = match scale {
            DatasetScale::Smoke => 64,
            DatasetScale::Full => 2048,
        };
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x7274_7263));
        let mut flat = Vec::with_capacity(count * 2);
        for _ in 0..count {
            // Jittered image-plane samples. The sphere's silhouette sits
            // at |(u,v)| ≈ 0.354 for this scene, so the ±0.6 frustum
            // keeps roughly a quarter of the rays on the sphere and the
            // silhouette ring well inside the sampled field.
            flat.push(rng.gen_range(-0.6f32..0.6));
            flat.push(rng.gen_range(-0.6f32..0.6));
        }
        Dataset::from_flat(seed, 2, flat)
    }

    fn run_application(&self, _dataset: &Dataset, outputs: &OutputBuffer) -> Vec<f64> {
        // The rendered image: one intensity per pixel, clamped to the
        // displayable range like a framebuffer write.
        outputs
            .as_flat()
            .iter()
            .map(|&v| f64::from(v.clamp(0.0, 255.0)))
            .collect()
    }

    fn paper_full_approx_error(&self) -> f64 {
        // Not a paper workload: measured full-approximation image diff
        // of the 2→16→4→1 NPU on the full-scale validation datasets
        // (results/table1_benchmarks_extended.txt), pinned by
        // mithra-bench's `measured_full_approx_error` test.
        0.047
    }

    fn profile(&self) -> WorkloadProfile {
        // Ray setup, discriminant, sqrt, two normalizes and the shading
        // dot product; the camera loop and framebuffer writes outside
        // the kernel are thin.
        WorkloadProfile {
            kernel_cycles: 260,
            non_kernel_fraction: 0.10,
        }
    }

    fn npu_training_epochs(&self) -> usize {
        150
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn center_ray_hits_and_is_lit() {
        let i = trace(0.0, 0.0);
        assert!(
            (AMBIENT..=255.0).contains(&i),
            "center ray must hit the sphere: {i}"
        );
    }

    #[test]
    fn edge_ray_misses_to_background() {
        let i = trace(0.59, 0.59);
        let expected = 40.0 + 50.0 * (0.59 + 0.6) / 1.2;
        assert!((i - expected).abs() < 1e-5, "corner ray must miss: {i}");
    }

    #[test]
    fn silhouette_is_discontinuous() {
        // Just inside vs just outside the silhouette radius: the jump is
        // tens of grey levels — the heavy-tail driver.
        let inside = trace(0.34, 0.0);
        let outside = trace(0.37, 0.0);
        assert!(
            (inside - outside).abs() > 20.0,
            "expected a silhouette jump, got {inside} vs {outside}"
        );
    }

    #[test]
    fn intensities_stay_displayable() {
        let b = Raytrace;
        let ds = b.dataset(4, DatasetScale::Smoke);
        let out = crate::benchmark::run_precise(&b, &ds);
        for o in out.iter() {
            assert!((0.0..=255.0).contains(&o[0]), "{}", o[0]);
        }
    }

    #[test]
    fn datasets_are_deterministic_and_distinct_by_seed() {
        let b = Raytrace;
        assert_eq!(
            b.dataset(10, DatasetScale::Smoke),
            b.dataset(10, DatasetScale::Smoke)
        );
        assert_ne!(
            b.dataset(10, DatasetScale::Smoke),
            b.dataset(11, DatasetScale::Smoke)
        );
    }

    #[test]
    fn some_rays_hit_and_some_miss() {
        let b = Raytrace;
        let ds = b.dataset(7, DatasetScale::Smoke);
        let hits = ds
            .iter()
            .filter(|p| (p[0] * p[0] + p[1] * p[1]).sqrt() < 0.34)
            .count();
        assert!(hits > 0, "frustum must cover the sphere");
        assert!(hits < ds.invocation_count(), "and the background");
    }
}
