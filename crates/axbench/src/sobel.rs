//! `sobel` — Sobel edge detection.
//!
//! The target function maps a 3×3 pixel neighborhood to the gradient
//! magnitude at its center. The application output is the edge map over a
//! whole image. Paper Table I: topology `9→8→1`, image diff metric, 9.96%
//! error under full approximation.

use crate::benchmark::{Benchmark, WorkloadProfile};
use crate::dataset::{Dataset, DatasetScale, OutputBuffer};
use crate::image::GrayImage;
use crate::quality::QualityMetric;
use mithra_npu::topology::Topology;

/// The `sobel` workload.
#[derive(Debug, Clone, Copy, Default)]
pub struct Sobel;

/// Image side length at full scale (64×64; reduced from the paper's
/// 512×512 — see `DESIGN.md`).
pub const FULL_IMAGE_SIDE: usize = 64;
/// Image side length at smoke scale.
pub const SMOKE_IMAGE_SIDE: usize = 12;

fn image_side(scale: DatasetScale) -> usize {
    match scale {
        DatasetScale::Smoke => SMOKE_IMAGE_SIDE,
        DatasetScale::Full => FULL_IMAGE_SIDE,
    }
}

/// The precise kernel: Sobel gradient magnitude of a 3×3 window
/// (row-major: `w[0..3]` top row), clamped to `[0, 255]`.
pub fn gradient_magnitude(w: &[f32]) -> f32 {
    let gx = (w[2] + 2.0 * w[5] + w[8]) - (w[0] + 2.0 * w[3] + w[6]);
    let gy = (w[6] + 2.0 * w[7] + w[8]) - (w[0] + 2.0 * w[1] + w[2]);
    (gx * gx + gy * gy).sqrt().min(255.0)
}

impl Benchmark for Sobel {
    fn name(&self) -> &'static str {
        "sobel"
    }

    fn domain(&self) -> &'static str {
        "Image Processing"
    }

    fn description(&self) -> &'static str {
        "Sobel edge detector"
    }

    fn input_dim(&self) -> usize {
        9
    }

    fn output_dim(&self) -> usize {
        1
    }

    fn npu_topology(&self) -> Topology {
        Topology::new(&[9, 8, 1]).expect("static topology is valid")
    }

    fn quality_metric(&self) -> QualityMetric {
        QualityMetric::ImageDiff
    }

    fn precise(&self, input: &[f32], output: &mut Vec<f32>) {
        output.clear();
        output.push(gradient_magnitude(input));
    }

    fn dataset(&self, seed: u64, scale: DatasetScale) -> Dataset {
        let side = image_side(scale);
        let img = GrayImage::synthetic(side, side, seed);
        // One invocation per pixel, border-clamped 3×3 window.
        let mut flat = Vec::with_capacity(side * side * 9);
        for y in 0..side as isize {
            for x in 0..side as isize {
                for dy in -1..=1 {
                    for dx in -1..=1 {
                        flat.push(img.get_clamped(x + dx, y + dy));
                    }
                }
            }
        }
        Dataset::from_flat(seed, 9, flat)
    }

    fn run_application(&self, _dataset: &Dataset, outputs: &OutputBuffer) -> Vec<f64> {
        // The edge map itself, one value per pixel.
        outputs
            .as_flat()
            .iter()
            .map(|&v| f64::from(v.clamp(0.0, 255.0)))
            .collect()
    }

    fn paper_full_approx_error(&self) -> f64 {
        0.0996
    }

    fn profile(&self) -> WorkloadProfile {
        // Two 3x3 convolutions and a square root per pixel.
        WorkloadProfile {
            kernel_cycles: 110,
            non_kernel_fraction: 0.15,
        }
    }

    fn npu_training_epochs(&self) -> usize {
        40
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmark::run_precise;

    #[test]
    fn flat_window_has_zero_gradient() {
        assert_eq!(gradient_magnitude(&[100.0; 9]), 0.0);
    }

    #[test]
    fn vertical_edge_detected() {
        // Left column dark, right column bright.
        let w = [0.0, 128.0, 255.0, 0.0, 128.0, 255.0, 0.0, 128.0, 255.0];
        let g = gradient_magnitude(&w);
        assert!(g > 200.0, "got {g}");
    }

    #[test]
    fn horizontal_edge_detected() {
        let w = [0.0, 0.0, 0.0, 128.0, 128.0, 128.0, 255.0, 255.0, 255.0];
        assert!(gradient_magnitude(&w) > 200.0);
    }

    #[test]
    fn gradient_clamped_to_pixel_range() {
        let w = [0.0, 0.0, 255.0, 0.0, 0.0, 255.0, 0.0, 0.0, 255.0];
        assert!(gradient_magnitude(&w) <= 255.0);
    }

    #[test]
    fn dataset_has_one_invocation_per_pixel() {
        let b = Sobel;
        let ds = b.dataset(1, DatasetScale::Smoke);
        assert_eq!(ds.invocation_count(), SMOKE_IMAGE_SIDE * SMOKE_IMAGE_SIDE);
    }

    #[test]
    fn edge_map_matches_image_content() {
        let b = Sobel;
        let ds = b.dataset(9, DatasetScale::Smoke);
        let out = run_precise(&b, &ds);
        let edges = b.run_application(&ds, &out);
        // Synthetic images contain hard rectangle edges.
        let max = edges.iter().cloned().fold(0.0f64, f64::max);
        assert!(max > 50.0, "no edges found ({max})");
    }

    #[test]
    fn rotation_symmetry() {
        // Rotating the window 90 degrees preserves the magnitude.
        let w = [10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0];
        let rotated = [70.0, 40.0, 10.0, 80.0, 50.0, 20.0, 90.0, 60.0, 30.0];
        let a = gradient_magnitude(&w);
        let b = gradient_magnitude(&rotated);
        assert!((a - b).abs() < 1e-3);
    }
}
