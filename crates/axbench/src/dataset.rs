//! Datasets: flat, seeded collections of accelerator input vectors.
//!
//! The paper uses 250 distinct compilation datasets and 250 distinct unseen
//! validation datasets per benchmark; each dataset is one typical program
//! input (a whole image, a batch of options). Profiling touches millions of
//! invocations, so inputs are stored flat (`count × input_dim` in one
//! allocation) rather than as nested vectors.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// How large a generated dataset should be.
///
/// `Smoke` keeps unit tests fast; `Full` is the experiment configuration
/// (reduced from the paper's native sizes as documented in `DESIGN.md`, but
/// still thousands of invocations per dataset for most workloads).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DatasetScale {
    /// A few dozen invocations — for tests.
    Smoke,
    /// The experiment size (e.g. 2048 invocations, a 64×64 image).
    #[default]
    Full,
}

/// An input-distribution drift applied to a dataset — the "deployment
/// inputs stopped looking like the compilation inputs" fault mode.
///
/// All three knobs are expressed relative to each input dimension's
/// observed spread, so one spec means the same *severity* on every
/// benchmark regardless of its native units:
///
/// * `scale` multiplies each element's distance from the per-dimension
///   midpoint (1.0 = unchanged);
/// * `offset` shifts every element by that fraction of the per-dimension
///   range;
/// * `noise_std` adds zero-mean Gaussian noise with that fraction of the
///   per-dimension range as its standard deviation, drawn from `seed`.
///
/// Applying a spec is deterministic: the same `(dataset, spec)` pair
/// always produces the same drifted dataset.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DriftSpec {
    /// Multiplicative stretch about the per-dimension midpoint.
    pub scale: f32,
    /// Additive shift in units of the per-dimension range.
    pub offset: f32,
    /// Gaussian noise standard deviation in units of the per-dimension
    /// range.
    pub noise_std: f32,
    /// Seed for the noise stream.
    pub seed: u64,
}

impl DriftSpec {
    /// The identity drift: applying it reproduces the dataset bit-exactly
    /// (no noise is drawn when `noise_std` is zero).
    pub fn none() -> Self {
        Self {
            scale: 1.0,
            offset: 0.0,
            noise_std: 0.0,
            seed: 0,
        }
    }

    /// Whether this spec changes anything at all.
    pub fn is_identity(&self) -> bool {
        self.scale == 1.0 && self.offset == 0.0 && self.noise_std == 0.0
    }
}

/// A single application input: the ordered accelerator input vectors its
/// execution produces, stored flat.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    seed: u64,
    input_dim: usize,
    inputs: Vec<f32>,
}

impl Dataset {
    /// Creates a dataset from flat input storage.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` is not a multiple of `input_dim` — the
    /// generators in this crate always produce whole vectors, so a mismatch
    /// is a bug.
    pub fn from_flat(seed: u64, input_dim: usize, inputs: Vec<f32>) -> Self {
        assert!(input_dim > 0, "input_dim must be positive");
        assert_eq!(
            inputs.len() % input_dim,
            0,
            "flat input storage must be a whole number of vectors"
        );
        Self {
            seed,
            input_dim,
            inputs,
        }
    }

    /// The seed this dataset was generated from (application context such
    /// as an FFT's signal is regenerated deterministically from it).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Elements per accelerator input vector.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Number of accelerator invocations in this dataset.
    pub fn invocation_count(&self) -> usize {
        self.inputs.len() / self.input_dim
    }

    /// The `i`-th invocation's input vector.
    ///
    /// # Panics
    ///
    /// Panics if `i >= invocation_count()`.
    pub fn input(&self, i: usize) -> &[f32] {
        &self.inputs[i * self.input_dim..(i + 1) * self.input_dim]
    }

    /// Iterates over the input vectors in invocation order.
    pub fn iter(&self) -> impl Iterator<Item = &[f32]> {
        self.inputs.chunks_exact(self.input_dim)
    }

    /// The flat element storage (`invocation_count() × input_dim()`).
    pub fn as_flat(&self) -> &[f32] {
        &self.inputs
    }

    /// Returns a copy of this dataset with [`DriftSpec`] applied.
    ///
    /// The drifted dataset keeps the same `seed()` — it is still the same
    /// application input as far as context regeneration (an FFT's signal,
    /// a JPEG's image) is concerned; only the accelerator-visible vectors
    /// have drifted. An identity spec returns a bit-exact copy.
    pub fn drifted(&self, spec: &DriftSpec) -> Self {
        if spec.is_identity() || self.inputs.is_empty() {
            return self.clone();
        }

        // Per-dimension midpoint and range over the dataset.
        let dim = self.input_dim;
        let mut mins = vec![f32::INFINITY; dim];
        let mut maxs = vec![f32::NEG_INFINITY; dim];
        for v in self.iter() {
            for (d, &x) in v.iter().enumerate() {
                mins[d] = mins[d].min(x);
                maxs[d] = maxs[d].max(x);
            }
        }
        let mids: Vec<f32> = mins
            .iter()
            .zip(&maxs)
            .map(|(lo, hi)| (lo + hi) / 2.0)
            .collect();
        // A constant dimension has zero observed range; use unit range so
        // offset/noise severities still mean something there.
        let ranges: Vec<f32> = mins
            .iter()
            .zip(&maxs)
            .map(|(lo, hi)| if hi > lo { hi - lo } else { 1.0 })
            .collect();

        let mut rng =
            StdRng::seed_from_u64(spec.seed ^ self.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let inputs: Vec<f32> = self
            .inputs
            .iter()
            .enumerate()
            .map(|(i, &x)| {
                let d = i % dim;
                let noise = if spec.noise_std > 0.0 {
                    gaussian(&mut rng) * spec.noise_std * ranges[d]
                } else {
                    0.0
                };
                mids[d] + (x - mids[d]) * spec.scale + spec.offset * ranges[d] + noise
            })
            .collect();
        Self {
            seed: self.seed,
            input_dim: dim,
            inputs,
        }
    }
}

/// One standard-normal draw via Box–Muller from two uniforms.
fn gaussian(rng: &mut StdRng) -> f32 {
    // u1 in (0, 1] so ln(u1) is finite.
    let u1: f64 = 1.0 - rng.gen_range(0.0..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    ((-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()) as f32
}

impl<'a> IntoIterator for &'a Dataset {
    type Item = &'a [f32];
    type IntoIter = std::slice::ChunksExact<'a, f32>;

    fn into_iter(self) -> Self::IntoIter {
        self.inputs.chunks_exact(self.input_dim)
    }
}

/// Flat storage for per-invocation output vectors, mirroring [`Dataset`].
#[derive(Clone, PartialEq, Default)]
pub struct OutputBuffer {
    dim: usize,
    data: Vec<f32>,
}

impl OutputBuffer {
    /// Creates an empty buffer for `dim`-element output vectors.
    pub fn new(dim: usize) -> Self {
        Self {
            dim,
            data: Vec::new(),
        }
    }

    /// Creates an empty buffer with room for `invocations` vectors.
    pub fn with_capacity(dim: usize, invocations: usize) -> Self {
        Self {
            dim,
            data: Vec::with_capacity(dim * invocations),
        }
    }

    /// Creates a buffer from flat element storage.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` is not a multiple of `dim` (for positive
    /// `dim`) — buffers always hold whole vectors.
    pub fn from_flat(dim: usize, data: Vec<f32>) -> Self {
        assert!(dim > 0 || data.is_empty(), "zero-dim buffers must be empty");
        if dim > 0 {
            assert_eq!(
                data.len() % dim,
                0,
                "flat output storage must be a whole number of vectors"
            );
        }
        Self { dim, data }
    }

    /// Elements per output vector.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of stored output vectors.
    pub fn len(&self) -> usize {
        self.data.len().checked_div(self.dim).unwrap_or_default()
    }

    /// Whether the buffer holds no vectors.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends one output vector.
    ///
    /// # Panics
    ///
    /// Panics if `output.len() != dim()`.
    pub fn push(&mut self, output: &[f32]) {
        assert_eq!(output.len(), self.dim, "output vector width mismatch");
        self.data.extend_from_slice(output);
    }

    /// The `i`-th stored output vector.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn get(&self, i: usize) -> &[f32] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Iterates over stored vectors in order.
    pub fn iter(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.dim)
    }

    /// The flat element storage.
    pub fn as_flat(&self) -> &[f32] {
        &self.data
    }
}

impl fmt::Debug for OutputBuffer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OutputBuffer")
            .field("dim", &self.dim)
            .field("vectors", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_indexing() {
        let ds = Dataset::from_flat(7, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(ds.invocation_count(), 2);
        assert_eq!(ds.input(0), &[1.0, 2.0]);
        assert_eq!(ds.input(1), &[3.0, 4.0]);
        assert_eq!(ds.seed(), 7);
        let collected: Vec<&[f32]> = ds.iter().collect();
        assert_eq!(collected.len(), 2);
    }

    #[test]
    #[should_panic(expected = "whole number of vectors")]
    fn ragged_storage_panics() {
        let _ = Dataset::from_flat(0, 3, vec![1.0, 2.0]);
    }

    #[test]
    fn output_buffer_round_trip() {
        let mut buf = OutputBuffer::with_capacity(3, 2);
        buf.push(&[1.0, 2.0, 3.0]);
        buf.push(&[4.0, 5.0, 6.0]);
        assert_eq!(buf.len(), 2);
        assert_eq!(buf.get(1), &[4.0, 5.0, 6.0]);
        assert_eq!(buf.as_flat().len(), 6);
        assert!(!buf.is_empty());
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn wrong_width_push_panics() {
        let mut buf = OutputBuffer::new(2);
        buf.push(&[1.0]);
    }

    #[test]
    fn default_scale_is_full() {
        assert_eq!(DatasetScale::default(), DatasetScale::Full);
    }

    fn drift_fixture() -> Dataset {
        // Dim 0 spans [0, 10], dim 1 spans [−1, 1].
        Dataset::from_flat(5, 2, vec![0.0, -1.0, 10.0, 1.0, 5.0, 0.0])
    }

    #[test]
    fn identity_drift_is_bit_exact() {
        let ds = drift_fixture();
        let out = ds.drifted(&DriftSpec::none());
        assert_eq!(out, ds);
        assert!(DriftSpec::none().is_identity());
    }

    #[test]
    fn offset_drift_shifts_by_per_dim_range() {
        let ds = drift_fixture();
        let spec = DriftSpec {
            scale: 1.0,
            offset: 0.1,
            noise_std: 0.0,
            seed: 0,
        };
        let out = ds.drifted(&spec);
        // Dim 0 range is 10 → +1.0; dim 1 range is 2 → +0.2.
        assert!((out.input(0)[0] - 1.0).abs() < 1e-6);
        assert!((out.input(0)[1] - (-0.8)).abs() < 1e-6);
        assert_eq!(out.seed(), ds.seed(), "drift keeps the application seed");
    }

    #[test]
    fn scale_drift_stretches_about_midpoint() {
        let ds = drift_fixture();
        let spec = DriftSpec {
            scale: 2.0,
            offset: 0.0,
            noise_std: 0.0,
            seed: 0,
        };
        let out = ds.drifted(&spec);
        // Dim 0 midpoint is 5: 0 → −5, 10 → 15, 5 → 5.
        assert!((out.input(0)[0] - (-5.0)).abs() < 1e-6);
        assert!((out.input(1)[0] - 15.0).abs() < 1e-6);
        assert!((out.input(2)[0] - 5.0).abs() < 1e-6);
    }

    #[test]
    fn noise_drift_is_deterministic_and_seed_sensitive() {
        let ds = drift_fixture();
        let spec = DriftSpec {
            scale: 1.0,
            offset: 0.0,
            noise_std: 0.05,
            seed: 11,
        };
        let a = ds.drifted(&spec);
        let b = ds.drifted(&spec);
        assert_eq!(a, b, "same (dataset, spec) must drift identically");
        assert_ne!(a, ds, "noise must change something");
        let other = ds.drifted(&DriftSpec { seed: 12, ..spec });
        assert_ne!(a, other, "different noise seeds must diverge");
        for (x, y) in a.as_flat().iter().zip(ds.as_flat()) {
            assert!(x.is_finite(), "noise produced non-finite {x} from {y}");
        }
    }
}
