//! Datasets: flat, seeded collections of accelerator input vectors.
//!
//! The paper uses 250 distinct compilation datasets and 250 distinct unseen
//! validation datasets per benchmark; each dataset is one typical program
//! input (a whole image, a batch of options). Profiling touches millions of
//! invocations, so inputs are stored flat (`count × input_dim` in one
//! allocation) rather than as nested vectors.

use std::fmt;

/// How large a generated dataset should be.
///
/// `Smoke` keeps unit tests fast; `Full` is the experiment configuration
/// (reduced from the paper's native sizes as documented in `DESIGN.md`, but
/// still thousands of invocations per dataset for most workloads).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DatasetScale {
    /// A few dozen invocations — for tests.
    Smoke,
    /// The experiment size (e.g. 2048 invocations, a 64×64 image).
    #[default]
    Full,
}

/// A single application input: the ordered accelerator input vectors its
/// execution produces, stored flat.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    seed: u64,
    input_dim: usize,
    inputs: Vec<f32>,
}

impl Dataset {
    /// Creates a dataset from flat input storage.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` is not a multiple of `input_dim` — the
    /// generators in this crate always produce whole vectors, so a mismatch
    /// is a bug.
    pub fn from_flat(seed: u64, input_dim: usize, inputs: Vec<f32>) -> Self {
        assert!(input_dim > 0, "input_dim must be positive");
        assert_eq!(
            inputs.len() % input_dim,
            0,
            "flat input storage must be a whole number of vectors"
        );
        Self {
            seed,
            input_dim,
            inputs,
        }
    }

    /// The seed this dataset was generated from (application context such
    /// as an FFT's signal is regenerated deterministically from it).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Elements per accelerator input vector.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Number of accelerator invocations in this dataset.
    pub fn invocation_count(&self) -> usize {
        self.inputs.len() / self.input_dim
    }

    /// The `i`-th invocation's input vector.
    ///
    /// # Panics
    ///
    /// Panics if `i >= invocation_count()`.
    pub fn input(&self, i: usize) -> &[f32] {
        &self.inputs[i * self.input_dim..(i + 1) * self.input_dim]
    }

    /// Iterates over the input vectors in invocation order.
    pub fn iter(&self) -> impl Iterator<Item = &[f32]> {
        self.inputs.chunks_exact(self.input_dim)
    }

    /// The flat element storage (`invocation_count() × input_dim()`).
    pub fn as_flat(&self) -> &[f32] {
        &self.inputs
    }
}

impl<'a> IntoIterator for &'a Dataset {
    type Item = &'a [f32];
    type IntoIter = std::slice::ChunksExact<'a, f32>;

    fn into_iter(self) -> Self::IntoIter {
        self.inputs.chunks_exact(self.input_dim)
    }
}

/// Flat storage for per-invocation output vectors, mirroring [`Dataset`].
#[derive(Clone, PartialEq, Default)]
pub struct OutputBuffer {
    dim: usize,
    data: Vec<f32>,
}

impl OutputBuffer {
    /// Creates an empty buffer for `dim`-element output vectors.
    pub fn new(dim: usize) -> Self {
        Self {
            dim,
            data: Vec::new(),
        }
    }

    /// Creates an empty buffer with room for `invocations` vectors.
    pub fn with_capacity(dim: usize, invocations: usize) -> Self {
        Self {
            dim,
            data: Vec::with_capacity(dim * invocations),
        }
    }

    /// Creates a buffer from flat element storage.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` is not a multiple of `dim` (for positive
    /// `dim`) — buffers always hold whole vectors.
    pub fn from_flat(dim: usize, data: Vec<f32>) -> Self {
        assert!(dim > 0 || data.is_empty(), "zero-dim buffers must be empty");
        if dim > 0 {
            assert_eq!(
                data.len() % dim,
                0,
                "flat output storage must be a whole number of vectors"
            );
        }
        Self { dim, data }
    }

    /// Elements per output vector.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of stored output vectors.
    pub fn len(&self) -> usize {
        self.data.len().checked_div(self.dim).unwrap_or_default()
    }

    /// Whether the buffer holds no vectors.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends one output vector.
    ///
    /// # Panics
    ///
    /// Panics if `output.len() != dim()`.
    pub fn push(&mut self, output: &[f32]) {
        assert_eq!(output.len(), self.dim, "output vector width mismatch");
        self.data.extend_from_slice(output);
    }

    /// The `i`-th stored output vector.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn get(&self, i: usize) -> &[f32] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Iterates over stored vectors in order.
    pub fn iter(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.dim)
    }

    /// The flat element storage.
    pub fn as_flat(&self) -> &[f32] {
        &self.data
    }
}

impl fmt::Debug for OutputBuffer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OutputBuffer")
            .field("dim", &self.dim)
            .field("vectors", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_indexing() {
        let ds = Dataset::from_flat(7, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(ds.invocation_count(), 2);
        assert_eq!(ds.input(0), &[1.0, 2.0]);
        assert_eq!(ds.input(1), &[3.0, 4.0]);
        assert_eq!(ds.seed(), 7);
        let collected: Vec<&[f32]> = ds.iter().collect();
        assert_eq!(collected.len(), 2);
    }

    #[test]
    #[should_panic(expected = "whole number of vectors")]
    fn ragged_storage_panics() {
        let _ = Dataset::from_flat(0, 3, vec![1.0, 2.0]);
    }

    #[test]
    fn output_buffer_round_trip() {
        let mut buf = OutputBuffer::with_capacity(3, 2);
        buf.push(&[1.0, 2.0, 3.0]);
        buf.push(&[4.0, 5.0, 6.0]);
        assert_eq!(buf.len(), 2);
        assert_eq!(buf.get(1), &[4.0, 5.0, 6.0]);
        assert_eq!(buf.as_flat().len(), 6);
        assert!(!buf.is_empty());
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn wrong_width_push_panics() {
        let mut buf = OutputBuffer::new(2);
        buf.push(&[1.0]);
    }

    #[test]
    fn default_scale_is_full() {
        assert_eq!(DatasetScale::default(), DatasetScale::Full);
    }
}
