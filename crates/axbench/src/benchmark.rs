//! The [`Benchmark`] trait: the contract every suite workload implements.

use crate::dataset::{Dataset, DatasetScale, OutputBuffer};
use crate::quality::QualityMetric;
use mithra_npu::topology::Topology;

/// Calibrated timing profile of a workload on the modeled core.
///
/// These two numbers — how many core cycles one precise invocation of the
/// target function costs, and what fraction of the baseline runtime lies
/// *outside* the target function — drive the Amdahl accounting in
/// `mithra-sim`. They substitute for the paper's MARSSx86 measurements and
/// are calibrated so full-approximation speedups land in the published
/// range (see `DESIGN.md`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadProfile {
    /// Core cycles for one precise execution of the target function.
    pub kernel_cycles: u64,
    /// Fraction of baseline application time spent outside the target
    /// function (not accelerable).
    pub non_kernel_fraction: f64,
}

impl WorkloadProfile {
    /// Baseline (all-precise) application cycles for `invocations` calls.
    pub fn baseline_cycles(&self, invocations: u64) -> f64 {
        let kernel = (self.kernel_cycles * invocations) as f64;
        kernel / (1.0 - self.non_kernel_fraction)
    }

    /// The fixed non-kernel cycle budget implied by `invocations` calls.
    pub fn non_kernel_cycles(&self, invocations: u64) -> f64 {
        self.baseline_cycles(invocations) * self.non_kernel_fraction
    }
}

/// A suite workload: target function, datasets, application layer and
/// quality metric.
///
/// Implementors are stateless descriptions; all state (trained networks,
/// thresholds, classifier tables) lives in `mithra-core`'s pipeline.
pub trait Benchmark: Send + Sync + std::fmt::Debug {
    /// Short name, e.g. `"blackscholes"`.
    fn name(&self) -> &'static str;

    /// Application domain (paper Table I "Type" column).
    fn domain(&self) -> &'static str;

    /// One-line description (paper Table I "Description" column).
    fn description(&self) -> &'static str;

    /// Elements in the accelerator input vector.
    fn input_dim(&self) -> usize;

    /// Elements in the accelerator output vector.
    fn output_dim(&self) -> usize;

    /// The NPU topology the paper uses for this workload (Table I).
    fn npu_topology(&self) -> Topology;

    /// The application-specific quality metric (Table I).
    fn quality_metric(&self) -> QualityMetric;

    /// Executes the precise target function for one invocation.
    ///
    /// `output` is cleared and filled with exactly
    /// [`output_dim`](Self::output_dim) elements.
    fn precise(&self, input: &[f32], output: &mut Vec<f32>);

    /// Generates the dataset for `seed` at the requested scale.
    ///
    /// Generation is deterministic in `(seed, scale)`; distinct seeds give
    /// the paper's "distinct datasets".
    fn dataset(&self, seed: u64, scale: DatasetScale) -> Dataset;

    /// Combines per-invocation outputs into the final application output.
    ///
    /// `outputs` holds one output vector per invocation of `dataset`, in
    /// invocation order — either precise results, accelerator results, or
    /// the per-invocation mix a classifier produced. Error *propagation*
    /// happens here (FFT butterflies, JPEG decode).
    fn run_application(&self, dataset: &Dataset, outputs: &OutputBuffer) -> Vec<f64>;

    /// The paper's Table I "Error with Full Approximation" for this
    /// workload, as a fraction (e.g. `0.0603` for blackscholes).
    fn paper_full_approx_error(&self) -> f64;

    /// Calibrated timing profile for the system simulator.
    fn profile(&self) -> WorkloadProfile;

    /// Suggested training epochs for the NPU on this workload (the
    /// compile pipeline's default; heavier kernels need more).
    fn npu_training_epochs(&self) -> usize {
        60
    }
}

/// Runs the precise function over a whole dataset into a fresh buffer —
/// shared convenience for the profiler and tests.
pub fn run_precise(bench: &dyn Benchmark, dataset: &Dataset) -> OutputBuffer {
    let mut buf = OutputBuffer::with_capacity(bench.output_dim(), dataset.invocation_count());
    let mut out = Vec::with_capacity(bench.output_dim());
    for input in dataset.iter() {
        bench.precise(input, &mut out);
        buf.push(&out);
    }
    buf
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_profile_amdahl_accounting() {
        let p = WorkloadProfile {
            kernel_cycles: 100,
            non_kernel_fraction: 0.5,
        };
        // 10 invocations: 1000 kernel cycles = half the app -> 2000 total.
        assert!((p.baseline_cycles(10) - 2000.0).abs() < 1e-9);
        assert!((p.non_kernel_cycles(10) - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn zero_non_kernel_fraction() {
        let p = WorkloadProfile {
            kernel_cycles: 50,
            non_kernel_fraction: 0.0,
        };
        assert_eq!(p.baseline_cycles(4), 200.0);
        assert_eq!(p.non_kernel_cycles(4), 0.0);
    }
}
