//! `fft` — radix-2 Cooley–Tukey fast Fourier transform.
//!
//! The target function computes the twiddle factor `(cos 2πt, sin 2πt)`
//! for a normalized angle `t ∈ [0, 1)`; the application layer runs the
//! radix-2 butterfly network over a seeded real signal using those
//! (possibly approximated) twiddles. Errors in individual twiddles
//! propagate through `log2 N` butterfly stages — exactly the global error
//! manifestation MITHRA's local threshold has to account for. Paper
//! Table I: topology `1→4→4→2`, avg. relative error, 7.22% under full
//! approximation.

use crate::benchmark::{Benchmark, WorkloadProfile};
use crate::dataset::{Dataset, DatasetScale, OutputBuffer};
use crate::quality::QualityMetric;
use mithra_npu::topology::Topology;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The `fft` workload.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fft;

/// Signal length at full scale (the paper uses 2048-point inputs).
pub const FULL_SIGNAL_LEN: usize = 2048;
/// Signal length at smoke scale.
pub const SMOKE_SIGNAL_LEN: usize = 64;

fn signal_len(scale: DatasetScale) -> usize {
    match scale {
        DatasetScale::Smoke => SMOKE_SIGNAL_LEN,
        DatasetScale::Full => FULL_SIGNAL_LEN,
    }
}

/// The precise twiddle computation: `t ↦ (cos 2πt, sin 2πt)`.
pub fn twiddle(t: f32) -> (f32, f32) {
    let angle = 2.0 * std::f32::consts::PI * t;
    (angle.cos(), angle.sin())
}

/// Generates the seeded input signal the application transforms.
pub fn generate_signal(seed: u64, len: usize) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0xFF7_0051));
    // A handful of random tones plus noise: realistic spectra with both
    // strong and near-zero bins.
    let tone_count = rng.gen_range(2..6);
    let tones: Vec<(f32, f32, f32)> = (0..tone_count)
        .map(|_| {
            (
                rng.gen_range(1.0..(len as f32 / 4.0)),
                rng.gen_range(0.5..3.0),
                rng.gen_range(0.0..std::f32::consts::TAU),
            )
        })
        .collect();
    (0..len)
        .map(|n| {
            let mut v = 0.0f32;
            for &(freq, amp, phase) in &tones {
                v += amp * (std::f32::consts::TAU * freq * n as f32 / len as f32 + phase).sin();
            }
            v + rng.gen_range(-0.1..0.1)
        })
        .collect()
}

/// Iterative radix-2 FFT over a real signal, using a caller-supplied
/// twiddle table `w[k] = (re, im)` for `k < len/2`.
///
/// Returns interleaved `(re, im)` pairs of the spectrum.
///
/// # Panics
///
/// Panics if `signal.len()` is not a power of two or the twiddle table is
/// shorter than `len/2`.
pub fn fft_with_twiddles(signal: &[f32], twiddles: &[(f32, f32)]) -> Vec<f64> {
    let n = signal.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    assert!(twiddles.len() >= n / 2, "twiddle table too short");

    // Bit-reversal permutation.
    let mut re: Vec<f64> = vec![0.0; n];
    let mut im: Vec<f64> = vec![0.0; n];
    let bits = n.trailing_zeros();
    for (i, &s) in signal.iter().enumerate() {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        re[j] = f64::from(s);
    }

    let mut len = 2;
    while len <= n {
        let half = len / 2;
        let step = n / len;
        for start in (0..n).step_by(len) {
            for k in 0..half {
                // Twiddle index: W_N^{k * step}; negated imaginary for the
                // forward transform.
                let (wr, wi) = twiddles[k * step];
                let (wr, wi) = (f64::from(wr), f64::from(-wi));
                let (a, b) = (start + k, start + k + half);
                let tr = wr * re[b] - wi * im[b];
                let ti = wr * im[b] + wi * re[b];
                re[b] = re[a] - tr;
                im[b] = im[a] - ti;
                re[a] += tr;
                im[a] += ti;
            }
        }
        len *= 2;
    }

    let mut out = Vec::with_capacity(2 * n);
    for i in 0..n {
        out.push(re[i]);
        out.push(im[i]);
    }
    out
}

impl Benchmark for Fft {
    fn name(&self) -> &'static str {
        "fft"
    }

    fn domain(&self) -> &'static str {
        "Signal Processing"
    }

    fn description(&self) -> &'static str {
        "Radix-2 Cooley-Tukey fast Fourier transform"
    }

    fn input_dim(&self) -> usize {
        1
    }

    fn output_dim(&self) -> usize {
        2
    }

    fn npu_topology(&self) -> Topology {
        Topology::new(&[1, 4, 4, 2]).expect("static topology is valid")
    }

    fn quality_metric(&self) -> QualityMetric {
        QualityMetric::AvgRelativeError
    }

    fn precise(&self, input: &[f32], output: &mut Vec<f32>) {
        let (c, s) = twiddle(input[0]);
        output.clear();
        output.push(c);
        output.push(s);
    }

    fn dataset(&self, seed: u64, scale: DatasetScale) -> Dataset {
        // One invocation per distinct twiddle factor: t = k / N for
        // k in 0..N/2.
        let n = signal_len(scale);
        let flat: Vec<f32> = (0..n / 2).map(|k| k as f32 / n as f32).collect();
        Dataset::from_flat(seed, 1, flat)
    }

    fn run_application(&self, dataset: &Dataset, outputs: &OutputBuffer) -> Vec<f64> {
        let n = dataset.invocation_count() * 2;
        let signal = generate_signal(dataset.seed(), n);
        let twiddles: Vec<(f32, f32)> = outputs.iter().map(|o| (o[0], o[1])).collect();
        let spectrum = fft_with_twiddles(&signal, &twiddles);
        // The application output is the magnitude spectrum (AxBench's fft
        // scores the transform result; magnitudes avoid the degenerate
        // relative error of near-zero real/imaginary components).
        spectrum
            .chunks_exact(2)
            .map(|c| (c[0] * c[0] + c[1] * c[1]).sqrt())
            .collect()
    }

    fn paper_full_approx_error(&self) -> f64 {
        0.0722
    }

    fn profile(&self) -> WorkloadProfile {
        // sin + cos per twiddle; most of the runtime is the butterfly
        // network outside the target function.
        WorkloadProfile {
            kernel_cycles: 80,
            non_kernel_fraction: 0.5,
        }
    }

    fn npu_training_epochs(&self) -> usize {
        800
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmark::run_precise;

    fn precise_twiddles(n: usize) -> Vec<(f32, f32)> {
        (0..n / 2).map(|k| twiddle(k as f32 / n as f32)).collect()
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut signal = vec![0.0f32; 16];
        signal[0] = 1.0;
        let spec = fft_with_twiddles(&signal, &precise_twiddles(16));
        for i in 0..16 {
            assert!((spec[2 * i] - 1.0).abs() < 1e-9, "re[{i}]");
            assert!(spec[2 * i + 1].abs() < 1e-9, "im[{i}]");
        }
    }

    #[test]
    fn fft_of_single_tone_peaks_at_frequency() {
        let n = 64;
        let signal: Vec<f32> = (0..n)
            .map(|i| (std::f32::consts::TAU * 5.0 * i as f32 / n as f32).cos())
            .collect();
        let spec = fft_with_twiddles(&signal, &precise_twiddles(n));
        let mags: Vec<f64> = (0..n)
            .map(|i| (spec[2 * i].powi(2) + spec[2 * i + 1].powi(2)).sqrt())
            .collect();
        let peak = mags
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!(peak == 5 || peak == n - 5, "peak at {peak}");
        // f32 twiddles bound the achievable precision.
        assert!((mags[5] - n as f64 / 2.0).abs() < 1e-3);
    }

    #[test]
    fn fft_linearity() {
        let n = 32;
        let tw = precise_twiddles(n);
        let a = generate_signal(1, n);
        let b = generate_signal(2, n);
        let sum: Vec<f32> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        let fa = fft_with_twiddles(&a, &tw);
        let fb = fft_with_twiddles(&b, &tw);
        let fsum = fft_with_twiddles(&sum, &tw);
        for i in 0..2 * n {
            assert!((fa[i] + fb[i] - fsum[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn parseval_energy_conservation() {
        let n = 64;
        let signal = generate_signal(7, n);
        let spec = fft_with_twiddles(&signal, &precise_twiddles(n));
        let time_energy: f64 = signal.iter().map(|&v| f64::from(v).powi(2)).sum();
        let freq_energy: f64 = spec
            .chunks_exact(2)
            .map(|c| c[0] * c[0] + c[1] * c[1])
            .sum::<f64>()
            / n as f64;
        // f32 twiddles bound the achievable precision.
        assert!((time_energy - freq_energy).abs() / time_energy < 1e-5);
    }

    #[test]
    fn application_run_matches_direct_fft_magnitudes() {
        let b = Fft;
        let ds = b.dataset(5, DatasetScale::Smoke);
        let out = run_precise(&b, &ds);
        let via_app = b.run_application(&ds, &out);
        let signal = generate_signal(5, SMOKE_SIGNAL_LEN);
        let direct = fft_with_twiddles(&signal, &precise_twiddles(SMOKE_SIGNAL_LEN));
        assert_eq!(via_app.len(), direct.len() / 2);
        for (i, a) in via_app.iter().enumerate() {
            let mag = (direct[2 * i].powi(2) + direct[2 * i + 1].powi(2)).sqrt();
            assert!((a - mag).abs() < 1e-9, "bin {i}");
        }
    }

    #[test]
    fn twiddle_identities() {
        let (c, s) = twiddle(0.0);
        assert!((c - 1.0).abs() < 1e-6 && s.abs() < 1e-6);
        let (c, s) = twiddle(0.25);
        assert!(c.abs() < 1e-6 && (s - 1.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        let _ = fft_with_twiddles(&[1.0; 12], &precise_twiddles(16));
    }
}
