//! `kmeans` — cluster-assignment distances for a fixed k-means model.
//!
//! The first workload grown past the paper's six (ROADMAP: "workload
//! expansion beyond AxBench"). The target function maps a 2-D point to
//! its Euclidean distances from the four fitted cluster centroids; the
//! application layer assigns each point to the nearest centroid and the
//! quality metric is the fraction of points whose *assignment* flips.
//! The error distribution is deliberately unlike the AxBench six: small
//! distance errors are free everywhere except near Voronoi boundaries,
//! where they flip a discrete label — a heavy mass at exactly 0 plus a
//! boundary-driven tail, stressing the Clopper–Pearson machinery on a
//! near-Bernoulli per-invocation error. Topology `2→8→4`, cluster
//! mismatch metric; the full-approximation error is measured, not taken
//! from the paper (pinned by mithra-bench's `measured_full_approx_error`
//! integration test).

use crate::benchmark::{Benchmark, WorkloadProfile};
use crate::dataset::{Dataset, DatasetScale, OutputBuffer};
use crate::quality::QualityMetric;
use mithra_npu::topology::Topology;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The fitted cluster centroids: well separated in the unit square, so a
/// precise assignment is unambiguous away from the Voronoi edges.
pub const CENTROIDS: [[f32; 2]; 4] = [[0.22, 0.24], [0.76, 0.20], [0.28, 0.78], [0.80, 0.72]];

/// The `kmeans` workload.
#[derive(Debug, Clone, Copy, Default)]
pub struct Kmeans;

/// Distances from `(x, y)` to the four centroids — the accelerated
/// kernel.
pub fn centroid_distances(x: f32, y: f32) -> [f32; 4] {
    let mut out = [0.0f32; 4];
    for (d, c) in out.iter_mut().zip(CENTROIDS.iter()) {
        let dx = x - c[0];
        let dy = y - c[1];
        *d = (dx * dx + dy * dy).sqrt();
    }
    out
}

/// Index of the smallest distance, ties broken toward the lower index —
/// the application layer's assignment rule.
pub fn assign(distances: &[f32]) -> usize {
    let mut best = 0;
    for (i, &d) in distances.iter().enumerate().skip(1) {
        if d < distances[best] {
            best = i;
        }
    }
    best
}

impl Benchmark for Kmeans {
    fn name(&self) -> &'static str {
        "kmeans"
    }

    fn domain(&self) -> &'static str {
        "Machine Learning"
    }

    fn description(&self) -> &'static str {
        "Nearest-centroid clustering of 2-D points"
    }

    fn input_dim(&self) -> usize {
        2
    }

    fn output_dim(&self) -> usize {
        4
    }

    fn npu_topology(&self) -> Topology {
        Topology::new(&[2, 8, 4]).expect("static topology is valid")
    }

    fn quality_metric(&self) -> QualityMetric {
        QualityMetric::ClusterMismatch
    }

    fn precise(&self, input: &[f32], output: &mut Vec<f32>) {
        let d = centroid_distances(input[0], input[1]);
        output.clear();
        output.extend_from_slice(&d);
    }

    fn dataset(&self, seed: u64, scale: DatasetScale) -> Dataset {
        let count = match scale {
            DatasetScale::Smoke => 64,
            DatasetScale::Full => 2048,
        };
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x6B6D_6E73));
        let mut flat = Vec::with_capacity(count * 2);
        for _ in 0..count {
            // 80% of points sit in a Gaussian-ish blob around a centroid
            // (sum of three uniforms approximates the normal well enough
            // for a clustering input), 20% are uniform background that
            // lands near Voronoi boundaries — the population whose
            // assignment is fragile under approximation.
            if rng.gen_range(0.0f32..1.0) < 0.8 {
                let c = CENTROIDS[rng.gen_range(0usize..4)];
                let mut p = [c[0], c[1]];
                for v in &mut p {
                    let noise: f32 = (0..3).map(|_| rng.gen_range(-0.06f32..0.06)).sum();
                    *v = (*v + noise).clamp(0.0, 1.0);
                }
                flat.extend_from_slice(&p);
            } else {
                flat.push(rng.gen_range(0.0f32..1.0));
                flat.push(rng.gen_range(0.0f32..1.0));
            }
        }
        Dataset::from_flat(seed, 2, flat)
    }

    fn run_application(&self, _dataset: &Dataset, outputs: &OutputBuffer) -> Vec<f64> {
        // The assignment stream: one discrete label per point.
        outputs.iter().map(|o| assign(o) as f64).collect()
    }

    fn paper_full_approx_error(&self) -> f64 {
        // Not a paper workload: this is the measured full-approximation
        // assignment-flip rate of the 2→8→4 NPU on the full-scale
        // validation datasets (results/table1_benchmarks_extended.txt),
        // pinned by mithra-bench's `measured_full_approx_error` test.
        0.0046
    }

    fn profile(&self) -> WorkloadProfile {
        // Four distances: 8 sub, 8 mul, 4 add, 4 sqrt. The argmin and the
        // per-point bookkeeping of the clustering loop stay on the core,
        // so a comparatively large fraction is not accelerable.
        WorkloadProfile {
            kernel_cycles: 110,
            non_kernel_fraction: 0.25,
        }
    }

    fn npu_training_epochs(&self) -> usize {
        90
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances_are_euclidean() {
        let d = centroid_distances(CENTROIDS[2][0], CENTROIDS[2][1]);
        assert_eq!(d[2], 0.0);
        for (i, &di) in d.iter().enumerate() {
            if i != 2 {
                assert!(di > 0.3, "centroids not separated: d[{i}] = {di}");
            }
        }
    }

    #[test]
    fn assignment_picks_nearest_and_breaks_ties_low() {
        assert_eq!(assign(&[0.3, 0.1, 0.5, 0.2]), 1);
        assert_eq!(assign(&[0.2, 0.7, 0.2, 0.9]), 0);
    }

    #[test]
    fn points_near_centroids_assign_to_them() {
        for (k, c) in CENTROIDS.iter().enumerate() {
            let d = centroid_distances(c[0] + 0.01, c[1] - 0.01);
            assert_eq!(assign(&d), k);
        }
    }

    #[test]
    fn precise_output_dim() {
        let b = Kmeans;
        let mut out = Vec::new();
        b.precise(&[0.5, 0.5], &mut out);
        assert_eq!(out.len(), 4);
        assert!(out.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn datasets_are_deterministic_and_distinct_by_seed() {
        let b = Kmeans;
        assert_eq!(
            b.dataset(10, DatasetScale::Smoke),
            b.dataset(10, DatasetScale::Smoke)
        );
        assert_ne!(
            b.dataset(10, DatasetScale::Smoke),
            b.dataset(11, DatasetScale::Smoke)
        );
    }

    #[test]
    fn dataset_points_stay_in_unit_square() {
        let b = Kmeans;
        let ds = b.dataset(3, DatasetScale::Smoke);
        for p in ds.iter() {
            assert!((0.0..=1.0).contains(&p[0]) && (0.0..=1.0).contains(&p[1]));
        }
    }

    #[test]
    fn application_layer_emits_labels() {
        let b = Kmeans;
        let ds = b.dataset(1, DatasetScale::Smoke);
        let out = crate::benchmark::run_precise(&b, &ds);
        let labels = b.run_application(&ds, &out);
        assert_eq!(labels.len(), ds.invocation_count());
        assert!(labels.iter().all(|&l| (0.0..4.0).contains(&l)));
        assert!(labels.iter().all(|&l| l == l.trunc()));
    }
}
