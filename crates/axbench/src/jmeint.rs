//! `jmeint` — triangle–triangle intersection detection (3D gaming).
//!
//! The target function takes two 3D triangles (18 coordinates) and decides
//! whether they intersect — Möller's interval-overlap test, the jMonkeyEngine
//! kernel AxBench extracts. The NPU emits two scores (intersect /
//! no-intersect); the application output is the binary decision stream and
//! the quality metric is the miss rate. Paper Table I: topology
//! `18→32→8→2`, 17.69% miss rate under full approximation — the hardest
//! workload in the suite.

use crate::benchmark::{Benchmark, WorkloadProfile};
use crate::dataset::{Dataset, DatasetScale, OutputBuffer};
use crate::quality::QualityMetric;
use mithra_npu::topology::Topology;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The `jmeint` workload.
#[derive(Debug, Clone, Copy, Default)]
pub struct Jmeint;

type Vec3 = [f32; 3];

fn sub(a: Vec3, b: Vec3) -> Vec3 {
    [a[0] - b[0], a[1] - b[1], a[2] - b[2]]
}

fn cross(a: Vec3, b: Vec3) -> Vec3 {
    [
        a[1] * b[2] - a[2] * b[1],
        a[2] * b[0] - a[0] * b[2],
        a[0] * b[1] - a[1] * b[0],
    ]
}

fn dot(a: Vec3, b: Vec3) -> f32 {
    a[0] * b[0] + a[1] * b[1] + a[2] * b[2]
}

const EPS: f32 = 1e-6;

/// Computes the parametric interval of triangle (`v0`,`v1`,`v2`) along the
/// intersection line, given projections `p` and signed plane distances `d`.
/// Returns `None` if the triangle is coplanar with the other's plane.
fn compute_interval(p: [f32; 3], d: [f32; 3]) -> Option<(f32, f32)> {
    // Find the vertex on the opposite side.
    let (a, b, c) = if d[0] * d[1] > 0.0 {
        // 0 and 1 on the same side; 2 alone.
        (2, 0, 1)
    } else if d[0] * d[2] > 0.0 {
        (1, 0, 2)
    } else if d[1] * d[2] > 0.0 || d[0] != 0.0 {
        (0, 1, 2)
    } else if d[1] != 0.0 {
        (1, 0, 2)
    } else if d[2] != 0.0 {
        (2, 0, 1)
    } else {
        return None; // coplanar
    };
    let t1 = p[b] + (p[a] - p[b]) * d[b] / (d[b] - d[a]);
    let t2 = p[c] + (p[a] - p[c]) * d[c] / (d[c] - d[a]);
    Some((t1.min(t2), t1.max(t2)))
}

/// Coplanar fallback: 2D overlap test after projecting onto the dominant
/// axis plane of the normal.
fn coplanar_tri_tri(n: Vec3, t1: [Vec3; 3], t2: [Vec3; 3]) -> bool {
    // Project onto the plane where the normal is largest.
    let abs = [n[0].abs(), n[1].abs(), n[2].abs()];
    let (i0, i1) = if abs[0] >= abs[1] && abs[0] >= abs[2] {
        (1, 2)
    } else if abs[1] >= abs[2] {
        (0, 2)
    } else {
        (0, 1)
    };
    let p1: Vec<[f32; 2]> = t1.iter().map(|v| [v[i0], v[i1]]).collect();
    let p2: Vec<[f32; 2]> = t2.iter().map(|v| [v[i0], v[i1]]).collect();

    // Edge-edge tests plus point-in-triangle tests.
    for i in 0..3 {
        for j in 0..3 {
            if segments_intersect_2d(p1[i], p1[(i + 1) % 3], p2[j], p2[(j + 1) % 3]) {
                return true;
            }
        }
    }
    point_in_tri_2d(p1[0], &p2) || point_in_tri_2d(p2[0], &p1)
}

fn orient_2d(a: [f32; 2], b: [f32; 2], c: [f32; 2]) -> f32 {
    (b[0] - a[0]) * (c[1] - a[1]) - (b[1] - a[1]) * (c[0] - a[0])
}

fn segments_intersect_2d(a: [f32; 2], b: [f32; 2], c: [f32; 2], d: [f32; 2]) -> bool {
    let d1 = orient_2d(c, d, a);
    let d2 = orient_2d(c, d, b);
    let d3 = orient_2d(a, b, c);
    let d4 = orient_2d(a, b, d);
    ((d1 > 0.0 && d2 < 0.0) || (d1 < 0.0 && d2 > 0.0))
        && ((d3 > 0.0 && d4 < 0.0) || (d3 < 0.0 && d4 > 0.0))
}

fn point_in_tri_2d(p: [f32; 2], tri: &[[f32; 2]]) -> bool {
    let d1 = orient_2d(tri[0], tri[1], p);
    let d2 = orient_2d(tri[1], tri[2], p);
    let d3 = orient_2d(tri[2], tri[0], p);
    let has_neg = d1 < 0.0 || d2 < 0.0 || d3 < 0.0;
    let has_pos = d1 > 0.0 || d2 > 0.0 || d3 > 0.0;
    !(has_neg && has_pos)
}

/// Möller's triangle-triangle intersection test.
pub fn tri_tri_intersect(t1: [Vec3; 3], t2: [Vec3; 3]) -> bool {
    // Plane of triangle 2.
    let n2 = cross(sub(t2[1], t2[0]), sub(t2[2], t2[0]));
    let d2 = -dot(n2, t2[0]);
    let mut dv = [
        dot(n2, t1[0]) + d2,
        dot(n2, t1[1]) + d2,
        dot(n2, t1[2]) + d2,
    ];
    for v in dv.iter_mut() {
        if v.abs() < EPS {
            *v = 0.0;
        }
    }
    if dv[0] * dv[1] > 0.0 && dv[0] * dv[2] > 0.0 {
        return false; // all on one side
    }

    // Plane of triangle 1.
    let n1 = cross(sub(t1[1], t1[0]), sub(t1[2], t1[0]));
    let d1 = -dot(n1, t1[0]);
    let mut du = [
        dot(n1, t2[0]) + d1,
        dot(n1, t2[1]) + d1,
        dot(n1, t2[2]) + d1,
    ];
    for v in du.iter_mut() {
        if v.abs() < EPS {
            *v = 0.0;
        }
    }
    if du[0] * du[1] > 0.0 && du[0] * du[2] > 0.0 {
        return false;
    }

    // Direction of the intersection line; project onto its largest axis.
    let dir = cross(n1, n2);
    let abs = [dir[0].abs(), dir[1].abs(), dir[2].abs()];
    let axis = if abs[0] >= abs[1] && abs[0] >= abs[2] {
        0
    } else if abs[1] >= abs[2] {
        1
    } else {
        2
    };
    let p1 = [t1[0][axis], t1[1][axis], t1[2][axis]];
    let p2 = [t2[0][axis], t2[1][axis], t2[2][axis]];

    match (compute_interval(p1, dv), compute_interval(p2, du)) {
        (Some((a0, a1)), Some((b0, b1))) => a0 <= b1 && b0 <= a1,
        _ => coplanar_tri_tri(n2, t1, t2),
    }
}

fn unpack(input: &[f32]) -> ([Vec3; 3], [Vec3; 3]) {
    let v = |i: usize| [input[3 * i], input[3 * i + 1], input[3 * i + 2]];
    ([v(0), v(1), v(2)], [v(3), v(4), v(5)])
}

impl Benchmark for Jmeint {
    fn name(&self) -> &'static str {
        "jmeint"
    }

    fn domain(&self) -> &'static str {
        "3D Gaming"
    }

    fn description(&self) -> &'static str {
        "Triangle intersection detection"
    }

    fn input_dim(&self) -> usize {
        18
    }

    fn output_dim(&self) -> usize {
        2
    }

    fn npu_topology(&self) -> Topology {
        Topology::new(&[18, 32, 8, 2]).expect("static topology is valid")
    }

    fn quality_metric(&self) -> QualityMetric {
        QualityMetric::MissRate
    }

    fn precise(&self, input: &[f32], output: &mut Vec<f32>) {
        let (t1, t2) = unpack(input);
        let hit = tri_tri_intersect(t1, t2);
        output.clear();
        if hit {
            output.push(1.0);
            output.push(0.0);
        } else {
            output.push(0.0);
            output.push(1.0);
        }
    }

    fn dataset(&self, seed: u64, scale: DatasetScale) -> Dataset {
        let count = match scale {
            DatasetScale::Smoke => 64,
            DatasetScale::Full => 2048,
        };
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x4A4D_4549));
        let mut flat = Vec::with_capacity(count * 18);
        for _ in 0..count {
            // First triangle around a random center; second at a random
            // offset so roughly half the pairs intersect.
            let c1: Vec3 = [
                rng.gen_range(0.0..1.0),
                rng.gen_range(0.0..1.0),
                rng.gen_range(0.0..1.0),
            ];
            let offset: f32 = rng.gen_range(0.0..0.35);
            let dir: Vec3 = random_unit(&mut rng);
            let c2 = [
                c1[0] + offset * dir[0],
                c1[1] + offset * dir[1],
                c1[2] + offset * dir[2],
            ];
            for c in [c1, c2] {
                for _ in 0..3 {
                    flat.push(c[0] + rng.gen_range(-0.45..0.45));
                    flat.push(c[1] + rng.gen_range(-0.45..0.45));
                    flat.push(c[2] + rng.gen_range(-0.45..0.45));
                }
            }
        }
        Dataset::from_flat(seed, 18, flat)
    }

    fn run_application(&self, _dataset: &Dataset, outputs: &OutputBuffer) -> Vec<f64> {
        // Binary decision stream: score 0 beats score 1 -> intersect.
        outputs
            .iter()
            .map(|o| if o[0] >= o[1] { 1.0 } else { 0.0 })
            .collect()
    }

    fn paper_full_approx_error(&self) -> f64 {
        0.1769
    }

    fn profile(&self) -> WorkloadProfile {
        // Cross products, plane tests and interval overlap: ~300 cycles on
        // average (early-outs make it cheaper than the worst case).
        WorkloadProfile {
            kernel_cycles: 290,
            non_kernel_fraction: 0.05,
        }
    }

    fn npu_training_epochs(&self) -> usize {
        50
    }
}

fn random_unit(rng: &mut StdRng) -> Vec3 {
    loop {
        let v: Vec3 = [
            rng.gen_range(-1.0..1.0),
            rng.gen_range(-1.0..1.0),
            rng.gen_range(-1.0..1.0),
        ];
        let len = dot(v, v).sqrt();
        if len > 1e-3 {
            return [v[0] / len, v[1] / len, v[2] / len];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clearly_separated_triangles_miss() {
        let t1 = [[0.0, 0.0, 0.0], [1.0, 0.0, 0.0], [0.0, 1.0, 0.0]];
        let t2 = [[0.0, 0.0, 5.0], [1.0, 0.0, 5.0], [0.0, 1.0, 5.0]];
        assert!(!tri_tri_intersect(t1, t2));
    }

    #[test]
    fn crossing_triangles_hit() {
        // t2 pierces t1's plane through its interior.
        let t1 = [[0.0, 0.0, 0.0], [2.0, 0.0, 0.0], [0.0, 2.0, 0.0]];
        let t2 = [[0.5, 0.5, -1.0], [0.5, 0.5, 1.0], [1.0, 1.0, 1.0]];
        assert!(tri_tri_intersect(t1, t2));
    }

    #[test]
    fn touching_plane_but_outside_misses() {
        let t1 = [[0.0, 0.0, 0.0], [1.0, 0.0, 0.0], [0.0, 1.0, 0.0]];
        // Crosses the plane far away from t1.
        let t2 = [[10.0, 10.0, -1.0], [10.0, 10.0, 1.0], [11.0, 10.0, 0.0]];
        assert!(!tri_tri_intersect(t1, t2));
    }

    #[test]
    fn coplanar_overlapping_hit() {
        let t1 = [[0.0, 0.0, 0.0], [2.0, 0.0, 0.0], [0.0, 2.0, 0.0]];
        let t2 = [[0.5, 0.5, 0.0], [2.5, 0.5, 0.0], [0.5, 2.5, 0.0]];
        assert!(tri_tri_intersect(t1, t2));
    }

    #[test]
    fn coplanar_disjoint_miss() {
        let t1 = [[0.0, 0.0, 0.0], [1.0, 0.0, 0.0], [0.0, 1.0, 0.0]];
        let t2 = [[5.0, 5.0, 0.0], [6.0, 5.0, 0.0], [5.0, 6.0, 0.0]];
        assert!(!tri_tri_intersect(t1, t2));
    }

    #[test]
    fn intersection_is_symmetric() {
        let b = Jmeint;
        let ds = b.dataset(13, DatasetScale::Smoke);
        for input in ds.iter() {
            let (t1, t2) = unpack(input);
            assert_eq!(
                tri_tri_intersect(t1, t2),
                tri_tri_intersect(t2, t1),
                "asymmetry on {input:?}"
            );
        }
    }

    #[test]
    fn datasets_are_roughly_balanced() {
        let b = Jmeint;
        let ds = b.dataset(1, DatasetScale::Full);
        let mut out = Vec::new();
        let mut hits = 0usize;
        for input in ds.iter() {
            b.precise(input, &mut out);
            if out[0] > 0.5 {
                hits += 1;
            }
        }
        let rate = hits as f64 / ds.invocation_count() as f64;
        assert!(
            (0.15..=0.85).contains(&rate),
            "intersection rate {rate} too skewed"
        );
    }

    #[test]
    fn shared_vertex_counts_as_hit() {
        let t1 = [[0.0, 0.0, 0.0], [1.0, 0.0, 0.0], [0.0, 1.0, 0.0]];
        let t2 = [[0.0, 0.0, 0.0], [-1.0, 0.0, 1.0], [0.0, -1.0, 1.0]];
        assert!(tri_tri_intersect(t1, t2));
    }
}
