//! `jpeg` — JPEG encoding (compression).
//!
//! The target function is the per-block transform at the heart of the
//! encoder: an 8×8 pixel block goes through the 2D DCT and quantization,
//! producing 64 quantized coefficients. The application layer decodes
//! (dequantize + inverse DCT) to reconstruct the image, and quality is the
//! image diff against the precisely encoded/decoded result. Paper Table I:
//! topology `64→16→64`, image diff metric, 7.00% under full approximation.

use crate::benchmark::{Benchmark, WorkloadProfile};
use crate::dataset::{Dataset, DatasetScale, OutputBuffer};
use crate::image::GrayImage;
use crate::quality::QualityMetric;
use mithra_npu::topology::Topology;

/// The `jpeg` workload.
#[derive(Debug, Clone, Copy, Default)]
pub struct Jpeg;

/// Image side at full scale: 128×128, i.e. 256 blocks (reduced from the
/// paper's 512×512 — see `DESIGN.md`).
pub const FULL_IMAGE_SIDE: usize = 128;
/// Image side at smoke scale: 16×16, i.e. 4 blocks.
pub const SMOKE_IMAGE_SIDE: usize = 16;

fn image_side(scale: DatasetScale) -> usize {
    match scale {
        DatasetScale::Smoke => SMOKE_IMAGE_SIDE,
        DatasetScale::Full => FULL_IMAGE_SIDE,
    }
}

/// The JPEG Annex-K luminance quantization table (quality 50).
pub const LUMINANCE_QUANT: [f32; 64] = [
    16.0, 11.0, 10.0, 16.0, 24.0, 40.0, 51.0, 61.0, //
    12.0, 12.0, 14.0, 19.0, 26.0, 58.0, 60.0, 55.0, //
    14.0, 13.0, 16.0, 24.0, 40.0, 57.0, 69.0, 56.0, //
    14.0, 17.0, 22.0, 29.0, 51.0, 87.0, 80.0, 62.0, //
    18.0, 22.0, 37.0, 56.0, 68.0, 109.0, 103.0, 77.0, //
    24.0, 35.0, 55.0, 64.0, 81.0, 104.0, 113.0, 92.0, //
    49.0, 64.0, 78.0, 87.0, 103.0, 121.0, 120.0, 101.0, //
    72.0, 92.0, 95.0, 98.0, 112.0, 100.0, 103.0, 99.0,
];

/// `COS[u][x] = c(u) · cos((2x+1)uπ/16)` — the orthonormal 1D DCT basis,
/// computed once (the transform is separable: rows then columns).
fn basis() -> &'static [[f32; 8]; 8] {
    use std::sync::OnceLock;
    static BASIS: OnceLock<[[f32; 8]; 8]> = OnceLock::new();
    BASIS.get_or_init(|| {
        let mut b = [[0.0f32; 8]; 8];
        for (u, row) in b.iter_mut().enumerate() {
            let c = if u == 0 {
                (1.0f32 / 8.0).sqrt()
            } else {
                (2.0f32 / 8.0).sqrt()
            };
            for (x, v) in row.iter_mut().enumerate() {
                *v = c * ((2 * x + 1) as f32 * u as f32 * std::f32::consts::PI / 16.0).cos();
            }
        }
        b
    })
}

/// Forward 8×8 2D DCT-II (orthonormal) of a row-major block, as two
/// separable 1D passes.
pub fn dct_8x8(block: &[f32; 64]) -> [f32; 64] {
    let b = basis();
    // Rows.
    let mut tmp = [0.0f32; 64];
    for y in 0..8 {
        for u in 0..8 {
            let mut acc = 0.0f32;
            for x in 0..8 {
                acc += block[y * 8 + x] * b[u][x];
            }
            tmp[y * 8 + u] = acc;
        }
    }
    // Columns.
    let mut out = [0.0f32; 64];
    for u in 0..8 {
        for v in 0..8 {
            let mut acc = 0.0f32;
            for y in 0..8 {
                acc += tmp[y * 8 + u] * b[v][y];
            }
            out[v * 8 + u] = acc;
        }
    }
    out
}

/// Inverse 8×8 2D DCT (orthonormal), as two separable 1D passes.
pub fn idct_8x8(coeffs: &[f32; 64]) -> [f32; 64] {
    let b = basis();
    // Columns.
    let mut tmp = [0.0f32; 64];
    for u in 0..8 {
        for y in 0..8 {
            let mut acc = 0.0f32;
            for v in 0..8 {
                acc += coeffs[v * 8 + u] * b[v][y];
            }
            tmp[y * 8 + u] = acc;
        }
    }
    // Rows.
    let mut out = [0.0f32; 64];
    for y in 0..8 {
        for x in 0..8 {
            let mut acc = 0.0f32;
            for u in 0..8 {
                acc += tmp[y * 8 + u] * b[u][x];
            }
            out[y * 8 + x] = acc;
        }
    }
    out
}

/// The precise target function: level-shift, DCT, quantize.
pub fn encode_block(pixels: &[f32]) -> [f32; 64] {
    let mut shifted = [0.0f32; 64];
    for (s, &p) in shifted.iter_mut().zip(pixels) {
        *s = p - 128.0;
    }
    let coeffs = dct_8x8(&shifted);
    let mut quantized = [0.0f32; 64];
    for i in 0..64 {
        quantized[i] = (coeffs[i] / LUMINANCE_QUANT[i]).round();
    }
    quantized
}

/// The decoder: dequantize, inverse DCT, level-shift back, clamp.
pub fn decode_block(quantized: &[f32]) -> [f32; 64] {
    let mut coeffs = [0.0f32; 64];
    for i in 0..64 {
        coeffs[i] = quantized[i] * LUMINANCE_QUANT[i];
    }
    let pixels = idct_8x8(&coeffs);
    let mut out = [0.0f32; 64];
    for i in 0..64 {
        out[i] = (pixels[i] + 128.0).clamp(0.0, 255.0);
    }
    out
}

impl Benchmark for Jpeg {
    fn name(&self) -> &'static str {
        "jpeg"
    }

    fn domain(&self) -> &'static str {
        "Compression"
    }

    fn description(&self) -> &'static str {
        "JPEG encoding"
    }

    fn input_dim(&self) -> usize {
        64
    }

    fn output_dim(&self) -> usize {
        64
    }

    fn npu_topology(&self) -> Topology {
        Topology::new(&[64, 16, 64]).expect("static topology is valid")
    }

    fn quality_metric(&self) -> QualityMetric {
        QualityMetric::ImageDiff
    }

    fn precise(&self, input: &[f32], output: &mut Vec<f32>) {
        output.clear();
        output.extend_from_slice(&encode_block(input));
    }

    fn dataset(&self, seed: u64, scale: DatasetScale) -> Dataset {
        let side = image_side(scale);
        let img = GrayImage::synthetic(side, side, seed);
        let blocks = side / 8;
        let mut flat = Vec::with_capacity(blocks * blocks * 64);
        for by in 0..blocks {
            for bx in 0..blocks {
                for y in 0..8 {
                    for x in 0..8 {
                        flat.push(img.get_clamped((bx * 8 + x) as isize, (by * 8 + y) as isize));
                    }
                }
            }
        }
        Dataset::from_flat(seed, 64, flat)
    }

    fn run_application(&self, _dataset: &Dataset, outputs: &OutputBuffer) -> Vec<f64> {
        // Decode every block back to pixels: the final output is the
        // reconstructed image, block scan order.
        let mut pixels = Vec::with_capacity(outputs.len() * 64);
        for block in outputs.iter() {
            let decoded = decode_block(block);
            pixels.extend(decoded.iter().map(|&p| f64::from(p)));
        }
        pixels
    }

    fn paper_full_approx_error(&self) -> f64 {
        0.07
    }

    fn profile(&self) -> WorkloadProfile {
        // A separable DCT plus quantization of an 8x8 block.
        WorkloadProfile {
            kernel_cycles: 1400,
            non_kernel_fraction: 0.3,
        }
    }

    fn npu_training_epochs(&self) -> usize {
        60
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dct_idct_round_trip() {
        let mut block = [0.0f32; 64];
        for (i, b) in block.iter_mut().enumerate() {
            *b = ((i * 37) % 256) as f32 - 128.0;
        }
        let coeffs = dct_8x8(&block);
        let back = idct_8x8(&coeffs);
        for i in 0..64 {
            assert!((back[i] - block[i]).abs() < 1e-3, "pixel {i}");
        }
    }

    #[test]
    fn dct_of_constant_block_is_dc_only() {
        let block = [80.0f32; 64];
        let coeffs = dct_8x8(&block);
        assert!((coeffs[0] - 8.0 * 80.0).abs() < 1e-3, "DC = {}", coeffs[0]);
        for (i, &c) in coeffs.iter().enumerate().skip(1) {
            assert!(c.abs() < 1e-3, "AC[{i}] = {c}");
        }
    }

    #[test]
    fn encode_decode_is_lossy_but_close() {
        let img = GrayImage::synthetic(8, 8, 77);
        let mut pixels = [0.0f32; 64];
        for y in 0..8 {
            for x in 0..8 {
                pixels[y * 8 + x] = img.get_clamped(x as isize, y as isize);
            }
        }
        let decoded = decode_block(&encode_block(&pixels));
        let mae: f32 = pixels
            .iter()
            .zip(&decoded)
            .map(|(a, b)| (a - b).abs())
            .sum::<f32>()
            / 64.0;
        assert!(mae < 15.0, "encode/decode too lossy: MAE {mae}");
        assert!(mae > 0.0, "quantization should lose something");
    }

    #[test]
    fn quantization_zeroes_high_frequencies() {
        let img = GrayImage::synthetic(8, 8, 3);
        let mut pixels = [0.0f32; 64];
        for (i, p) in pixels.iter_mut().enumerate() {
            *p = img.get_clamped((i % 8) as isize, (i / 8) as isize);
        }
        let q = encode_block(&pixels);
        let zeros = q.iter().filter(|&&c| c == 0.0).count();
        assert!(zeros > 16, "only {zeros} zero coefficients");
    }

    #[test]
    fn dataset_block_count() {
        let b = Jpeg;
        let ds = b.dataset(1, DatasetScale::Smoke);
        assert_eq!(ds.invocation_count(), (SMOKE_IMAGE_SIDE / 8).pow(2));
        let ds_full = b.dataset(1, DatasetScale::Full);
        assert_eq!(ds_full.invocation_count(), (FULL_IMAGE_SIDE / 8).pow(2));
    }

    #[test]
    fn application_reconstructs_plausible_image() {
        let b = Jpeg;
        let ds = b.dataset(4, DatasetScale::Smoke);
        let precise = crate::benchmark::run_precise(&b, &ds);
        let pixels = b.run_application(&ds, &precise);
        assert_eq!(pixels.len(), ds.invocation_count() * 64);
        assert!(pixels.iter().all(|&p| (0.0..=255.0).contains(&p)));
    }
}
