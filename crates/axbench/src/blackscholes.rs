//! `blackscholes` — mathematical model of a financial market.
//!
//! The target function prices one European option with the Black–Scholes
//! closed form. The accelerator input vector has six elements (spot price,
//! strike, risk-free rate, volatility, time to maturity, option type), the
//! output is the option price, and the application output is the batch of
//! prices. Paper Table I prints topology `6→8→3→1`; the NPU paper's
//! published blackscholes topology is `6→8→8→1` and the printed `3` is an
//! OCR artifact, so `6→8→8→1` is used here (see `DESIGN.md`). Avg.
//! relative error metric, 6.03% error under full approximation.

use crate::benchmark::{Benchmark, WorkloadProfile};
use crate::dataset::{Dataset, DatasetScale, OutputBuffer};
use crate::quality::QualityMetric;
use mithra_npu::topology::Topology;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The `blackscholes` workload.
#[derive(Debug, Clone, Copy, Default)]
pub struct BlackScholes;

/// Cumulative normal distribution via the Abramowitz–Stegun polynomial —
/// the same approximation the PARSEC kernel uses.
fn cndf(x: f32) -> f32 {
    let sign = x < 0.0;
    let x_abs = x.abs();
    let k = 1.0 / (1.0 + 0.2316419 * x_abs);
    let poly = k
        * (0.319_381_54
            + k * (-0.356_563_78 + k * (1.781_477_9 + k * (-1.821_255_9 + k * 1.330_274_5))));
    let pdf = (-(0.5) * x_abs * x_abs).exp() * 0.398_942_3;
    let cnd = 1.0 - pdf * poly;
    if sign {
        1.0 - cnd
    } else {
        cnd
    }
}

/// Prices one option. `otype` ≥ 0.5 means put, else call.
pub fn price_option(
    spot: f32,
    strike: f32,
    rate: f32,
    volatility: f32,
    time: f32,
    otype: f32,
) -> f32 {
    let sqrt_t = time.sqrt();
    let d1 = ((spot / strike).ln() + (rate + 0.5 * volatility * volatility) * time)
        / (volatility * sqrt_t);
    let d2 = d1 - volatility * sqrt_t;
    let discount = (-rate * time).exp();
    if otype >= 0.5 {
        // Put.
        strike * discount * cndf(-d2) - spot * cndf(-d1)
    } else {
        // Call.
        spot * cndf(d1) - strike * discount * cndf(d2)
    }
}

impl Benchmark for BlackScholes {
    fn name(&self) -> &'static str {
        "blackscholes"
    }

    fn domain(&self) -> &'static str {
        "Financial Analysis"
    }

    fn description(&self) -> &'static str {
        "Mathematical model of a financial market"
    }

    fn input_dim(&self) -> usize {
        6
    }

    fn output_dim(&self) -> usize {
        1
    }

    fn npu_topology(&self) -> Topology {
        Topology::new(&[6, 8, 8, 1]).expect("static topology is valid")
    }

    fn quality_metric(&self) -> QualityMetric {
        QualityMetric::AvgRelativeError
    }

    fn precise(&self, input: &[f32], output: &mut Vec<f32>) {
        output.clear();
        output.push(price_option(
            input[0], input[1], input[2], input[3], input[4], input[5],
        ));
    }

    fn dataset(&self, seed: u64, scale: DatasetScale) -> Dataset {
        let count = match scale {
            DatasetScale::Smoke => 64,
            DatasetScale::Full => 2048,
        };
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x00B1_AC5C_01E5_u64));
        let mut flat = Vec::with_capacity(count * 6);
        for _ in 0..count {
            let spot: f32 = rng.gen_range(20.0..120.0);
            // Strikes near the money, like the PARSEC input distribution;
            // deep out-of-the-money options price near zero and make the
            // relative-error metric degenerate.
            let strike: f32 = spot * rng.gen_range(0.85..1.15);
            let rate: f32 = rng.gen_range(0.01..0.1);
            let volatility: f32 = rng.gen_range(0.15..0.55);
            let time: f32 = rng.gen_range(0.25..1.5);
            let otype: f32 = if rng.gen_bool(0.5) { 1.0 } else { 0.0 };
            flat.extend_from_slice(&[spot, strike, rate, volatility, time, otype]);
        }
        Dataset::from_flat(seed, 6, flat)
    }

    fn run_application(&self, _dataset: &Dataset, outputs: &OutputBuffer) -> Vec<f64> {
        outputs.as_flat().iter().map(|&v| f64::from(v)).collect()
    }

    fn paper_full_approx_error(&self) -> f64 {
        0.0603
    }

    fn profile(&self) -> WorkloadProfile {
        // ln, exp, sqrt, division and two CNDF evaluations: a few hundred
        // cycles on the modeled out-of-order core.
        WorkloadProfile {
            kernel_cycles: 400,
            non_kernel_fraction: 0.05,
        }
    }

    fn npu_training_epochs(&self) -> usize {
        250
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmark::run_precise;

    #[test]
    fn call_price_known_value() {
        // S=100, K=100, r=5%, sigma=20%, T=1y call ≈ 10.45.
        let price = price_option(100.0, 100.0, 0.05, 0.2, 1.0, 0.0);
        assert!((price - 10.45).abs() < 0.05, "got {price}");
    }

    #[test]
    fn put_call_parity() {
        // C - P = S - K e^{-rT}
        let (s, k, r, v, t) = (95.0f32, 105.0f32, 0.04f32, 0.3f32, 0.75f32);
        let call = price_option(s, k, r, v, t, 0.0);
        let put = price_option(s, k, r, v, t, 1.0);
        let parity = s - k * (-r * t).exp();
        assert!((call - put - parity).abs() < 0.02, "{call} {put} {parity}");
    }

    #[test]
    fn prices_are_nonnegative() {
        let b = BlackScholes;
        let ds = b.dataset(11, DatasetScale::Smoke);
        let out = run_precise(&b, &ds);
        assert!(out.iter().all(|o| o[0] >= -1e-3));
    }

    #[test]
    fn deep_in_the_money_call_near_intrinsic() {
        let price = price_option(200.0, 100.0, 0.05, 0.2, 0.5, 0.0);
        let intrinsic = 200.0 - 100.0 * (-0.05f32 * 0.5).exp();
        assert!((price - intrinsic).abs() < 0.5);
    }

    #[test]
    fn dataset_shapes() {
        let b = BlackScholes;
        let ds = b.dataset(1, DatasetScale::Full);
        assert_eq!(ds.invocation_count(), 2048);
        assert_eq!(ds.input_dim(), 6);
        assert_ne!(
            b.dataset(1, DatasetScale::Full).input(0),
            b.dataset(2, DatasetScale::Full).input(0)
        );
    }

    #[test]
    fn application_output_is_price_batch() {
        let b = BlackScholes;
        let ds = b.dataset(5, DatasetScale::Smoke);
        let out = run_precise(&b, &ds);
        let finalized = b.run_application(&ds, &out);
        assert_eq!(finalized.len(), ds.invocation_count());
    }

    #[test]
    fn cndf_is_a_cdf() {
        assert!((cndf(0.0) - 0.5).abs() < 1e-6);
        assert!(cndf(6.0) > 0.999);
        assert!(cndf(-6.0) < 0.001);
        assert!((cndf(1.0) - 0.8413).abs() < 1e-3);
    }
}
