//! `inversek2j` — inverse kinematics for a 2-joint robotic arm.
//!
//! The target function maps an end-effector position `(x, y)` to the two
//! joint angles `(θ1, θ2)` that reach it. Paper Table I: topology `2→8→2`,
//! avg. relative error metric, 7.50% error under full approximation.

use crate::benchmark::{Benchmark, WorkloadProfile};
use crate::dataset::{Dataset, DatasetScale, OutputBuffer};
use crate::quality::QualityMetric;
use mithra_npu::topology::Topology;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Upper-arm length of the modeled 2-joint arm.
pub const L1: f32 = 0.5;
/// Forearm length of the modeled 2-joint arm.
pub const L2: f32 = 0.5;

/// The `inversek2j` workload.
#[derive(Debug, Clone, Copy, Default)]
pub struct InverseK2J;

/// Computes the joint angles reaching `(x, y)` (elbow-down solution).
///
/// Positions outside the arm's annulus are clamped onto it first, so the
/// function is total — matching the AxBench kernel's behaviour on its
/// pre-validated inputs.
pub fn inverse_kinematics(x: f32, y: f32) -> (f32, f32) {
    let r2 = x * x + y * y;
    let cos_t2 = ((r2 - L1 * L1 - L2 * L2) / (2.0 * L1 * L2)).clamp(-1.0, 1.0);
    let theta2 = cos_t2.acos();
    let k1 = L1 + L2 * cos_t2;
    let k2 = L2 * theta2.sin();
    let theta1 = y.atan2(x) - k2.atan2(k1);
    (theta1, theta2)
}

/// Forward kinematics — used by the generator to produce reachable targets
/// and by tests to verify the inverse.
pub fn forward_kinematics(theta1: f32, theta2: f32) -> (f32, f32) {
    let x = L1 * theta1.cos() + L2 * (theta1 + theta2).cos();
    let y = L1 * theta1.sin() + L2 * (theta1 + theta2).sin();
    (x, y)
}

impl Benchmark for InverseK2J {
    fn name(&self) -> &'static str {
        "inversek2j"
    }

    fn domain(&self) -> &'static str {
        "Robotics"
    }

    fn description(&self) -> &'static str {
        "Inverse kinematics for 2-joint arm"
    }

    fn input_dim(&self) -> usize {
        2
    }

    fn output_dim(&self) -> usize {
        2
    }

    fn npu_topology(&self) -> Topology {
        Topology::new(&[2, 8, 2]).expect("static topology is valid")
    }

    fn quality_metric(&self) -> QualityMetric {
        QualityMetric::AvgRelativeError
    }

    fn precise(&self, input: &[f32], output: &mut Vec<f32>) {
        let (t1, t2) = inverse_kinematics(input[0], input[1]);
        output.clear();
        output.push(t1);
        output.push(t2);
    }

    fn dataset(&self, seed: u64, scale: DatasetScale) -> Dataset {
        let count = match scale {
            DatasetScale::Smoke => 64,
            DatasetScale::Full => 2048,
        };
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x14B2_0C01));
        let mut flat = Vec::with_capacity(count * 2);
        for _ in 0..count {
            // Sample joint space, project to workspace: every target is
            // reachable, like AxBench's pre-generated coordinate files.
            let t1: f32 = rng.gen_range(0.1..(std::f32::consts::PI / 2.0));
            let t2: f32 = rng.gen_range(0.1..(std::f32::consts::PI / 2.0));
            let (x, y) = forward_kinematics(t1, t2);
            flat.extend_from_slice(&[x, y]);
        }
        Dataset::from_flat(seed, 2, flat)
    }

    fn run_application(&self, _dataset: &Dataset, outputs: &OutputBuffer) -> Vec<f64> {
        outputs.as_flat().iter().map(|&v| f64::from(v)).collect()
    }

    fn paper_full_approx_error(&self) -> f64 {
        0.075
    }

    fn profile(&self) -> WorkloadProfile {
        // acos, asin/atan2 twice, sqrt: trig-heavy — the workload where
        // the NPU shines (paper reports the largest gains here).
        WorkloadProfile {
            kernel_cycles: 350,
            non_kernel_fraction: 0.04,
        }
    }

    fn npu_training_epochs(&self) -> usize {
        120
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inverse_matches_forward() {
        for &(t1, t2) in &[(0.3f32, 0.8f32), (0.9, 0.4), (0.2, 1.4), (1.2, 0.15)] {
            let (x, y) = forward_kinematics(t1, t2);
            let (r1, r2) = inverse_kinematics(x, y);
            let (x2, y2) = forward_kinematics(r1, r2);
            assert!(
                (x - x2).abs() < 1e-4 && (y - y2).abs() < 1e-4,
                "({t1},{t2}) -> ({x},{y}) -> ({r1},{r2}) -> ({x2},{y2})"
            );
        }
    }

    #[test]
    fn unreachable_point_is_clamped_not_nan() {
        let (t1, t2) = inverse_kinematics(5.0, 5.0);
        assert!(t1.is_finite() && t2.is_finite());
        assert_eq!(t2, 0.0); // fully extended
    }

    #[test]
    fn generated_targets_are_reachable() {
        let b = InverseK2J;
        let ds = b.dataset(3, DatasetScale::Smoke);
        for input in ds.iter() {
            let r = (input[0] * input[0] + input[1] * input[1]).sqrt();
            assert!(r <= L1 + L2 + 1e-5, "target outside workspace: {input:?}");
        }
    }

    #[test]
    fn precise_output_dim() {
        let b = InverseK2J;
        let mut out = Vec::new();
        b.precise(&[0.5, 0.5], &mut out);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn datasets_are_distinct_by_seed() {
        let b = InverseK2J;
        assert_ne!(
            b.dataset(10, DatasetScale::Smoke),
            b.dataset(11, DatasetScale::Smoke)
        );
    }
}
