//! The assembled suite: the paper's six workloads (Table I) plus the
//! post-paper extension roster.

use crate::benchmark::Benchmark;
use crate::blackscholes::BlackScholes;
use crate::fft::Fft;
use crate::inversek2j::InverseK2J;
use crate::jmeint::Jmeint;
use crate::jpeg::Jpeg;
use crate::kmeans::Kmeans;
use crate::raytrace::Raytrace;
use crate::sobel::Sobel;

/// Returns the six paper benchmarks in Table I order.
///
/// # Example
///
/// ```
/// let suite = mithra_axbench::suite::all();
/// let names: Vec<&str> = suite.iter().map(|b| b.name()).collect();
/// assert_eq!(
///     names,
///     ["blackscholes", "fft", "inversek2j", "jmeint", "jpeg", "sobel"]
/// );
/// ```
pub fn all() -> Vec<Box<dyn Benchmark>> {
    vec![
        Box::new(BlackScholes),
        Box::new(Fft),
        Box::new(InverseK2J),
        Box::new(Jmeint),
        Box::new(Jpeg),
        Box::new(Sobel),
    ]
}

/// The extended roster: the paper's six plus the post-paper workloads
/// (`kmeans`, `raytrace`). [`all`] stays pinned to Table I — every
/// published figure and the byte-identical `results/*.txt` pins depend
/// on the six-member default — so experiments opt into the extension
/// explicitly, either through this roster or `--bench kmeans,raytrace`.
pub fn extended() -> Vec<Box<dyn Benchmark>> {
    let mut v = all();
    v.push(Box::new(Kmeans));
    v.push(Box::new(Raytrace));
    v
}

/// Looks a benchmark up by name — Table I members and the extended
/// workloads alike.
pub fn by_name(name: &str) -> Option<Box<dyn Benchmark>> {
    match name {
        "blackscholes" => Some(Box::new(BlackScholes)),
        "fft" => Some(Box::new(Fft)),
        "inversek2j" => Some(Box::new(InverseK2J)),
        "jmeint" => Some(Box::new(Jmeint)),
        "jpeg" => Some(Box::new(Jpeg)),
        "kmeans" => Some(Box::new(Kmeans)),
        "raytrace" => Some(Box::new(Raytrace)),
        "sobel" => Some(Box::new(Sobel)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmark::run_precise;
    use crate::dataset::DatasetScale;

    #[test]
    fn suite_has_six_benchmarks() {
        assert_eq!(all().len(), 6);
    }

    #[test]
    fn extended_roster_appends_new_workloads() {
        let names: Vec<&str> = extended().iter().map(|b| b.name()).collect();
        assert_eq!(
            &names[..6],
            [
                "blackscholes",
                "fft",
                "inversek2j",
                "jmeint",
                "jpeg",
                "sobel"
            ]
        );
        assert_eq!(&names[6..], ["kmeans", "raytrace"]);
    }

    #[test]
    fn lookup_by_name_round_trips() {
        for bench in extended() {
            let found = by_name(bench.name()).expect("suite member must be findable");
            assert_eq!(found.name(), bench.name());
        }
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn topologies_match_io_dims() {
        for bench in extended() {
            let t = bench.npu_topology();
            assert_eq!(t.inputs(), bench.input_dim(), "{}", bench.name());
            assert_eq!(t.outputs(), bench.output_dim(), "{}", bench.name());
        }
    }

    #[test]
    fn precise_runs_fill_output_dim() {
        for bench in extended() {
            let ds = bench.dataset(1, DatasetScale::Smoke);
            let mut out = Vec::new();
            bench.precise(ds.input(0), &mut out);
            assert_eq!(out.len(), bench.output_dim(), "{}", bench.name());
            assert!(out.iter().all(|v| v.is_finite()), "{}", bench.name());
        }
    }

    #[test]
    fn datasets_deterministic_and_distinct() {
        for bench in extended() {
            let a = bench.dataset(5, DatasetScale::Smoke);
            let b = bench.dataset(5, DatasetScale::Smoke);
            let c = bench.dataset(6, DatasetScale::Smoke);
            assert_eq!(a, b, "{} not deterministic", bench.name());
            // fft datasets carry context in the seed, not the inputs.
            if bench.name() != "fft" {
                assert_ne!(a, c, "{} seeds collide", bench.name());
            }
        }
    }

    #[test]
    fn perfect_outputs_give_zero_quality_loss() {
        for bench in extended() {
            let ds = bench.dataset(2, DatasetScale::Smoke);
            let out = run_precise(bench.as_ref(), &ds);
            let fin_a = bench.run_application(&ds, &out);
            let fin_b = bench.run_application(&ds, &out);
            let loss = bench.quality_metric().quality_loss(&fin_a, &fin_b);
            assert_eq!(loss, 0.0, "{}", bench.name());
        }
    }

    #[test]
    fn profiles_are_sane() {
        for bench in extended() {
            let p = bench.profile();
            assert!(p.kernel_cycles > 0, "{}", bench.name());
            assert!(
                (0.0..1.0).contains(&p.non_kernel_fraction),
                "{}",
                bench.name()
            );
        }
    }

    #[test]
    fn paper_error_levels_in_published_range() {
        // Table I: 6.03% .. 17.69%. Only the paper's six have a
        // published level; the extended workloads carry measured values.
        for bench in all() {
            let e = bench.paper_full_approx_error();
            assert!((0.06..=0.177).contains(&e), "{}: {e}", bench.name());
        }
        for bench in extended().into_iter().skip(6) {
            let e = bench.paper_full_approx_error();
            assert!((0.0..=1.0).contains(&e), "{}: {e}", bench.name());
        }
    }
}
