//! PGM (portable graymap) export — tangible artifacts from the image
//! workloads.
//!
//! The sobel and jpeg examples produce edge maps and reconstructed
//! images; writing them as binary PGM (`P5`) files lets a user actually
//! look at what a 5% "image diff" means.

use crate::image::GrayImage;
use std::io::{self, Write};
use std::path::Path;

/// Encodes an image as a binary PGM (`P5`) byte stream.
pub fn encode(image: &GrayImage) -> Vec<u8> {
    let mut out = Vec::with_capacity(32 + image.width() * image.height());
    out.extend_from_slice(format!("P5\n{} {}\n255\n", image.width(), image.height()).as_bytes());
    out.extend(
        image
            .pixels()
            .iter()
            .map(|&p| p.clamp(0.0, 255.0).round() as u8),
    );
    out
}

/// Writes an image to a `.pgm` file.
///
/// # Errors
///
/// Propagates I/O errors from file creation and writing.
pub fn write_file(image: &GrayImage, path: impl AsRef<Path>) -> io::Result<()> {
    let mut file = std::fs::File::create(path)?;
    file.write_all(&encode(image))
}

/// Parses a binary PGM (`P5`) byte stream back into an image.
///
/// Supports the subset [`encode`] emits: `P5`, single whitespace-separated
/// header fields, `maxval` 255.
///
/// # Errors
///
/// Returns [`io::Error`] with `InvalidData` for malformed streams.
pub fn decode(bytes: &[u8]) -> io::Result<GrayImage> {
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    // Parse the three header tokens after the magic.
    let header_end = {
        let mut fields = 0;
        let mut i = 2; // skip "P5"
        loop {
            if i >= bytes.len() {
                return Err(bad("truncated PGM header"));
            }
            // Skip whitespace, then a token.
            while i < bytes.len() && bytes[i].is_ascii_whitespace() {
                i += 1;
            }
            let start = i;
            while i < bytes.len() && !bytes[i].is_ascii_whitespace() {
                i += 1;
            }
            if i == start {
                return Err(bad("truncated PGM header"));
            }
            fields += 1;
            if fields == 3 {
                break i + 1; // single whitespace after maxval
            }
        }
    };
    if &bytes[..2] != b"P5" {
        return Err(bad("not a P5 PGM"));
    }
    let header =
        std::str::from_utf8(&bytes[2..header_end - 1]).map_err(|_| bad("non-UTF8 PGM header"))?;
    let mut tokens = header.split_ascii_whitespace();
    let width: usize = tokens
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| bad("bad width"))?;
    let height: usize = tokens
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| bad("bad height"))?;
    let maxval: usize = tokens
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| bad("bad maxval"))?;
    if maxval != 255 {
        return Err(bad("only maxval 255 is supported"));
    }
    let data = &bytes[header_end..];
    if data.len() < width * height {
        return Err(bad("truncated PGM payload"));
    }
    let pixels = data[..width * height]
        .iter()
        .map(|&b| f32::from(b))
        .collect();
    Ok(GrayImage::from_pixels(width, height, pixels))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let img = GrayImage::synthetic(24, 16, 7);
        let decoded = decode(&encode(&img)).unwrap();
        assert_eq!(decoded.width(), 24);
        assert_eq!(decoded.height(), 16);
        for (a, b) in img.pixels().iter().zip(decoded.pixels()) {
            assert!((a.round() - b).abs() < 1.0);
        }
    }

    #[test]
    fn header_format() {
        let img = GrayImage::new(3, 2);
        let bytes = encode(&img);
        assert!(bytes.starts_with(b"P5\n3 2\n255\n"));
        assert_eq!(bytes.len(), b"P5\n3 2\n255\n".len() + 6);
    }

    #[test]
    fn malformed_streams_rejected() {
        assert!(decode(b"").is_err());
        assert!(decode(b"P6\n2 2\n255\n0000").is_err());
        assert!(decode(b"P5\n2 2\n255\n0").is_err()); // truncated payload
        assert!(decode(b"P5\n2 2\n65535\n0000").is_err()); // 16-bit
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("mithra_pgm_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test.pgm");
        let img = GrayImage::synthetic(8, 8, 1);
        write_file(&img, &path).unwrap();
        let back = decode(&std::fs::read(&path).unwrap()).unwrap();
        assert_eq!(back.width(), 8);
        let _ = std::fs::remove_file(&path);
    }
}
