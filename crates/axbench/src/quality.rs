//! Application-specific quality metrics (paper Table I).
//!
//! Quality loss compares the *final application output* of an approximated
//! run against the fully precise run. Three metrics cover the suite:
//! average relative error (blackscholes, fft, inversek2j), miss rate
//! (jmeint) and image diff (jpeg, sobel).

use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// A quality comparison that cannot be scored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum QualityError {
    /// The precise and approximate outputs have different lengths.
    LengthMismatch {
        /// Elements in the precise output.
        precise: usize,
        /// Elements in the approximate output.
        approx: usize,
    },
    /// Both outputs are empty — there is nothing to score.
    Empty,
}

impl fmt::Display for QualityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QualityError::LengthMismatch { precise, approx } => write!(
                f,
                "quality comparison requires equal-length outputs \
                 (precise {precise}, approx {approx})"
            ),
            QualityError::Empty => f.write_str("cannot score empty outputs"),
        }
    }
}

impl Error for QualityError {}

/// The quality metric a benchmark reports (paper Table I column
/// "Application Error Metric").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum QualityMetric {
    /// Mean over elements of `|approx − precise| / max(|precise|, ε)`,
    /// each element's relative error capped at 1.
    AvgRelativeError,
    /// Fraction of binary decisions that differ.
    MissRate,
    /// Mean absolute pixel difference, normalized to the 0–255 range.
    ImageDiff,
    /// Fraction of discrete labels (cluster assignments) that differ —
    /// the k-ary generalization of [`QualityMetric::MissRate`] the
    /// kmeans workload reports. Labels compare by `round()`, so any
    /// perturbation below half a label is free and anything across a
    /// label boundary is a full miss.
    ClusterMismatch,
}

impl fmt::Display for QualityMetric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            QualityMetric::AvgRelativeError => "Avg. Relative Error",
            QualityMetric::MissRate => "Miss Rate",
            QualityMetric::ImageDiff => "Image Diff",
            QualityMetric::ClusterMismatch => "Cluster Mismatch",
        };
        f.write_str(name)
    }
}

/// Floor on `|precise|` when forming relative errors, so near-zero
/// reference elements do not explode the metric.
const REL_ERR_FLOOR: f64 = 0.01;

impl QualityMetric {
    /// Quality loss in `[0, 1]` between the precise and approximate final
    /// application outputs.
    ///
    /// A NaN element on either side scores the maximal elementwise error
    /// (1.0 — or a miss for [`QualityMetric::MissRate`]): a corrupted
    /// accelerator that emits NaN must look *worse* than any finite wrong
    /// answer, never silently drop out of the average.
    ///
    /// # Panics
    ///
    /// Panics if the two slices have different lengths or are empty — the
    /// harness always compares like with like. Fault-tolerant callers use
    /// [`QualityMetric::try_quality_loss`].
    pub fn quality_loss(&self, precise: &[f64], approx: &[f64]) -> f64 {
        assert_eq!(
            precise.len(),
            approx.len(),
            "quality comparison requires equal-length outputs"
        );
        assert!(!precise.is_empty(), "cannot score empty outputs");
        let sum: f64 = precise
            .iter()
            .zip(approx)
            .map(|(&p, &a)| self.element_error(p, a))
            .sum();
        sum / precise.len() as f64
    }

    /// Fallible form of [`QualityMetric::quality_loss`] for runtime
    /// decision paths that must not panic.
    ///
    /// # Errors
    ///
    /// Returns [`QualityError`] on mismatched lengths or empty outputs.
    pub fn try_quality_loss(&self, precise: &[f64], approx: &[f64]) -> Result<f64, QualityError> {
        if precise.len() != approx.len() {
            return Err(QualityError::LengthMismatch {
                precise: precise.len(),
                approx: approx.len(),
            });
        }
        if precise.is_empty() {
            return Err(QualityError::Empty);
        }
        Ok(self.quality_loss(precise, approx))
    }

    /// Per-element error contributions — the sample Figure 1 plots as a
    /// CDF ("only a small fraction of these elements see large errors").
    pub fn element_errors(&self, precise: &[f64], approx: &[f64]) -> Vec<f64> {
        assert_eq!(precise.len(), approx.len());
        precise
            .iter()
            .zip(approx)
            .map(|(&p, &a)| self.element_error(p, a))
            .collect()
    }

    /// One element's error contribution in `[0, 1]`. NaN anywhere scores
    /// the maximum.
    fn element_error(&self, precise: f64, approx: f64) -> f64 {
        if precise.is_nan() || approx.is_nan() {
            return 1.0;
        }
        match self {
            QualityMetric::AvgRelativeError => relative_error(precise, approx),
            QualityMetric::MissRate => {
                if (precise >= 0.5) != (approx >= 0.5) {
                    1.0
                } else {
                    0.0
                }
            }
            QualityMetric::ImageDiff => ((approx - precise).abs() / 255.0).min(1.0),
            QualityMetric::ClusterMismatch => {
                if precise.round() == approx.round() {
                    0.0
                } else {
                    1.0
                }
            }
        }
    }
}

fn relative_error(precise: f64, approx: f64) -> f64 {
    ((approx - precise).abs() / precise.abs().max(REL_ERR_FLOOR)).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_outputs_have_zero_loss() {
        let v = [1.0, 2.0, 3.0];
        for m in [
            QualityMetric::AvgRelativeError,
            QualityMetric::MissRate,
            QualityMetric::ImageDiff,
            QualityMetric::ClusterMismatch,
        ] {
            assert_eq!(m.quality_loss(&v, &v), 0.0, "{m}");
        }
    }

    #[test]
    fn avg_relative_error_basic() {
        // 10% error on one of two elements -> 5% average.
        let loss = QualityMetric::AvgRelativeError.quality_loss(&[1.0, 1.0], &[1.1, 1.0]);
        assert!((loss - 0.05).abs() < 1e-9, "got {loss}");
    }

    #[test]
    fn relative_error_capped_at_one() {
        let loss = QualityMetric::AvgRelativeError.quality_loss(&[1.0], &[100.0]);
        assert_eq!(loss, 1.0);
    }

    #[test]
    fn relative_error_floored_reference() {
        // precise ~ 0: the floor keeps this finite.
        let loss = QualityMetric::AvgRelativeError.quality_loss(&[0.0], &[0.005]);
        assert!((loss - 0.5).abs() < 1e-9);
    }

    #[test]
    fn miss_rate_counts_flips() {
        let p = [0.0, 1.0, 1.0, 0.0];
        let a = [0.0, 0.0, 1.0, 1.0];
        assert_eq!(QualityMetric::MissRate.quality_loss(&p, &a), 0.5);
    }

    #[test]
    fn image_diff_normalized() {
        // 25.5 grey-level error on every pixel -> 10%.
        let p = [100.0, 200.0];
        let a = [125.5, 174.5];
        let loss = QualityMetric::ImageDiff.quality_loss(&p, &a);
        assert!((loss - 0.1).abs() < 1e-9);
    }

    #[test]
    fn cluster_mismatch_counts_label_flips() {
        // Two of four labels flip across a rounding boundary.
        let p = [0.0, 1.0, 2.0, 3.0];
        let a = [0.2, 1.6, 2.0, 2.4];
        assert_eq!(QualityMetric::ClusterMismatch.quality_loss(&p, &a), 0.5);
    }

    #[test]
    fn cluster_mismatch_ignores_sub_label_noise() {
        let p = [0.0, 1.0, 2.0];
        let a = [0.4, 0.6, 2.4];
        assert_eq!(QualityMetric::ClusterMismatch.quality_loss(&p, &a), 0.0);
    }

    #[test]
    fn element_errors_align_with_loss() {
        let p = [1.0, 2.0, 4.0];
        let a = [1.1, 2.0, 4.4];
        let errs = QualityMetric::AvgRelativeError.element_errors(&p, &a);
        let mean = errs.iter().sum::<f64>() / errs.len() as f64;
        let loss = QualityMetric::AvgRelativeError.quality_loss(&p, &a);
        assert!((mean - loss).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn mismatched_lengths_panic() {
        let _ = QualityMetric::MissRate.quality_loss(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn nan_scores_maximal_error_on_every_metric() {
        for m in [
            QualityMetric::AvgRelativeError,
            QualityMetric::MissRate,
            QualityMetric::ImageDiff,
            QualityMetric::ClusterMismatch,
        ] {
            // NaN in the approximate output.
            assert_eq!(m.quality_loss(&[1.0], &[f64::NAN]), 1.0, "{m} approx NaN");
            // NaN in the precise reference.
            assert_eq!(m.quality_loss(&[f64::NAN], &[1.0]), 1.0, "{m} precise NaN");
            // NaN on both sides is still a full miss, not a match.
            assert_eq!(
                m.quality_loss(&[f64::NAN], &[f64::NAN]),
                1.0,
                "{m} both NaN"
            );
        }
    }

    #[test]
    fn nan_element_dilutes_but_never_vanishes() {
        // One NaN among three clean elements contributes exactly 1/3.
        let p = [1.0, 1.0, 1.0];
        let a = [1.0, f64::NAN, 1.0];
        let loss = QualityMetric::AvgRelativeError.quality_loss(&p, &a);
        assert!((loss - 1.0 / 3.0).abs() < 1e-12, "got {loss}");
        let errs = QualityMetric::AvgRelativeError.element_errors(&p, &a);
        assert_eq!(errs, vec![0.0, 1.0, 0.0]);
    }

    #[test]
    fn infinite_elements_cap_at_one() {
        let loss = QualityMetric::ImageDiff.quality_loss(&[0.0], &[f64::INFINITY]);
        assert_eq!(loss, 1.0);
    }

    #[test]
    fn try_quality_loss_reports_errors_instead_of_panicking() {
        let m = QualityMetric::AvgRelativeError;
        assert_eq!(
            m.try_quality_loss(&[1.0], &[1.0, 2.0]),
            Err(QualityError::LengthMismatch {
                precise: 1,
                approx: 2
            })
        );
        assert_eq!(m.try_quality_loss(&[], &[]), Err(QualityError::Empty));
        let ok = m.try_quality_loss(&[1.0, 1.0], &[1.1, 1.0]).unwrap();
        assert_eq!(ok, m.quality_loss(&[1.0, 1.0], &[1.1, 1.0]));
    }

    #[test]
    fn quality_error_display() {
        let e = QualityError::LengthMismatch {
            precise: 3,
            approx: 5,
        };
        assert!(e.to_string().contains("equal-length"));
        assert!(QualityError::Empty.to_string().contains("empty"));
    }

    #[test]
    fn display_names_match_paper() {
        assert_eq!(
            QualityMetric::AvgRelativeError.to_string(),
            "Avg. Relative Error"
        );
        assert_eq!(QualityMetric::MissRate.to_string(), "Miss Rate");
        assert_eq!(QualityMetric::ImageDiff.to_string(), "Image Diff");
        assert_eq!(
            QualityMetric::ClusterMismatch.to_string(),
            "Cluster Mismatch"
        );
    }
}
