//! Synthetic grayscale images for the image-processing workloads.
//!
//! The paper feeds sobel and jpeg 512×512 images; this reproduction
//! generates seeded synthetic images (a mix of smooth gradients, blobs and
//! edges) so 500 distinct "photographs" are available without shipping
//! data. The generator intentionally produces both smooth regions (easy
//! for the NPU) and sharp edges (where approximation errors concentrate) —
//! the structure MITHRA's classifiers must learn to separate.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A grayscale image with `f32` pixels in `[0, 255]`, row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct GrayImage {
    width: usize,
    height: usize,
    pixels: Vec<f32>,
}

impl GrayImage {
    /// Creates an all-black image.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be positive");
        Self {
            width,
            height,
            pixels: vec![0.0; width * height],
        }
    }

    /// Builds an image from existing row-major pixel storage.
    ///
    /// # Panics
    ///
    /// Panics if `pixels.len() != width * height`.
    pub fn from_pixels(width: usize, height: usize, pixels: Vec<f32>) -> Self {
        assert_eq!(pixels.len(), width * height, "pixel storage size mismatch");
        Self {
            width,
            height,
            pixels,
        }
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Pixel at `(x, y)`; coordinates are clamped to the border (the
    /// boundary handling both sobel and block DCT use).
    pub fn get_clamped(&self, x: isize, y: isize) -> f32 {
        let x = x.clamp(0, self.width as isize - 1) as usize;
        let y = y.clamp(0, self.height as isize - 1) as usize;
        self.pixels[y * self.width + x]
    }

    /// Sets the pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    pub fn set(&mut self, x: usize, y: usize, value: f32) {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.pixels[y * self.width + x] = value;
    }

    /// Row-major pixel storage.
    pub fn pixels(&self) -> &[f32] {
        &self.pixels
    }

    /// Generates a seeded synthetic image: a base gradient plus random
    /// soft blobs, sinusoidal texture and a few hard-edged rectangles,
    /// clamped to `[0, 255]`.
    pub fn synthetic(width: usize, height: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut img = GrayImage::new(width, height);

        // Base: a tilted linear gradient.
        let gx: f32 = rng.gen_range(-0.8..0.8);
        let gy: f32 = rng.gen_range(-0.8..0.8);
        let base: f32 = rng.gen_range(60.0..180.0);

        // Soft Gaussian blobs.
        let blob_count = rng.gen_range(3..8);
        let blobs: Vec<(f32, f32, f32, f32)> = (0..blob_count)
            .map(|_| {
                (
                    rng.gen_range(0.0..width as f32),
                    rng.gen_range(0.0..height as f32),
                    rng.gen_range(2.0..(width as f32 / 2.0).max(4.0)),
                    rng.gen_range(-90.0..90.0),
                )
            })
            .collect();

        // Sinusoidal texture.
        let fx: f32 = rng.gen_range(0.05..0.4);
        let fy: f32 = rng.gen_range(0.05..0.4);
        let amp: f32 = rng.gen_range(2.0..15.0);

        for y in 0..height {
            for x in 0..width {
                let mut v = base + gx * x as f32 + gy * y as f32;
                for &(bx, by, sigma, a) in &blobs {
                    let dx = x as f32 - bx;
                    let dy = y as f32 - by;
                    v += a * (-(dx * dx + dy * dy) / (2.0 * sigma * sigma)).exp();
                }
                v += amp * (fx * x as f32).sin() * (fy * y as f32).cos();
                img.set(x, y, v.clamp(0.0, 255.0));
            }
        }

        // Hard-edged rectangles: the high-gradient content.
        let rect_count = rng.gen_range(1..4);
        for _ in 0..rect_count {
            let rw = rng
                .gen_range(width / 8..(width / 2).max(width / 8 + 1))
                .max(1);
            let rh = rng
                .gen_range(height / 8..(height / 2).max(height / 8 + 1))
                .max(1);
            let rx = rng.gen_range(0..width.saturating_sub(rw).max(1));
            let ry = rng.gen_range(0..height.saturating_sub(rh).max(1));
            let level: f32 = rng.gen_range(0.0..255.0);
            let alpha: f32 = rng.gen_range(0.5..1.0);
            for y in ry..(ry + rh).min(height) {
                for x in rx..(rx + rw).min(width) {
                    let old = img.get_clamped(x as isize, y as isize);
                    img.set(
                        x,
                        y,
                        (old * (1.0 - alpha) + level * alpha).clamp(0.0, 255.0),
                    );
                }
            }
        }
        img
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_is_deterministic() {
        let a = GrayImage::synthetic(32, 32, 5);
        let b = GrayImage::synthetic(32, 32, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = GrayImage::synthetic(32, 32, 1);
        let b = GrayImage::synthetic(32, 32, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn pixels_in_range() {
        let img = GrayImage::synthetic(48, 48, 99);
        assert!(img.pixels().iter().all(|&p| (0.0..=255.0).contains(&p)));
    }

    #[test]
    fn clamped_access_at_borders() {
        let mut img = GrayImage::new(4, 4);
        img.set(0, 0, 42.0);
        img.set(3, 3, 7.0);
        assert_eq!(img.get_clamped(-5, -5), 42.0);
        assert_eq!(img.get_clamped(10, 10), 7.0);
    }

    #[test]
    fn images_have_edges_and_smooth_regions() {
        // Gradient magnitude should span a wide range: near-zero in smooth
        // areas, large at rectangle borders.
        let img = GrayImage::synthetic(64, 64, 3);
        let mut max_grad = 0.0f32;
        let mut min_grad = f32::INFINITY;
        for y in 1..63 {
            for x in 1..63 {
                let gx = img.get_clamped(x + 1, y) - img.get_clamped(x - 1, y);
                let gy = img.get_clamped(x, y + 1) - img.get_clamped(x, y - 1);
                let g = (gx * gx + gy * gy).sqrt();
                max_grad = max_grad.max(g);
                min_grad = min_grad.min(g);
            }
        }
        assert!(max_grad > 50.0, "no strong edges ({max_grad})");
        assert!(min_grad < 5.0, "no smooth regions ({min_grad})");
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_size_panics() {
        let _ = GrayImage::new(0, 4);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn from_pixels_validates() {
        let _ = GrayImage::from_pixels(2, 2, vec![0.0; 3]);
    }
}
