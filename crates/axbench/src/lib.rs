//! An AxBench-style benchmark suite for approximate acceleration.
//!
//! The paper evaluates MITHRA on six AxBench applications (Table I):
//! `blackscholes`, `fft`, `inversek2j`, `jmeint`, `jpeg` and `sobel`. Each
//! application has
//!
//! * a **target function** — the hot, safe-to-approximate region the NPU
//!   replaces (e.g. the Black–Scholes pricing kernel, one 8×8 DCT block);
//! * a **dataset generator** — seeded synthetic inputs standing in for the
//!   paper's native inputs (PARSEC option batches, 512×512 images, …);
//! * an **application layer** — how per-invocation outputs combine into the
//!   final program output (the FFT's butterflies, JPEG's decode path);
//! * an **application-specific quality metric** — average relative error,
//!   miss rate, or image diff.
//!
//! The [`Benchmark`](benchmark::Benchmark) trait captures that shape; [`suite::all`] returns the
//! six paper workloads.
//!
//! # Example
//!
//! ```
//! use mithra_axbench::prelude::*;
//!
//! let bench = suite::by_name("sobel").expect("sobel is in the suite");
//! let ds = bench.dataset(42, DatasetScale::Smoke);
//! let mut out = Vec::new();
//! bench.precise(ds.input(0), &mut out);
//! assert_eq!(out.len(), bench.output_dim());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod benchmark;
pub mod blackscholes;
pub mod dataset;
pub mod fft;
pub mod image;
pub mod inversek2j;
pub mod jmeint;
pub mod jpeg;
pub mod kmeans;
pub mod pgm;
pub mod quality;
pub mod raytrace;
pub mod sobel;
pub mod suite;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use crate::benchmark::{Benchmark, WorkloadProfile};
    pub use crate::dataset::{Dataset, DatasetScale, DriftSpec, OutputBuffer};
    pub use crate::quality::{QualityError, QualityMetric};
    pub use crate::suite;
}
