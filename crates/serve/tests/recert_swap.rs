//! Closed-loop serving regressions: the shared re-certification trigger
//! and the epoch-versioned hot-swap path.
//!
//! Two properties matter here. First, per-worker forked watchdogs must
//! share **one** re-certification trigger per endpoint epoch — without
//! the shared compare-exchange, every shard that walks down to Fallback
//! would fire its own recert, racing N identical re-certifications for
//! one drift event. Second, a hot swap must never pause serving or tear
//! a batch: in-flight sub-batches finish on the epoch they started
//! under, later sub-batches route through the new operating point, and
//! the snapshot attributes served counts to the epoch that served them.

use mithra_axbench::benchmark::Benchmark;
use mithra_axbench::dataset::{DatasetScale, DriftSpec};
use mithra_axbench::suite;
use mithra_core::pipeline::{compile, CompileConfig, Compiled};
use mithra_core::profile::DatasetProfile;
use mithra_serve::{EndpointSpec, ServeConfig, ServeEngine, ServeError};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

fn compiled_sobel() -> Arc<Compiled> {
    static CACHE: OnceLock<Arc<Compiled>> = OnceLock::new();
    Arc::clone(CACHE.get_or_init(|| {
        let bench: Arc<dyn Benchmark> = suite::by_name("sobel").unwrap().into();
        Arc::new(compile(bench, &CompileConfig::smoke()).unwrap())
    }))
}

/// A dataset profile whose inputs drifted hard enough that the clean
/// certificate's watchdog must walk down to Fallback.
fn drifted_profile(compiled: &Compiled, seed: u64, scale: DatasetScale) -> DatasetProfile {
    let drift = DriftSpec {
        scale: 1.6,
        offset: 0.35,
        noise_std: 0.0,
        seed: 7,
    };
    let ds = compiled.function.dataset(seed, scale).drifted(&drift);
    DatasetProfile::collect(&compiled.function, ds)
}

fn engine_for(compiled: &Arc<Compiled>, profile: &DatasetProfile, workers: usize) -> ServeEngine {
    ServeEngine::start(
        vec![EndpointSpec {
            name: "sobel".into(),
            compiled: Arc::clone(compiled),
            profile: profile.clone(),
            routed: None,
        }],
        &ServeConfig {
            workers,
            batch: 4,
            watchdog_period: 1,
            ..ServeConfig::default()
        },
    )
    .unwrap()
}

/// Polls the live snapshot until the endpoint has drained `target`
/// submissions (fresh serves plus idempotent re-serves of known slots).
fn wait_drained(engine: &ServeEngine, target: u64) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let snapshot = engine.snapshot();
        let c = &snapshot.endpoints[0].counters;
        if c.served + c.duplicates >= target {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "engine did not drain {target} requests in time: {c:?}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Replays invocations `0..part` of the drifted stream until a shard
/// watchdog walks down to Fallback and raises the shared trigger.
///
/// A single smoke-sized pass admits too few shadow samples to walk the
/// Monitoring → Throttled → Fallback ladder (the drifted inputs mostly
/// land outside the table's trained buckets and are rejected), so the
/// driver re-submits the same prefix — re-serves of known slots count as
/// `duplicates`, not `served`, but still feed the shadow sampler, which
/// is exactly how sustained drifted traffic looks to the guard.
///
/// Returns the number of rounds driven.
fn drive_until_trigger(engine: &ServeEngine, part: usize, max_rounds: usize) -> usize {
    let mut drained = 0u64;
    for round in 1..=max_rounds {
        for i in 0..part {
            engine.submit_or_wait(0, i).unwrap();
        }
        drained += part as u64;
        wait_drained(engine, drained);
        if engine.recert_requested(0).unwrap().is_some() {
            return round;
        }
    }
    panic!("drift never raised the recert trigger in {max_rounds} rounds");
}

#[test]
fn forked_watchdogs_share_one_recert_trigger() {
    let compiled = compiled_sobel();
    let profile = drifted_profile(&compiled, 90_001, DatasetScale::Smoke);
    let n = profile.invocation_count();
    let engine = engine_for(&compiled, &profile, 4);
    drive_until_trigger(&engine, n, 30);
    // The drift tripped at least one shard into Fallback, and the shared
    // trigger latched the epoch it happened under.
    assert_eq!(
        engine.recert_requested(0).unwrap(),
        Some(0),
        "hard drift must raise the shared trigger for epoch 0"
    );
    let report = engine.finish().unwrap();
    let counters = &report.endpoints[0].counters;
    assert!(
        counters.watchdog.breaches > 0,
        "drift must breach the guard"
    );
    assert_eq!(
        counters.watchdog.recert_triggers, 1,
        "4 forked shard watchdogs must share one trigger, not race: {:?}",
        counters.watchdog
    );
    assert!(
        counters.watchdog.time_in_fallback > 0,
        "time-in-state must record the Fallback residence"
    );
    assert!(
        !counters.guard_log.is_empty(),
        "the transition log must record the walk down the ladder"
    );
    assert_eq!(counters.swaps, 0);
    assert_eq!(counters.epoch_served, vec![n as u64]);
}

#[test]
fn hot_swap_attributes_epochs_and_resumes_serving() {
    let compiled = compiled_sobel();
    let profile = drifted_profile(&compiled, 90_002, DatasetScale::Smoke);
    let n = profile.invocation_count();
    let half = n / 2;
    let engine = engine_for(&compiled, &profile, 2);

    // Phase 1: replay the first half under the compile-time certificate
    // until the drift walks a shard into Fallback and raises the trigger.
    let rounds = drive_until_trigger(&engine, half, 30);
    assert_eq!(engine.recert_requested(0).unwrap(), Some(0));

    // Hot-swap a "re-certified" operating point. A threshold of MAX
    // stands in for a successful re-certification against the drifted
    // distribution: no shadow sample can violate it, so the fresh epoch-1
    // watchdogs must stay in Monitoring and keep admitting.
    let epoch = engine
        .swap_operating_point(0, f32::MAX, compiled.table.clone(), None)
        .unwrap();
    assert_eq!(epoch, 1);
    assert_eq!(
        engine.recert_requested(0).unwrap(),
        None,
        "the swap must clear the shared trigger"
    );

    // Phase 2: the rest of the dataset serves under epoch 1 without the
    // engine ever stopping.
    for i in half..n {
        engine.submit_or_wait(0, i).unwrap();
    }
    wait_drained(&engine, (rounds * half + (n - half)) as u64);
    assert_eq!(
        engine.recert_requested(0).unwrap(),
        None,
        "the re-certified pair must not re-raise the trigger"
    );
    let report = engine.finish().unwrap();
    let counters = &report.endpoints[0].counters;
    assert_eq!(counters.swaps, 1);
    assert_eq!(
        counters.epoch_served,
        vec![half as u64, (n - half) as u64],
        "served counts must be attributed to the epoch that served them"
    );
    assert_eq!(counters.watchdog.recert_triggers, 1);
    let snapshot = report.snapshot();
    assert!(
        snapshot.consistency_errors().is_empty(),
        "{:?}",
        snapshot.consistency_errors()
    );
    let json = serde_json::to_string(&snapshot).unwrap();
    assert!(json.contains("\"epoch_served\""));
    assert!(json.contains("\"guard_log\""));
    assert!(json.contains("\"recert_triggers\""));
    assert!(
        report.endpoints[0].result.is_some(),
        "full coverage across a swap still folds a result"
    );
}

#[test]
fn swap_rejects_unknown_endpoints() {
    let compiled = compiled_sobel();
    let ds = compiled.function.dataset(90_003, DatasetScale::Smoke);
    let profile = DatasetProfile::collect(&compiled.function, ds);
    let engine = engine_for(&compiled, &profile, 1);
    let err = engine
        .swap_operating_point(5, 0.1, compiled.table.clone(), None)
        .unwrap_err();
    assert!(matches!(err, ServeError::UnknownEndpoint(5)));
    assert!(matches!(
        engine.recert_requested(5).unwrap_err(),
        ServeError::UnknownEndpoint(5)
    ));
    engine.finish().unwrap();
}
