//! Metrics-registry consistency: the latency histogram of every endpoint
//! snapshot must sum to exactly that endpoint's served counter, the
//! served/approx/fallback accounting must balance, and the registry merge
//! ([`EndpointCounters::absorb`]) must be associative — the shard fold
//! order a scheduler happens to pick can never change the exported
//! numbers.

use mithra_axbench::benchmark::Benchmark;
use mithra_axbench::dataset::DatasetScale;
use mithra_axbench::suite;
use mithra_core::pipeline::{compile, CompileConfig};
use mithra_core::profile::DatasetProfile;
use mithra_serve::metrics::{
    EndpointCounters, LatencyHistogram, WatchdogStats, LATENCY_BUCKET_BOUNDS,
};
use mithra_serve::{EndpointSpec, ServeConfig, ServeEngine};
use proptest::prelude::*;
use std::sync::Arc;

/// A served engine snapshot holds the structural invariants end-to-end:
/// per endpoint, histogram bucket sum == served and approx + fallback ==
/// served, across multi-worker sharded execution.
#[test]
fn snapshot_histogram_sum_equals_served_counter() {
    let bench: Arc<dyn Benchmark> = suite::by_name("sobel").unwrap().into();
    let compiled = Arc::new(compile(bench, &CompileConfig::smoke()).unwrap());
    let profile = DatasetProfile::collect(
        &compiled.function,
        compiled.function.dataset(42, DatasetScale::Smoke),
    );
    let invocations = profile.invocation_count();
    let engine = ServeEngine::start(
        vec![
            EndpointSpec {
                name: "sobel-a".into(),
                compiled: Arc::clone(&compiled),
                profile: profile.clone(),
                routed: None,
            },
            EndpointSpec {
                name: "sobel-b".into(),
                compiled: Arc::clone(&compiled),
                profile: profile.clone(),
                routed: None,
            },
        ],
        &ServeConfig {
            workers: 4,
            batch: 8,
            queue_depth: 64,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    // Interleave the two endpoints so sub-batches mix at the workers.
    for i in 0..invocations {
        engine.submit_or_wait(0, i).unwrap();
        engine.submit_or_wait(1, i).unwrap();
    }
    let report = engine.finish().unwrap();
    let snapshot = report.snapshot();

    assert_eq!(snapshot.endpoints.len(), 2);
    for endpoint in &snapshot.endpoints {
        let c = &endpoint.counters;
        assert_eq!(c.served, invocations as u64, "{}", endpoint.name);
        assert_eq!(
            c.latency.total(),
            c.served,
            "{}: histogram must sum to the served counter",
            endpoint.name
        );
        assert_eq!(
            c.approx + c.fallback,
            c.served,
            "{}: every served request ran exactly one path",
            endpoint.name
        );
        // The frozen latency percentiles must restate the histogram —
        // monotone and recomputable from the exported counts.
        assert_eq!(endpoint.p50_cycles, c.latency.percentile(0.50));
        assert_eq!(endpoint.p99_cycles, c.latency.percentile(0.99));
        assert_eq!(endpoint.p999_cycles, c.latency.percentile(0.999));
        assert!(endpoint.p50_cycles <= endpoint.p99_cycles);
        assert!(endpoint.p99_cycles <= endpoint.p999_cycles);
        assert!(
            endpoint.p50_cycles > 0,
            "{}: a served endpoint has a nonzero median",
            endpoint.name
        );
    }
    let errors = snapshot.consistency_errors();
    assert!(errors.is_empty(), "snapshot inconsistent: {errors:?}");
}

#[test]
fn consistency_errors_flag_planted_defects() {
    let mut c = EndpointCounters {
        served: 3,
        approx: 2,
        fallback: 1,
        ..EndpointCounters::default()
    };
    for _ in 0..3 {
        c.latency.record(100.0);
    }
    assert!(c.consistency_errors().is_empty());

    // Drop a histogram sample: the sum no longer matches served.
    c.latency.counts[1] -= 1;
    assert_eq!(c.consistency_errors().len(), 1);
    c.latency.counts[1] += 1;

    // Double-count an approximation: path accounting no longer balances.
    c.approx += 1;
    assert_eq!(c.consistency_errors().len(), 1);
    c.approx -= 1;

    // More sampled violations than samples is impossible.
    c.watchdog.violations = 5;
    assert_eq!(c.consistency_errors().len(), 1);
}

/// Materializes arbitrary counters from flat generated values: 13 scalar
/// counters (the last two feed a two-member `route_served`) followed by
/// one histogram count per bucket.
fn counters_from(fields: &[u64]) -> EndpointCounters {
    let (scalars, hist) = fields.split_at(13);
    EndpointCounters {
        served: scalars[0],
        approx: scalars[1],
        fallback: scalars[2],
        rejected_queue_full: scalars[3],
        rejected_invalid: scalars[4],
        duplicates: scalars[5],
        config_bursts: scalars[6],
        approx_wall_nanos: scalars[1] + scalars[6],
        route_served: vec![scalars[11], scalars[12]],
        epoch_served: vec![scalars[1] + scalars[2]],
        swaps: scalars[6] % 4,
        guard_log: Vec::new(),
        guard_log_dropped: scalars[9] + scalars[10],
        latency: LatencyHistogram {
            counts: hist.to_vec(),
        },
        watchdog: WatchdogStats {
            // Samples are the sum of the four time-in-state residences and
            // the transition total restates the (empty) log plus its drop
            // counter — the same linear invariants the real fold keeps.
            samples: scalars[7] + scalars[8] + scalars[9] + scalars[10],
            violations: scalars[8],
            breaches: scalars[9],
            recoveries: scalars[10],
            time_in_monitoring: scalars[7],
            time_in_throttled: scalars[8],
            time_in_fallback: scalars[9],
            time_in_probing: scalars[10],
            transitions: scalars[9] + scalars[10],
            recert_triggers: scalars[9].min(1),
        },
    }
}

const COUNTER_FIELDS: usize = 13 + LATENCY_BUCKET_BOUNDS.len() + 1;

proptest! {
    #[test]
    fn absorb_is_associative(
        fa in prop::collection::vec(0u64..10_000, COUNTER_FIELDS),
        fb in prop::collection::vec(0u64..10_000, COUNTER_FIELDS),
        fc in prop::collection::vec(0u64..10_000, COUNTER_FIELDS),
    ) {
        // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c): shard deltas can fold in any
        // grouping the scheduler produces.
        let (a, b, c) = (counters_from(&fa), counters_from(&fb), counters_from(&fc));
        let mut left = a.clone();
        left.absorb(&b);
        left.absorb(&c);

        let mut bc = b.clone();
        bc.absorb(&c);
        let mut right = a.clone();
        right.absorb(&bc);

        prop_assert_eq!(left, right);
    }

    #[test]
    fn absorb_is_commutative_from_empty(
        fa in prop::collection::vec(0u64..10_000, COUNTER_FIELDS),
        fb in prop::collection::vec(0u64..10_000, COUNTER_FIELDS),
    ) {
        let (a, b) = (counters_from(&fa), counters_from(&fb));
        let mut ab = EndpointCounters::default();
        ab.absorb(&a);
        ab.absorb(&b);
        let mut ba = EndpointCounters::default();
        ba.absorb(&b);
        ba.absorb(&a);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn absorb_preserves_consistency(
        fa in prop::collection::vec(0u64..1000, COUNTER_FIELDS),
        fb in prop::collection::vec(0u64..1000, COUNTER_FIELDS),
    ) {
        // Merging two individually consistent deltas cannot create an
        // inconsistency: every invariant is a linear relation.
        let mut a = counters_from(&fa);
        let mut b = counters_from(&fb);
        for c in [&mut a, &mut b] {
            // Repair the generated counters into a consistent state.
            c.served = c.approx + c.fallback;
            c.route_served = vec![c.approx / 2, c.approx - c.approx / 2];
            c.epoch_served = vec![c.served];
            c.latency = LatencyHistogram::default();
            for _ in 0..c.served {
                c.latency.record(128.0);
            }
            c.watchdog.violations = c.watchdog.violations.min(c.watchdog.samples);
        }
        prop_assert!(a.consistency_errors().is_empty());
        let mut merged = a.clone();
        merged.absorb(&b);
        prop_assert!(merged.consistency_errors().is_empty(), "{:?}", merged.consistency_errors());
    }
}
