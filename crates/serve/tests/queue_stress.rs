//! Saturation stress: many producers hammering a small bounded queue
//! must never deadlock, lose an item, or deliver one twice — and the
//! engine built on top must keep exactly-once serving (and bit-identical
//! results) even when admission control is rejecting constantly.

use mithra_axbench::benchmark::Benchmark;
use mithra_axbench::dataset::DatasetScale;
use mithra_axbench::suite;
use mithra_core::pipeline::{compile, CompileConfig};
use mithra_core::profile::DatasetProfile;
use mithra_serve::{BoundedQueue, EndpointSpec, RejectReason, Request, ServeConfig, ServeEngine};
use mithra_sim::system::{simulate, SimOptions};
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

#[test]
fn bounded_queue_saturated_by_many_producers_loses_and_duplicates_nothing() {
    const PRODUCERS: u64 = 8;
    const PER_PRODUCER: u64 = 2000;
    const CONSUMERS: usize = 4;

    let queue = BoundedQueue::new(8);
    let received: Mutex<Vec<u64>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        let queue = &queue;
        let received = &received;
        let producers: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                scope.spawn(move || {
                    // Each token encodes (producer, sequence) so loss and
                    // duplication are both detectable.
                    for seq in 0..PER_PRODUCER {
                        let token = (p << 32) | seq;
                        while queue.try_push(token).is_err() {
                            std::thread::yield_now();
                        }
                    }
                })
            })
            .collect();
        for _ in 0..CONSUMERS {
            scope.spawn(move || {
                let mut local = Vec::new();
                let mut batch = Vec::new();
                loop {
                    batch.clear();
                    if queue.pop_batch(5, &mut batch) == 0 {
                        break;
                    }
                    local.extend_from_slice(&batch);
                }
                received.lock().unwrap().extend_from_slice(&local);
            });
        }
        for producer in producers {
            producer.join().expect("producer must not panic");
        }
        // Only once every producer has drained its offer list may the
        // queue close; consumers then finish the backlog and exit.
        queue.close();
    });

    let seen = received.into_inner().unwrap();
    let expected = (PRODUCERS * PER_PRODUCER) as usize;
    assert_eq!(seen.len(), expected, "no item may be lost or duplicated");
    let unique: HashSet<u64> = seen.iter().copied().collect();
    assert_eq!(unique.len(), expected, "every token exactly once");
    assert!(queue.is_empty());
}

#[test]
fn submit_or_wait_completes_through_a_constantly_full_queue() {
    // A two-slot queue behind a single single-batch worker is full for
    // essentially the whole run, so every submission takes the
    // queue-full retry path (spin → yield → bounded park). The test is
    // the completion itself: with an unbounded or broken backoff the
    // producers would stall forever or starve the worker.
    let bench: Arc<dyn Benchmark> = suite::by_name("sobel").unwrap().into();
    let compiled = Arc::new(compile(bench, &CompileConfig::smoke()).unwrap());
    let dataset = compiled.function.dataset(5151, DatasetScale::Smoke);
    let profile = DatasetProfile::collect(&compiled.function, dataset);
    let n = profile.invocation_count();

    let engine = ServeEngine::start(
        vec![EndpointSpec {
            name: "sobel".into(),
            compiled: Arc::clone(&compiled),
            profile,
            routed: None,
        }],
        &ServeConfig {
            workers: 1,
            batch: 1,
            queue_depth: 2,
            ..ServeConfig::default()
        },
    )
    .unwrap();

    const PRODUCERS: usize = 4;
    let chunk = n.div_ceil(PRODUCERS);
    std::thread::scope(|scope| {
        for p in 0..PRODUCERS {
            let engine = &engine;
            scope.spawn(move || {
                for inv in (p * chunk)..((p + 1) * chunk).min(n) {
                    engine
                        .submit_or_wait(0, inv)
                        .expect("backed-off submission must eventually land");
                }
            });
        }
    });

    let report = engine.finish().unwrap();
    let endpoint = &report.endpoints[0];
    assert_eq!(endpoint.counters.served, n as u64, "exactly-once serving");
    assert!(
        endpoint.counters.rejected_queue_full > 0,
        "the tiny queue must actually have refused submissions"
    );
}

#[test]
fn shutdown_racing_in_flight_batches_keeps_exactly_once_accounting() {
    // `shutdown(&self)` closes admission while producers are mid-flight
    // with `submit_batch`. The race window is the point of the test:
    // whatever interleaving the scheduler picks, (a) every producer
    // eventually observes `RejectReason::ShuttingDown` and stops, (b)
    // every request a batch submission *accepted* (the returned prefix
    // count) is served exactly once — distinct accepted invocations
    // equal `served`, re-offers equal `duplicates`, nothing accepted is
    // dropped on the floor by the closing queue.
    let bench: Arc<dyn Benchmark> = suite::by_name("sobel").unwrap().into();
    let compiled = Arc::new(compile(bench, &CompileConfig::smoke()).unwrap());
    let dataset = compiled.function.dataset(5152, DatasetScale::Smoke);
    let profile = DatasetProfile::collect(&compiled.function, dataset);
    let n = profile.invocation_count();

    let engine = ServeEngine::start(
        vec![EndpointSpec {
            name: "sobel".into(),
            compiled: Arc::clone(&compiled),
            profile,
            routed: None,
        }],
        &ServeConfig {
            workers: 2,
            batch: 4,
            queue_depth: 16,
            ..ServeConfig::default()
        },
    )
    .unwrap();

    const PRODUCERS: usize = 4;
    const BATCH: usize = 3;
    let accepted_signal = AtomicU64::new(0);
    let accepted_sets: Mutex<Vec<HashSet<usize>>> = Mutex::new(Vec::new());
    let accepted_total = AtomicU64::new(0);
    let chunk = n.div_ceil(PRODUCERS);

    std::thread::scope(|scope| {
        let engine = &engine;
        let accepted_signal = &accepted_signal;
        let accepted_sets = &accepted_sets;
        let accepted_total = &accepted_total;
        for p in 0..PRODUCERS {
            scope.spawn(move || {
                let lo = p * chunk;
                let hi = ((p + 1) * chunk).min(n);
                let mut mine: HashSet<usize> = HashSet::new();
                let mut offset = 0usize;
                // Cycle the producer's disjoint range until shutdown:
                // re-offers past the first lap are legitimate duplicates
                // the engine must serve once and count as such.
                loop {
                    let batch: Vec<Request> = (0..BATCH)
                        .map(|i| Request {
                            endpoint: 0,
                            invocation: lo + (offset + i) % (hi - lo).max(1),
                        })
                        .collect();
                    offset = (offset + BATCH) % (hi - lo).max(1);
                    match engine.submit_batch(&batch) {
                        Ok(accepted) => {
                            for request in &batch[..accepted] {
                                mine.insert(request.invocation);
                            }
                            accepted_total.fetch_add(accepted as u64, Ordering::Relaxed);
                            if accepted > 0 {
                                accepted_signal.fetch_add(1, Ordering::Release);
                            }
                        }
                        Err(RejectReason::ShuttingDown) => break,
                        Err(other) => panic!("unexpected rejection: {other}"),
                    }
                }
                accepted_sets.lock().unwrap().push(mine);
            });
        }
        // Close admission only after at least one batch landed, so the
        // race always has in-flight work on both sides of the close.
        scope.spawn(move || {
            while accepted_signal.load(Ordering::Acquire) == 0 {
                std::thread::yield_now();
            }
            engine.shutdown();
            // Idempotent: a second close must be a no-op.
            engine.shutdown();
        });
    });

    // Admission is closed for late submitters of every flavor.
    assert_eq!(engine.submit(0, 0), Err(RejectReason::ShuttingDown));
    assert_eq!(
        engine.submit_batch(&[Request {
            endpoint: 0,
            invocation: 0,
        }]),
        Err(RejectReason::ShuttingDown)
    );

    let sets = accepted_sets.into_inner().unwrap();
    assert_eq!(sets.len(), PRODUCERS, "every producer observed shutdown");
    let distinct: u64 = sets.iter().map(|s| s.len() as u64).sum();
    let total = accepted_total.load(Ordering::Relaxed);
    assert!(total >= distinct && distinct > 0, "some batches must land");

    let report = engine.finish().unwrap();
    let endpoint = &report.endpoints[0];
    assert_eq!(
        endpoint.counters.served, distinct,
        "every accepted invocation served exactly once across the close"
    );
    assert_eq!(
        endpoint.counters.duplicates,
        total - distinct,
        "re-offered invocations are deduplicated, never re-served or lost"
    );
    assert_eq!(
        endpoint.counters.latency.total(),
        distinct,
        "one latency observation per served invocation"
    );
}

#[test]
fn engine_under_saturation_serves_exactly_once_and_stays_bit_identical() {
    let bench: Arc<dyn Benchmark> = suite::by_name("sobel").unwrap().into();
    let compiled = Arc::new(compile(bench, &CompileConfig::smoke()).unwrap());
    let dataset = compiled.function.dataset(5150, DatasetScale::Smoke);
    let profile = DatasetProfile::collect(&compiled.function, dataset);
    let n = profile.invocation_count();
    let mut classifier = compiled.table.clone();
    let expected = simulate(&compiled, &profile, &mut classifier, &SimOptions::default());

    let engine = ServeEngine::start(
        vec![EndpointSpec {
            name: "sobel".into(),
            compiled: Arc::clone(&compiled),
            profile: profile.clone(),
            routed: None,
        }],
        &ServeConfig {
            workers: 4,
            batch: 4,
            // Far smaller than the offered load: admission control must
            // reject (never queue unboundedly) and producers retry.
            queue_depth: 16,
            ..ServeConfig::default()
        },
    )
    .unwrap();

    const PRODUCERS: usize = 8;
    let chunk = n.div_ceil(PRODUCERS);
    std::thread::scope(|scope| {
        for p in 0..PRODUCERS {
            let engine = &engine;
            scope.spawn(move || {
                let lo = p * chunk;
                let hi = ((p + 1) * chunk).min(n);
                for inv in lo..hi {
                    engine.submit_or_wait(0, inv).unwrap();
                }
                // Every producer re-offers its first invocation: the
                // engine must serve it once and count the replay as a
                // duplicate, never double-charge it.
                if lo < hi {
                    engine.submit_or_wait(0, lo).unwrap();
                }
            });
        }
    });

    // Admission control also rejects malformed requests outright.
    assert_eq!(
        engine.submit(0, n),
        Err(RejectReason::InvalidInvocation),
        "out-of-range invocation must be refused"
    );
    assert_eq!(
        engine.submit(7, 0),
        Err(RejectReason::UnknownEndpoint),
        "unregistered endpoint must be refused"
    );

    let report = engine.finish().unwrap();
    let endpoint = &report.endpoints[0];
    assert_eq!(endpoint.counters.served, n as u64, "exactly-once serving");
    let resubmitted = (0..PRODUCERS).filter(|p| p * chunk < n).count() as u64;
    assert_eq!(
        endpoint.counters.duplicates, resubmitted,
        "replayed submissions are served once and counted as duplicates"
    );
    assert_eq!(endpoint.counters.rejected_invalid, 1);
    assert_eq!(
        endpoint.result.unwrap(),
        expected,
        "saturation and duplicates must not perturb the result"
    );
    assert_eq!(
        endpoint.counters.latency.total(),
        n as u64,
        "one latency observation per served invocation"
    );
}
