//! Saturation stress: many producers hammering a small bounded queue
//! must never deadlock, lose an item, or deliver one twice — and the
//! engine built on top must keep exactly-once serving (and bit-identical
//! results) even when admission control is rejecting constantly.

use mithra_axbench::benchmark::Benchmark;
use mithra_axbench::dataset::DatasetScale;
use mithra_axbench::suite;
use mithra_core::pipeline::{compile, CompileConfig};
use mithra_core::profile::DatasetProfile;
use mithra_serve::{BoundedQueue, EndpointSpec, RejectReason, ServeConfig, ServeEngine};
use mithra_sim::system::{simulate, SimOptions};
use std::collections::HashSet;
use std::sync::{Arc, Mutex};

#[test]
fn bounded_queue_saturated_by_many_producers_loses_and_duplicates_nothing() {
    const PRODUCERS: u64 = 8;
    const PER_PRODUCER: u64 = 2000;
    const CONSUMERS: usize = 4;

    let queue = BoundedQueue::new(8);
    let received: Mutex<Vec<u64>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        let queue = &queue;
        let received = &received;
        let producers: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                scope.spawn(move || {
                    // Each token encodes (producer, sequence) so loss and
                    // duplication are both detectable.
                    for seq in 0..PER_PRODUCER {
                        let token = (p << 32) | seq;
                        while queue.try_push(token).is_err() {
                            std::thread::yield_now();
                        }
                    }
                })
            })
            .collect();
        for _ in 0..CONSUMERS {
            scope.spawn(move || {
                let mut local = Vec::new();
                let mut batch = Vec::new();
                loop {
                    batch.clear();
                    if queue.pop_batch(5, &mut batch) == 0 {
                        break;
                    }
                    local.extend_from_slice(&batch);
                }
                received.lock().unwrap().extend_from_slice(&local);
            });
        }
        for producer in producers {
            producer.join().expect("producer must not panic");
        }
        // Only once every producer has drained its offer list may the
        // queue close; consumers then finish the backlog and exit.
        queue.close();
    });

    let seen = received.into_inner().unwrap();
    let expected = (PRODUCERS * PER_PRODUCER) as usize;
    assert_eq!(seen.len(), expected, "no item may be lost or duplicated");
    let unique: HashSet<u64> = seen.iter().copied().collect();
    assert_eq!(unique.len(), expected, "every token exactly once");
    assert!(queue.is_empty());
}

#[test]
fn submit_or_wait_completes_through_a_constantly_full_queue() {
    // A two-slot queue behind a single single-batch worker is full for
    // essentially the whole run, so every submission takes the
    // queue-full retry path (spin → yield → bounded park). The test is
    // the completion itself: with an unbounded or broken backoff the
    // producers would stall forever or starve the worker.
    let bench: Arc<dyn Benchmark> = suite::by_name("sobel").unwrap().into();
    let compiled = Arc::new(compile(bench, &CompileConfig::smoke()).unwrap());
    let dataset = compiled.function.dataset(5151, DatasetScale::Smoke);
    let profile = DatasetProfile::collect(&compiled.function, dataset);
    let n = profile.invocation_count();

    let engine = ServeEngine::start(
        vec![EndpointSpec {
            name: "sobel".into(),
            compiled: Arc::clone(&compiled),
            profile,
            routed: None,
        }],
        &ServeConfig {
            workers: 1,
            batch: 1,
            queue_depth: 2,
            ..ServeConfig::default()
        },
    )
    .unwrap();

    const PRODUCERS: usize = 4;
    let chunk = n.div_ceil(PRODUCERS);
    std::thread::scope(|scope| {
        for p in 0..PRODUCERS {
            let engine = &engine;
            scope.spawn(move || {
                for inv in (p * chunk)..((p + 1) * chunk).min(n) {
                    engine
                        .submit_or_wait(0, inv)
                        .expect("backed-off submission must eventually land");
                }
            });
        }
    });

    let report = engine.finish().unwrap();
    let endpoint = &report.endpoints[0];
    assert_eq!(endpoint.counters.served, n as u64, "exactly-once serving");
    assert!(
        endpoint.counters.rejected_queue_full > 0,
        "the tiny queue must actually have refused submissions"
    );
}

#[test]
fn engine_under_saturation_serves_exactly_once_and_stays_bit_identical() {
    let bench: Arc<dyn Benchmark> = suite::by_name("sobel").unwrap().into();
    let compiled = Arc::new(compile(bench, &CompileConfig::smoke()).unwrap());
    let dataset = compiled.function.dataset(5150, DatasetScale::Smoke);
    let profile = DatasetProfile::collect(&compiled.function, dataset);
    let n = profile.invocation_count();
    let mut classifier = compiled.table.clone();
    let expected = simulate(&compiled, &profile, &mut classifier, &SimOptions::default());

    let engine = ServeEngine::start(
        vec![EndpointSpec {
            name: "sobel".into(),
            compiled: Arc::clone(&compiled),
            profile: profile.clone(),
            routed: None,
        }],
        &ServeConfig {
            workers: 4,
            batch: 4,
            // Far smaller than the offered load: admission control must
            // reject (never queue unboundedly) and producers retry.
            queue_depth: 16,
            ..ServeConfig::default()
        },
    )
    .unwrap();

    const PRODUCERS: usize = 8;
    let chunk = n.div_ceil(PRODUCERS);
    std::thread::scope(|scope| {
        for p in 0..PRODUCERS {
            let engine = &engine;
            scope.spawn(move || {
                let lo = p * chunk;
                let hi = ((p + 1) * chunk).min(n);
                for inv in lo..hi {
                    engine.submit_or_wait(0, inv).unwrap();
                }
                // Every producer re-offers its first invocation: the
                // engine must serve it once and count the replay as a
                // duplicate, never double-charge it.
                if lo < hi {
                    engine.submit_or_wait(0, lo).unwrap();
                }
            });
        }
    });

    // Admission control also rejects malformed requests outright.
    assert_eq!(
        engine.submit(0, n),
        Err(RejectReason::InvalidInvocation),
        "out-of-range invocation must be refused"
    );
    assert_eq!(
        engine.submit(7, 0),
        Err(RejectReason::UnknownEndpoint),
        "unregistered endpoint must be refused"
    );

    let report = engine.finish().unwrap();
    let endpoint = &report.endpoints[0];
    assert_eq!(endpoint.counters.served, n as u64, "exactly-once serving");
    let resubmitted = (0..PRODUCERS).filter(|p| p * chunk < n).count() as u64;
    assert_eq!(
        endpoint.counters.duplicates, resubmitted,
        "replayed submissions are served once and counted as duplicates"
    );
    assert_eq!(endpoint.counters.rejected_invalid, 1);
    assert_eq!(
        endpoint.result.unwrap(),
        expected,
        "saturation and duplicates must not perturb the result"
    );
    assert_eq!(
        endpoint.counters.latency.total(),
        n as u64,
        "one latency observation per served invocation"
    );
}
