//! Serve-vs-simulate determinism: for every benchmark in the suite, a
//! batched, sharded serving run must produce a [`RunResult`] that is
//! **bit-identical** (f64 equality, no tolerance) to the sequential
//! simulator, across seeds, batch sizes, and worker counts — sharding
//! buys wall-clock throughput, never different numbers.

use mithra_axbench::benchmark::Benchmark;
use mithra_axbench::dataset::DatasetScale;
use mithra_axbench::suite;
use mithra_core::pipeline::{compile, compile_routed, CompileConfig, Compiled};
use mithra_core::profile::DatasetProfile;
use mithra_core::route::{PoolSpec, RoutedCompiled};
use mithra_serve::{EndpointSpec, RoutedServeSpec, ServeConfig, ServeEngine, ServeError};
use mithra_sim::system::{run_routed, simulate, RunResult, SimOptions};
use std::sync::{Arc, OnceLock};

const SUITE: [&str; 6] = [
    "blackscholes",
    "fft",
    "inversek2j",
    "jmeint",
    "jpeg",
    "sobel",
];

fn compiled_for(name: &str) -> Arc<Compiled> {
    static CACHE: [OnceLock<Arc<Compiled>>; SUITE.len()] = [const { OnceLock::new() }; SUITE.len()];
    let idx = SUITE.iter().position(|&n| n == name).expect("suite member");
    Arc::clone(CACHE[idx].get_or_init(|| {
        let bench: Arc<dyn Benchmark> = suite::by_name(name).unwrap().into();
        Arc::new(compile(bench, &CompileConfig::smoke()).unwrap())
    }))
}

fn profile_for(compiled: &Compiled, seed: u64) -> DatasetProfile {
    let ds = compiled.function.dataset(seed, DatasetScale::Smoke);
    DatasetProfile::collect(&compiled.function, ds)
}

fn sequential(compiled: &Compiled, profile: &DatasetProfile) -> RunResult {
    let mut classifier = compiled.table.clone();
    simulate(compiled, profile, &mut classifier, &SimOptions::default())
}

fn serve_once(
    compiled: &Arc<Compiled>,
    profile: &DatasetProfile,
    workers: usize,
    batch: usize,
) -> RunResult {
    let engine = ServeEngine::start(
        vec![EndpointSpec {
            name: "endpoint".into(),
            compiled: Arc::clone(compiled),
            profile: profile.clone(),
            routed: None,
        }],
        &ServeConfig {
            workers,
            batch,
            // Smaller than the dataset: submission exercises the
            // backpressure path too.
            queue_depth: 64,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    for i in 0..profile.invocation_count() {
        engine.submit_or_wait(0, i).unwrap();
    }
    let report = engine.finish().unwrap();
    let endpoint = &report.endpoints[0];
    assert_eq!(
        endpoint.counters.served,
        profile.invocation_count() as u64,
        "every submitted invocation must be served exactly once"
    );
    endpoint.result.expect("full coverage yields a result")
}

fn assert_parity(name: &str) {
    let compiled = compiled_for(name);
    for seed in [11u64, 222, 3333] {
        let profile = profile_for(&compiled, seed);
        let expected = sequential(&compiled, &profile);
        for (workers, batch) in [(1, 1), (3, 1), (3, 8)] {
            let got = serve_once(&compiled, &profile, workers, batch);
            assert_eq!(
                got, expected,
                "{name}: seed {seed}, {workers} workers, batch {batch} \
                 diverged from sequential simulate"
            );
        }
    }
}

#[test]
fn serving_blackscholes_is_bit_identical_to_simulate() {
    assert_parity("blackscholes");
}

#[test]
fn serving_fft_is_bit_identical_to_simulate() {
    assert_parity("fft");
}

#[test]
fn serving_inversek2j_is_bit_identical_to_simulate() {
    assert_parity("inversek2j");
}

#[test]
fn serving_jmeint_is_bit_identical_to_simulate() {
    assert_parity("jmeint");
}

#[test]
fn serving_sobel_is_bit_identical_to_simulate() {
    assert_parity("sobel");
}

#[test]
fn serving_jpeg_is_bit_identical_to_simulate() {
    assert_parity("jpeg");
}

#[test]
fn multi_endpoint_interleaving_preserves_every_endpoint_identity() {
    // Two endpoints served through one engine with deliberately
    // interleaved submission order: sub-batch grouping and per-endpoint
    // contexts must keep each endpoint bit-identical to its own
    // sequential run.
    let sobel = compiled_for("sobel");
    let invk = compiled_for("inversek2j");
    let sobel_profile = profile_for(&sobel, 77);
    let invk_profile = profile_for(&invk, 78);
    let expected_sobel = sequential(&sobel, &sobel_profile);
    let expected_invk = sequential(&invk, &invk_profile);

    let engine = ServeEngine::start(
        vec![
            EndpointSpec {
                name: "sobel".into(),
                compiled: Arc::clone(&sobel),
                profile: sobel_profile.clone(),
                routed: None,
            },
            EndpointSpec {
                name: "inversek2j".into(),
                compiled: Arc::clone(&invk),
                profile: invk_profile.clone(),
                routed: None,
            },
        ],
        &ServeConfig {
            workers: 4,
            batch: 6,
            queue_depth: 128,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let n0 = sobel_profile.invocation_count();
    let n1 = invk_profile.invocation_count();
    for i in 0..n0.max(n1) {
        if i < n0 {
            engine.submit_or_wait(0, i).unwrap();
        }
        if i < n1 {
            engine.submit_or_wait(1, i).unwrap();
        }
    }
    let report = engine.finish().unwrap();
    assert_eq!(report.endpoints[0].result.unwrap(), expected_sobel);
    assert_eq!(report.endpoints[1].result.unwrap(), expected_invk);
    let snapshot = report.snapshot();
    assert_eq!(snapshot.endpoints.len(), 2);
    assert!(
        snapshot.endpoints[0].counters.config_bursts > 0,
        "config streaming must be accounted"
    );
}

#[test]
fn watchdog_enabled_serving_covers_and_guards() {
    // With the watchdog on, admission becomes shard-local state, so no
    // bit-identity is claimed — but coverage, accounting, and the
    // no-false-alarm property on clean data must hold, and shadow
    // sampling must cost cycles.
    let compiled = compiled_for("inversek2j");
    let profile = profile_for(&compiled, 99);
    let expected = sequential(&compiled, &profile);
    let engine = ServeEngine::start(
        vec![EndpointSpec {
            name: "inversek2j".into(),
            compiled: Arc::clone(&compiled),
            profile: profile.clone(),
            routed: None,
        }],
        &ServeConfig {
            workers: 2,
            batch: 4,
            watchdog_period: 2,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    for i in 0..profile.invocation_count() {
        engine.submit_or_wait(0, i).unwrap();
    }
    let report = engine.finish().unwrap();
    let endpoint = &report.endpoints[0];
    let result = endpoint.result.expect("full coverage");
    assert_eq!(result.total, profile.invocation_count());
    assert!(
        endpoint.counters.watchdog.samples > 0,
        "shadow sampling must run"
    );
    assert_eq!(
        endpoint.counters.watchdog.breaches, 0,
        "clean certified data must not trip the guard"
    );
    assert!(
        result.accelerated_cycles > expected.accelerated_cycles,
        "shadow samples must cost cycles over the unguarded run"
    );
    assert_eq!(result.invoked, expected.invoked, "admission never gated");
}

fn routed_for(name: &str, pool_size: usize) -> Arc<RoutedCompiled> {
    let bench: Arc<dyn Benchmark> = suite::by_name(name).unwrap().into();
    let spec = PoolSpec::sized(&bench.npu_topology(), pool_size);
    Arc::new(compile_routed(bench, &CompileConfig::smoke(), &spec).unwrap())
}

fn member_profiles_for(routed: &RoutedCompiled, seed: u64) -> Vec<DatasetProfile> {
    let ds = routed.pool.accurate().dataset(seed, DatasetScale::Smoke);
    routed
        .pool
        .members()
        .iter()
        .map(|m| DatasetProfile::collect(m, ds.clone()))
        .collect()
}

fn serve_routed_once(
    compiled: &Arc<Compiled>,
    routed: &Arc<RoutedCompiled>,
    member_profiles: &[DatasetProfile],
    workers: usize,
    batch: usize,
) -> (RunResult, Vec<u64>) {
    let profile = member_profiles.last().expect("non-empty pool").clone();
    let n = profile.invocation_count();
    let engine = ServeEngine::start(
        vec![EndpointSpec {
            name: "routed".into(),
            compiled: Arc::clone(compiled),
            profile,
            routed: Some(RoutedServeSpec {
                routed: Arc::clone(routed),
                member_profiles: member_profiles.to_vec(),
            }),
        }],
        &ServeConfig {
            workers,
            batch,
            queue_depth: 64,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    for i in 0..n {
        engine.submit_or_wait(0, i).unwrap();
    }
    let report = engine.finish().unwrap();
    let endpoint = &report.endpoints[0];
    let snapshot = report.snapshot();
    assert!(
        snapshot.consistency_errors().is_empty(),
        "{:?}",
        snapshot.consistency_errors()
    );
    (
        endpoint.result.expect("full coverage yields a result"),
        endpoint.counters.route_served.clone(),
    )
}

#[test]
fn routed_serving_is_bit_identical_to_routed_simulate() {
    // A pool of three served through the sharded engine must reproduce
    // the sequential routed simulator bit for bit, and the per-route
    // counters must agree with its member accounting.
    let compiled = compiled_for("inversek2j");
    let routed = routed_for("inversek2j", 3);
    for seed in [41u64, 4242] {
        let member_profiles = member_profiles_for(&routed, seed);
        let refs: Vec<&DatasetProfile> = member_profiles.iter().collect();
        let mut router = routed.router.clone();
        let expected = run_routed(&routed, &refs, &mut router, &SimOptions::default()).unwrap();
        for (workers, batch) in [(1, 1), (3, 4)] {
            let (got, route_served) =
                serve_routed_once(&compiled, &routed, &member_profiles, workers, batch);
            assert_eq!(
                got, expected.run,
                "seed {seed}, {workers} workers, batch {batch} diverged \
                 from sequential run_routed"
            );
            let served_members: Vec<u64> = expected
                .member_invocations
                .iter()
                .map(|&m| m as u64)
                .collect();
            assert_eq!(route_served, served_members);
        }
    }
}

#[test]
fn routed_pool_of_one_serving_matches_binary_serving() {
    // The routing attachment with a pool of one must not perturb a single
    // bit relative to the plain binary endpoint.
    let compiled = compiled_for("sobel");
    let routed = routed_for("sobel", 1);
    assert_eq!(routed.pool.len(), 1);
    let member_profiles = member_profiles_for(&routed, 515);
    let binary = serve_once(&compiled, &member_profiles[0], 2, 4);
    let (routed_result, route_served) =
        serve_routed_once(&compiled, &routed, &member_profiles, 2, 4);
    assert_eq!(routed_result, binary);
    assert_eq!(route_served, vec![binary.invoked as u64]);
}

#[test]
fn watchdog_rejects_routed_endpoints() {
    let compiled = compiled_for("sobel");
    let routed = routed_for("sobel", 2);
    let member_profiles = member_profiles_for(&routed, 616);
    let err = ServeEngine::start(
        vec![EndpointSpec {
            name: "routed".into(),
            compiled: Arc::clone(&compiled),
            profile: member_profiles.last().unwrap().clone(),
            routed: Some(RoutedServeSpec {
                routed: Arc::clone(&routed),
                member_profiles,
            }),
        }],
        &ServeConfig {
            watchdog_period: 4,
            ..ServeConfig::default()
        },
    )
    .unwrap_err();
    assert!(matches!(err, ServeError::UnsupportedOptions(_)));
}
