//! The bounded MPMC request queue feeding the worker pool.
//!
//! Admission control is explicit: [`BoundedQueue::try_push`] never blocks
//! and never grows the queue past its capacity — a full queue rejects the
//! request with a reason, pushing backpressure to the caller instead of
//! hiding it in unbounded memory. Consumers block in
//! [`BoundedQueue::pop_batch`], draining up to a whole batch per wakeup so
//! a worker pays one lock acquisition per batch rather than per request.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity; the caller should shed or retry later.
    Full,
    /// The queue was closed; no further requests are accepted.
    Closed,
}

impl std::fmt::Display for PushError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PushError::Full => write!(f, "queue full"),
            PushError::Closed => write!(f, "queue closed"),
        }
    }
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer multi-consumer queue with batch draining.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items (at least 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            not_empty: Condvar::new(),
            capacity,
        }
    }

    /// Maximum number of queued items.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current queue depth.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue lock poisoned").items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues one item without blocking.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity (the item is returned to the caller
    /// conceptually — it was never enqueued), [`PushError::Closed`] after
    /// [`close`](Self::close).
    pub fn try_push(&self, item: T) -> Result<(), PushError> {
        let mut inner = self.inner.lock().expect("queue lock poisoned");
        if inner.closed {
            return Err(PushError::Closed);
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full);
        }
        inner.items.push_back(item);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Enqueues as many items from the front of `items` as capacity
    /// allows, without blocking, and returns how many were accepted —
    /// possibly 0 when the queue is full. One lock acquisition and one
    /// wakeup for the whole slice, so open-loop load generators do not
    /// pay per-item synchronization.
    ///
    /// # Errors
    ///
    /// [`PushError::Closed`] after [`close`](Self::close) — nothing is
    /// enqueued.
    pub fn try_push_batch(&self, items: &[T]) -> Result<usize, PushError>
    where
        T: Copy,
    {
        let mut inner = self.inner.lock().expect("queue lock poisoned");
        if inner.closed {
            return Err(PushError::Closed);
        }
        let free = self.capacity - inner.items.len();
        let take = free.min(items.len());
        inner.items.extend(&items[..take]);
        drop(inner);
        match take {
            0 => {}
            1 => self.not_empty.notify_one(),
            _ => self.not_empty.notify_all(),
        }
        Ok(take)
    }

    /// Blocks until at least one item is available (or the queue is closed
    /// and drained), then moves up to `max` items into `out` in FIFO
    /// order. Returns the number of items taken; 0 means closed-and-empty
    /// — the consumer's shutdown signal.
    pub fn pop_batch(&self, max: usize, out: &mut Vec<T>) -> usize {
        let max = max.max(1);
        let mut inner = self.inner.lock().expect("queue lock poisoned");
        loop {
            if !inner.items.is_empty() {
                let take = max.min(inner.items.len());
                out.extend(inner.items.drain(..take));
                return take;
            }
            if inner.closed {
                return 0;
            }
            inner = self.not_empty.wait(inner).expect("queue lock poisoned");
        }
    }

    /// Closes the queue: pending items still drain, new pushes fail, and
    /// blocked consumers wake up once the backlog is gone.
    pub fn close(&self) {
        self.inner.lock().expect("queue lock poisoned").closed = true;
        self.not_empty.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_fifo_order() {
        let q = BoundedQueue::new(8);
        for i in 0..5 {
            q.try_push(i).unwrap();
        }
        let mut out = Vec::new();
        assert_eq!(q.pop_batch(3, &mut out), 3);
        assert_eq!(out, vec![0, 1, 2]);
        assert_eq!(q.pop_batch(10, &mut out), 2);
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn full_queue_rejects_without_blocking() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Full));
        assert_eq!(q.len(), 2, "a rejected push must not enqueue");
    }

    #[test]
    fn closed_queue_drains_then_signals_shutdown() {
        let q = BoundedQueue::new(4);
        q.try_push(7).unwrap();
        q.close();
        assert_eq!(q.try_push(8), Err(PushError::Closed));
        let mut out = Vec::new();
        assert_eq!(q.pop_batch(4, &mut out), 1, "backlog still drains");
        assert_eq!(q.pop_batch(4, &mut out), 0, "then shutdown");
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q = Arc::new(BoundedQueue::<u32>::new(4));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut out = Vec::new();
                q.pop_batch(4, &mut out)
            })
        };
        // Give the consumer time to block, then close.
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(consumer.join().unwrap(), 0);
    }

    #[test]
    fn batch_push_accepts_up_to_capacity() {
        let q = BoundedQueue::new(4);
        q.try_push(0).unwrap();
        assert_eq!(q.try_push_batch(&[1, 2, 3, 4, 5]).unwrap(), 3);
        assert_eq!(q.len(), 4);
        assert_eq!(q.try_push_batch(&[9]).unwrap(), 0, "full accepts none");
        let mut out = Vec::new();
        assert_eq!(q.pop_batch(8, &mut out), 4);
        assert_eq!(out, vec![0, 1, 2, 3], "accepted prefix, FIFO order");
        q.close();
        assert_eq!(q.try_push_batch(&[1]), Err(PushError::Closed));
    }

    #[test]
    fn zero_capacity_and_zero_max_are_clamped() {
        let q = BoundedQueue::new(0);
        assert_eq!(q.capacity(), 1);
        q.try_push(1).unwrap();
        let mut out = Vec::new();
        assert_eq!(q.pop_batch(0, &mut out), 1);
    }
}
