//! The serving metrics registry.
//!
//! Each endpoint accumulates counters (served, approximated, precise,
//! rejected), a fixed-bucket latency histogram in simulated cycles, and
//! the watchdog's lifetime transition counts. Workers batch their updates
//! — one registry lock per sub-batch, not per invocation — and the whole
//! registry exports as a serializable [`MetricsSnapshot`] (the payload a
//! scrape endpoint or the throughput benchmark serializes to JSON).

use mithra_core::watchdog::GuardState;
use serde::Serialize;

/// Cap on the exported guard transition log per endpoint. Mirrors the
/// core watchdog's own log cap: a healthy system transitions a handful of
/// times, and a flapping one is fully described by its first few dozen
/// transitions plus the drop counter.
pub const GUARD_LOG_CAP: usize = 64;

/// The export name of a [`GuardState`] rung (lowercase, stable across
/// releases — the JSON contract of the snapshot).
pub fn guard_state_name(state: GuardState) -> &'static str {
    match state {
        GuardState::Monitoring => "monitoring",
        GuardState::Throttled => "throttled",
        GuardState::Fallback => "fallback",
        GuardState::Probing => "probing",
    }
}

/// One rung change of an endpoint's guard ladder, as exported in the
/// snapshot. `at_sample` is the *shard-local* lifetime shadow-sample
/// count at which the transition fired; entries from different worker
/// shards are appended in fold order, so ordering is exact within a
/// shard and approximate across shards.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct GuardLogEntry {
    /// Shard-local lifetime sample count at the transition.
    pub at_sample: u64,
    /// Rung left (see [`guard_state_name`]).
    pub from: String,
    /// Rung entered.
    pub to: String,
}

/// Upper bounds (inclusive) of the latency histogram buckets, in cycles.
/// Powers of two from 64 to 2^21, spanning sub-microsecond NPU invocations
/// through multi-kilocycle precise kernels with shadow samples; a final
/// implicit overflow bucket catches everything beyond.
pub const LATENCY_BUCKET_BOUNDS: [u64; 16] = [
    64,
    128,
    256,
    512,
    1024,
    2048,
    4096,
    8192,
    16384,
    32768,
    65536,
    131072,
    262144,
    524288,
    1 << 20,
    1 << 21,
];

/// A fixed-bucket histogram of per-invocation latency in simulated cycles.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct LatencyHistogram {
    /// `counts[i]` holds invocations with latency ≤ `LATENCY_BUCKET_BOUNDS[i]`
    /// (and above the previous bound); the last slot is the overflow
    /// bucket.
    pub counts: Vec<u64>,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self {
            counts: vec![0; LATENCY_BUCKET_BOUNDS.len() + 1],
        }
    }
}

impl LatencyHistogram {
    /// Records one invocation's latency.
    pub fn record(&mut self, cycles: f64) {
        let idx = LATENCY_BUCKET_BOUNDS
            .iter()
            .position(|&bound| cycles <= bound as f64)
            .unwrap_or(LATENCY_BUCKET_BOUNDS.len());
        self.counts[idx] += 1;
    }

    /// Total recorded invocations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }

    /// The latency quantile `q` (e.g. `0.99`), conservatively reported as
    /// the **upper bound** of the bucket holding the rank-`⌈q·total⌉`
    /// invocation — a fixed-bucket histogram cannot resolve finer, and
    /// rounding up keeps the figure a true "no more than" bound. An empty
    /// histogram reports 0; a quantile landing in the overflow bucket
    /// saturates to `u64::MAX` (the histogram only knows "beyond the last
    /// bound").
    pub fn percentile(&self, q: f64) -> u64 {
        let total = self.total();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return LATENCY_BUCKET_BOUNDS.get(i).copied().unwrap_or(u64::MAX);
            }
        }
        unreachable!("rank is clamped to the histogram total")
    }
}

/// Watchdog activity aggregated across an endpoint's worker shards.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct WatchdogStats {
    /// Shadow quality samples taken.
    pub samples: u64,
    /// Sampled threshold violations.
    pub violations: u64,
    /// Ladder step-downs (into Throttled or Fallback).
    pub breaches: u64,
    /// Full-admission restorations (back to Monitoring).
    pub recoveries: u64,
    /// Shadow samples spent in `Monitoring` — the watchdog's clock is its
    /// sample stream, so these four are the time-in-state measure.
    pub time_in_monitoring: u64,
    /// Shadow samples spent in `Throttled`.
    pub time_in_throttled: u64,
    /// Shadow samples spent in `Fallback`.
    pub time_in_fallback: u64,
    /// Shadow samples spent in `Probing`.
    pub time_in_probing: u64,
    /// Total guard-ladder transitions across shards (including any beyond
    /// the per-shard log caps).
    pub transitions: u64,
    /// Times this endpoint's shared re-certification trigger was freshly
    /// raised. Per-worker forked watchdogs share **one** trigger per
    /// epoch, so concurrent shards entering `Fallback` together count
    /// once, not once per shard.
    pub recert_triggers: u64,
}

/// One endpoint's counters — the mutable registry entry workers update.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct EndpointCounters {
    /// Requests completed by a worker (admitted through the queue).
    pub served: u64,
    /// Served requests the classifier sent to the accelerator.
    pub approx: u64,
    /// Served requests that ran the precise function (classifier reject
    /// or watchdog fallback).
    pub fallback: u64,
    /// Requests refused at admission because the queue was full.
    pub rejected_queue_full: u64,
    /// Requests refused at admission for an out-of-range invocation.
    pub rejected_invalid: u64,
    /// Requests that named an already-served invocation; detected at the
    /// slot table, never double-charged.
    pub duplicates: u64,
    /// Config-FIFO refill bursts (amortized across each batch).
    pub config_bursts: u64,
    /// Host wall time spent inside the batched accelerator forward
    /// (`approx_batch_with`), in nanoseconds, summed across sub-batches
    /// and shards. This isolates the kernel-backend-sensitive segment of
    /// serving from queue/scheduling overhead, which dwarfs it at the
    /// suite's topology sizes.
    pub approx_wall_nanos: u64,
    /// Served requests per pool member, cheapest first — populated only
    /// on routed endpoints (empty on the binary path). When non-empty its
    /// sum must equal `approx`: every accelerated request was served by
    /// exactly one member.
    pub route_served: Vec<u64>,
    /// Served requests attributed to the operating-point epoch that
    /// served them: `epoch_served[e]` is the number of requests completed
    /// under swap epoch `e`. When non-empty its sum must equal `served`.
    pub epoch_served: Vec<u64>,
    /// Operating-point swaps installed on this endpoint (each bumps the
    /// epoch by one, so the current epoch equals this count).
    pub swaps: u64,
    /// Guard-ladder transition log merged across worker shards, capped at
    /// [`GUARD_LOG_CAP`]; overflow lands in `guard_log_dropped`.
    pub guard_log: Vec<GuardLogEntry>,
    /// Transitions beyond the log cap.
    pub guard_log_dropped: u64,
    /// Per-invocation latency distribution in cycles.
    pub latency: LatencyHistogram,
    /// Aggregated watchdog activity across this endpoint's shards.
    pub watchdog: WatchdogStats,
}

impl EndpointCounters {
    /// Audits the counter set's internal invariants, returning one message
    /// per violation (empty means consistent).
    ///
    /// The invariants are structural, not statistical: the latency
    /// histogram records exactly the served invocations, so its bucket sum
    /// must equal `served`; and every served request ran exactly one of
    /// the two paths, so `approx + fallback` must equal `served`. Both
    /// survive [`absorb`](Self::absorb), which is how the conformance
    /// harness and the serve tests catch a shard whose delta was dropped
    /// or double-counted.
    pub fn consistency_errors(&self) -> Vec<String> {
        let mut errors = Vec::new();
        let latency_total = self.latency.total();
        if latency_total != self.served {
            errors.push(format!(
                "latency histogram sums to {latency_total} but served = {}",
                self.served
            ));
        }
        if self.approx + self.fallback != self.served {
            errors.push(format!(
                "approx {} + fallback {} != served {}",
                self.approx, self.fallback, self.served
            ));
        }
        if self.watchdog.violations > self.watchdog.samples {
            errors.push(format!(
                "watchdog violations {} exceed samples {}",
                self.watchdog.violations, self.watchdog.samples
            ));
        }
        if !self.route_served.is_empty() {
            let routed_sum: u64 = self.route_served.iter().sum();
            if routed_sum != self.approx {
                errors.push(format!(
                    "route_served sums to {routed_sum} but approx = {}",
                    self.approx
                ));
            }
        }
        if !self.epoch_served.is_empty() {
            let epoch_sum: u64 = self.epoch_served.iter().sum();
            if epoch_sum != self.served {
                errors.push(format!(
                    "epoch_served sums to {epoch_sum} but served = {}",
                    self.served
                ));
            }
        }
        let time_in = self.watchdog.time_in_monitoring
            + self.watchdog.time_in_throttled
            + self.watchdog.time_in_fallback
            + self.watchdog.time_in_probing;
        if time_in != self.watchdog.samples {
            errors.push(format!(
                "time-in-state sums to {time_in} but watchdog samples = {}",
                self.watchdog.samples
            ));
        }
        if self.watchdog.transitions != self.guard_log.len() as u64 + self.guard_log_dropped {
            errors.push(format!(
                "watchdog transitions = {} but guard log holds {} (+{} dropped)",
                self.watchdog.transitions,
                self.guard_log.len(),
                self.guard_log_dropped
            ));
        }
        errors
    }

    /// Appends guard-ladder transitions (already rendered as log entries)
    /// up to [`GUARD_LOG_CAP`], counting overflow — plus `dropped`
    /// transitions the producing shard itself never logged — into
    /// `guard_log_dropped`. The transition total is kept in lockstep so
    /// the log/counter invariant audited by
    /// [`consistency_errors`](Self::consistency_errors) holds.
    pub fn record_guard_transitions<I>(&mut self, entries: I, dropped: u64)
    where
        I: IntoIterator<Item = GuardLogEntry>,
    {
        for entry in entries {
            self.watchdog.transitions += 1;
            if self.guard_log.len() < GUARD_LOG_CAP {
                self.guard_log.push(entry);
            } else {
                self.guard_log_dropped += 1;
            }
        }
        self.watchdog.transitions += dropped;
        self.guard_log_dropped += dropped;
    }

    /// Folds a worker's sub-batch delta into the registry entry — the
    /// single locked update a worker makes per sub-batch.
    pub fn absorb(&mut self, delta: &EndpointCounters) {
        self.served += delta.served;
        self.approx += delta.approx;
        self.fallback += delta.fallback;
        self.rejected_queue_full += delta.rejected_queue_full;
        self.rejected_invalid += delta.rejected_invalid;
        self.duplicates += delta.duplicates;
        self.config_bursts += delta.config_bursts;
        self.approx_wall_nanos += delta.approx_wall_nanos;
        if self.route_served.len() < delta.route_served.len() {
            self.route_served.resize(delta.route_served.len(), 0);
        }
        for (a, b) in self.route_served.iter_mut().zip(&delta.route_served) {
            *a += b;
        }
        if self.epoch_served.len() < delta.epoch_served.len() {
            self.epoch_served.resize(delta.epoch_served.len(), 0);
        }
        for (a, b) in self.epoch_served.iter_mut().zip(&delta.epoch_served) {
            *a += b;
        }
        self.swaps += delta.swaps;
        self.record_guard_transitions(delta.guard_log.iter().cloned(), delta.guard_log_dropped);
        self.latency.merge(&delta.latency);
        self.watchdog.samples += delta.watchdog.samples;
        self.watchdog.violations += delta.watchdog.violations;
        self.watchdog.breaches += delta.watchdog.breaches;
        self.watchdog.recoveries += delta.watchdog.recoveries;
        self.watchdog.time_in_monitoring += delta.watchdog.time_in_monitoring;
        self.watchdog.time_in_throttled += delta.watchdog.time_in_throttled;
        self.watchdog.time_in_fallback += delta.watchdog.time_in_fallback;
        self.watchdog.time_in_probing += delta.watchdog.time_in_probing;
        self.watchdog.recert_triggers += delta.watchdog.recert_triggers;
    }
}

/// One endpoint's metrics, frozen for export.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct EndpointMetrics {
    /// The endpoint (benchmark) name.
    pub name: String,
    /// Invocations the endpoint was asked to cover.
    pub invocations: u64,
    /// Median per-invocation latency, as the histogram bucket bound
    /// (see [`LatencyHistogram::percentile`]).
    pub p50_cycles: u64,
    /// 99th-percentile per-invocation latency bucket bound.
    pub p99_cycles: u64,
    /// 99.9th-percentile per-invocation latency bucket bound.
    pub p999_cycles: u64,
    /// The frozen counters.
    pub counters: EndpointCounters,
}

impl EndpointMetrics {
    /// Freezes one endpoint's counters for export, deriving the latency
    /// percentiles from the histogram at freeze time.
    pub fn freeze(name: String, invocations: u64, counters: EndpointCounters) -> Self {
        Self {
            name,
            invocations,
            p50_cycles: counters.latency.percentile(0.50),
            p99_cycles: counters.latency.percentile(0.99),
            p999_cycles: counters.latency.percentile(0.999),
            counters,
        }
    }
}

/// The whole registry, frozen for export; serializes to the JSON shape
/// `BENCH_serve.json` embeds.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MetricsSnapshot {
    /// Per-endpoint metrics, in endpoint registration order.
    pub endpoints: Vec<EndpointMetrics>,
}

impl MetricsSnapshot {
    /// Audits every endpoint's counters (see
    /// [`EndpointCounters::consistency_errors`]); messages are prefixed
    /// with the endpoint name. Empty means the whole snapshot is
    /// internally consistent.
    pub fn consistency_errors(&self) -> Vec<String> {
        self.endpoints
            .iter()
            .flat_map(|e| {
                let mut errors = e.counters.consistency_errors();
                for (label, frozen, q) in [
                    ("p50_cycles", e.p50_cycles, 0.50),
                    ("p99_cycles", e.p99_cycles, 0.99),
                    ("p999_cycles", e.p999_cycles, 0.999),
                ] {
                    let recomputed = e.counters.latency.percentile(q);
                    if frozen != recomputed {
                        errors.push(format!(
                            "{label} = {frozen} but the histogram says {recomputed}"
                        ));
                    }
                }
                errors
                    .into_iter()
                    .map(move |msg| format!("{}: {msg}", e.name))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_bound() {
        let mut h = LatencyHistogram::default();
        h.record(1.0); // ≤ 64 → bucket 0
        h.record(64.0); // ≤ 64 → bucket 0
        h.record(65.0); // ≤ 128 → bucket 1
        h.record(1e12); // overflow bucket
        assert_eq!(h.counts[0], 2);
        assert_eq!(h.counts[1], 1);
        assert_eq!(*h.counts.last().unwrap(), 1);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn absorb_accumulates_everything() {
        let mut a = EndpointCounters::default();
        let mut d = EndpointCounters {
            served: 3,
            approx: 2,
            fallback: 1,
            rejected_queue_full: 4,
            duplicates: 1,
            config_bursts: 2,
            ..EndpointCounters::default()
        };
        d.latency.record(100.0);
        d.watchdog.samples = 5;
        a.absorb(&d);
        a.absorb(&d);
        assert_eq!(a.served, 6);
        assert_eq!(a.approx, 4);
        assert_eq!(a.fallback, 2);
        assert_eq!(a.rejected_queue_full, 8);
        assert_eq!(a.duplicates, 2);
        assert_eq!(a.config_bursts, 4);
        assert_eq!(a.latency.total(), 2);
        assert_eq!(a.watchdog.samples, 10);
    }

    #[test]
    fn snapshot_serializes() {
        let snap = MetricsSnapshot {
            endpoints: vec![EndpointMetrics::freeze(
                "sobel".into(),
                10,
                EndpointCounters::default(),
            )],
        };
        let json = serde_json::to_string(&snap).unwrap();
        assert!(json.contains("\"sobel\""));
        assert!(json.contains("\"latency\""));
        assert!(json.contains("\"watchdog\""));
        assert!(json.contains("\"p50_cycles\""));
        assert!(json.contains("\"p99_cycles\""));
        assert!(json.contains("\"p999_cycles\""));
        assert!(json.contains("\"route_served\""));
    }

    #[test]
    fn percentile_reports_bucket_upper_bounds() {
        let mut h = LatencyHistogram::default();
        assert_eq!(h.percentile(0.5), 0, "empty histogram reports 0");
        // 99 fast invocations, 1 slow one: p50 sits in the first bucket,
        // p99 still in the first, p999 lands on the straggler.
        for _ in 0..99 {
            h.record(10.0);
        }
        h.record(5000.0); // ≤ 8192 → bucket 7
        assert_eq!(h.percentile(0.50), 64);
        assert_eq!(h.percentile(0.99), 64);
        assert_eq!(h.percentile(0.999), 8192);
        assert_eq!(h.percentile(1.0), 8192);
        // A single overflow sample saturates the top quantile.
        h.record(1e12);
        assert_eq!(h.percentile(1.0), u64::MAX);
    }

    #[test]
    fn percentiles_are_monotone() {
        let mut h = LatencyHistogram::default();
        for cycles in [3.0, 70.0, 300.0, 1500.0, 40_000.0, 900_000.0] {
            h.record(cycles);
        }
        let (p50, p99, p999) = (h.percentile(0.5), h.percentile(0.99), h.percentile(0.999));
        assert!(p50 <= p99 && p99 <= p999, "{p50} {p99} {p999}");
    }

    #[test]
    fn route_served_absorbs_and_audits() {
        let mut a = EndpointCounters::default();
        let mut d = EndpointCounters {
            served: 3,
            approx: 2,
            fallback: 1,
            route_served: vec![1, 1],
            ..EndpointCounters::default()
        };
        d.latency.record(10.0);
        d.latency.record(10.0);
        d.latency.record(10.0);
        assert!(
            d.consistency_errors().is_empty(),
            "{:?}",
            d.consistency_errors()
        );
        a.absorb(&d);
        a.absorb(&d);
        assert_eq!(a.route_served, vec![2, 2]);
        assert!(a.consistency_errors().is_empty());
        // A member count that drifts from `approx` must be flagged.
        a.route_served[0] += 1;
        assert_eq!(a.consistency_errors().len(), 1);
    }

    #[test]
    fn snapshot_flags_stale_percentiles() {
        let mut counters = EndpointCounters {
            served: 1,
            approx: 1,
            ..EndpointCounters::default()
        };
        counters.latency.record(100.0);
        let mut frozen = EndpointMetrics::freeze("sobel".into(), 1, counters);
        let snap = MetricsSnapshot {
            endpoints: vec![frozen.clone()],
        };
        assert!(snap.consistency_errors().is_empty());
        frozen.p99_cycles += 1;
        let stale = MetricsSnapshot {
            endpoints: vec![frozen],
        };
        assert_eq!(stale.consistency_errors().len(), 1);
    }
}
