//! The serving metrics registry.
//!
//! Each endpoint accumulates counters (served, approximated, precise,
//! rejected), a fixed-bucket latency histogram in simulated cycles, and
//! the watchdog's lifetime transition counts. Workers batch their updates
//! — one registry lock per sub-batch, not per invocation — and the whole
//! registry exports as a serializable [`MetricsSnapshot`] (the payload a
//! scrape endpoint or the throughput benchmark serializes to JSON).

use serde::Serialize;

/// Upper bounds (inclusive) of the latency histogram buckets, in cycles.
/// Powers of two from 64 to 2^21, spanning sub-microsecond NPU invocations
/// through multi-kilocycle precise kernels with shadow samples; a final
/// implicit overflow bucket catches everything beyond.
pub const LATENCY_BUCKET_BOUNDS: [u64; 16] = [
    64,
    128,
    256,
    512,
    1024,
    2048,
    4096,
    8192,
    16384,
    32768,
    65536,
    131072,
    262144,
    524288,
    1 << 20,
    1 << 21,
];

/// A fixed-bucket histogram of per-invocation latency in simulated cycles.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct LatencyHistogram {
    /// `counts[i]` holds invocations with latency ≤ `LATENCY_BUCKET_BOUNDS[i]`
    /// (and above the previous bound); the last slot is the overflow
    /// bucket.
    pub counts: Vec<u64>,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self {
            counts: vec![0; LATENCY_BUCKET_BOUNDS.len() + 1],
        }
    }
}

impl LatencyHistogram {
    /// Records one invocation's latency.
    pub fn record(&mut self, cycles: f64) {
        let idx = LATENCY_BUCKET_BOUNDS
            .iter()
            .position(|&bound| cycles <= bound as f64)
            .unwrap_or(LATENCY_BUCKET_BOUNDS.len());
        self.counts[idx] += 1;
    }

    /// Total recorded invocations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }
}

/// Watchdog activity aggregated across an endpoint's worker shards.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct WatchdogStats {
    /// Shadow quality samples taken.
    pub samples: u64,
    /// Sampled threshold violations.
    pub violations: u64,
    /// Ladder step-downs (into Throttled or Fallback).
    pub breaches: u64,
    /// Full-admission restorations (back to Monitoring).
    pub recoveries: u64,
}

/// One endpoint's counters — the mutable registry entry workers update.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct EndpointCounters {
    /// Requests completed by a worker (admitted through the queue).
    pub served: u64,
    /// Served requests the classifier sent to the accelerator.
    pub approx: u64,
    /// Served requests that ran the precise function (classifier reject
    /// or watchdog fallback).
    pub fallback: u64,
    /// Requests refused at admission because the queue was full.
    pub rejected_queue_full: u64,
    /// Requests refused at admission for an out-of-range invocation.
    pub rejected_invalid: u64,
    /// Requests that named an already-served invocation; detected at the
    /// slot table, never double-charged.
    pub duplicates: u64,
    /// Config-FIFO refill bursts (amortized across each batch).
    pub config_bursts: u64,
    /// Per-invocation latency distribution in cycles.
    pub latency: LatencyHistogram,
    /// Aggregated watchdog activity across this endpoint's shards.
    pub watchdog: WatchdogStats,
}

impl EndpointCounters {
    /// Audits the counter set's internal invariants, returning one message
    /// per violation (empty means consistent).
    ///
    /// The invariants are structural, not statistical: the latency
    /// histogram records exactly the served invocations, so its bucket sum
    /// must equal `served`; and every served request ran exactly one of
    /// the two paths, so `approx + fallback` must equal `served`. Both
    /// survive [`absorb`](Self::absorb), which is how the conformance
    /// harness and the serve tests catch a shard whose delta was dropped
    /// or double-counted.
    pub fn consistency_errors(&self) -> Vec<String> {
        let mut errors = Vec::new();
        let latency_total = self.latency.total();
        if latency_total != self.served {
            errors.push(format!(
                "latency histogram sums to {latency_total} but served = {}",
                self.served
            ));
        }
        if self.approx + self.fallback != self.served {
            errors.push(format!(
                "approx {} + fallback {} != served {}",
                self.approx, self.fallback, self.served
            ));
        }
        if self.watchdog.violations > self.watchdog.samples {
            errors.push(format!(
                "watchdog violations {} exceed samples {}",
                self.watchdog.violations, self.watchdog.samples
            ));
        }
        errors
    }

    /// Folds a worker's sub-batch delta into the registry entry — the
    /// single locked update a worker makes per sub-batch.
    pub fn absorb(&mut self, delta: &EndpointCounters) {
        self.served += delta.served;
        self.approx += delta.approx;
        self.fallback += delta.fallback;
        self.rejected_queue_full += delta.rejected_queue_full;
        self.rejected_invalid += delta.rejected_invalid;
        self.duplicates += delta.duplicates;
        self.config_bursts += delta.config_bursts;
        self.latency.merge(&delta.latency);
        self.watchdog.samples += delta.watchdog.samples;
        self.watchdog.violations += delta.watchdog.violations;
        self.watchdog.breaches += delta.watchdog.breaches;
        self.watchdog.recoveries += delta.watchdog.recoveries;
    }
}

/// One endpoint's metrics, frozen for export.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct EndpointMetrics {
    /// The endpoint (benchmark) name.
    pub name: String,
    /// Invocations the endpoint was asked to cover.
    pub invocations: u64,
    /// The frozen counters.
    pub counters: EndpointCounters,
}

/// The whole registry, frozen for export; serializes to the JSON shape
/// `BENCH_serve.json` embeds.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MetricsSnapshot {
    /// Per-endpoint metrics, in endpoint registration order.
    pub endpoints: Vec<EndpointMetrics>,
}

impl MetricsSnapshot {
    /// Audits every endpoint's counters (see
    /// [`EndpointCounters::consistency_errors`]); messages are prefixed
    /// with the endpoint name. Empty means the whole snapshot is
    /// internally consistent.
    pub fn consistency_errors(&self) -> Vec<String> {
        self.endpoints
            .iter()
            .flat_map(|e| {
                e.counters
                    .consistency_errors()
                    .into_iter()
                    .map(move |msg| format!("{}: {msg}", e.name))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_bound() {
        let mut h = LatencyHistogram::default();
        h.record(1.0); // ≤ 64 → bucket 0
        h.record(64.0); // ≤ 64 → bucket 0
        h.record(65.0); // ≤ 128 → bucket 1
        h.record(1e12); // overflow bucket
        assert_eq!(h.counts[0], 2);
        assert_eq!(h.counts[1], 1);
        assert_eq!(*h.counts.last().unwrap(), 1);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn absorb_accumulates_everything() {
        let mut a = EndpointCounters::default();
        let mut d = EndpointCounters {
            served: 3,
            approx: 2,
            fallback: 1,
            rejected_queue_full: 4,
            duplicates: 1,
            config_bursts: 2,
            ..EndpointCounters::default()
        };
        d.latency.record(100.0);
        d.watchdog.samples = 5;
        a.absorb(&d);
        a.absorb(&d);
        assert_eq!(a.served, 6);
        assert_eq!(a.approx, 4);
        assert_eq!(a.fallback, 2);
        assert_eq!(a.rejected_queue_full, 8);
        assert_eq!(a.duplicates, 2);
        assert_eq!(a.config_bursts, 4);
        assert_eq!(a.latency.total(), 2);
        assert_eq!(a.watchdog.samples, 10);
    }

    #[test]
    fn snapshot_serializes() {
        let snap = MetricsSnapshot {
            endpoints: vec![EndpointMetrics {
                name: "sobel".into(),
                invocations: 10,
                counters: EndpointCounters::default(),
            }],
        };
        let json = serde_json::to_string(&snap).unwrap();
        assert!(json.contains("\"sobel\""));
        assert!(json.contains("\"latency\""));
        assert!(json.contains("\"watchdog\""));
    }
}
