//! Endpoints: one compiled benchmark, served as an addressable unit.
//!
//! An [`EndpointSpec`] binds a compiled artifact to the dataset profile it
//! serves; the engine lowers it into an [`EndpointState`] carrying the
//! precomputed [`InvocationModel`], the oracle ground truth, the NPU
//! configuration image, the calibrated watchdog prototype each worker
//! forks, and the slot table collecting per-invocation results. Slots are
//! keyed by invocation index, so however requests interleave across
//! workers, the finished endpoint folds its charges in index order — the
//! ordering that makes the aggregate bit-identical to sequential
//! simulation.

use crate::error::ServeError;
use crate::metrics::EndpointCounters;
use mithra_core::classifier::Classifier;
use mithra_core::pipeline::Compiled;
use mithra_core::profile::{DatasetProfile, Route};
use mithra_core::route::{oracle_route, RouteChoice, RoutedCompiled};
use mithra_core::table::TableClassifier;
use mithra_core::watchdog::{self, QualityWatchdog, WatchdogConfig};
use mithra_core::MithraError;
use mithra_sim::fault::FifoEvent;
use mithra_sim::system::{InvocationModel, RoutedInvocationModel, RunResult, SimOptions};
use mithra_stats::clopper_pearson::Confidence;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The sentinel value of the shared re-certification trigger when no
/// request is pending.
const TRIGGER_CLEAR: u64 = u64::MAX;

/// The live operating point of an endpoint: the threshold/classifier pair
/// (and the watchdog prototype guarding it) that requests are currently
/// served under, versioned by a swap epoch.
///
/// Workers grab the current `Arc` at sub-batch start, so a hot swap never
/// tears a batch: an in-flight sub-batch finishes on the epoch it started
/// under, and the worker's next sub-batch picks up the new one. That is
/// the whole synchronization story — no locks on the serving path beyond
/// the one pointer load per sub-batch.
#[derive(Debug)]
pub(crate) struct OperatingPoint {
    /// Swap generation: 0 is the compile-time certificate, each installed
    /// swap bumps it by one.
    pub epoch: u64,
    /// The local error threshold shadow samples are judged against.
    pub threshold: f32,
    /// The classifier workers clone into their shards.
    pub table: TableClassifier,
    /// Watchdog prototype for this epoch; each worker forks a fresh copy,
    /// so a swap also resets the guard ladder to `Monitoring`.
    pub watchdog_proto: Option<QualityWatchdog>,
}

/// A compiled benchmark plus the dataset it serves — the unit the engine
/// exposes as an endpoint.
#[derive(Debug)]
pub struct EndpointSpec {
    /// Display/metrics name (conventionally the benchmark name).
    pub name: String,
    /// The compiled artifact (accelerator, threshold, classifiers).
    pub compiled: Arc<Compiled>,
    /// The profiled dataset whose invocations this endpoint serves.
    pub profile: DatasetProfile,
    /// Optional multi-approximator routing attachment. `None` serves the
    /// binary accept/reject path exactly as before; `Some` routes each
    /// invocation over the pool instead (see [`RoutedServeSpec`]).
    pub routed: Option<RoutedServeSpec>,
}

/// The routing attachment of an endpoint: the routed compile product and
/// the pool's view of the served dataset.
#[derive(Debug)]
pub struct RoutedServeSpec {
    /// The routed compile product (pool, certified mixture threshold,
    /// router cascade).
    pub routed: Arc<RoutedCompiled>,
    /// Pool member `m`'s profile of the **same** dataset the endpoint's
    /// `profile` covers, cheapest member first.
    pub member_profiles: Vec<DatasetProfile>,
}

/// One served invocation: the worker's decision and its charge, parked in
/// the slot table until the endpoint is finished.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ServedInvocation {
    /// Did the invocation run on the accelerator?
    pub approx: bool,
    /// Which pool member served it (meaningful only when `approx` on a
    /// routed endpoint; always 0 on the binary path).
    pub member: usize,
    /// Simulated core-visible cycles charged.
    pub cycles: f64,
    /// Simulated energy charged (nJ).
    pub energy: f64,
}

/// The per-invocation result slots of one endpoint.
#[derive(Debug)]
pub(crate) struct SlotTable {
    pub slots: Vec<Option<ServedInvocation>>,
    pub filled: usize,
}

/// The engine-internal state of one endpoint, shared across workers.
#[derive(Debug)]
pub(crate) struct EndpointState {
    pub name: String,
    pub compiled: Arc<Compiled>,
    pub profile: DatasetProfile,
    pub model: InvocationModel,
    /// Oracle ground truth at the certified threshold, for false-decision
    /// accounting.
    pub oracle_rejects: Vec<bool>,
    /// The NPU configuration image (weights and biases as raw bit words)
    /// streamed through the config FIFO once per same-endpoint sub-batch.
    pub config_words: Vec<u32>,
    /// The epoch-versioned operating point workers serve under; swapped
    /// atomically by [`install`](Self::install).
    op: Mutex<Arc<OperatingPoint>>,
    /// The shared re-certification trigger: [`TRIGGER_CLEAR`] when clear,
    /// otherwise the epoch whose watchdog shards requested
    /// re-certification. One trigger per endpoint per epoch — the fix for
    /// per-worker forked watchdogs racing to fire their own.
    trigger: AtomicU64,
    /// Routed sub-state; `None` keeps the binary serving path untouched.
    pub routed: Option<RoutedEndpointState>,
    pub slots: Mutex<SlotTable>,
    pub counters: Mutex<EndpointCounters>,
}

/// Lowered routing attachment: per-route cost models, per-member NPU
/// configuration images, and the oracle route of every invocation.
#[derive(Debug)]
pub(crate) struct RoutedEndpointState {
    pub routed: Arc<RoutedCompiled>,
    pub member_profiles: Vec<DatasetProfile>,
    pub model: RoutedInvocationModel,
    /// Per-member configuration images, streamed on route switches.
    pub member_config_words: Vec<Vec<u32>>,
    /// Ground-truth route of every invocation at the certified routed
    /// threshold, for false-decision accounting.
    pub oracle_routes: Vec<RouteChoice>,
}

impl RoutedEndpointState {
    fn build(
        spec: RoutedServeSpec,
        served_invocations: usize,
        options: &SimOptions,
    ) -> Result<Self, ServeError> {
        let RoutedServeSpec {
            routed,
            member_profiles,
        } = spec;
        if member_profiles.len() != routed.pool.len() {
            return Err(ServeError::Core(MithraError::InsufficientData {
                stage: "routed endpoint build",
                available: member_profiles.len(),
                needed: routed.pool.len(),
            }));
        }
        for p in &member_profiles {
            if p.invocation_count() != served_invocations {
                return Err(ServeError::Core(MithraError::InsufficientData {
                    stage: "routed endpoint build",
                    available: p.invocation_count(),
                    needed: served_invocations,
                }));
            }
        }
        let model = RoutedInvocationModel::new(&routed, options);
        let threshold = model.threshold();
        let refs: Vec<&DatasetProfile> = member_profiles.iter().collect();
        let oracle_routes = (0..served_invocations)
            .map(|i| oracle_route(&refs, i, threshold))
            .collect();
        let member_config_words = routed
            .pool
            .members()
            .iter()
            .map(|member| {
                let (weights, biases) = member.npu().to_parameters();
                weights
                    .iter()
                    .chain(biases.iter())
                    .map(|w| w.to_bits())
                    .collect()
            })
            .collect();
        Ok(Self {
            routed,
            member_profiles,
            model,
            member_config_words,
            oracle_routes,
        })
    }
}

impl EndpointState {
    /// Lowers a spec: precomputes the invocation model and ground truth,
    /// encodes the config image, and calibrates the watchdog prototype
    /// once (workers fork it instead of re-running calibration).
    pub fn build(
        spec: EndpointSpec,
        options: &SimOptions,
        watchdog_enabled: bool,
    ) -> Result<Self, ServeError> {
        let EndpointSpec {
            name,
            compiled,
            profile,
            routed,
        } = spec;
        let model = InvocationModel::new(&compiled, &compiled.table.overhead(), options);
        let oracle_rejects = profile.oracle_rejects(model.threshold());
        let (weights, biases) = compiled.function.npu().to_parameters();
        let config_words: Vec<u32> = weights
            .iter()
            .chain(biases.iter())
            .map(|w| w.to_bits())
            .collect();
        let watchdog_proto = if watchdog_enabled {
            let confidence = Confidence::new(0.95).expect("0.95 is a valid confidence");
            let mut calibration_cls = compiled.table.clone();
            let config = watchdog::calibrate(
                &mut calibration_cls,
                &compiled.profiles,
                model.threshold(),
                confidence,
            )
            .map_err(ServeError::Core)?;
            Some(QualityWatchdog::new(config))
        } else {
            None
        };
        let n = profile.invocation_count();
        let routed = routed
            .map(|r| RoutedEndpointState::build(r, n, options))
            .transpose()?;
        let op = Arc::new(OperatingPoint {
            epoch: 0,
            threshold: model.threshold(),
            table: compiled.table.clone(),
            watchdog_proto,
        });
        Ok(Self {
            name,
            compiled,
            profile,
            model,
            oracle_rejects,
            config_words,
            op: Mutex::new(op),
            trigger: AtomicU64::new(TRIGGER_CLEAR),
            routed,
            slots: Mutex::new(SlotTable {
                slots: vec![None; n],
                filled: 0,
            }),
            counters: Mutex::new(EndpointCounters::default()),
        })
    }

    /// The operating point new sub-batches serve under. Workers call this
    /// once per sub-batch and keep the `Arc` for the batch's duration.
    pub(crate) fn operating_point(&self) -> Arc<OperatingPoint> {
        Arc::clone(&self.op.lock().expect("operating-point lock poisoned"))
    }

    /// Raises the shared re-certification trigger for `epoch`. Returns
    /// `true` only for the shard that raised it first; concurrent shards
    /// observing `Fallback` together lose the compare-exchange and return
    /// `false`, so the trigger fires exactly once per epoch.
    pub(crate) fn request_recert(&self, epoch: u64) -> bool {
        self.trigger
            .compare_exchange(TRIGGER_CLEAR, epoch, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// The epoch whose watchdogs requested re-certification, if any.
    pub(crate) fn recert_requested(&self) -> Option<u64> {
        match self.trigger.load(Ordering::Acquire) {
            TRIGGER_CLEAR => None,
            epoch => Some(epoch),
        }
    }

    /// Atomically installs a new operating point — the hot-swap path.
    /// Bumps the epoch, resets the shared trigger, and returns the new
    /// epoch. `watchdog` of `None` carries the previous epoch's watchdog
    /// configuration forward (workers still fork fresh, `Monitoring`
    /// instances); `Some` installs the re-certified configuration.
    pub(crate) fn install(
        &self,
        threshold: f32,
        table: TableClassifier,
        watchdog: Option<WatchdogConfig>,
    ) -> u64 {
        let mut op = self.op.lock().expect("operating-point lock poisoned");
        let watchdog_proto = match watchdog {
            Some(config) => Some(QualityWatchdog::new(config)),
            None => op.watchdog_proto.clone(),
        };
        let next = Arc::new(OperatingPoint {
            epoch: op.epoch + 1,
            threshold,
            table,
            watchdog_proto,
        });
        *op = next;
        // Clear after publishing the swap: a shard that raced the swap and
        // raised the old epoch's trigger is wiped here, and any breach of
        // the *new* pair re-raises it under the new epoch.
        self.trigger.store(TRIGGER_CLEAR, Ordering::Release);
        op.epoch
    }

    /// Folds the filled slot table into a [`RunResult`], in invocation
    /// order — the same initial charges and the same accumulation order as
    /// `mithra_sim::system::run`, which is what pins batched serving to
    /// the sequential simulator bit-for-bit (watchdog off). Returns `None`
    /// while any invocation is still unserved.
    ///
    /// # Errors
    ///
    /// Propagates quality-scoring failures from the routed replay.
    pub fn finish(&self) -> Result<Option<RunResult>, ServeError> {
        let table = self.slots.lock().expect("slot lock poisoned");
        let n = table.slots.len();
        if table.filled < n {
            return Ok(None);
        }
        if let Some(routed) = &self.routed {
            return Self::finish_routed(routed, &table).map(Some);
        }
        let baseline = self.model.baseline(n);
        let startup = self.model.startup(n);
        let mut cycles = startup.cycles;
        let mut energy = startup.energy;
        let mut routes: Vec<Route> = Vec::with_capacity(n);
        let mut invoked = 0usize;
        let (mut false_positives, mut false_negatives) = (0usize, 0usize);
        for (i, slot) in table.slots.iter().enumerate() {
            let s = slot.expect("filled table has no holes");
            cycles += s.cycles;
            energy += s.energy;
            if s.approx {
                invoked += 1;
                if self.oracle_rejects[i] {
                    false_negatives += 1;
                }
                routes.push(Route::Approx);
            } else {
                if !self.oracle_rejects[i] {
                    false_positives += 1;
                }
                routes.push(Route::Precise);
            }
        }
        drop(table);
        let replay = self
            .profile
            .try_replay_routed(&self.compiled.function, &routes)
            .map_err(ServeError::Core)?;
        Ok(Some(RunResult {
            baseline_cycles: baseline.cycles,
            accelerated_cycles: cycles,
            baseline_energy_nj: baseline.energy,
            accelerated_energy_nj: energy,
            quality_loss: replay.quality_loss,
            invoked,
            total: n,
            false_positives,
            false_negatives,
        }))
    }

    /// The routed counterpart of the binary fold: identical index-order
    /// accumulation, but slots resolve to [`RouteChoice`]s, false
    /// decisions are judged against the routing oracle, and quality comes
    /// from the pool's mixed replay — the same fold
    /// `mithra_sim::system::run_routed` performs, which is what keeps a
    /// fully-covered routed endpoint bit-identical to the sequential
    /// routed simulator.
    fn finish_routed(
        routed: &RoutedEndpointState,
        table: &SlotTable,
    ) -> Result<RunResult, ServeError> {
        let n = table.slots.len();
        let baseline = routed.model.baseline(n);
        let startup = routed.model.startup(n);
        let mut cycles = startup.cycles;
        let mut energy = startup.energy;
        let threshold = routed.model.threshold();
        let mut choices: Vec<RouteChoice> = Vec::with_capacity(n);
        let mut invoked = 0usize;
        let (mut false_positives, mut false_negatives) = (0usize, 0usize);
        for (i, slot) in table.slots.iter().enumerate() {
            let s = slot.expect("filled table has no holes");
            cycles += s.cycles;
            energy += s.energy;
            if s.approx {
                invoked += 1;
                if routed.member_profiles[s.member].max_error(i) > threshold {
                    false_negatives += 1;
                }
                choices.push(RouteChoice::Member(s.member));
            } else {
                if !routed.oracle_routes[i].is_precise() {
                    false_positives += 1;
                }
                choices.push(RouteChoice::Precise);
            }
        }
        let refs: Vec<&DatasetProfile> = routed.member_profiles.iter().collect();
        let replay = routed
            .routed
            .pool
            .replay_routed_choices(&refs, &choices)
            .map_err(ServeError::Core)?;
        Ok(RunResult {
            baseline_cycles: baseline.cycles,
            accelerated_cycles: cycles,
            baseline_energy_nj: baseline.energy,
            accelerated_energy_nj: energy,
            quality_loss: replay.quality_loss,
            invoked,
            total: n,
            false_positives,
            false_negatives,
        })
    }

    /// Records a sub-batch of served invocations under one slot-table
    /// lock, pushing `true` per entry into `fresh` — or `false` (charging
    /// nothing) for a slot that was already filled, a duplicate request.
    pub fn fill_slots(&self, entries: &[(usize, ServedInvocation)], fresh: &mut Vec<bool>) {
        fresh.clear();
        let mut table = self.slots.lock().expect("slot lock poisoned");
        for &(invocation, served) in entries {
            let slot = &mut table.slots[invocation];
            if slot.is_some() {
                fresh.push(false);
            } else {
                *slot = Some(served);
                table.filled += 1;
                fresh.push(true);
            }
        }
    }
}

/// Re-exported for workers: the clean FIFO event serving always charges.
pub(crate) const CLEAN_EVENT: FifoEvent = FifoEvent::None;
