//! The sharded serving engine.
//!
//! `N` worker threads, each owning its **own** NPU context per endpoint —
//! FIFOs, the fixed-point accelerator, a classifier clone, and a forked
//! [`QualityWatchdog`] — drain a shared bounded request queue in batches.
//! Within a batch, consecutive requests for the same endpoint form a
//! sub-batch: the worker streams the endpoint's NPU configuration image
//! through the config FIFO **once** for the whole sub-batch (the
//! amortization batching buys), then classifies and executes each
//! invocation individually — the accept/reject decision stays strictly
//! per-invocation, exactly as MITHRA requires.
//!
//! Cost accounting goes through the same [`InvocationModel`] constants the
//! sequential simulator uses, and per-invocation results land in
//! index-keyed slots, so a finished endpoint's [`RunResult`] is
//! **bit-identical** to `sim::system::simulate` regardless of worker
//! count, batch size, or arrival order (watchdog off; with the watchdog
//! on, admission becomes shard-local state and the engine trades that
//! identity for per-shard guarding).
//!
//! [`InvocationModel`]: mithra_sim::system::InvocationModel

use crate::endpoint::{EndpointSpec, EndpointState, OperatingPoint, ServedInvocation, CLEAN_EVENT};
use crate::error::{RejectReason, ServeError};
use crate::metrics::{
    guard_state_name, EndpointCounters, EndpointMetrics, GuardLogEntry, MetricsSnapshot,
};
use crate::queue::{BoundedQueue, PushError};
use mithra_core::classifier::{Classifier, Decision};
use mithra_core::function::InvokeScratch;
use mithra_core::profile::default_threads;
use mithra_core::route::{RouteChoice, RouteClassifier};
use mithra_core::table::TableClassifier;
use mithra_core::watchdog::{GuardState, QualityWatchdog, WatchdogConfig};
use mithra_npu::fifo::QueueInterface;
use mithra_sim::system::{RunResult, SimOptions};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Worker-pool and batching configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Worker threads (0 = available parallelism, the shared `--threads`
    /// default).
    pub workers: usize,
    /// Requests a worker drains per queue visit (clamped to ≥ 1). Batch 1
    /// degenerates to per-request queue visits and per-request config
    /// streaming — the unamortized baseline.
    pub batch: usize,
    /// Request-queue capacity; a full queue rejects with
    /// [`RejectReason::QueueFull`].
    pub queue_depth: usize,
    /// Shadow-sampling period of the per-worker quality watchdogs
    /// (0 disables the watchdog entirely — the canonical off spelling).
    pub watchdog_period: usize,
    /// Cost-model options shared with the sequential simulator.
    pub options: SimOptions,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 0,
            batch: 8,
            queue_depth: 1024,
            watchdog_period: 0,
            options: SimOptions::default(),
        }
    }
}

/// One invocation request: which endpoint, which invocation of its
/// dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Index of the endpoint (registration order).
    pub endpoint: usize,
    /// Invocation index within the endpoint's dataset.
    pub invocation: usize,
}

struct Shared {
    endpoints: Vec<EndpointState>,
    queue: BoundedQueue<Request>,
    batch: usize,
    watchdog_period: usize,
}

/// A worker's private NPU context for one endpoint: its own FIFOs,
/// classifier clone, scratch output buffer, and forked watchdog — all
/// derived from (and pinned to) one epoch's [`OperatingPoint`].
struct WorkerCtx {
    /// The operating point this shard currently serves under. Refreshed
    /// at sub-batch boundaries only, so a hot swap never tears a batch.
    op: Arc<OperatingPoint>,
    classifier: TableClassifier,
    /// The router cascade clone for routed endpoints (`None` binary).
    router: Option<RouteClassifier>,
    queues: QueueInterface,
    watchdog: Option<QualityWatchdog>,
    out: Vec<f32>,
    /// Scratch for [`EndpointState::fill_slots`] freshness flags.
    fresh: Vec<bool>,
    /// Persistent accelerator scratch: one set of buffers per worker per
    /// endpoint, so the serve hot loop allocates nothing per invocation.
    scratch: InvokeScratch,
    /// Decision per request of the current sub-batch, aligned with the
    /// request slice: `(decision, shadow_sampled)`.
    decisions: Vec<(Decision, bool)>,
    /// Flat input staging for the approximate subset of a sub-batch.
    batch_in: Vec<f32>,
    /// Flat accelerator outputs for the approximate subset.
    batch_out: Vec<f32>,
}

impl WorkerCtx {
    fn new(state: &EndpointState) -> Self {
        let op = state.operating_point();
        Self {
            classifier: op.table.clone(),
            router: state.routed.as_ref().map(|r| r.routed.router.clone()),
            queues: QueueInterface::new(),
            watchdog: op.watchdog_proto.as_ref().map(QualityWatchdog::fork),
            out: Vec::new(),
            fresh: Vec::new(),
            scratch: InvokeScratch::new(),
            decisions: Vec::new(),
            batch_in: Vec::new(),
            batch_out: Vec::new(),
            op,
        }
    }

    /// Picks up a hot swap at a sub-batch boundary: when the endpoint's
    /// epoch moved past this shard's, the old shard watchdog's lifetime
    /// stats are folded (its epoch is over) and the classifier, watchdog,
    /// and threshold are rebuilt from the new operating point. In-flight
    /// work is unaffected — this runs only between sub-batches.
    fn refresh(&mut self, state: &EndpointState) {
        let current = state.operating_point();
        if current.epoch == self.op.epoch {
            return;
        }
        if let Some(dog) = self.watchdog.take() {
            fold_watchdog(&dog, &state.counters);
        }
        self.classifier = current.table.clone();
        self.watchdog = current.watchdog_proto.as_ref().map(QualityWatchdog::fork);
        self.op = current;
    }
}

/// Folds one shard watchdog's lifetime report — counts, time-in-state,
/// and the transition log — into the endpoint's registry entry. Called
/// when a shard retires a watchdog: at worker exit, or when an epoch swap
/// replaces it.
fn fold_watchdog(dog: &QualityWatchdog, counters: &Mutex<EndpointCounters>) {
    let report = dog.report();
    let mut c = counters.lock().expect("metrics lock poisoned");
    c.watchdog.samples += report.samples;
    c.watchdog.violations += report.violations;
    c.watchdog.breaches += report.breaches;
    c.watchdog.recoveries += report.recoveries;
    c.watchdog.time_in_monitoring += report.time_in.monitoring;
    c.watchdog.time_in_throttled += report.time_in.throttled;
    c.watchdog.time_in_fallback += report.time_in.fallback;
    c.watchdog.time_in_probing += report.time_in.probing;
    c.record_guard_transitions(
        report.transitions.iter().map(|t| GuardLogEntry {
            at_sample: t.at_sample,
            from: guard_state_name(t.from).to_string(),
            to: guard_state_name(t.to).to_string(),
        }),
        report.transitions_dropped,
    );
}

/// The batched, sharded serving engine over a set of endpoints.
pub struct ServeEngine {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ServeEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeEngine")
            .field("endpoints", &self.shared.endpoints.len())
            .field("workers", &self.workers.len())
            .field("batch", &self.shared.batch)
            .field("queue_depth", &self.shared.queue.capacity())
            .finish()
    }
}

impl ServeEngine {
    /// Builds the endpoints and starts the worker pool.
    ///
    /// # Errors
    ///
    /// [`ServeError::NoEndpoints`] for an empty spec list;
    /// [`ServeError::UnsupportedOptions`] when
    /// `options.online_update_period != 0` (online table updates mutate
    /// classifier state, which would make decisions depend on request
    /// interleaving) or when `watchdog_period > 0` alongside a routed
    /// endpoint (binary admission cannot attribute to routes);
    /// [`ServeError::Core`] when watchdog calibration fails or a routed
    /// attachment's member profiles mismatch the served dataset.
    pub fn start(specs: Vec<EndpointSpec>, config: &ServeConfig) -> Result<Self, ServeError> {
        if config.options.online_update_period != 0 {
            return Err(ServeError::UnsupportedOptions(
                "online_update_period must be 0: online table updates make \
                 decisions depend on request interleaving",
            ));
        }
        if specs.is_empty() {
            return Err(ServeError::NoEndpoints);
        }
        if config.watchdog_period > 0 && specs.iter().any(|s| s.routed.is_some()) {
            return Err(ServeError::UnsupportedOptions(
                "watchdog_period must be 0 with routed endpoints: the \
                 watchdog's binary admission ladder has no per-route \
                 attribution, so guarding would silently degrade the \
                 routed mixture's accounting",
            ));
        }
        let endpoints = specs
            .into_iter()
            .map(|spec| EndpointState::build(spec, &config.options, config.watchdog_period > 0))
            .collect::<Result<Vec<_>, _>>()?;
        let shared = Arc::new(Shared {
            endpoints,
            queue: BoundedQueue::new(config.queue_depth),
            batch: config.batch.max(1),
            watchdog_period: config.watchdog_period,
        });
        let worker_count = if config.workers == 0 {
            default_threads()
        } else {
            config.workers
        };
        let workers = (0..worker_count)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawning a serving worker cannot fail")
            })
            .collect();
        Ok(Self { shared, workers })
    }

    /// Number of registered endpoints.
    pub fn endpoint_count(&self) -> usize {
        self.shared.endpoints.len()
    }

    /// A live metrics snapshot — the scrape payload while the engine is
    /// still serving. Shard-local watchdog statistics (samples,
    /// time-in-state, the transition log) fold in only when a shard
    /// retires its watchdog (worker exit or epoch swap), so a mid-flight
    /// scrape reads them lagging the request counters.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            endpoints: self
                .shared
                .endpoints
                .iter()
                .map(|state| {
                    let counters = state
                        .counters
                        .lock()
                        .expect("metrics lock poisoned")
                        .clone();
                    EndpointMetrics::freeze(
                        state.name.clone(),
                        state.profile.invocation_count() as u64,
                        counters,
                    )
                })
                .collect(),
        }
    }

    /// The epoch whose watchdog shards raised the endpoint's shared
    /// re-certification trigger, or `None` when the trigger is clear.
    /// The trigger latches until [`swap_operating_point`]
    /// (Self::swap_operating_point) clears it — polling is race-free.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownEndpoint`] for an unregistered endpoint id.
    pub fn recert_requested(&self, endpoint: usize) -> Result<Option<u64>, ServeError> {
        let state = self
            .shared
            .endpoints
            .get(endpoint)
            .ok_or(ServeError::UnknownEndpoint(endpoint))?;
        Ok(state.recert_requested())
    }

    /// Atomically installs a re-certified operating point — the hot-swap
    /// path of the closed re-certification loop. Bumps the endpoint's
    /// epoch and returns it; workers finish their in-flight sub-batches
    /// on the old epoch and route every subsequent sub-batch through the
    /// new classifier, threshold, and a fresh `Monitoring` watchdog
    /// (configured by `watchdog`, or inheriting the previous epoch's
    /// configuration when `None`). The shared re-certification trigger is
    /// cleared, so a breach of the *new* pair can raise it again.
    ///
    /// Serving never pauses: this is one pointer swap under the
    /// endpoint's operating-point lock, which workers touch only between
    /// sub-batches.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownEndpoint`] for an unregistered endpoint id;
    /// [`ServeError::UnsupportedOptions`] for a routed endpoint (the
    /// binary watchdog/recert ladder has no per-route attribution).
    pub fn swap_operating_point(
        &self,
        endpoint: usize,
        threshold: f32,
        table: TableClassifier,
        watchdog: Option<WatchdogConfig>,
    ) -> Result<u64, ServeError> {
        let state = self
            .shared
            .endpoints
            .get(endpoint)
            .ok_or(ServeError::UnknownEndpoint(endpoint))?;
        if state.routed.is_some() {
            return Err(ServeError::UnsupportedOptions(
                "operating-point swaps target binary endpoints: routed \
                 pools re-certify through the routed compile path, not a \
                 single table/threshold pair",
            ));
        }
        let epoch = state.install(threshold, table, watchdog);
        state.counters.lock().expect("metrics lock poisoned").swaps += 1;
        Ok(epoch)
    }

    /// Submits one invocation request without blocking.
    ///
    /// # Errors
    ///
    /// Rejects with a [`RejectReason`] instead of queueing unboundedly:
    /// unknown endpoint, out-of-range invocation, full queue
    /// (backpressure), or a closed engine. Queue-full and invalid
    /// rejections are counted in the endpoint's metrics.
    pub fn submit(&self, endpoint: usize, invocation: usize) -> Result<(), RejectReason> {
        let state = self
            .shared
            .endpoints
            .get(endpoint)
            .ok_or(RejectReason::UnknownEndpoint)?;
        if invocation >= state.profile.invocation_count() {
            state
                .counters
                .lock()
                .expect("metrics lock poisoned")
                .rejected_invalid += 1;
            return Err(RejectReason::InvalidInvocation);
        }
        match self.shared.queue.try_push(Request {
            endpoint,
            invocation,
        }) {
            Ok(()) => Ok(()),
            Err(PushError::Full) => {
                state
                    .counters
                    .lock()
                    .expect("metrics lock poisoned")
                    .rejected_queue_full += 1;
                Err(RejectReason::QueueFull)
            }
            Err(PushError::Closed) => Err(RejectReason::ShuttingDown),
        }
    }

    /// Validates a slice of requests and enqueues as many as capacity
    /// allows in one queue operation, returning the accepted count (from
    /// the front of the slice — re-offer the rest). Unaccepted requests
    /// are counted as queue-full rejections against their endpoints, the
    /// same backpressure accounting as per-request [`submit`](Self::submit).
    ///
    /// # Errors
    ///
    /// The first invalid request (unknown endpoint or out-of-range
    /// invocation) rejects the whole slice before anything is enqueued; a
    /// closed engine rejects with [`RejectReason::ShuttingDown`].
    pub fn submit_batch(&self, requests: &[Request]) -> Result<usize, RejectReason> {
        for request in requests {
            let state = self
                .shared
                .endpoints
                .get(request.endpoint)
                .ok_or(RejectReason::UnknownEndpoint)?;
            if request.invocation >= state.profile.invocation_count() {
                state
                    .counters
                    .lock()
                    .expect("metrics lock poisoned")
                    .rejected_invalid += 1;
                return Err(RejectReason::InvalidInvocation);
            }
        }
        match self.shared.queue.try_push_batch(requests) {
            Ok(accepted) => {
                for request in &requests[accepted..] {
                    self.shared.endpoints[request.endpoint]
                        .counters
                        .lock()
                        .expect("metrics lock poisoned")
                        .rejected_queue_full += 1;
                }
                Ok(accepted)
            }
            Err(PushError::Closed) => Err(RejectReason::ShuttingDown),
            Err(PushError::Full) => unreachable!("batch push reports full as Ok(0)"),
        }
    }

    /// [`submit`](Self::submit), retrying with bounded exponential
    /// backoff while the queue is full — the closed-loop submission tests
    /// and the throughput benchmark's drain phase use.
    ///
    /// A bare yield loop would burn a core competing with the workers
    /// that must drain the queue; [`crate::backoff::Backoff`] escalates
    /// spin → yield → short bounded parks instead.
    ///
    /// # Errors
    ///
    /// Terminal rejections (unknown endpoint, invalid invocation, closed
    /// engine) propagate; only [`RejectReason::QueueFull`] is retried.
    pub fn submit_or_wait(&self, endpoint: usize, invocation: usize) -> Result<(), RejectReason> {
        let mut backoff = crate::backoff::Backoff::new();
        loop {
            match self.submit(endpoint, invocation) {
                Err(RejectReason::QueueFull) => backoff.wait(),
                other => return other,
            }
        }
    }

    /// Initiates shutdown without consuming the engine: the queue stops
    /// admitting (subsequent submissions reject with
    /// [`RejectReason::ShuttingDown`]) while already-accepted requests
    /// still drain. Idempotent, and implied by [`join`](Self::join) —
    /// this entry point exists so producers that only hold `&self` (e.g.
    /// scoped submitter threads) can race shutdown against in-flight
    /// [`submit_batch`](Self::submit_batch) calls.
    pub fn shutdown(&self) {
        self.shared.queue.close();
    }

    /// Closes the queue, drains the backlog, and joins every worker —
    /// the end of the serving phase. Slot folding and quality scoring
    /// happen later, in [`DrainedEngine::report`], so throughput
    /// measurements can stop the clock here.
    ///
    /// # Errors
    ///
    /// [`ServeError::WorkerPanicked`] when a worker died.
    pub fn join(self) -> Result<DrainedEngine, ServeError> {
        self.shared.queue.close();
        for worker in self.workers {
            worker.join().map_err(|_| ServeError::WorkerPanicked)?;
        }
        Ok(DrainedEngine {
            shared: self.shared,
        })
    }

    /// [`join`](Self::join) followed by [`DrainedEngine::report`].
    ///
    /// # Errors
    ///
    /// [`ServeError::WorkerPanicked`] when a worker died;
    /// [`ServeError::Core`] when quality scoring fails.
    pub fn finish(self) -> Result<ServeReport, ServeError> {
        self.join()?.report()
    }
}

/// An engine whose workers have drained and exited; all that remains is
/// folding slots into per-endpoint reports.
pub struct DrainedEngine {
    shared: Arc<Shared>,
}

impl std::fmt::Debug for DrainedEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DrainedEngine")
            .field("endpoints", &self.shared.endpoints.len())
            .finish()
    }
}

impl DrainedEngine {
    /// Folds each endpoint's slots and frozen counters into the final
    /// report.
    ///
    /// # Errors
    ///
    /// [`ServeError::Core`] when quality scoring fails.
    pub fn report(&self) -> Result<ServeReport, ServeError> {
        let mut endpoints = Vec::with_capacity(self.shared.endpoints.len());
        for state in &self.shared.endpoints {
            let result = state.finish()?;
            let counters = state
                .counters
                .lock()
                .expect("metrics lock poisoned")
                .clone();
            endpoints.push(EndpointReport {
                name: state.name.clone(),
                invocations: state.profile.invocation_count(),
                result,
                counters,
            });
        }
        Ok(ServeReport { endpoints })
    }
}

/// One endpoint's outcome after the engine finished.
#[derive(Debug, Clone)]
pub struct EndpointReport {
    /// The endpoint name.
    pub name: String,
    /// Invocations in the endpoint's dataset.
    pub invocations: usize,
    /// The aggregate simulation result — `Some` only when every
    /// invocation was served (full coverage), in which case it is
    /// bit-identical to sequential `simulate` (watchdog off).
    pub result: Option<RunResult>,
    /// The endpoint's frozen metrics.
    pub counters: EndpointCounters,
}

/// The engine's final report across all endpoints.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Per-endpoint reports, in registration order.
    pub endpoints: Vec<EndpointReport>,
}

impl ServeReport {
    /// The serializable metrics snapshot (the scrape/export payload).
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            endpoints: self
                .endpoints
                .iter()
                .map(|e| {
                    EndpointMetrics::freeze(
                        e.name.clone(),
                        e.invocations as u64,
                        e.counters.clone(),
                    )
                })
                .collect(),
        }
    }
}

fn worker_loop(shared: &Shared) {
    let mut ctxs: Vec<Option<WorkerCtx>> = (0..shared.endpoints.len()).map(|_| None).collect();
    let mut batch: Vec<Request> = Vec::with_capacity(shared.batch);
    loop {
        batch.clear();
        if shared.queue.pop_batch(shared.batch, &mut batch) == 0 {
            break;
        }
        // Consecutive same-endpoint requests form a sub-batch sharing one
        // config-FIFO refill.
        let mut i = 0;
        while i < batch.len() {
            let ep = batch[i].endpoint;
            let mut j = i + 1;
            while j < batch.len() && batch[j].endpoint == ep {
                j += 1;
            }
            let state = &shared.endpoints[ep];
            let ctx = ctxs[ep].get_or_insert_with(|| WorkerCtx::new(state));
            if state.routed.is_some() {
                serve_sub_batch_routed(state, ctx, &batch[i..j]);
            } else {
                ctx.refresh(state);
                serve_sub_batch(state, ctx, &batch[i..j], shared.watchdog_period);
            }
            i = j;
        }
    }
    // Fold each shard watchdog's lifetime report into its endpoint.
    for (ep, ctx) in ctxs.into_iter().enumerate() {
        let Some(dog) = ctx.and_then(|c| c.watchdog) else {
            continue;
        };
        fold_watchdog(&dog, &shared.endpoints[ep].counters);
    }
}

fn serve_sub_batch(
    state: &EndpointState,
    ctx: &mut WorkerCtx,
    requests: &[Request],
    watchdog_period: usize,
) {
    let mut delta = EndpointCounters::default();
    let mut pending: Vec<(usize, ServedInvocation)> = Vec::with_capacity(requests.len());
    // One configuration stream per sub-batch — the per-invocation setup
    // cost batching amortizes.
    delta.config_bursts += ctx.queues.stream_config(&state.config_words) as u64;

    // Pass 1 — decide. Classification, watchdog admission and shadow
    // sampling are sequential (the watchdog is stateful), and the inputs
    // the accelerator will run are staged flat, in request order.
    ctx.decisions.clear();
    ctx.batch_in.clear();
    let mut approx_count = 0usize;
    for request in requests {
        let inv = request.invocation;
        let input = state.profile.dataset().input(inv);
        let raw = ctx.classifier.classify(inv, input);
        let decision = match ctx.watchdog.as_mut() {
            Some(w) => w.admit(raw),
            None => raw,
        };
        let shadow = ctx.watchdog.is_some()
            && watchdog_period > 0
            && raw == Decision::Approximate
            && inv % watchdog_period == 0;
        if shadow {
            // Judged against the *live* epoch's threshold — a hot swap
            // re-certifies a new threshold, and the guard must watch that
            // one, not the compile-time certificate it replaced.
            let violation = state.profile.max_error(inv) > ctx.op.threshold;
            if let Some(w) = ctx.watchdog.as_mut() {
                // Count invariants hold, so the statistics cannot fail;
                // transition totals are folded from the report at
                // shutdown.
                let _ = w.record(violation);
                // Entering Fallback raises the endpoint's *shared*
                // re-certification trigger: exactly one shard wins the
                // compare-exchange per epoch, however many forked
                // watchdogs reach Fallback concurrently.
                if w.state() == GuardState::Fallback && state.request_recert(ctx.op.epoch) {
                    delta.watchdog.recert_triggers += 1;
                }
            }
        }
        if decision == Decision::Approximate {
            ctx.batch_in.extend_from_slice(input);
            approx_count += 1;
        }
        ctx.decisions.push((decision, shadow));
    }

    // Pass 2 — one batched accelerator run over the approximate subset.
    // Per-sample results are bit-identical to the per-invocation path on
    // whichever backend the function carries; on the SIMD backend this is
    // where the lane-parallel tiles earn their keep.
    let function = &state.compiled.function;
    if approx_count > 0 {
        let t0 = std::time::Instant::now();
        function.approx_batch_with(
            &ctx.batch_in[..],
            approx_count,
            &mut ctx.batch_out,
            &mut ctx.scratch,
        );
        delta.approx_wall_nanos += t0.elapsed().as_nanos() as u64;
    }

    // Pass 3 — model and charge, in request (FIFO) order.
    let out_dim = function.benchmark().output_dim();
    let in_dim = function.benchmark().input_dim();
    let mut next_approx = 0usize;
    for (request, &(decision, shadow)) in requests.iter().zip(&ctx.decisions) {
        let inv = request.invocation;
        let approx = decision == Decision::Approximate;
        if approx {
            // The modeled accelerator traffic: operands stream through
            // the input FIFO, results drain from the output FIFO.
            let input = &ctx.batch_in[next_approx * in_dim..(next_approx + 1) * in_dim];
            let out = &ctx.batch_out[next_approx * out_dim..(next_approx + 1) * out_dim];
            ctx.queues.input.enqueue_slice(input);
            ctx.queues.input.clear();
            ctx.queues.output.enqueue_slice(out);
            ctx.queues.output.clear();
            next_approx += 1;
        }
        let charge = state.model.charge(decision, CLEAN_EVENT, shadow);
        pending.push((
            inv,
            ServedInvocation {
                approx,
                member: 0,
                cycles: charge.cycles,
                energy: charge.energy,
            },
        ));
    }
    // One slot-table lock for the whole sub-batch; duplicates surface as
    // `false` entries and are counted, never double-charged.
    state.fill_slots(&pending, &mut ctx.fresh);
    for (&(_, served), &fresh) in pending.iter().zip(ctx.fresh.iter()) {
        if fresh {
            delta.served += 1;
            if served.approx {
                delta.approx += 1;
            } else {
                delta.fallback += 1;
            }
            delta.latency.record(served.cycles);
        } else {
            delta.duplicates += 1;
        }
    }
    // The whole sub-batch ran under one operating point, so its served
    // count is attributed to that epoch wholesale.
    let epoch = ctx.op.epoch as usize;
    delta.epoch_served = vec![0; epoch + 1];
    delta.epoch_served[epoch] = delta.served;
    state
        .counters
        .lock()
        .expect("metrics lock poisoned")
        .absorb(&delta);
}

/// The routed analogue of [`serve_sub_batch`]: the router cascade picks a
/// pool member (or precise fallback) per invocation, and the worker
/// streams a member's configuration image only when the served route
/// *switches* members within the sub-batch — consecutive same-member runs
/// share one config burst, the routed generalization of the binary
/// path's one-burst-per-sub-batch amortization. Precise fallbacks touch
/// no FIFO and leave the configured member in place.
fn serve_sub_batch_routed(state: &EndpointState, ctx: &mut WorkerCtx, requests: &[Request]) {
    let routed = state
        .routed
        .as_ref()
        .expect("routed sub-batch needs routed state");
    let router = ctx
        .router
        .as_mut()
        .expect("routed sub-batch needs a router clone");
    let mut delta = EndpointCounters {
        route_served: vec![0; routed.routed.pool.len()],
        ..Default::default()
    };
    let mut pending: Vec<(usize, ServedInvocation)> = Vec::with_capacity(requests.len());
    // Which member's configuration currently sits in the (simulated)
    // config FIFO; fresh per sub-batch, like the binary path's burst.
    let mut configured: Option<usize> = None;
    for request in requests {
        let inv = request.invocation;
        let input = state.profile.dataset().input(inv);
        let route = router.classify_route(inv, input);
        if let RouteChoice::Member(m) = route {
            if configured != Some(m) {
                delta.config_bursts +=
                    ctx.queues.stream_config(&routed.member_config_words[m]) as u64;
                configured = Some(m);
            }
            // The member's accelerator work: operands through the input
            // FIFO, the member's fixed-point network, results drained.
            ctx.queues.input.enqueue_slice(input);
            ctx.queues.input.clear();
            let t0 = std::time::Instant::now();
            routed
                .routed
                .pool
                .member(m)
                .approx_with(input, &mut ctx.out, &mut ctx.scratch);
            delta.approx_wall_nanos += t0.elapsed().as_nanos() as u64;
            ctx.queues.output.enqueue_slice(&ctx.out);
            ctx.queues.output.clear();
        }
        let charge = routed.model.charge_route(route, CLEAN_EVENT, false);
        pending.push((
            inv,
            ServedInvocation {
                approx: !route.is_precise(),
                member: route.member().unwrap_or(0),
                cycles: charge.cycles,
                energy: charge.energy,
            },
        ));
    }
    state.fill_slots(&pending, &mut ctx.fresh);
    for (&(_, served), &fresh) in pending.iter().zip(ctx.fresh.iter()) {
        if fresh {
            delta.served += 1;
            if served.approx {
                delta.approx += 1;
                delta.route_served[served.member] += 1;
            } else {
                delta.fallback += 1;
            }
            delta.latency.record(served.cycles);
        } else {
            delta.duplicates += 1;
        }
    }
    // Routed endpoints never swap (the engine rejects it), so everything
    // is attributed to the compile-time epoch.
    let epoch = ctx.op.epoch as usize;
    delta.epoch_served = vec![0; epoch + 1];
    delta.epoch_served[epoch] = delta.served;
    state
        .counters
        .lock()
        .expect("metrics lock poisoned")
        .absorb(&delta);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_endpoint_list_is_rejected() {
        let err = ServeEngine::start(vec![], &ServeConfig::default()).unwrap_err();
        assert!(matches!(err, ServeError::NoEndpoints));
    }

    #[test]
    fn online_updates_are_unsupported() {
        let config = ServeConfig {
            options: SimOptions {
                online_update_period: 8,
                ..SimOptions::default()
            },
            ..ServeConfig::default()
        };
        // Option validation fires before endpoint construction, so no
        // compiled artifact is needed to observe it.
        let err = ServeEngine::start(vec![], &config).unwrap_err();
        assert!(matches!(err, ServeError::UnsupportedOptions(_)));
    }

    #[test]
    fn default_config_is_sane() {
        let cfg = ServeConfig::default();
        assert_eq!(cfg.workers, 0, "0 = available parallelism");
        assert!(cfg.batch >= 1);
        assert_eq!(cfg.watchdog_period, 0, "watchdog off by default");
    }
}
