//! Bounded exponential backoff for queue-full retry loops.
//!
//! A bare `yield_now` retry loop burns a full core while the queue stays
//! full: on a loaded host the spinning submitter competes with the very
//! workers that must drain the queue to unblock it. [`Backoff`] escalates
//! instead — a few busy spins (the queue usually frees a slot within
//! nanoseconds under normal load), then scheduler yields, then short
//! parks with exponentially growing but **bounded** sleeps, so a stalled
//! consumer costs microseconds of latency rather than a core.

use std::time::Duration;

/// Escalating wait strategy for retry loops.
///
/// The schedule is deterministic: `SPINS` spin-loop hints, then `YIELDS`
/// scheduler yields, then parks starting at [`Backoff::BASE_PARK`] and
/// doubling to at most [`Backoff::MAX_PARK`]. Call
/// [`reset`](Backoff::reset) after a successful operation so the next
/// contention episode starts cheap again.
#[derive(Debug, Clone, Default)]
pub struct Backoff {
    step: u32,
}

impl Backoff {
    /// Busy-spin steps before the first yield.
    const SPINS: u32 = 6;
    /// Scheduler yields before the first park.
    const YIELDS: u32 = 4;
    /// First park duration.
    const BASE_PARK: Duration = Duration::from_micros(10);
    /// Ceiling on a single park — bounds worst-case added latency once the
    /// queue frees up.
    const MAX_PARK: Duration = Duration::from_millis(1);

    /// A fresh backoff at the start of its schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Restarts the schedule (call after a success).
    pub fn reset(&mut self) {
        self.step = 0;
    }

    /// Waits one step of the schedule and advances it.
    pub fn wait(&mut self) {
        if self.step < Self::SPINS {
            std::hint::spin_loop();
        } else if self.step < Self::SPINS + Self::YIELDS {
            std::thread::yield_now();
        } else {
            let exp = (self.step - Self::SPINS - Self::YIELDS).min(16);
            let park = Self::BASE_PARK
                .saturating_mul(1u32 << exp)
                .min(Self::MAX_PARK);
            std::thread::park_timeout(park);
        }
        self.step = self.step.saturating_add(1);
    }

    /// Whether the schedule has escalated past spinning (used by tests to
    /// assert the loop stops burning a core).
    pub fn is_parking(&self) -> bool {
        self.step > Self::SPINS + Self::YIELDS
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn schedule_escalates_to_parking() {
        let mut b = Backoff::new();
        assert!(!b.is_parking());
        for _ in 0..(Backoff::SPINS + Backoff::YIELDS + 2) {
            b.wait();
        }
        assert!(b.is_parking());
    }

    #[test]
    fn reset_restarts_the_schedule() {
        let mut b = Backoff::new();
        for _ in 0..32 {
            b.wait();
        }
        assert!(b.is_parking());
        b.reset();
        assert!(!b.is_parking());
    }

    #[test]
    fn parks_are_bounded() {
        let mut b = Backoff::new();
        // Drive deep into the park phase; no single wait may exceed the
        // ceiling by more than scheduler noise.
        for _ in 0..64 {
            b.wait();
        }
        let start = Instant::now();
        b.wait();
        assert!(
            start.elapsed() < Duration::from_millis(100),
            "park exceeded bound: {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn step_counter_saturates() {
        // Saturating step arithmetic: must neither panic nor wrap back to
        // the expensive-spin phase.
        let mut b = Backoff { step: u32::MAX - 1 };
        b.wait();
        b.wait();
        assert_eq!(b.step, u32::MAX);
        assert!(b.is_parking());
    }
}
