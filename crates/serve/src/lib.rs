//! `mithra-serve`: a batched, sharded invocation-serving runtime over
//! compiled MITHRA artifacts.
//!
//! MITHRA's decision — NPU or precise core, per invocation — is a
//! *runtime* mechanism, and this crate deploys it as one: each compiled
//! benchmark becomes an **endpoint**, requests flow through a bounded
//! MPMC queue with explicit admission control, and a pool of sharded
//! workers drains them in batches:
//!
//! ```text
//!  clients ──▶ submit() ──▶ [bounded queue] ──▶ worker 0 ─┐
//!              │ reject:                  ╲──▶ worker 1 ─┤──▶ slot
//!              │ full / invalid            ╲─▶ worker N ─┘    table
//!              ▼                               (own FIFOs,      │
//!           metrics ◀──── counters, latency,    classifier,     ▼
//!           registry      watchdog stats        watchdog)   RunResult
//! ```
//!
//! Each worker owns a private NPU context per endpoint (FIFOs, the
//! fixed-point accelerator, a classifier clone, a forked
//! [`QualityWatchdog`]) and amortizes configuration-FIFO streaming across
//! each same-endpoint sub-batch while keeping the accept/reject decision
//! strictly per-invocation. Cost accounting reuses the sequential
//! simulator's [`InvocationModel`] constants and folds per-invocation
//! charges in index order, so a fully-served endpoint's [`RunResult`] is
//! bit-identical to `mithra_sim::system::simulate` for any worker count,
//! batch size, and arrival order (watchdog off) — sharding buys wall-clock
//! throughput, never different numbers.
//!
//! An endpoint may instead attach a [`RoutedServeSpec`]: the router
//! cascade then picks a pool member (or the precise fallback) per
//! invocation, workers stream a member's NPU configuration only on route
//! switches within a sub-batch, and the fully-served fold is
//! bit-identical to `mithra_sim::system::run_routed`.
//!
//! [`QualityWatchdog`]: mithra_core::watchdog::QualityWatchdog
//! [`InvocationModel`]: mithra_sim::system::InvocationModel
//! [`RunResult`]: mithra_sim::system::RunResult

#![warn(missing_docs)]

pub mod backoff;
pub mod endpoint;
pub mod engine;
pub mod error;
pub mod metrics;
pub mod queue;

pub use backoff::Backoff;
pub use endpoint::{EndpointSpec, RoutedServeSpec};
pub use engine::{DrainedEngine, EndpointReport, Request, ServeConfig, ServeEngine, ServeReport};
pub use error::{RejectReason, ServeError};
pub use metrics::{EndpointCounters, GuardLogEntry, LatencyHistogram, MetricsSnapshot};
pub use queue::{BoundedQueue, PushError};
