//! Serving-layer errors.

use mithra_core::MithraError;
use std::error::Error;
use std::fmt;

/// Errors raised by the serving engine.
#[derive(Debug)]
pub enum ServeError {
    /// The engine was started with no endpoints to serve.
    NoEndpoints,
    /// A simulation option the sharded engine cannot honor (the named
    /// constraint explains why).
    UnsupportedOptions(&'static str),
    /// A worker thread panicked; per-endpoint results are unreliable.
    WorkerPanicked,
    /// A control-plane call (swap, trigger query) named an unregistered
    /// endpoint.
    UnknownEndpoint(usize),
    /// A core-layer failure (calibration, quality scoring).
    Core(MithraError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::NoEndpoints => write!(f, "no endpoints to serve"),
            ServeError::UnsupportedOptions(why) => {
                write!(f, "unsupported simulation options: {why}")
            }
            ServeError::WorkerPanicked => write!(f, "a serving worker panicked"),
            ServeError::UnknownEndpoint(id) => {
                write!(f, "endpoint {id} is not registered")
            }
            ServeError::Core(e) => write!(f, "core error: {e}"),
        }
    }
}

impl Error for ServeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServeError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MithraError> for ServeError {
    fn from(e: MithraError) -> Self {
        ServeError::Core(e)
    }
}

/// Why a request was refused at admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The request queue is at capacity — backpressure, retry later.
    QueueFull,
    /// The engine is shutting down; no further requests are accepted.
    ShuttingDown,
    /// The endpoint id does not name a registered endpoint.
    UnknownEndpoint,
    /// The invocation index is outside the endpoint's dataset.
    InvalidInvocation,
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::QueueFull => write!(f, "queue full"),
            RejectReason::ShuttingDown => write!(f, "engine shutting down"),
            RejectReason::UnknownEndpoint => write!(f, "unknown endpoint"),
            RejectReason::InvalidInvocation => write!(f, "invocation out of range"),
        }
    }
}
