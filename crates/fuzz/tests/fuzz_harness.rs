//! Integration checks for the differential-fuzzing harness: every
//! family runs clean on a small seeded budget, detects 100% of its
//! planted mutations, and draws from the workspace seed partition's
//! fuzz window — which stays pairwise disjoint from every other
//! layer's window.

use mithra_core::seeds::{
    ALL_BASES, CONFORM_SEED_BASE, EXTENSION_SEED_BASE, FUZZ_FAMILY_STRIDE, FUZZ_SEED_BASE,
    SERVE_SEED_BASE,
};
use mithra_fuzz::harness::family_seed_base;
use mithra_fuzz::{all_families, run_family};

const SMOKE_BUDGET: u64 = 40;
const SMOKE_MUTATION_BUDGET: u64 = 5;

#[test]
fn every_family_passes_a_smoke_budget() {
    for fam in all_families() {
        let report = run_family(fam.as_ref(), SMOKE_BUDGET, SMOKE_MUTATION_BUDGET);
        assert!(
            report.failures.is_empty(),
            "family {} diverged: {:?}",
            report.name,
            report.failures
        );
        for m in &report.mutations {
            assert_eq!(
                m.detected, m.cases,
                "family {} missed planted mutation {}",
                report.name, m.label
            );
        }
    }
}

#[test]
fn mutated_runs_are_distinguishable_from_clean_ones() {
    // The harness's detection signal is "divergences present": for each
    // family, at least the first smoke seed must separate the mutated
    // and clean worlds.
    for fam in all_families() {
        let seed = family_seed_base(fam.family_index());
        let clean = fam.run_case(seed, 3, None);
        assert!(clean.divergences.is_empty(), "{}", fam.name());
        for mi in 0..fam.mutation_labels().len() {
            let mutated = fam.run_case(seed, 3, Some(mi));
            assert!(
                !mutated.divergences.is_empty(),
                "family {} mutation {} invisible",
                fam.name(),
                fam.mutation_labels()[mi]
            );
        }
    }
}

/// The seed-space partition: one roster, pinned in `mithra_core::seeds`,
/// re-exported (not re-declared) by consuming crates, pairwise disjoint.
#[test]
fn seed_windows_are_pairwise_disjoint_and_centralized() {
    // Constants live in exactly one place: the conform crate's public
    // base is the core roster's value, not an independent copy.
    assert_eq!(mithra_conform::CONFORM_SEED_BASE, CONFORM_SEED_BASE);

    // Windows are [base, next base): strict ascent makes them pairwise
    // disjoint. Check every pair, not just neighbors.
    for (i, (name_a, base_a)) in ALL_BASES.iter().enumerate() {
        for (name_b, base_b) in ALL_BASES.iter().skip(i + 1) {
            assert!(
                base_a < base_b,
                "windows {name_a} and {name_b} are not ordered"
            );
        }
    }

    // The fuzz window holds every family with room to spare and ends
    // before the extension window.
    let families = all_families();
    for fam in &families {
        let base = family_seed_base(fam.family_index());
        assert!(
            base >= FUZZ_SEED_BASE,
            "{} below the fuzz window",
            fam.name()
        );
        assert!(
            base + FUZZ_FAMILY_STRIDE <= EXTENSION_SEED_BASE,
            "{} overflows the fuzz window",
            fam.name()
        );
    }

    // Fuzzing never touches the serving or conformance windows —
    // compile-time pins, so moving the fuzz window below either one
    // fails the build, not just this test.
    const {
        assert!(FUZZ_SEED_BASE > SERVE_SEED_BASE);
        assert!(FUZZ_SEED_BASE > CONFORM_SEED_BASE);
    }
}

#[test]
fn case_outcomes_replay_bit_identically() {
    for fam in all_families() {
        let seed = family_seed_base(fam.family_index()) + 17;
        let a = fam.run_case(seed, 2, None);
        let b = fam.run_case(seed, 2, None);
        assert_eq!(a.divergences, b.divergences, "{}", fam.name());
        assert_eq!(a.allowances, b.allowances, "{}", fam.name());
    }
}
