//! Oracle family `guarantee`: statistical-accounting invariants of the
//! conformance judge.
//!
//! Each case fuzzes a routed conformance instance — trial losses around
//! a fuzzed quality target, per-trial worst-route attributions, a fuzzed
//! [`QualitySpec`] — and checks:
//!
//! * the clean judgement passes its own bit-exact audit
//!   ([`audit_routed`] returns no findings);
//! * violation counts conserve: `successes + violations == trials` and
//!   the per-member `route_violations` sum back to `violations`;
//! * the judgement is **stable under representation-preserving input
//!   permutations**: shuffling the `(loss, route)` pairs must reproduce
//!   the identical [`Judgement`] (every field derives from counts);
//! * Clopper–Pearson bounds at the fuzzed `(k, n)` bracket the point
//!   estimate and are monotone in `k`;
//! * the library's own mutation self-check
//!   ([`self_check_routed`]) detects all five of its planted defects.
//!
//! The mutation pass plants `mithra_conform::Mutation`'s five defects
//! directly into the judging path and requires the independent audit to
//! flag every one — the same discipline `conform::selfcheck` applies,
//! here driven across fuzzed rather than hand-picked inputs.

use crate::gen::{rng_for, scale_size};
use crate::harness::{CaseOutcome, OracleFamily};
use mithra_conform::selfcheck::{audit_routed, judge_routed, self_check_routed, Mutation};
use mithra_core::threshold::QualitySpec;
use mithra_stats::clopper_pearson::{lower_bound, upper_bound};
use rand::seq::SliceRandom;
use rand::Rng;

/// Audit-significance level for verdicts inside the self-check.
const TEST_ALPHA: f64 = 0.05;

/// Target shift used when planting the epsilon mutations.
const EPSILON: f64 = 1e-3;

/// Labels of the planted mutations: exactly
/// [`mithra_conform::Mutation::ALL`], in order.
pub const MUTATIONS: [&str; 5] = [
    "target+eps",
    "target-eps",
    "swapped-bound",
    "violations-off-by-one",
    "route-misattribution",
];

/// The `guarantee` oracle family.
#[derive(Debug, Clone, Copy, Default)]
pub struct GuaranteeFamily;

impl OracleFamily for GuaranteeFamily {
    fn name(&self) -> &'static str {
        "guarantee"
    }

    fn family_index(&self) -> u64 {
        1
    }

    fn mutation_labels(&self) -> &'static [&'static str] {
        &MUTATIONS
    }

    fn run_case(&self, seed: u64, scale: u32, mutation: Option<usize>) -> CaseOutcome {
        let mut outcome = CaseOutcome::default();
        let mut rng = rng_for(seed);
        let trials = scale_size(scale, [16, 32, 80, 160]);
        let n_routes = rng.gen_range(1usize..=4);
        let q = rng.gen_range(0.02f64..0.20);
        let confidence = *[0.90, 0.95, 0.99]
            .get(rng.gen_range(0usize..3))
            .expect("index in range");
        let success_rate = *[0.5, 0.8, 0.9]
            .get(rng.gen_range(0usize..3))
            .expect("index in range");
        let spec = match QualitySpec::new(q, confidence, success_rate) {
            Ok(s) => s,
            Err(e) => {
                outcome.diverge(format!("spec construction failed: {e}"));
                return outcome;
            }
        };

        let violation_p = rng.gen_range(0.0f64..0.4);
        let losses: Vec<f64> = (0..trials)
            .map(|_| {
                if rng.gen_range(0.0f64..1.0) < violation_p {
                    rng.gen_range(q + 1e-6..1.0)
                } else {
                    rng.gen_range(0.0..q)
                }
            })
            .collect();
        let routes: Vec<usize> = (0..trials).map(|_| rng.gen_range(0..n_routes)).collect();

        if let Some(mi) = mutation {
            // Plant the library's own mutation into the judging path;
            // the independent audit must flag it.
            let mutated = Mutation::ALL[mi];
            match judge_routed(&losses, &routes, n_routes, &spec, Some(mutated), EPSILON) {
                Ok(judgement) => match audit_routed(&judgement, &losses, &routes, &spec) {
                    Ok(findings) => {
                        for f in findings {
                            outcome.diverge(format!("audit finding: {}", f.check));
                        }
                    }
                    Err(e) => outcome.diverge(format!("audit errored: {e}")),
                },
                Err(e) => outcome.diverge(format!("mutated judge errored: {e}")),
            }
            return outcome;
        }

        let judgement = match judge_routed(&losses, &routes, n_routes, &spec, None, EPSILON) {
            Ok(j) => j,
            Err(e) => {
                outcome.diverge(format!("judge_routed failed: {e}"));
                return outcome;
            }
        };

        // 1. The clean judgement must pass its own bit-exact audit.
        match audit_routed(&judgement, &losses, &routes, &spec) {
            Ok(findings) => {
                for f in findings {
                    outcome.diverge(format!("clean judgement failed audit: {}", f.check));
                }
            }
            Err(e) => outcome.diverge(format!("audit errored: {e}")),
        }

        // 2. Count conservation.
        if judgement.successes + judgement.violations != judgement.trials {
            outcome.diverge(format!(
                "successes {} + violations {} != trials {}",
                judgement.successes, judgement.violations, judgement.trials
            ));
        }
        if judgement.route_violations.iter().sum::<u64>() != judgement.violations {
            outcome.diverge("route_violations do not sum to violations".to_string());
        }
        if judgement.route_violations.len() != n_routes {
            outcome.diverge("route_violations length != n_routes".to_string());
        }

        // 3. Permutation stability: shuffling the (loss, route) pairs
        // must reproduce the identical judgement.
        let mut pairs: Vec<(f64, usize)> =
            losses.iter().copied().zip(routes.iter().copied()).collect();
        pairs.shuffle(&mut rng);
        let (p_losses, p_routes): (Vec<f64>, Vec<usize>) = pairs.into_iter().unzip();
        match judge_routed(&p_losses, &p_routes, n_routes, &spec, None, EPSILON) {
            Ok(permuted) => {
                if permuted != judgement {
                    outcome.diverge("judgement changed under input permutation".to_string());
                }
            }
            Err(e) => outcome.diverge(format!("permuted judge failed: {e}")),
        }

        // 4. Clopper-Pearson sanity at the fuzzed (k, n).
        let (k, n) = (judgement.successes, judgement.trials);
        let point = k as f64 / n as f64;
        match (
            lower_bound(k, n, spec.confidence),
            upper_bound(k, n, spec.confidence),
        ) {
            (Ok(lo), Ok(hi)) => {
                if !(0.0..=1.0).contains(&lo) || !(0.0..=1.0).contains(&hi) {
                    outcome.diverge(format!("CP bounds escape [0,1]: {lo}, {hi}"));
                }
                if lo > point + 1e-12 || hi < point - 1e-12 {
                    outcome.diverge(format!("CP bounds [{lo}, {hi}] do not bracket {point}"));
                }
                if judgement.unseen_bound != lo {
                    outcome.diverge("judgement bound != recomputed lower bound".to_string());
                }
                if k < n {
                    match (
                        lower_bound(k + 1, n, spec.confidence),
                        upper_bound(k + 1, n, spec.confidence),
                    ) {
                        (Ok(lo2), Ok(hi2)) => {
                            if lo2 < lo || hi2 < hi {
                                outcome.diverge("CP bounds not monotone in successes".to_string());
                            }
                        }
                        _ => outcome.diverge("CP bound at k+1 errored".to_string()),
                    }
                }
            }
            _ => outcome.diverge(format!("CP bounds errored at k={k}, n={n}")),
        }

        // 5. The library's own planted-mutation discipline must hold on
        // this fuzzed instance.
        match self_check_routed(&losses, &routes, n_routes, &spec, EPSILON, TEST_ALPHA) {
            Ok(report) => {
                if !report.all_detected() {
                    outcome.diverge("self_check_routed missed a mutation".to_string());
                }
                if !report.clean_findings.is_empty() {
                    outcome.diverge("self_check_routed flagged the clean judgement".to_string());
                }
            }
            Err(e) => outcome.diverge(format!("self_check_routed failed: {e}")),
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{family_seed_base, DEFAULT_SCALE};

    #[test]
    fn clean_cases_have_no_divergence() {
        let fam = GuaranteeFamily;
        for i in 0..25 {
            let out = fam.run_case(family_seed_base(1) + i, DEFAULT_SCALE, None);
            assert!(out.divergences.is_empty(), "{:?}", out.divergences);
        }
    }

    #[test]
    fn labels_mirror_conform_mutations() {
        for (label, mutation) in MUTATIONS.iter().zip(Mutation::ALL) {
            assert_eq!(*label, mutation.label());
        }
    }

    #[test]
    fn every_mutation_is_detected_at_every_scale() {
        let fam = GuaranteeFamily;
        for scale in 0..=DEFAULT_SCALE {
            for (m, label) in MUTATIONS.iter().enumerate() {
                let out = fam.run_case(family_seed_base(1) + 7, scale, Some(m));
                assert!(
                    !out.divergences.is_empty(),
                    "mutation {label} missed at scale {scale}"
                );
            }
        }
    }
}
