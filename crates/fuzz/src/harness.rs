//! The differential-fuzzing harness: oracle families, seed scheduling,
//! mutation discipline and failure minimization.
//!
//! An [`OracleFamily`] packages one differential comparison — e.g.
//! "table classifier vs k-ary neural classifier vs oracle vs precise
//! path" — behind a single `run_case(seed, scale, mutation)` entry
//! point. The harness drives each family two ways:
//!
//! * **Clean pass** — `budget` seeded cases with no mutation. Every
//!   reported divergence is a real disagreement between independently
//!   implemented paths and fails the run. Tolerated, *documented*
//!   deviations (a SIMD result inside the kernel tolerance band, SIMD
//!   not compiled into this binary) are counted as
//!   [`CaseOutcome::allowances`], never silently dropped.
//! * **Mutation pass** — for each planted mutation the family declares,
//!   `mutation_budget` cases run with that defect injected into exactly
//!   one side of the comparison. The checkers must flag *every* such
//!   case; a mutated oracle that goes unnoticed means the comparison
//!   has no teeth (the same discipline as `mithra_conform::selfcheck`).
//!
//! Failures minimize by rerunning the same seed at smaller
//! [`scale`](OracleFamily::run_case)s; the smallest still-failing
//! `(seed, scale)` pair is the replay token printed in the report
//! (`mithra-fuzz --family <name> --replay <seed> --scale <s>`).

use mithra_core::seeds::{FUZZ_FAMILY_STRIDE, FUZZ_SEED_BASE};
use std::collections::BTreeMap;

/// Largest generator scale; the clean and mutation passes run here.
/// Scale `0` is the smallest case a family can generate — minimization
/// walks down from [`DEFAULT_SCALE`] toward it.
pub const DEFAULT_SCALE: u32 = 3;

/// Default number of clean cases per family (the acceptance floor).
pub const DEFAULT_BUDGET: u64 = 1000;

/// Default number of cases per planted mutation.
pub const DEFAULT_MUTATION_BUDGET: u64 = 25;

/// Recorded failures are capped at this many per family so a systemic
/// divergence does not flood the report; the clean pass stops early
/// once the cap is hit (the report says so).
pub const MAX_RECORDED_FAILURES: usize = 8;

/// The outcome of one fuzzed case.
#[derive(Debug, Default, Clone)]
pub struct CaseOutcome {
    /// Disagreements between the compared paths. Empty on a clean case;
    /// non-empty when a planted mutation was *detected*.
    pub divergences: Vec<String>,
    /// Tolerated, documented deviations — counted, never fatal.
    pub allowances: Vec<(&'static str, u64)>,
}

impl CaseOutcome {
    /// Records a divergence.
    pub fn diverge(&mut self, message: String) {
        self.divergences.push(message);
    }

    /// Counts a tolerated deviation under a documented label.
    pub fn allow(&mut self, label: &'static str) {
        self.allowances.push((label, 1));
    }
}

/// One differential comparison the harness can drive.
pub trait OracleFamily {
    /// Stable family name (CLI `--family` argument).
    fn name(&self) -> &'static str;

    /// Index into the fuzz seed window: case `i` of this family uses
    /// seed `FUZZ_SEED_BASE + family_index * FUZZ_FAMILY_STRIDE + i`.
    fn family_index(&self) -> u64;

    /// Labels of the planted mutations, in the order `run_case`'s
    /// `mutation` index selects them.
    fn mutation_labels(&self) -> &'static [&'static str];

    /// Runs one seeded case. `scale` bounds the generated sizes
    /// (`0` smallest, [`DEFAULT_SCALE`] largest); `mutation` plants the
    /// indexed defect into one side of the comparison.
    fn run_case(&self, seed: u64, scale: u32, mutation: Option<usize>) -> CaseOutcome;
}

/// First seed of a family's window inside the fuzz partition.
pub fn family_seed_base(family_index: u64) -> u64 {
    FUZZ_SEED_BASE + family_index * FUZZ_FAMILY_STRIDE
}

/// A clean-pass divergence, minimized to its replay token.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Seed to replay.
    pub seed: u64,
    /// Smallest scale at which the seed still diverges.
    pub scale: u32,
    /// Divergences reported at that scale.
    pub divergences: Vec<String>,
}

/// Detection tally for one planted mutation.
#[derive(Debug, Clone)]
pub struct MutationResult {
    /// The mutation's label.
    pub label: &'static str,
    /// Cases run with the defect planted.
    pub cases: u64,
    /// Cases whose checkers flagged the defect.
    pub detected: u64,
}

/// The harness's verdict on one family.
#[derive(Debug, Clone)]
pub struct FamilyReport {
    /// Family name.
    pub name: &'static str,
    /// Clean cases executed.
    pub cases_run: u64,
    /// Minimized clean-pass divergences (empty on a passing run).
    pub failures: Vec<Failure>,
    /// Whether the clean pass stopped early at the failure cap.
    pub truncated: bool,
    /// Tolerated-deviation counts accumulated over the clean pass.
    pub allowances: BTreeMap<&'static str, u64>,
    /// Per-mutation detection tallies.
    pub mutations: Vec<MutationResult>,
}

impl FamilyReport {
    /// `true` when the clean pass saw no divergence and every planted
    /// mutation was detected on every case.
    pub fn passed(&self) -> bool {
        self.failures.is_empty() && self.mutations.iter().all(|m| m.detected == m.cases)
    }
}

/// Reruns a diverging seed at successively smaller scales and returns
/// the smallest scale that still diverges (with its divergences).
fn minimize(family: &dyn OracleFamily, seed: u64, full: CaseOutcome) -> Failure {
    for scale in 0..DEFAULT_SCALE {
        let outcome = family.run_case(seed, scale, None);
        if !outcome.divergences.is_empty() {
            return Failure {
                seed,
                scale,
                divergences: outcome.divergences,
            };
        }
    }
    Failure {
        seed,
        scale: DEFAULT_SCALE,
        divergences: full.divergences,
    }
}

/// Drives one family through its clean and mutation passes.
pub fn run_family(family: &dyn OracleFamily, budget: u64, mutation_budget: u64) -> FamilyReport {
    let base = family_seed_base(family.family_index());
    let mut failures = Vec::new();
    let mut truncated = false;
    let mut allowances: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut cases_run = 0;

    for i in 0..budget {
        let seed = base + i;
        let outcome = family.run_case(seed, DEFAULT_SCALE, None);
        cases_run += 1;
        for (label, n) in &outcome.allowances {
            *allowances.entry(label).or_insert(0) += n;
        }
        if !outcome.divergences.is_empty() {
            failures.push(minimize(family, seed, outcome));
            if failures.len() >= MAX_RECORDED_FAILURES {
                truncated = true;
                break;
            }
        }
    }

    let mut mutations = Vec::new();
    for (mi, label) in family.mutation_labels().iter().enumerate() {
        let mut detected = 0;
        for i in 0..mutation_budget {
            let outcome = family.run_case(base + i, DEFAULT_SCALE, Some(mi));
            if !outcome.divergences.is_empty() {
                detected += 1;
            }
        }
        mutations.push(MutationResult {
            label,
            cases: mutation_budget,
            detected,
        });
    }

    FamilyReport {
        name: family.name(),
        cases_run,
        failures,
        truncated,
        allowances,
        mutations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy family: compares `x + x` against `2 * x`; its single
    /// mutation breaks the doubling side.
    struct Doubling;

    impl OracleFamily for Doubling {
        fn name(&self) -> &'static str {
            "doubling"
        }
        fn family_index(&self) -> u64 {
            9
        }
        fn mutation_labels(&self) -> &'static [&'static str] {
            &["off-by-one"]
        }
        fn run_case(&self, seed: u64, _scale: u32, mutation: Option<usize>) -> CaseOutcome {
            let mut outcome = CaseOutcome::default();
            let doubled = if mutation == Some(0) {
                2 * seed + 1
            } else {
                2 * seed
            };
            if seed + seed != doubled {
                outcome.diverge(format!("{seed}: sum != double"));
            }
            outcome
        }
    }

    #[test]
    fn clean_pass_is_clean_and_mutation_is_caught() {
        let report = run_family(&Doubling, 50, 10);
        assert!(report.passed(), "{report:?}");
        assert_eq!(report.cases_run, 50);
        assert_eq!(report.mutations[0].detected, 10);
    }

    #[test]
    fn family_seeds_start_inside_the_fuzz_window() {
        assert_eq!(family_seed_base(0), FUZZ_SEED_BASE);
        assert_eq!(family_seed_base(2), FUZZ_SEED_BASE + 2 * FUZZ_FAMILY_STRIDE);
    }

    /// A family that always diverges — minimization must walk to scale 0
    /// and the failure cap must truncate the clean pass.
    struct AlwaysBroken;

    impl OracleFamily for AlwaysBroken {
        fn name(&self) -> &'static str {
            "broken"
        }
        fn family_index(&self) -> u64 {
            9
        }
        fn mutation_labels(&self) -> &'static [&'static str] {
            &[]
        }
        fn run_case(&self, seed: u64, scale: u32, _mutation: Option<usize>) -> CaseOutcome {
            let mut outcome = CaseOutcome::default();
            outcome.diverge(format!("seed {seed} scale {scale}"));
            outcome
        }
    }

    #[test]
    fn failures_minimize_to_scale_zero_and_cap() {
        let report = run_family(&AlwaysBroken, 100, 0);
        assert!(!report.passed());
        assert!(report.truncated);
        assert_eq!(report.failures.len(), MAX_RECORDED_FAILURES);
        assert!(report.failures.iter().all(|f| f.scale == 0));
    }

    /// A family whose checker has no teeth: the planted mutation is
    /// never flagged, so the report must fail.
    struct Toothless;

    impl OracleFamily for Toothless {
        fn name(&self) -> &'static str {
            "toothless"
        }
        fn family_index(&self) -> u64 {
            9
        }
        fn mutation_labels(&self) -> &'static [&'static str] {
            &["ignored"]
        }
        fn run_case(&self, _seed: u64, _scale: u32, _mutation: Option<usize>) -> CaseOutcome {
            CaseOutcome::default()
        }
    }

    #[test]
    fn missed_mutations_fail_the_family() {
        let report = run_family(&Toothless, 5, 5);
        assert!(report.failures.is_empty());
        assert!(!report.passed(), "undetected mutation must fail");
    }
}
