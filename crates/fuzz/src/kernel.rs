//! Oracle family `kernel`: scalar-vs-SIMD forward-pass agreement on
//! fuzzed topologies.
//!
//! Each case builds a random MLP (fuzzed layer count, widths, weights,
//! biases and output activation) and a small input batch, then checks:
//!
//! * **scalar determinism** — two scalar forward passes over the same
//!   input are bit-identical;
//! * **batch/single identity** — the batched kernel entry point equals
//!   the per-invocation one bit for bit, on each available backend;
//! * **backend tolerance** — the SIMD result stays within the
//!   unit-scaled `FORWARD_TOL` band of the scalar result. A nonzero
//!   difference inside the band is a *counted allowance*
//!   (`simd-tolerance-band`), never a silent pass; SIMD being compiled
//!   out of the binary is likewise an explicit `simd-unavailable`
//!   allowance.
//!
//! Because this family's comparators are tolerance checks rather than
//! recounts, the planted mutations weaken the *comparators* and the
//! harness proves they still have teeth with per-case **probes**: every
//! case also feeds each comparator a known-bad pair (a perturbation
//! beyond the band, a flipped mantissa bit) that it must flag. A
//! mutated comparator that misses its probe reports a `probe-missed`
//! divergence — which is exactly how the mutation pass detects the
//! planted defect.

use crate::gen::{rng_for, scale_size, uniform_vec};
use crate::harness::{CaseOutcome, OracleFamily};
use mithra_npu::kernel::KernelBackend;
use mithra_npu::mlp::{Activation, BatchScratch, ForwardScratch, Mlp};
use mithra_npu::topology::Topology;
use rand::Rng;

/// Unit-scaled tolerance for scalar-vs-SIMD disagreement — the same
/// band `mithra-npu`'s kernel-parity suite pins.
pub const FORWARD_TOL: f32 = 1e-4;

/// Labels of the planted comparator mutations, in `run_case` index
/// order.
pub const MUTATIONS: [&str; 3] = [
    "infinite-tolerance",
    "first-element-only",
    "bit-identity-disabled",
];

/// Comparator-weakening knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CheckerMutation {
    InfiniteTolerance,
    FirstElementOnly,
    BitIdentityDisabled,
}

/// Tolerance comparator: is every element of `b` within the unit-scaled
/// band of `a`? Returns the worst unit-scaled difference it *examined*.
fn within_band(a: &[f32], b: &[f32], mutation: Option<CheckerMutation>) -> (bool, f32) {
    let tol = if mutation == Some(CheckerMutation::InfiniteTolerance) {
        f32::INFINITY
    } else {
        FORWARD_TOL
    };
    let take = if mutation == Some(CheckerMutation::FirstElementOnly) {
        1
    } else {
        a.len()
    };
    let mut worst = 0.0f32;
    let mut ok = true;
    for (&x, &y) in a.iter().zip(b).take(take) {
        let unit = (x - y).abs() / x.abs().max(1.0);
        worst = worst.max(unit);
        if unit > tol {
            ok = false;
        }
    }
    (ok, worst)
}

/// Bit-identity comparator for batch-vs-single agreement.
fn bit_identical(a: &[f32], b: &[f32], mutation: Option<CheckerMutation>) -> bool {
    if mutation == Some(CheckerMutation::BitIdentityDisabled) {
        return true;
    }
    let take = if mutation == Some(CheckerMutation::FirstElementOnly) {
        1
    } else {
        a.len()
    };
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .take(take)
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

/// The `kernel` oracle family.
#[derive(Debug, Clone, Copy, Default)]
pub struct KernelFamily;

impl OracleFamily for KernelFamily {
    fn name(&self) -> &'static str {
        "kernel"
    }

    fn family_index(&self) -> u64 {
        3
    }

    fn mutation_labels(&self) -> &'static [&'static str] {
        &MUTATIONS
    }

    fn run_case(&self, seed: u64, scale: u32, mutation: Option<usize>) -> CaseOutcome {
        let mut outcome = CaseOutcome::default();
        let mut rng = rng_for(seed);
        let checker = match mutation {
            Some(0) => Some(CheckerMutation::InfiniteTolerance),
            Some(1) => Some(CheckerMutation::FirstElementOnly),
            Some(2) => Some(CheckerMutation::BitIdentityDisabled),
            _ => None,
        };

        // Fuzzed topology: 1-2 hidden layers, output width >= 2 so the
        // first-element-only probe has a last element to perturb.
        let mut shape = vec![rng.gen_range(2usize..=6)];
        for _ in 0..rng.gen_range(1usize..=2) {
            shape.push(rng.gen_range(2usize..=8));
        }
        shape.push(rng.gen_range(2usize..=4));
        let topology = match Topology::new(&shape) {
            Ok(t) => t,
            Err(e) => {
                outcome.diverge(format!("topology {shape:?} rejected: {e}"));
                return outcome;
            }
        };
        let weights = uniform_vec(&mut rng, topology.weight_count(), -2.0, 2.0);
        let biases = uniform_vec(&mut rng, topology.bias_count(), -2.0, 2.0);
        let activation = if rng.gen_range(0u32..2) == 0 {
            Activation::Sigmoid
        } else {
            Activation::Linear
        };
        let mlp = match Mlp::from_parameters(topology.clone(), &weights, &biases, activation) {
            Ok(m) => m,
            Err(e) => {
                outcome.diverge(format!("from_parameters failed: {e}"));
                return outcome;
            }
        };

        let count = scale_size(scale, [2, 3, 5, 8]);
        let inputs = uniform_vec(&mut rng, count * topology.inputs(), -1.0, 1.0);
        let mut scratch = ForwardScratch::for_topology(&topology);
        let mut batch_scratch = BatchScratch::for_topology(&topology);

        // Scalar reference, one input at a time — and determinism.
        let mut scalar = Vec::new();
        for chunk in inputs.chunks_exact(topology.inputs()) {
            let first = match mlp.forward_into_with(KernelBackend::Scalar, chunk, &mut scratch) {
                Ok(out) => out.to_vec(),
                Err(e) => {
                    outcome.diverge(format!("scalar forward failed: {e}"));
                    return outcome;
                }
            };
            let second = mlp
                .forward_into_with(KernelBackend::Scalar, chunk, &mut scratch)
                .expect("same input cannot fail on retry")
                .to_vec();
            if !bit_identical(&first, &second, None) {
                outcome.diverge("scalar forward is nondeterministic".to_string());
            }
            scalar.extend_from_slice(&second);
        }

        // Batch/single identity per backend, plus SIMD-vs-scalar band.
        let mut backends = vec![KernelBackend::Scalar];
        if KernelBackend::simd_available() {
            backends.push(KernelBackend::Simd);
        } else {
            outcome.allow("simd-unavailable");
        }
        for backend in backends {
            let mut single = Vec::new();
            for chunk in inputs.chunks_exact(topology.inputs()) {
                match mlp.forward_into_with(backend, chunk, &mut scratch) {
                    Ok(out) => single.extend_from_slice(out),
                    Err(e) => {
                        outcome.diverge(format!("{backend:?} forward failed: {e}"));
                        return outcome;
                    }
                }
            }
            let mut batched = Vec::new();
            if let Err(e) = mlp.forward_batch_into_with(
                backend,
                &inputs,
                count,
                &mut batched,
                &mut batch_scratch,
            ) {
                outcome.diverge(format!("{backend:?} batch forward failed: {e}"));
                return outcome;
            }
            if !bit_identical(&single, &batched, checker) {
                outcome.diverge(format!("{backend:?}: batched != single bit-for-bit"));
            }
            let (ok, worst) = within_band(&scalar, &single, checker);
            if !ok {
                outcome.diverge(format!(
                    "{backend:?}: unit diff {worst} beyond tolerance {FORWARD_TOL}"
                ));
            } else if backend == KernelBackend::Simd && worst > 0.0 {
                outcome.allow("simd-tolerance-band");
            }
        }

        // Probes: each comparator must flag a known-bad pair. A miss is
        // a divergence — on a clean case it means the checker has no
        // teeth; on a mutated case it is the detection itself.
        let mut beyond = scalar.clone();
        let last = beyond.len() - 1;
        beyond[last] += 10.0 * FORWARD_TOL * beyond[last].abs().max(1.0);
        if within_band(&scalar, &beyond, checker).0 {
            outcome.diverge(
                "probe-missed: tolerance comparator accepted out-of-band pair".to_string(),
            );
        }
        let mut flipped = scalar.clone();
        flipped[last] = f32::from_bits(flipped[last].to_bits() ^ 1);
        if bit_identical(&scalar, &flipped, checker) {
            outcome
                .diverge("probe-missed: bit-identity comparator accepted flipped bit".to_string());
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{family_seed_base, DEFAULT_SCALE};

    #[test]
    fn clean_cases_have_no_divergence() {
        let fam = KernelFamily;
        for i in 0..50 {
            let out = fam.run_case(family_seed_base(3) + i, DEFAULT_SCALE, None);
            assert!(out.divergences.is_empty(), "{:?}", out.divergences);
        }
    }

    #[test]
    fn every_mutation_is_detected_at_every_scale() {
        let fam = KernelFamily;
        for scale in 0..=DEFAULT_SCALE {
            for (m, label) in MUTATIONS.iter().enumerate() {
                let out = fam.run_case(family_seed_base(3) + 5, scale, Some(m));
                assert!(
                    !out.divergences.is_empty(),
                    "mutation {label} missed at scale {scale}"
                );
            }
        }
    }

    #[test]
    fn comparators_have_teeth_unmutated() {
        let a = [1.0f32, 2.0, 3.0];
        let mut b = a;
        b[2] += 1.0;
        assert!(!within_band(&a, &b, None).0);
        assert!(!bit_identical(&a, &b, None));
        assert!(within_band(&a, &a, None).0);
        assert!(bit_identical(&a, &a, None));
    }
}
