//! Oracle family `decision`: table classifier vs k-ary neural classifier
//! vs oracle vs precise path.
//!
//! Each case builds a fuzzed labeled dataset (a random linear score with
//! a median split, so both decision classes are always present), derives
//! per-example quality losses consistent with the labels, and runs four
//! independently implemented decision paths over it:
//!
//! * the **precise path** — recomputes each decision from the raw loss
//!   against the quality threshold;
//! * the **oracle** — [`OracleClassifier`] replaying the ground truth;
//! * the **table classifier** — trained at vote threshold `0.0`, whose
//!   documented contract is 100% recall on trained rejects (it may
//!   false-reject accepts, a counted allowance, but must never accept a
//!   trained reject);
//! * the **k-ary neural classifier** — a learned 2-class filter whose
//!   *decisions* may err (counted allowance) but whose *accounting*
//!   must not.
//!
//! A [`DecisionLedger`] tallies the streams the way the serving path
//! would (one pass, incremental counters); an independent audit recounts
//! everything from the recorded streams. The planted mutations corrupt
//! the ledger — an undercounted tally, a flipped recorded decision, a
//! desynchronized oracle stream — and the audit must catch every one.

use crate::gen::{rng_for, scale_size, uniform_vec};
use crate::harness::{CaseOutcome, OracleFamily};
use mithra_core::classifier::Decision;
use mithra_core::misr::InputQuantizer;
use mithra_core::neural::{KaryExample, KaryNeuralClassifier, NeuralTrainConfig};
use mithra_core::oracle::OracleClassifier;
use mithra_core::table::{TableClassifier, TableDesign};
use mithra_core::training::TrainingExample;
use rand::Rng;

/// Quality-loss threshold separating accepts from rejects; losses are
/// generated strictly on either side of it.
const LOSS_THRESHOLD: f64 = 0.1;

/// Labels of the ledger mutations, in `run_case` index order.
pub const MUTATIONS: [&str; 3] = [
    "undercount-rejects",
    "flip-recorded-decision",
    "oracle-desync",
];

/// One path's recorded decision stream plus its single-pass tallies.
#[derive(Debug, Clone)]
struct PathLedger {
    name: &'static str,
    stream: Vec<bool>,
    reject_tally: u64,
    accept_tally: u64,
}

impl PathLedger {
    fn record(name: &'static str, stream: Vec<bool>) -> Self {
        let reject_tally = stream.iter().filter(|&&r| r).count() as u64;
        let accept_tally = stream.len() as u64 - reject_tally;
        Self {
            name,
            stream,
            reject_tally,
            accept_tally,
        }
    }
}

/// The four decision streams and their tallies for one fuzzed case.
#[derive(Debug, Clone)]
struct DecisionLedger {
    precise: PathLedger,
    oracle: PathLedger,
    table: PathLedger,
    neural: PathLedger,
    neural_mismatch_tally: u64,
}

/// Audits a ledger against the ground-truth labels: recounts every
/// tally from the recorded streams and checks the cross-path contracts.
fn audit(ledger: &DecisionLedger, labels: &[bool], outcome: &mut CaseOutcome) {
    let n = labels.len() as u64;
    for path in [
        &ledger.precise,
        &ledger.oracle,
        &ledger.table,
        &ledger.neural,
    ] {
        let recount = path.stream.iter().filter(|&&r| r).count() as u64;
        if path.reject_tally != recount {
            outcome.diverge(format!(
                "{}: reject tally {} != recount {}",
                path.name, path.reject_tally, recount
            ));
        }
        if path.reject_tally + path.accept_tally != n {
            outcome.diverge(format!(
                "{}: tallies {}+{} do not conserve {} trials",
                path.name, path.reject_tally, path.accept_tally, n
            ));
        }
    }
    if ledger.precise.stream != labels {
        outcome.diverge("precise path disagrees with ground-truth labels".to_string());
    }
    if ledger.oracle.stream != labels {
        outcome.diverge("oracle replay disagrees with ground-truth labels".to_string());
    }
    for (i, (&label, &table)) in labels.iter().zip(&ledger.table.stream).enumerate() {
        if label && !table {
            outcome.diverge(format!(
                "table classifier accepted trained reject {i} at vote threshold 0.0"
            ));
        }
    }
    let mismatches = ledger
        .neural
        .stream
        .iter()
        .zip(labels)
        .filter(|(n, l)| n != l)
        .count() as u64;
    if ledger.neural_mismatch_tally != mismatches {
        outcome.diverge(format!(
            "neural mismatch tally {} != recount {}",
            ledger.neural_mismatch_tally, mismatches
        ));
    }
}

/// The `decision` oracle family.
#[derive(Debug, Clone, Copy, Default)]
pub struct DecisionFamily;

impl OracleFamily for DecisionFamily {
    fn name(&self) -> &'static str {
        "decision"
    }

    fn family_index(&self) -> u64 {
        0
    }

    fn mutation_labels(&self) -> &'static [&'static str] {
        &MUTATIONS
    }

    fn run_case(&self, seed: u64, scale: u32, mutation: Option<usize>) -> CaseOutcome {
        let mut outcome = CaseOutcome::default();
        let mut rng = rng_for(seed);
        let n = scale_size(scale, [12, 24, 48, 96]);
        let dim = rng.gen_range(2usize..=4);

        // A random linear score with a median split labels the inputs,
        // guaranteeing both classes are populated (n/2 each) — the
        // precondition every mutation's detectability rests on.
        let inputs: Vec<Vec<f32>> = (0..n)
            .map(|_| uniform_vec(&mut rng, dim, 0.0, 1.0))
            .collect();
        let w = uniform_vec(&mut rng, dim, -1.0, 1.0);
        let scores: Vec<f32> = inputs
            .iter()
            .map(|x| x.iter().zip(&w).map(|(a, b)| a * b).sum())
            .collect();
        let mut sorted = scores.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite scores"));
        let cut = (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0;
        let labels: Vec<bool> = scores.iter().map(|&s| s > cut).collect();
        if !labels.iter().any(|&l| l) || labels.iter().all(|&l| l) {
            // Degenerate median split (tied scores): skip rather than
            // fuzz on a case whose mutations cannot all be detected.
            outcome.allow("degenerate-median-split");
            return outcome;
        }

        // Losses consistent with the labels: rejects lose above the
        // threshold, accepts below it. The precise path recomputes its
        // decisions from these raw losses alone.
        let losses: Vec<f64> = labels
            .iter()
            .map(|&l| {
                if l {
                    rng.gen_range(LOSS_THRESHOLD + 0.01..1.0)
                } else {
                    rng.gen_range(0.0..LOSS_THRESHOLD - 0.01)
                }
            })
            .collect();
        let precise_stream: Vec<bool> = losses.iter().map(|&l| l > LOSS_THRESHOLD).collect();

        let oracle = OracleClassifier::from_rejects(labels.clone());
        let mut oracle_stream: Vec<bool> = oracle.rejects().to_vec();

        let examples: Vec<TrainingExample> = inputs
            .iter()
            .zip(&labels)
            .map(|(x, &reject)| TrainingExample {
                input: x.clone(),
                reject,
            })
            .collect();
        let design = TableDesign {
            tables: 4,
            entries_per_table: 1024,
        };
        let quantizer = InputQuantizer::new(vec![0.0; dim], vec![1.0; dim]);
        let mut table = match TableClassifier::train_with_policy(design, quantizer, 0.0, &examples)
        {
            Ok(t) => t,
            Err(e) => {
                outcome.diverge(format!("table training failed: {e}"));
                return outcome;
            }
        };
        let table_stream: Vec<bool> = inputs
            .iter()
            .map(|x| table.decide(x) == Decision::Precise)
            .collect();

        let kary: Vec<KaryExample> = inputs
            .iter()
            .zip(&labels)
            .map(|(x, &l)| KaryExample {
                input: x.clone(),
                class: usize::from(l),
            })
            .collect();
        let config = NeuralTrainConfig {
            hidden_candidates: vec![4],
            epochs: 12,
            validation_fraction: 0.2,
            accuracy_tolerance: 0.01,
            seed,
        };
        let mut neural =
            match KaryNeuralClassifier::train_with_threads(dim, &kary, 2, &config, Some(1)) {
                Ok(c) => c,
                Err(e) => {
                    outcome.diverge(format!("neural training failed: {e}"));
                    return outcome;
                }
            };
        let neural_stream: Vec<bool> = inputs.iter().map(|x| neural.decide_class(x) == 1).collect();

        // Single-pass tallies, the way the serving path accounts.
        let mut neural_mismatch_tally = 0u64;
        for (nd, &l) in neural_stream.iter().zip(&labels) {
            if *nd != l {
                neural_mismatch_tally += 1;
            }
        }
        let mut table_ledger = PathLedger::record("table", table_stream);
        let oracle_tallies_before_mutation = PathLedger::record("oracle", oracle_stream.clone());

        // Plant the ledger mutation. Each corrupts the single-pass
        // accounting side only; the audit's independent recount from
        // the recorded streams (and the ground-truth labels) must
        // catch it.
        match mutation {
            Some(0) => {
                // Undercount the table's rejects by one. The median
                // split guarantees >= 1 trained reject, and vote
                // threshold 0.0 guarantees the table rejects it.
                table_ledger.reject_tally -= 1;
                table_ledger.accept_tally += 1;
            }
            Some(1) => {
                // Flip the first recorded oracle decision but keep the
                // tallies computed before the flip.
                oracle_stream[0] = !oracle_stream[0];
            }
            Some(2) => {
                // Desynchronize the oracle stream by one position —
                // a classic off-by-one replay bug. Both classes are
                // present, so a rotation always changes the stream.
                oracle_stream.rotate_right(1);
            }
            _ => {}
        }
        let oracle_ledger = PathLedger {
            stream: oracle_stream,
            ..oracle_tallies_before_mutation
        };

        let ledger = DecisionLedger {
            precise: PathLedger::record("precise", precise_stream),
            oracle: oracle_ledger,
            table: table_ledger,
            neural: PathLedger::record("neural", neural_stream.clone()),
            neural_mismatch_tally,
        };
        audit(&ledger, &labels, &mut outcome);

        // Documented allowances: the learned paths may disagree with
        // the oracle in the tolerated directions.
        for _ in 0..neural_mismatch_tally {
            outcome.allow("neural-oracle-mismatch");
        }
        for (&t, &l) in ledger.table.stream.iter().zip(&labels) {
            if t && !l {
                outcome.allow("table-false-reject");
            }
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::DEFAULT_SCALE;

    #[test]
    fn clean_cases_have_no_divergence() {
        let fam = DecisionFamily;
        for i in 0..10 {
            let out = fam.run_case(crate::harness::family_seed_base(0) + i, DEFAULT_SCALE, None);
            assert!(out.divergences.is_empty(), "{:?}", out.divergences);
        }
    }

    #[test]
    fn every_mutation_is_detected_at_every_scale() {
        let fam = DecisionFamily;
        for scale in 0..=DEFAULT_SCALE {
            for (m, label) in MUTATIONS.iter().enumerate() {
                let out = fam.run_case(crate::harness::family_seed_base(0) + 3, scale, Some(m));
                assert!(
                    !out.divergences.is_empty(),
                    "mutation {label} missed at scale {scale}"
                );
            }
        }
    }

    #[test]
    fn cases_replay_deterministically() {
        let fam = DecisionFamily;
        let seed = crate::harness::family_seed_base(0) + 11;
        let a = fam.run_case(seed, 1, None);
        let b = fam.run_case(seed, 1, None);
        assert_eq!(a.divergences, b.divergences);
        assert_eq!(a.allowances, b.allowances);
    }
}
