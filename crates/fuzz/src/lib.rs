//! Seeded differential fuzzing for the certified-acceleration pipeline.
//!
//! Randomized testing only helps a statistical-guarantee system if the
//! fuzzer itself is held to the same evidentiary standard as the
//! pipeline it checks. This crate therefore pairs every differential
//! comparison with the planted-mutation discipline of
//! `mithra_conform::selfcheck`: a checker only counts if it provably
//! catches each defect deliberately injected into one side of the
//! comparison.
//!
//! Four [`OracleFamily`](harness::OracleFamily) implementations cover
//! the layers the certified pipeline rests on:
//!
//! | family      | comparison                                               |
//! |-------------|----------------------------------------------------------|
//! | `decision`  | table vs k-ary neural vs oracle vs precise decisions     |
//! | `guarantee` | conformance judge vs bit-exact audit, CP invariants      |
//! | `stream`    | BDI codec vs reference decoder; FIFO vs deque model      |
//! | `kernel`    | scalar vs SIMD forward passes, batch vs single           |
//!
//! Each family draws its cases from a disjoint window of the workspace
//! seed partition (`mithra_core::seeds::FUZZ_SEED_BASE` plus the
//! family's stride), so fuzzing can never consume data any compile,
//! validation, serving or conformance layer already used. Failures
//! minimize to a `(seed, scale)` replay token; tolerated deviations
//! (SIMD tolerance band, SIMD compiled out) are counted allowances,
//! never silent passes. The `mithra-fuzz` binary drives all families
//! and exits nonzero on any unexplained divergence or missed mutation
//! — see `EXPERIMENTS.md` for the smoke and extended budgets CI runs.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod decision;
pub mod gen;
pub mod guarantee;
pub mod harness;
pub mod kernel;
pub mod stream;

pub use harness::{
    run_family, CaseOutcome, Failure, FamilyReport, MutationResult, OracleFamily, DEFAULT_BUDGET,
    DEFAULT_MUTATION_BUDGET, DEFAULT_SCALE,
};

/// All oracle families, in family-index order.
pub fn all_families() -> Vec<Box<dyn OracleFamily>> {
    vec![
        Box::new(decision::DecisionFamily),
        Box::new(guarantee::GuaranteeFamily),
        Box::new(stream::StreamFamily),
        Box::new(kernel::KernelFamily),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_indices_are_their_roster_positions() {
        for (i, fam) in all_families().iter().enumerate() {
            assert_eq!(fam.family_index(), i as u64, "{}", fam.name());
        }
    }

    #[test]
    fn family_names_are_unique() {
        let names: Vec<&str> = all_families().iter().map(|f| f.name()).collect();
        let mut deduped = names.clone();
        deduped.sort_unstable();
        deduped.dedup();
        assert_eq!(deduped.len(), names.len());
    }

    #[test]
    fn family_windows_fit_the_fuzz_partition() {
        use mithra_core::seeds::{EXTENSION_SEED_BASE, FUZZ_FAMILY_STRIDE};
        let count = all_families().len() as u64;
        assert!(
            harness::family_seed_base(count - 1) + FUZZ_FAMILY_STRIDE <= EXTENSION_SEED_BASE,
            "fuzz families overflow their seed window"
        );
    }
}
