//! `mithra-fuzz` — drives the differential-fuzzing oracle families.
//!
//! ```text
//! mithra-fuzz [--budget N] [--mutation-budget N] [--family a,b]
//! mithra-fuzz --family stream --replay 4200013 [--scale 0..=3]
//! mithra-fuzz --list
//! ```
//!
//! Exits `0` only when every family's clean pass reported zero
//! unexplained divergences *and* every planted mutation was detected on
//! every mutated case. The report is deterministic text: fixed family
//! order, sorted allowance labels, seeds over wall-clock anywhere.

use mithra_fuzz::harness::{family_seed_base, DEFAULT_SCALE};
use mithra_fuzz::{
    all_families, run_family, OracleFamily, DEFAULT_BUDGET, DEFAULT_MUTATION_BUDGET,
};
use std::process::ExitCode;

struct Options {
    budget: u64,
    mutation_budget: u64,
    families: Option<Vec<String>>,
    replay: Option<u64>,
    scale: u32,
    list: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        budget: DEFAULT_BUDGET,
        mutation_budget: DEFAULT_MUTATION_BUDGET,
        families: None,
        replay: None,
        scale: DEFAULT_SCALE,
        list: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--budget" => {
                opts.budget = value("--budget")?
                    .parse()
                    .map_err(|e| format!("--budget: {e}"))?;
            }
            "--mutation-budget" => {
                opts.mutation_budget = value("--mutation-budget")?
                    .parse()
                    .map_err(|e| format!("--mutation-budget: {e}"))?;
            }
            "--family" => {
                let list = value("--family")?;
                opts.families = Some(list.split(',').map(str::to_string).collect());
            }
            "--replay" => {
                opts.replay = Some(
                    value("--replay")?
                        .parse()
                        .map_err(|e| format!("--replay: {e}"))?,
                );
            }
            "--scale" => {
                opts.scale = value("--scale")?
                    .parse()
                    .map_err(|e| format!("--scale: {e}"))?;
            }
            "--list" => opts.list = true,
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(opts)
}

fn selected_families(opts: &Options) -> Result<Vec<Box<dyn OracleFamily>>, String> {
    let all = all_families();
    match &opts.families {
        None => Ok(all),
        Some(names) => {
            let mut picked = Vec::new();
            for name in names {
                match all_families().into_iter().find(|f| f.name() == name) {
                    Some(f) => picked.push(f),
                    None => {
                        let known: Vec<&str> = all.iter().map(|f| f.name()).collect();
                        return Err(format!("unknown family '{name}' (known: {known:?})"));
                    }
                }
            }
            Ok(picked)
        }
    }
}

fn replay(families: &[Box<dyn OracleFamily>], seed: u64, scale: u32) -> ExitCode {
    if families.len() != 1 {
        eprintln!("--replay requires exactly one --family");
        return ExitCode::from(2);
    }
    let family = &families[0];
    let outcome = family.run_case(seed, scale, None);
    println!("replay family={} seed={seed} scale={scale}", family.name());
    for d in &outcome.divergences {
        println!("  divergence: {d}");
    }
    for (label, n) in &outcome.allowances {
        println!("  allowance: {label} x{n}");
    }
    if outcome.divergences.is_empty() {
        println!("  clean");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("mithra-fuzz: {e}");
            return ExitCode::from(2);
        }
    };
    let families = match selected_families(&opts) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("mithra-fuzz: {e}");
            return ExitCode::from(2);
        }
    };

    if opts.list {
        for fam in &families {
            println!(
                "{}: seeds {}.. mutations {:?}",
                fam.name(),
                family_seed_base(fam.family_index()),
                fam.mutation_labels()
            );
        }
        return ExitCode::SUCCESS;
    }
    if let Some(seed) = opts.replay {
        return replay(&families, seed, opts.scale);
    }

    println!(
        "== mithra-fuzz: {} clean cases + {} cases/mutation per family ==",
        opts.budget, opts.mutation_budget
    );
    let mut all_passed = true;
    for fam in &families {
        let report = run_family(fam.as_ref(), opts.budget, opts.mutation_budget);
        let status = if report.passed() { "PASS" } else { "FAIL" };
        println!(
            "family {}: {} cases, {} divergent — {status}{}",
            report.name,
            report.cases_run,
            report.failures.len(),
            if report.truncated {
                " (stopped at failure cap)"
            } else {
                ""
            }
        );
        for (label, n) in &report.allowances {
            println!("  allowance {label}: {n}");
        }
        for m in &report.mutations {
            println!(
                "  mutation {}: {}/{} detected",
                m.label, m.detected, m.cases
            );
        }
        for f in &report.failures {
            println!(
                "  FAILURE seed={} scale={} (replay: mithra-fuzz --family {} --replay {} --scale {})",
                f.seed, f.scale, report.name, f.seed, f.scale
            );
            for d in &f.divergences {
                println!("    {d}");
            }
        }
        all_passed &= report.passed();
    }
    if all_passed {
        println!("RESULT: PASS");
        ExitCode::SUCCESS
    } else {
        println!("RESULT: FAIL");
        ExitCode::FAILURE
    }
}
