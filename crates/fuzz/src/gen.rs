//! Shared seeded-generation helpers for the oracle families.
//!
//! Every family derives all randomness from its case seed through
//! [`rng_for`], so a `(seed, scale)` pair replays bit-identically; the
//! scale indexes a family-chosen size ladder via [`scale_size`].

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The deterministic RNG for one fuzzed case.
pub fn rng_for(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Picks the size for `scale` from a family's four-rung ladder
/// (`scale` is clamped into the ladder).
pub fn scale_size(scale: u32, ladder: [usize; 4]) -> usize {
    ladder[scale.min(3) as usize]
}

/// A vector of `dim` uniform samples from `lo..hi`.
pub fn uniform_vec(rng: &mut StdRng, dim: usize, lo: f32, hi: f32) -> Vec<f32> {
    (0..dim).map(|_| rng.gen_range(lo..hi)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_replays_bit_identically() {
        use rand::RngCore;
        let mut r1 = rng_for(7);
        let mut r2 = rng_for(7);
        for _ in 0..32 {
            assert_eq!(r1.next_u64(), r2.next_u64());
        }
    }

    #[test]
    fn scale_ladder_clamps() {
        let ladder = [4, 8, 16, 32];
        assert_eq!(scale_size(0, ladder), 4);
        assert_eq!(scale_size(3, ladder), 32);
        assert_eq!(scale_size(9, ladder), 32);
    }

    #[test]
    fn uniform_vec_respects_bounds() {
        let mut rng = rng_for(3);
        let v = uniform_vec(&mut rng, 64, -1.0, 1.0);
        assert_eq!(v.len(), 64);
        assert!(v.iter().all(|x| (-1.0..1.0).contains(x)));
    }
}
