//! Oracle family `stream`: BDI encode/decode round-trips and FIFO
//! costing identities under fuzzed stream shapes.
//!
//! **BDI half.** Each case builds a batch of 64-byte lines that is
//! *guaranteed* to exercise every reference-decoder mutation — an
//! all-zeros line, a repeated line whose 8-byte word has distinct
//! bytes, a base+delta line with a nonzero base and a negative delta —
//! plus scale-many random lines. Every line must round-trip through
//! `compress`/`decompress`, and an **independently written reference
//! decoder** in this module must agree with `decompress` byte for
//! byte. The planted mutations weaken the reference decoder (skipped
//! delta sign-extension, repeated fill at byte stride, base read as
//! zero); the mandatory lines make each one diverge on every case.
//!
//! **FIFO half.** A fuzzed op sequence runs against [`Fifo`] and an
//! independent [`VecDeque`]-based model, comparing length, free-slot
//! count, full/empty flags, element order and stall (overflow/underflow)
//! tallies after every op; a forced prologue (two distinct enqueues,
//! one dequeue) makes the order and off-by-one mutations detectable on
//! every case. The [`QueueInterface::stream_config`] burst count is
//! checked against the `ceil(len/32)` identity on a length forced off
//! the 32-word boundary, so the floored-division mutation always shows.

use crate::gen::{rng_for, scale_size};
use crate::harness::{CaseOutcome, OracleFamily};
use mithra_bdi::{compress, decompress, EncodedLine, Encoding, LINE_BYTES};
use mithra_npu::fifo::{Fifo, QueueInterface};
use rand::{Rng, RngCore};
use std::collections::VecDeque;

/// Labels of the planted mutations, in `run_case` index order. The
/// first three corrupt the BDI reference decoder, the last three the
/// FIFO reference model.
pub const MUTATIONS: [&str; 6] = [
    "bdi-skip-sign-extension",
    "bdi-repeated-stride-one",
    "bdi-base-from-zero",
    "fifo-lifo-order",
    "fifo-free-off-by-one",
    "fifo-burst-floor-div",
];

/// Mutation knobs for the BDI reference decoder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BdiMutation {
    SkipSignExtension,
    RepeatedStrideOne,
    BaseFromZero,
}

/// An independent BDI decoder, written against the format description
/// rather than the production `decompress` — the differential oracle.
fn reference_decode(encoded: &EncodedLine, mutation: Option<BdiMutation>) -> [u8; LINE_BYTES] {
    let payload = encoded.payload();
    let mut out = [0u8; LINE_BYTES];
    match encoded.encoding() {
        Encoding::Zeros => {}
        Encoding::Repeated => {
            if mutation == Some(BdiMutation::RepeatedStrideOne) {
                out = [payload[0]; LINE_BYTES];
            } else {
                for chunk in out.chunks_exact_mut(8) {
                    chunk.copy_from_slice(&payload[..8]);
                }
            }
        }
        Encoding::Uncompressed => out.copy_from_slice(payload),
        enc => {
            let (base, delta_bytes) = match enc {
                Encoding::Base8Delta1 => (8usize, 1usize),
                Encoding::Base8Delta2 => (8, 2),
                Encoding::Base8Delta4 => (8, 4),
                Encoding::Base4Delta1 => (4, 1),
                Encoding::Base4Delta2 => (4, 2),
                Encoding::Base2Delta1 => (2, 1),
                _ => unreachable!("tag-only formats handled above"),
            };
            out[..base].copy_from_slice(&payload[..base]);
            let mut base_val: i128 = 0;
            for (b, &byte) in payload[..base].iter().enumerate() {
                base_val |= i128::from(byte) << (8 * b);
            }
            // Sign-extend the base the same way the encoder read it.
            let shift = 128 - base as u32 * 8;
            base_val = (base_val << shift) >> shift;
            if mutation == Some(BdiMutation::BaseFromZero) {
                base_val = 0;
            }
            let words = LINE_BYTES / base;
            for i in 1..words {
                let start = base + (i - 1) * delta_bytes;
                let mut delta: i128 = 0;
                for b in 0..delta_bytes {
                    delta |= i128::from(payload[start + b]) << (8 * b);
                }
                if mutation != Some(BdiMutation::SkipSignExtension) {
                    let shift = 128 - delta_bytes as u32 * 8;
                    delta = (delta << shift) >> shift;
                }
                let value = (base_val + delta) as u64;
                for b in 0..base {
                    out[i * base + b] = ((value >> (8 * b)) & 0xff) as u8;
                }
            }
        }
    }
    out
}

/// Mutation knobs for the FIFO reference model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FifoMutation {
    LifoOrder,
    FreeOffByOne,
    BurstFloorDiv,
}

/// The independent FIFO model: a deque plus explicit capacity and
/// stall accounting.
struct RefModel {
    items: VecDeque<u32>,
    capacity: usize,
    stalls: u64,
    mutation: Option<FifoMutation>,
}

impl RefModel {
    fn new(capacity: usize, mutation: Option<FifoMutation>) -> Self {
        Self {
            items: VecDeque::new(),
            capacity,
            stalls: 0,
            mutation,
        }
    }

    fn enqueue(&mut self, v: u32) {
        if self.items.len() == self.capacity {
            self.stalls += 1;
        } else {
            self.items.push_back(v);
        }
    }

    fn dequeue(&mut self) -> Option<u32> {
        let popped = if self.mutation == Some(FifoMutation::LifoOrder) {
            self.items.pop_back()
        } else {
            self.items.pop_front()
        };
        if popped.is_none() {
            self.stalls += 1;
        }
        popped
    }

    fn enqueue_slice(&mut self, values: &[u32]) -> usize {
        let take = values.len().min(self.capacity - self.items.len());
        self.items.extend(&values[..take]);
        take
    }

    fn drain_into(&mut self, out: &mut Vec<u32>, max: usize) -> usize {
        let take = max.min(self.items.len());
        out.extend(self.items.drain(..take));
        take
    }

    fn free(&self) -> usize {
        let free = self.capacity - self.items.len();
        if self.mutation == Some(FifoMutation::FreeOffByOne) {
            free.saturating_sub(1)
        } else {
            free
        }
    }
}

/// Compares the production FIFO against the model; returns a
/// description of the first mismatch.
fn compare_fifo(fifo: &Fifo<u32>, model: &RefModel, op: &str) -> Option<String> {
    if fifo.len() != model.items.len() {
        return Some(format!(
            "after {op}: len {} != model {}",
            fifo.len(),
            model.items.len()
        ));
    }
    if fifo.free() != model.free() {
        return Some(format!(
            "after {op}: free {} != model {}",
            fifo.free(),
            model.free()
        ));
    }
    if fifo.is_empty() != model.items.is_empty()
        || fifo.is_full() != (model.items.len() == model.capacity)
    {
        return Some(format!("after {op}: empty/full flags disagree"));
    }
    if !fifo.iter().copied().eq(model.items.iter().copied()) {
        return Some(format!("after {op}: element order disagrees"));
    }
    None
}

/// The `stream` oracle family.
#[derive(Debug, Clone, Copy, Default)]
pub struct StreamFamily;

impl StreamFamily {
    fn run_bdi(
        &self,
        rng: &mut rand::rngs::StdRng,
        scale: u32,
        mutation: Option<BdiMutation>,
        outcome: &mut CaseOutcome,
    ) {
        let mut lines: Vec<[u8; LINE_BYTES]> = Vec::new();

        // Mandatory lines: one per reference-decoder failure mode.
        lines.push([0u8; LINE_BYTES]);

        let mut word = [0u8; 8];
        rng.fill_bytes(&mut word);
        word[1] = word[0].wrapping_add(1); // distinct bytes inside the word
        let mut repeated = [0u8; LINE_BYTES];
        for chunk in repeated.chunks_exact_mut(8) {
            chunk.copy_from_slice(&word);
        }
        lines.push(repeated);

        // Nonzero base, deltas with at least one forced negative.
        let base: i64 = rng.gen_range(1_000i64..1_000_000);
        let mut delta_line = [0u8; LINE_BYTES];
        for (i, chunk) in delta_line.chunks_exact_mut(8).enumerate() {
            let delta: i64 = if i == 3 {
                -rng.gen_range(1i64..100)
            } else if i == 0 {
                0
            } else {
                rng.gen_range(-100i64..100)
            };
            chunk.copy_from_slice(&(base + delta).to_le_bytes());
        }
        lines.push(delta_line);

        // Scale-many random lines: raw noise plus random base+delta
        // shapes at other widths.
        for _ in 0..scale_size(scale, [2, 4, 8, 16]) {
            let mut line = [0u8; LINE_BYTES];
            if rng.gen_range(0u32..2) == 0 {
                rng.fill_bytes(&mut line[..]);
            } else {
                let base_width = *[2usize, 4, 8]
                    .get(rng.gen_range(0usize..3))
                    .expect("in range");
                let b: i32 = rng.gen_range(-5_000i32..5_000);
                for (i, chunk) in line.chunks_exact_mut(base_width).enumerate() {
                    let v =
                        i64::from(b) + i64::from(rng.gen_range(-120i32..120)) * i64::from(i as i32);
                    chunk.copy_from_slice(&v.to_le_bytes()[..base_width]);
                }
            }
            lines.push(line);
        }

        for (li, line) in lines.iter().enumerate() {
            let encoded = compress(line);
            // `payload_len()` is the *hardware* size (base + one delta
            // per word, the paper's Table II accounting); the software
            // payload omits word 0's always-zero delta, so base+delta
            // formats store exactly `delta_bytes` fewer bytes.
            let implicit_delta = match encoded.encoding() {
                Encoding::Base8Delta1 | Encoding::Base4Delta1 | Encoding::Base2Delta1 => 1,
                Encoding::Base8Delta2 | Encoding::Base4Delta2 => 2,
                Encoding::Base8Delta4 => 4,
                _ => 0,
            };
            if encoded.payload().len() + implicit_delta != encoded.encoding().payload_len() {
                outcome.diverge(format!(
                    "line {li}: payload length {} + implicit delta {implicit_delta} != declared {}",
                    encoded.payload().len(),
                    encoded.encoding().payload_len()
                ));
            }
            if decompress(&encoded) != *line {
                outcome.diverge(format!(
                    "line {li}: round trip failed ({:?})",
                    encoded.encoding()
                ));
            }
            if reference_decode(&encoded, mutation) != *line {
                outcome.diverge(format!(
                    "line {li}: reference decoder disagrees ({:?})",
                    encoded.encoding()
                ));
            }
        }
    }

    fn run_fifo(
        &self,
        rng: &mut rand::rngs::StdRng,
        scale: u32,
        mutation: Option<FifoMutation>,
        outcome: &mut CaseOutcome,
    ) {
        let capacity = rng.gen_range(4usize..=16);
        let mut fifo: Fifo<u32> = Fifo::new(capacity);
        let mut model = RefModel::new(capacity, mutation);
        let mut fifo_stalls = 0u64;
        let mut next = 0u32;

        // Prologue: two distinct elements then a dequeue, so the order
        // and free-count mutations always have something to corrupt.
        let mut ops: Vec<u32> = vec![0, 0, 60];
        ops.extend((0..scale_size(scale, [16, 32, 64, 128])).map(|_| rng.gen_range(0u32..100)));

        for (oi, op) in ops.into_iter().enumerate() {
            let name;
            match op {
                0..=59 => {
                    name = "enqueue";
                    if fifo.enqueue(next).is_err() {
                        fifo_stalls += 1;
                    }
                    model.enqueue(next);
                    next += 1;
                }
                60..=84 => {
                    name = "dequeue";
                    let got = fifo.dequeue().ok();
                    if got.is_none() {
                        fifo_stalls += 1;
                    }
                    let want = model.dequeue();
                    if got != want {
                        outcome.diverge(format!("op {oi}: dequeue {got:?} != model {want:?}"));
                        return;
                    }
                }
                85..=91 => {
                    name = "enqueue_slice";
                    let len = rng.gen_range(0usize..=capacity);
                    let values: Vec<u32> = (0..len).map(|i| next + i as u32).collect();
                    next += len as u32;
                    let a = fifo.enqueue_slice(&values);
                    let b = model.enqueue_slice(&values);
                    if a != b {
                        outcome.diverge(format!("op {oi}: enqueue_slice took {a} != model {b}"));
                        return;
                    }
                }
                92..=96 => {
                    name = "drain_into";
                    let max = rng.gen_range(0usize..=capacity);
                    let mut a_out = Vec::new();
                    let mut b_out = Vec::new();
                    let a = fifo.drain_into(&mut a_out, max);
                    let b = model.drain_into(&mut b_out, max);
                    if a != b || a_out != b_out {
                        outcome.diverge(format!("op {oi}: drain {a}/{a_out:?} != {b}/{b_out:?}"));
                        return;
                    }
                }
                _ => {
                    name = "clear";
                    fifo.clear();
                    model.items.clear();
                }
            }
            if let Some(msg) = compare_fifo(&fifo, &model, name) {
                outcome.diverge(format!("op {oi}: {msg}"));
                return;
            }
        }
        if fifo_stalls != model.stalls {
            outcome.diverge(format!(
                "stall count {fifo_stalls} != model {}",
                model.stalls
            ));
        }

        // Burst-costing identity: streaming `len` config words through
        // the 32-deep config queue takes ceil(len/32) bursts. The length
        // is forced off the burst boundary so the floored-division
        // mutation always disagrees.
        let mut len = rng.gen_range(1usize..=96);
        if len % 32 == 0 {
            len += 1;
        }
        let words: Vec<u32> = (0..len as u32).collect();
        let mut iface = QueueInterface::new();
        let bursts = iface.stream_config(&words);
        let expected = if mutation == Some(FifoMutation::BurstFloorDiv) {
            len / 32
        } else {
            len.div_ceil(32)
        };
        if bursts != expected {
            outcome.diverge(format!(
                "stream_config({len} words) took {bursts} bursts, model expects {expected}"
            ));
        }
    }
}

impl OracleFamily for StreamFamily {
    fn name(&self) -> &'static str {
        "stream"
    }

    fn family_index(&self) -> u64 {
        2
    }

    fn mutation_labels(&self) -> &'static [&'static str] {
        &MUTATIONS
    }

    fn run_case(&self, seed: u64, scale: u32, mutation: Option<usize>) -> CaseOutcome {
        let mut outcome = CaseOutcome::default();
        let mut rng = rng_for(seed);
        let bdi_mutation = match mutation {
            Some(0) => Some(BdiMutation::SkipSignExtension),
            Some(1) => Some(BdiMutation::RepeatedStrideOne),
            Some(2) => Some(BdiMutation::BaseFromZero),
            _ => None,
        };
        let fifo_mutation = match mutation {
            Some(3) => Some(FifoMutation::LifoOrder),
            Some(4) => Some(FifoMutation::FreeOffByOne),
            Some(5) => Some(FifoMutation::BurstFloorDiv),
            _ => None,
        };
        self.run_bdi(&mut rng, scale, bdi_mutation, &mut outcome);
        self.run_fifo(&mut rng, scale, fifo_mutation, &mut outcome);
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{family_seed_base, DEFAULT_SCALE};

    #[test]
    fn clean_cases_have_no_divergence() {
        let fam = StreamFamily;
        for i in 0..50 {
            let out = fam.run_case(family_seed_base(2) + i, DEFAULT_SCALE, None);
            assert!(out.divergences.is_empty(), "{:?}", out.divergences);
        }
    }

    #[test]
    fn every_mutation_is_detected_at_every_scale() {
        let fam = StreamFamily;
        for scale in 0..=DEFAULT_SCALE {
            for (m, label) in MUTATIONS.iter().enumerate() {
                let out = fam.run_case(family_seed_base(2) + 13, scale, Some(m));
                assert!(
                    !out.divergences.is_empty(),
                    "mutation {label} missed at scale {scale}"
                );
            }
        }
    }

    #[test]
    fn reference_decoder_matches_production_on_crafted_lines() {
        // A base8delta1 line with a negative delta and nonzero base.
        let mut line = [0u8; LINE_BYTES];
        for (i, chunk) in line.chunks_exact_mut(8).enumerate() {
            chunk.copy_from_slice(&(5_000i64 + if i == 2 { -7 } else { i as i64 }).to_le_bytes());
        }
        let enc = compress(&line);
        assert_eq!(reference_decode(&enc, None), decompress(&enc));
        assert_ne!(
            reference_decode(&enc, Some(BdiMutation::SkipSignExtension)),
            line,
            "negative delta must expose skipped sign extension"
        );
        assert_ne!(
            reference_decode(&enc, Some(BdiMutation::BaseFromZero)),
            line,
            "nonzero base must expose the zeroed base"
        );
    }
}
