//! The exploration sweep: enumerate, probe, prune, evaluate, certify.
//!
//! [`explore`] runs one benchmark through the whole loop:
//!
//! 1. **Enumerate** the [`DesignSpace`] against the benchmark's accurate
//!    topology (deduplicating collapsed candidates);
//! 2. **Probe**: train one reduced-epoch member per unique topology and
//!    rank every candidate's predicted quality and cost from
//!    margined-oracle replays ([`ProbeSet`]);
//! 3. **Prune** to an evaluation budget (default a quarter of the
//!    enumerated space), always force-including the fixed PR-6 tiering
//!    and the pool of one as measured anchors;
//! 4. **Evaluate** survivors in full: `CompileSession` pool compilation
//!    with deployed-in-the-loop certification, validation-seed frontier
//!    simulation, and `mithra-conform` re-validation on unseen datasets;
//! 5. **Fold** the certified survivors into a nondominated frontier over
//!    (speedup, energy reduction, certified rate) and count every
//!    predicted-vs-measured rank discordance.
//!
//! The emitted [`BenchmarkExploration`] deliberately carries **no wall
//! clocks** — only counters and metrics — so its serialization is
//! byte-identical at any `--threads` setting.

use crate::error::Result;
use crate::predict::{apply_mutation, rank_ascending, PredictorMutation, ProbeSet};
use crate::space::{Candidate, DesignSpace};
use mithra_axbench::benchmark::Benchmark;
use mithra_conform::{validate_routed, ValidatorConfig, Verdict};
use mithra_core::pipeline::{compile_routed_with_report, CompileConfig};
use mithra_core::profile::DatasetProfile;
use mithra_core::route::{PoolSpec, RoutedCompiled};
use mithra_core::session::profile_pool_validation;
use mithra_core::MithraError;
use mithra_npu::topology::Topology;
use mithra_sim::system::{run_routed, SimOptions};
use mithra_stats::pareto::{dominates, nondominated_indices};
use serde::Serialize;
use std::sync::Arc;

/// Everything one exploration sweep needs beyond the space itself.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// The full compile configuration (quality spec, scale, seeds,
    /// cache, threads) shared by probes and full evaluations.
    pub compile: CompileConfig,
    /// Unseen validation datasets simulated per evaluated point.
    pub validation_datasets: usize,
    /// Seed base of the validation space (disjoint from compilation).
    pub validation_seed_base: u64,
    /// Monte-Carlo conformance datasets per evaluated point.
    pub trials: usize,
    /// Confidence of the conformance hypothesis test.
    pub test_confidence: f64,
    /// Compilation datasets each probe member is profiled on.
    pub probe_datasets: usize,
    /// Training epochs per probe member (a fraction of the full run).
    pub probe_epochs: usize,
    /// Full evaluations to pay for; `None` = a quarter of the enumerated
    /// space (rounded down, at least the forced anchors).
    pub budget: Option<usize>,
    /// Planted predictor defect for the honesty self-check.
    pub mutation: Option<PredictorMutation>,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        Self {
            compile: CompileConfig::default(),
            validation_datasets: 10,
            validation_seed_base: 1_000_000,
            trials: 100,
            test_confidence: 0.95,
            probe_datasets: 5,
            probe_epochs: 8,
            budget: None,
            mutation: None,
        }
    }
}

/// One fully evaluated design point.
#[derive(Debug, Clone, Serialize)]
pub struct EvaluatedPoint {
    /// The candidate's stable label (`"K3 d4/2/1 cascade"`).
    pub label: String,
    /// Instantiated member topologies, cheapest first.
    pub topologies: Vec<String>,
    /// Deployed router kind (`"cascade"` or `"neural"`).
    pub router: String,
    /// Per-member labeling margins (empty = all 1.0).
    pub margins: Vec<f64>,
    /// The predictor's cost rank among all enumerated candidates
    /// (0 = predicted cheapest), after any planted mutation.
    pub predicted_cost_rank: usize,
    /// The predictor's quality rank (0 = predicted best), after any
    /// planted mutation.
    pub predicted_quality_rank: usize,
    /// Whether compilation produced a certificate at all.
    pub certified: bool,
    /// The certified accelerator-error threshold (0 when uncertified).
    pub threshold: f32,
    /// Compile-time Clopper–Pearson lower bound on the unseen success
    /// rate of the routed mixture.
    pub certified_rate: f64,
    /// Mean speedup over the validation datasets.
    pub speedup: f64,
    /// Mean energy reduction over the validation datasets.
    pub energy_reduction: f64,
    /// Mean fraction of invocations served by any pool member.
    pub invocation_rate: f64,
    /// Mean final quality loss over the validation datasets.
    pub mean_quality_loss: f64,
    /// Fraction of invocations served per member, cheapest first.
    pub member_share: Vec<f64>,
    /// The conformance verdict on unseen datasets (`"holds"` etc.;
    /// `"uncertifiable"` when compilation found no threshold).
    pub verdict: String,
    /// Whether the conformance verdict is an outright `Holds`.
    pub holds: bool,
    /// Whether the point sits on the certified Pareto frontier.
    pub on_frontier: bool,
    /// Whether the point Pareto-dominates the measured fixed ÷4/÷2/1
    /// tiering on (speedup, energy reduction, certified rate).
    pub dominates_fixed: bool,
}

/// One benchmark's complete exploration record. Contains no wall-clock
/// fields: serializing it is byte-identical at any thread count.
#[derive(Debug, Clone, Serialize)]
pub struct BenchmarkExploration {
    /// Benchmark name.
    pub benchmark: String,
    /// Distinct design points after instantiation and deduplication.
    pub enumerated: usize,
    /// Points that paid full compilation + certification.
    pub evaluated: usize,
    /// Points discarded on predictor ranks alone
    /// (`pruned + evaluated == enumerated`, always).
    pub pruned: usize,
    /// The evaluation budget the sweep ran under.
    pub budget: usize,
    /// Unique probe topologies trained for prediction.
    pub probe_members: usize,
    /// Evaluated points in enumeration order.
    pub points: Vec<EvaluatedPoint>,
    /// Indices into `points` of the certified Pareto frontier.
    pub frontier: Vec<usize>,
    /// Index into `points` of the fixed PR-6 tiering anchor.
    pub fixed_tiering_index: Option<usize>,
    /// Index into `points` of the pool-of-one anchor.
    pub pool_of_one_index: Option<usize>,
    /// Certified point pairs whose measured speedup order contradicts
    /// the predicted cost order.
    pub discordant_cost_pairs: usize,
    /// Certified point pairs whose measured certified-rate order
    /// contradicts the predicted quality order.
    pub discordant_quality_pairs: usize,
    /// Certified point pairs compared for discordance.
    pub comparable_pairs: usize,
    /// Artifact-cache hits across every full-evaluation session.
    pub cache_hits: u32,
    /// Artifact-cache misses across every full-evaluation session.
    pub cache_misses: u32,
    /// Function invocations across every full-evaluation session.
    pub compile_invocations: u64,
}

/// Mean frontier metrics of one routed point over the validation sets
/// (the figure-Z fold, duplicated here so `mithra-explore` does not
/// depend on the bench harness).
fn validation_fold(
    routed: &RoutedCompiled,
    pool_profiles: &[Vec<DatasetProfile>],
    datasets: usize,
) -> Result<(f64, f64, f64, f64, Vec<f64>)> {
    let options = SimOptions::default();
    let mut speedup = 0.0;
    let mut energy = 0.0;
    let mut rate = 0.0;
    let mut loss = 0.0;
    let mut member_served = vec![0usize; routed.pool.len()];
    let mut total = 0usize;
    for i in 0..datasets {
        let refs: Vec<&DatasetProfile> = pool_profiles.iter().map(|m| &m[i]).collect();
        let mut router = routed.router.clone();
        let r = run_routed(routed, &refs, &mut router, &options)?;
        speedup += r.run.speedup();
        energy += r.run.energy_reduction();
        rate += r.run.invocation_rate();
        loss += r.run.quality_loss;
        total += r.run.total;
        for (m, served) in r.member_invocations.iter().enumerate() {
            member_served[m] += served;
        }
    }
    let n = datasets.max(1) as f64;
    let shares = member_served
        .iter()
        .map(|&s| s as f64 / total.max(1) as f64)
        .collect();
    Ok((speedup / n, energy / n, rate / n, loss / n, shares))
}

fn point_skeleton(
    candidate: &Candidate,
    spec: &PoolSpec,
    cost_rank: usize,
    quality_rank: usize,
) -> EvaluatedPoint {
    EvaluatedPoint {
        label: candidate.label(),
        topologies: spec.topologies.iter().map(|t| t.to_string()).collect(),
        router: match spec.router {
            mithra_core::route::RouterKind::TableCascade => String::from("cascade"),
            mithra_core::route::RouterKind::KaryNeural(_) => String::from("neural"),
        },
        margins: spec.margins.clone(),
        predicted_cost_rank: cost_rank,
        predicted_quality_rank: quality_rank,
        certified: false,
        threshold: 0.0,
        certified_rate: 0.0,
        speedup: 0.0,
        energy_reduction: 0.0,
        invocation_rate: 0.0,
        mean_quality_loss: 0.0,
        member_share: Vec::new(),
        verdict: String::from("uncertifiable"),
        holds: false,
        on_frontier: false,
        dominates_fixed: false,
    }
}

/// The objective vector the frontier is extracted over: all axes
/// maximized.
fn objectives(p: &EvaluatedPoint) -> Vec<f64> {
    vec![p.speedup, p.energy_reduction, p.certified_rate]
}

/// Sweeps `space` for one benchmark.
///
/// # Errors
///
/// Propagates probe-training, compilation and validation failures.
/// [`MithraError::Uncertifiable`] on an individual candidate is *not* an
/// error — the candidate is recorded as an uncertified point.
pub fn explore(
    benchmark: &Arc<dyn Benchmark>,
    space: &DesignSpace,
    config: &ExploreConfig,
) -> Result<BenchmarkExploration> {
    let accurate = benchmark.npu_topology();
    let enumerated = space.enumerate(&accurate);
    let n = enumerated.len();

    // Probe every unique member topology once.
    let mut topologies: Vec<Topology> = Vec::new();
    for (_, spec) in &enumerated {
        for t in &spec.topologies {
            if !topologies.contains(t) {
                topologies.push(t.clone());
            }
        }
    }
    let probe_members = topologies.len();
    let probes = ProbeSet::build(
        benchmark,
        &config.compile,
        topologies,
        config.probe_datasets,
        config.probe_epochs,
    )?;

    // Rank candidates by predicted cost and quality.
    let spec_q = &config.compile.spec;
    let predictions = enumerated
        .iter()
        .map(|(_, s)| probes.predict(s, spec_q.max_quality_loss, spec_q.success_rate))
        .collect::<std::result::Result<Vec<_>, MithraError>>()?;
    let costs: Vec<f64> = predictions.iter().map(|p| p.relative_cost).collect();
    let qualities: Vec<f64> = predictions.iter().map(|p| -p.probe_success).collect();
    let mut cost_ranks = rank_ascending(&costs);
    let mut quality_ranks = rank_ascending(&qualities);
    if let Some(mutation) = config.mutation {
        apply_mutation(mutation, &mut cost_ranks, &mut quality_ranks);
    }

    // Prune: anchors first, then best combined rank until the budget.
    let fixed_spec = PoolSpec::tiered(&accurate);
    let single_spec = PoolSpec::single(accurate.clone());
    let forced: Vec<usize> = (0..n)
        .filter(|&i| enumerated[i].1 == fixed_spec || enumerated[i].1 == single_spec)
        .collect();
    let budget = config
        .budget
        .unwrap_or_else(|| (n / 4).max(1))
        .max(forced.len())
        .min(n);
    let mut selected: Vec<usize> = forced.clone();
    let mut by_rank: Vec<usize> = (0..n).filter(|i| !forced.contains(i)).collect();
    by_rank.sort_by_key(|&i| (cost_ranks[i] + quality_ranks[i], i));
    for i in by_rank {
        if selected.len() >= budget {
            break;
        }
        selected.push(i);
    }
    selected.sort_unstable();

    // Full evaluation of the survivors, in enumeration order.
    let vconfig = ValidatorConfig {
        trials: config.trials,
        scale: config.compile.scale,
        threads: config.compile.threads,
        test_confidence: config.test_confidence,
        ..ValidatorConfig::default()
    };
    let mut points: Vec<EvaluatedPoint> = Vec::with_capacity(selected.len());
    let mut cache_hits = 0u32;
    let mut cache_misses = 0u32;
    let mut compile_invocations = 0u64;
    let mut fixed_tiering_index = None;
    let mut pool_of_one_index = None;
    for &i in &selected {
        let (candidate, spec) = &enumerated[i];
        let mut point = point_skeleton(candidate, spec, cost_ranks[i], quality_ranks[i]);
        match compile_routed_with_report(Arc::clone(benchmark), &config.compile, spec) {
            Ok((routed, report)) => {
                cache_hits += report.cache_hits();
                cache_misses += report.cache_misses();
                compile_invocations += report.total_invocations();
                let (pool_profiles, validation_report) = profile_pool_validation(
                    &routed.pool,
                    &config.compile,
                    config.validation_seed_base,
                    config.validation_datasets,
                );
                cache_hits += validation_report.cache_hits;
                cache_misses += validation_report.cache_misses;
                compile_invocations += validation_report.invocations;
                let (speedup, energy, rate, loss, shares) =
                    validation_fold(&routed, &pool_profiles, config.validation_datasets)?;
                let conform = validate_routed(&routed, spec_q, &vconfig)?;
                point.certified = true;
                point.threshold = routed.threshold.threshold;
                point.certified_rate = routed.threshold.certified_rate;
                point.speedup = speedup;
                point.energy_reduction = energy;
                point.invocation_rate = rate;
                point.mean_quality_loss = loss;
                point.member_share = shares;
                point.verdict = conform.verdict.label().to_lowercase();
                point.holds = conform.verdict == Verdict::Holds;
            }
            Err(MithraError::Uncertifiable { .. }) => {}
            Err(e) => return Err(e.into()),
        }
        if enumerated[i].1 == fixed_spec {
            fixed_tiering_index = Some(points.len());
        }
        if enumerated[i].1 == single_spec {
            pool_of_one_index = Some(points.len());
        }
        points.push(point);
    }

    // Certified frontier: nondominated among the points whose conformance
    // verdict held outright.
    let eligible: Vec<usize> = (0..points.len())
        .filter(|&i| points[i].certified && points[i].holds)
        .collect();
    let vectors: Vec<Vec<f64>> = eligible.iter().map(|&i| objectives(&points[i])).collect();
    let frontier: Vec<usize> = nondominated_indices(&vectors)
        .into_iter()
        .map(|k| eligible[k])
        .collect();
    for &i in &frontier {
        points[i].on_frontier = true;
    }
    if let Some(fx) = fixed_tiering_index {
        let fixed_obj = objectives(&points[fx]);
        for i in 0..points.len() {
            if points[i].certified && points[fx].certified {
                points[i].dominates_fixed = dominates(&objectives(&points[i]), &fixed_obj);
            }
        }
    }

    // Predictor honesty accounting: every certified pair whose measured
    // order contradicts the predicted one is a discordant pair. A
    // planted mutation must show up here — the full-evaluation stage is
    // the backstop that catches mispredictions.
    let certified: Vec<usize> = (0..points.len()).filter(|&i| points[i].certified).collect();
    let mut comparable_pairs = 0usize;
    let mut discordant_cost_pairs = 0usize;
    let mut discordant_quality_pairs = 0usize;
    for (a, &i) in certified.iter().enumerate() {
        for &j in &certified[a + 1..] {
            comparable_pairs += 1;
            let (p, q) = (&points[i], &points[j]);
            // Predicted-cheaper should run faster.
            let predicted_faster = p.predicted_cost_rank < q.predicted_cost_rank;
            if (p.speedup < q.speedup) == predicted_faster && p.speedup != q.speedup {
                discordant_cost_pairs += 1;
            }
            // Predicted-better-quality should certify a higher rate.
            let predicted_better = p.predicted_quality_rank < q.predicted_quality_rank;
            if (p.certified_rate < q.certified_rate) == predicted_better
                && p.certified_rate != q.certified_rate
            {
                discordant_quality_pairs += 1;
            }
        }
    }

    Ok(BenchmarkExploration {
        benchmark: benchmark.name().to_string(),
        enumerated: n,
        evaluated: points.len(),
        pruned: n - points.len(),
        budget,
        probe_members,
        points,
        frontier,
        fixed_tiering_index,
        pool_of_one_index,
        discordant_cost_pairs,
        discordant_quality_pairs,
        comparable_pairs,
        cache_hits,
        cache_misses,
        compile_invocations,
    })
}
