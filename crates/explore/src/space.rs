//! The enumerated design space: pool compositions as explicit candidates.
//!
//! A [`Candidate`] is a *recipe* — hidden-width divisors per member, the
//! deployed router kind, whether cheap members label with a tightened
//! margin. [`Candidate::pool_spec`] instantiates it against a benchmark's
//! accurate topology, where tiny networks may collapse tiers;
//! [`DesignSpace::enumerate`] deduplicates the instantiated specs so each
//! distinct design point is evaluated at most once. The fixed PR-6
//! ÷4/÷2/accurate tiering is, by construction, one enumerated candidate
//! verbatim (`PoolSpec::from_divisors(t, [4, 2, 1])` *is*
//! `PoolSpec::tiered(t)`), as is the pool of one that stays bit-identical
//! to the binary pipeline.

use mithra_core::route::{PoolSpec, RouterKind};
use mithra_npu::topology::Topology;

/// The tightened labeling margin applied to every non-accurate member
/// when a candidate sweeps the margin axis: cheap members only accept an
/// invocation at 75% of the certified threshold, trading serving share
/// for fewer compounded false-accepts.
pub const TIGHT_MARGIN: f64 = 0.75;

/// One enumerated pool composition, before instantiation against a
/// benchmark's accurate topology.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// Hidden-width divisors, cheapest member first; divisor 1 is the
    /// accurate topology itself (see `PoolSpec::from_divisors`).
    pub divisors: Vec<usize>,
    /// The deployed router kind for this design point.
    pub router: RouterKind,
    /// Whether non-accurate members label at [`TIGHT_MARGIN`] instead of
    /// the full certified threshold.
    pub tight_margins: bool,
}

impl Candidate {
    /// A candidate with the default routing (table cascade, unmargined).
    pub fn plain(divisors: &[usize]) -> Self {
        Self {
            divisors: divisors.to_vec(),
            router: RouterKind::TableCascade,
            tight_margins: false,
        }
    }

    /// Short stable label for tables and JSON reports, e.g.
    /// `"K3 d8/4/1 neural tight"`.
    pub fn label(&self) -> String {
        let divisors = self
            .divisors
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("/");
        let router = match self.router {
            RouterKind::TableCascade => "cascade",
            RouterKind::KaryNeural(_) => "neural",
        };
        let tight = if self.tight_margins { " tight" } else { "" };
        format!("K{} d{divisors} {router}{tight}", self.divisors.len())
    }

    /// Instantiates the candidate against `accurate`. When the divisor
    /// ladder collapses to a single member (tiny accurate topologies),
    /// the routing axes are normalized away: a pool of one always uses
    /// the default cascade/unmargined design, preserving the binary
    /// parity invariant and letting the deduplication below fold the
    /// collapsed candidates together.
    pub fn pool_spec(&self, accurate: &Topology) -> PoolSpec {
        let mut spec = PoolSpec::from_divisors(accurate, &self.divisors);
        if spec.len() > 1 {
            spec = spec.with_router(self.router.clone());
            if self.tight_margins {
                let mut margins = vec![TIGHT_MARGIN; spec.len()];
                *margins.last_mut().expect("non-empty pool") = 1.0;
                spec = spec.with_margins(margins);
            }
        }
        spec
    }
}

/// The ordered candidate list one exploration sweeps.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignSpace {
    /// Candidates in enumeration order (the deterministic tie-break
    /// order for every downstream ranking).
    pub candidates: Vec<Candidate>,
}

impl DesignSpace {
    /// The full-scale space: K ∈ {1, 2, 3}; three divisor ladders per
    /// K; and for multi-member pools the router kind (cascade vs K-ary
    /// neural) and margin (full vs tight) axes — 3 + 12 + 12 = 27
    /// candidates before per-benchmark deduplication.
    pub fn full() -> Self {
        let mut candidates = Vec::new();
        for divisors in [&[1][..], &[2][..], &[4][..]] {
            candidates.push(Candidate::plain(divisors));
        }
        let ladders: [&[usize]; 6] = [
            &[8, 1],
            &[4, 1],
            &[2, 1],
            &[8, 4, 1],
            &[8, 2, 1],
            &[4, 2, 1],
        ];
        for divisors in ladders {
            for router in [RouterKind::TableCascade, RouterKind::kary_neural_default()] {
                for tight_margins in [false, true] {
                    candidates.push(Candidate {
                        divisors: divisors.to_vec(),
                        router: router.clone(),
                        tight_margins,
                    });
                }
            }
        }
        Self { candidates }
    }

    /// A small space for smoke tests and CI: both pool-of-one points,
    /// the fixed tiering, one two-member ladder under each router kind,
    /// and one tight-margin variant.
    pub fn smoke() -> Self {
        Self {
            candidates: vec![
                Candidate::plain(&[1]),
                Candidate::plain(&[2]),
                Candidate::plain(&[4, 2, 1]),
                Candidate::plain(&[4, 1]),
                Candidate {
                    divisors: vec![4, 1],
                    router: RouterKind::kary_neural_default(),
                    tight_margins: false,
                },
                Candidate {
                    divisors: vec![2, 1],
                    router: RouterKind::TableCascade,
                    tight_margins: true,
                },
            ],
        }
    }

    /// Instantiates every candidate against `accurate` and deduplicates
    /// by the resulting [`PoolSpec`] (first occurrence wins, preserving
    /// enumeration order). Collapsed tiers on tiny topologies fold here.
    pub fn enumerate(&self, accurate: &Topology) -> Vec<(Candidate, PoolSpec)> {
        let mut out: Vec<(Candidate, PoolSpec)> = Vec::new();
        for candidate in &self.candidates {
            let spec = candidate.pool_spec(accurate);
            if out.iter().any(|(_, s)| *s == spec) {
                continue;
            }
            out.push((candidate.clone(), spec));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo(layers: &[usize]) -> Topology {
        Topology::new(layers).unwrap()
    }

    #[test]
    fn full_space_has_27_candidates() {
        assert_eq!(DesignSpace::full().candidates.len(), 27);
    }

    #[test]
    fn full_space_contains_fixed_tiering_and_pool_of_one_verbatim() {
        let accurate = topo(&[2, 8, 16, 1]);
        let specs: Vec<PoolSpec> = DesignSpace::full()
            .enumerate(&accurate)
            .into_iter()
            .map(|(_, s)| s)
            .collect();
        assert!(specs.contains(&PoolSpec::tiered(&accurate)));
        assert!(specs.contains(&PoolSpec::single(accurate.clone())));
    }

    #[test]
    fn collapsed_candidates_deduplicate() {
        // A tiny accurate topology collapses every ladder to the same
        // pool of one; the routing axes normalize away with it.
        let accurate = topo(&[2, 2, 1]);
        let enumerated = DesignSpace::full().enumerate(&accurate);
        assert!(enumerated.len() < DesignSpace::full().candidates.len());
        for (_, spec) in &enumerated {
            if spec.len() == 1 {
                assert!(spec.is_default_routing());
            }
        }
    }

    #[test]
    fn labels_are_distinct_within_the_full_space() {
        let space = DesignSpace::full();
        let mut labels: Vec<String> = space.candidates.iter().map(Candidate::label).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), space.candidates.len());
    }

    #[test]
    fn tight_margin_spec_keeps_accurate_member_at_unity() {
        let accurate = topo(&[2, 16, 1]);
        let candidate = Candidate {
            divisors: vec![4, 2, 1],
            router: RouterKind::TableCascade,
            tight_margins: true,
        };
        let spec = candidate.pool_spec(&accurate);
        assert_eq!(spec.margin_for(0), TIGHT_MARGIN);
        assert_eq!(spec.margin_for(1), TIGHT_MARGIN);
        assert_eq!(spec.margin_for(spec.len() - 1), 1.0);
    }
}
