//! Cheap compile-time quality/cost predictors (autoAx-style).
//!
//! Paying full pool training plus deployed-in-the-loop certification for
//! all ~27 enumerated candidates would defeat the point of exploration.
//! Instead, every *unique member topology* in the space is trained once
//! as a **probe**: a reduced-epoch network profiled on a small prefix of
//! the compilation datasets. A candidate's quality and cost are then
//! estimated purely from margined-oracle replays of its members' probe
//! profiles — a 16-step bisection finds the largest threshold whose
//! probe success fraction meets the target, and the serving shares at
//! that threshold price the mixture in MACs.
//!
//! Predictions are **rank-only**: they order candidates for pruning and
//! are never reported as results. The full-evaluation stage measures the
//! survivors for real and counts every discordant predicted-vs-measured
//! pair, so a systematically wrong predictor is visible in committed
//! output ([`PredictorMutation`] plants such defects for the honesty
//! self-check, mirroring the conform mutation discipline).

use mithra_axbench::benchmark::Benchmark;
use mithra_axbench::dataset::{Dataset, OutputBuffer};
use mithra_core::cache::{fingerprint, ArtifactCache, TrainedNpuArtifact, CACHE_FORMAT_VERSION};
use mithra_core::function::{AcceleratedFunction, NpuTrainConfig};
use mithra_core::parallel::par_map_indexed;
use mithra_core::pipeline::CompileConfig;
use mithra_core::profile::{collect_profiles_parallel, DatasetProfile};
use mithra_core::route::{oracle_route_margined, PoolSpec, RouteChoice, RouterKind};
use mithra_core::{MithraError, Result};
use mithra_npu::cost::NpuCostModel;
use mithra_npu::kernel::KernelBackend;
use mithra_npu::topology::Topology;
use serde::Serialize;
use std::sync::Arc;

/// Cache stage label for probe artifacts (trained probe networks and
/// their profiles). Distinct from every `CompileSession` stage label, so
/// probes can never shadow full-pipeline artifacts.
pub const PROBE_STAGE: &str = "explore-probe";

/// Decision cycles one consulted cascade stage puts on the critical
/// path, mirroring the table classifier's overhead model (the tables are
/// read in parallel after the last input element; a small fixed latency).
const CASCADE_STAGE_DECISION_CYCLES: f64 = 4.0;

/// Bisection steps of the mini-certification probe.
const BISECTION_ITERATIONS: usize = 16;

/// A deliberately planted predictor defect for the honesty self-check.
///
/// The engine applies the mutation to the predictor's *ranks* before
/// pruning. Measured results are never touched, so a planted defect must
/// surface as predicted-vs-measured rank discordance counted by the
/// full-evaluation stage — exactly how a real (unplanted) misprediction
/// would be caught.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum PredictorMutation {
    /// Reverses the cost ranking: the predicted-cheapest candidate is
    /// reported as the most expensive and vice versa.
    InvertedCost,
    /// Rotates every quality rank by one position (off-by-one).
    OffByOneQualityRank,
}

/// A candidate's predicted standing, from probe replays alone.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Prediction {
    /// The largest threshold whose probe success fraction met the
    /// target (the mini-certification analogue of Algorithm 1).
    pub mini_threshold: f32,
    /// Fraction of probe datasets within the quality target at
    /// `mini_threshold` — the quality-rank key, higher is better.
    pub probe_success: f64,
    /// Predicted mean per-invocation cycles relative to the precise CPU
    /// kernel (1.0 = no acceleration at all): router overhead plus the
    /// serving member's NPU cycles or the kernel on a precise fallback,
    /// priced with the simulator's own cost model — the cost-rank key,
    /// lower is better.
    pub relative_cost: f64,
}

/// Probe profiles for every unique member topology of a design space.
#[derive(Debug)]
pub struct ProbeSet {
    benchmark: Arc<dyn Benchmark>,
    topologies: Vec<Topology>,
    /// `profiles[t][d]` = topology `t`'s probe profile of compilation
    /// dataset `d`.
    profiles: Vec<Vec<DatasetProfile>>,
}

fn probe_member_key(
    benchmark: &str,
    compile: &CompileConfig,
    probe_epochs: usize,
    topology: &Topology,
) -> String {
    let mut key = format!(
        "v{CACHE_FORMAT_VERSION}/{benchmark}/explore-probe/scale={:?}/seed_base={}/train_datasets={}/npu={:?}/probe_epochs={probe_epochs}/topology={topology:?}",
        compile.scale, compile.seed_base, compile.npu_train_datasets, compile.npu
    );
    // Mirror the compile session's key rule: the scalar default stays
    // suffix-free so pre-existing probe artifacts keep their keys.
    if compile.kernel != KernelBackend::Scalar {
        key.push_str(&format!("/kernel={}", compile.kernel));
    }
    key
}

impl ProbeSet {
    /// Trains (or cache-loads) a probe member per unique topology and
    /// profiles it on the leading `probe_datasets` compilation datasets.
    /// Training fans out through [`par_map_indexed`], so the probe set is
    /// bit-identical at any thread count; artifacts go through the
    /// versioned cache under the [`PROBE_STAGE`] label.
    ///
    /// # Errors
    ///
    /// Propagates NPU training failures.
    pub fn build(
        benchmark: &Arc<dyn Benchmark>,
        compile: &CompileConfig,
        topologies: Vec<Topology>,
        probe_datasets: usize,
        probe_epochs: usize,
    ) -> Result<Self> {
        let train_sets: Vec<Dataset> = (0..compile.npu_train_datasets as u64)
            .map(|i| benchmark.dataset(compile.seed_base + i, compile.scale))
            .collect();
        let npu = NpuTrainConfig {
            epochs: Some(probe_epochs),
            ..compile.npu.clone()
        };
        let cache = compile
            .cache
            .as_ref()
            .map(|c| ArtifactCache::open(c, benchmark.name()));
        let results = par_map_indexed(topologies.len(), compile.threads, |i| {
            let topology = &topologies[i];
            let member_key = probe_member_key(benchmark.name(), compile, probe_epochs, topology);
            let profiles_key =
                fingerprint(&format!("{member_key}/probe_datasets={probe_datasets}"));
            if let Some(c) = &cache {
                if let Some(profiles) = c.load_profiles(PROBE_STAGE, profiles_key) {
                    return Ok(profiles);
                }
            }
            let member_key = fingerprint(&member_key);
            let function = match cache
                .as_ref()
                .and_then(|c| c.load::<TrainedNpuArtifact>(PROBE_STAGE, member_key))
            {
                Some(artifact) => artifact
                    .into_function(Arc::clone(benchmark))
                    .with_kernel(compile.kernel),
                None => {
                    let function = AcceleratedFunction::train_with_topology_kernel(
                        Arc::clone(benchmark),
                        &train_sets,
                        &npu,
                        topology,
                        compile.kernel,
                    )?;
                    if let Some(c) = &cache {
                        c.store(PROBE_STAGE, member_key, &TrainedNpuArtifact::of(&function));
                    }
                    function
                }
            };
            // One probe trains at a time in this slot; profiling itself
            // is sequential here (the outer fan-out owns the threads).
            let profiles = collect_profiles_parallel(
                &function,
                compile.seed_base,
                probe_datasets,
                compile.scale,
                Some(1),
            );
            if let Some(c) = &cache {
                let _ = c.store_profiles(PROBE_STAGE, profiles_key, &profiles);
            }
            Ok(profiles)
        });
        let profiles = results.into_iter().collect::<Result<Vec<_>>>()?;
        Ok(Self {
            benchmark: Arc::clone(benchmark),
            topologies,
            profiles,
        })
    }

    /// The unique topologies the probe set covers, in build order.
    pub fn topologies(&self) -> &[Topology] {
        &self.topologies
    }

    /// Number of probe datasets each member was profiled on.
    pub fn dataset_count(&self) -> usize {
        self.profiles.first().map_or(0, Vec::len)
    }

    /// Predicts one candidate's standing from its members' probe
    /// profiles: bisect the mini-certified threshold, then price the
    /// mixture at that threshold.
    ///
    /// # Errors
    ///
    /// Returns [`MithraError::InsufficientData`] when a spec topology is
    /// missing from the probe set and propagates quality-scoring errors.
    pub fn predict(
        &self,
        spec: &PoolSpec,
        quality_target: f64,
        target_rate: f64,
    ) -> Result<Prediction> {
        let member_indices: Vec<usize> =
            spec.topologies
                .iter()
                .map(|t| {
                    self.topologies.iter().position(|p| p == t).ok_or(
                        MithraError::InsufficientData {
                            stage: "design-space prediction",
                            available: self.topologies.len(),
                            needed: spec.len(),
                        },
                    )
                })
                .collect::<Result<Vec<_>>>()?;
        let datasets = self.dataset_count();
        if datasets == 0 {
            return Err(MithraError::InsufficientData {
                stage: "design-space prediction",
                available: 0,
                needed: 1,
            });
        }
        let mut hi = 0f32;
        for &t in &member_indices {
            for profile in &self.profiles[t] {
                for &e in profile.errors() {
                    hi = hi.max(e);
                }
            }
        }
        let mut lo = 0f32;
        for _ in 0..BISECTION_ITERATIONS {
            let mid = (lo + hi) / 2.0;
            let (success, _) = self.replay_at(&member_indices, spec, mid, quality_target)?;
            if success >= target_rate {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let (probe_success, relative_cost) =
            self.replay_at(&member_indices, spec, lo, quality_target)?;
        Ok(Prediction {
            mini_threshold: lo,
            probe_success,
            relative_cost,
        })
    }

    /// Replays every probe dataset under the margined oracle at
    /// `threshold`: returns the success fraction against the quality
    /// target and the mean per-invocation relative cost.
    fn replay_at(
        &self,
        member_indices: &[usize],
        spec: &PoolSpec,
        threshold: f32,
        quality_target: f64,
    ) -> Result<(f64, f64)> {
        let bench = &self.benchmark;
        let cost_model = NpuCostModel::new();
        let kernel_cycles = bench.profile().kernel_cycles as f64;
        let member_cycles: Vec<f64> = spec
            .topologies
            .iter()
            .map(|t| cost_model.invocation(t).cycles as f64)
            .collect();
        let k = spec.len();
        // The neural router runs one fixed network per invocation; a
        // cascade pays a small decision latency per consulted stage.
        let neural_router_cycles = match &spec.router {
            RouterKind::TableCascade => None,
            RouterKind::KaryNeural(config) => {
                let hidden = config.hidden_candidates.iter().copied().max().unwrap_or(8);
                let input_dim = self.profiles[member_indices[0]][0].dataset().input_dim();
                let layers = [input_dim, hidden, k + 1];
                Some(match Topology::new(&layers) {
                    Ok(t) => cost_model.invocation(&t).cycles as f64,
                    Err(_) => 0.0,
                })
            }
        };
        let route_cycles = |consulted: usize| match neural_router_cycles {
            Some(c) => c,
            None => CASCADE_STAGE_DECISION_CYCLES * consulted as f64,
        };
        let datasets = self.dataset_count();
        let mut successes = 0usize;
        let mut cost = 0.0f64;
        let mut invocations = 0usize;
        for d in 0..datasets {
            let members: Vec<&DatasetProfile> = member_indices
                .iter()
                .map(|&t| &self.profiles[t][d])
                .collect();
            let base = members[0];
            let n = base.invocation_count();
            let mut mixed = OutputBuffer::with_capacity(bench.output_dim(), n);
            for i in 0..n {
                match oracle_route_margined(&members, i, threshold, spec) {
                    RouteChoice::Member(m) => {
                        cost += route_cycles(m + 1) + member_cycles[m];
                        mixed.push(members[m].approx_output(i));
                    }
                    RouteChoice::Precise => {
                        cost += route_cycles(k) + kernel_cycles;
                        mixed.push(base.precise_output(i));
                    }
                }
            }
            invocations += n;
            let final_mixed = bench.run_application(base.dataset(), &mixed);
            let loss = bench
                .quality_metric()
                .try_quality_loss(base.final_precise(), &final_mixed)?;
            if loss <= quality_target {
                successes += 1;
            }
        }
        Ok((
            successes as f64 / datasets as f64,
            cost / (invocations.max(1) as f64 * kernel_cycles),
        ))
    }
}

/// Ranks `0..n` by `key` ascending with index tie-breaking:
/// `result[i]` is candidate `i`'s rank (0 = best).
pub fn rank_ascending(keys: &[f64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..keys.len()).collect();
    order.sort_by(|&a, &b| {
        keys[a]
            .partial_cmp(&keys[b])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let mut ranks = vec![0usize; keys.len()];
    for (rank, &i) in order.iter().enumerate() {
        ranks[i] = rank;
    }
    ranks
}

/// Applies a planted [`PredictorMutation`] to the predictor's rank
/// vectors (measured results are never touched).
pub fn apply_mutation(
    mutation: PredictorMutation,
    cost_ranks: &mut [usize],
    quality_ranks: &mut [usize],
) {
    let n = cost_ranks.len();
    if n == 0 {
        return;
    }
    match mutation {
        PredictorMutation::InvertedCost => {
            for r in cost_ranks.iter_mut() {
                *r = n - 1 - *r;
            }
        }
        PredictorMutation::OffByOneQualityRank => {
            for r in quality_ranks.iter_mut() {
                *r = (*r + 1) % n;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_ascending_breaks_ties_by_index() {
        assert_eq!(rank_ascending(&[3.0, 1.0, 3.0, 0.5]), vec![2, 1, 3, 0]);
        assert_eq!(rank_ascending(&[]), Vec::<usize>::new());
    }

    #[test]
    fn inverted_cost_reverses_ranks() {
        let mut cost = vec![0, 1, 2, 3];
        let mut quality = vec![0, 1, 2, 3];
        apply_mutation(PredictorMutation::InvertedCost, &mut cost, &mut quality);
        assert_eq!(cost, vec![3, 2, 1, 0]);
        assert_eq!(quality, vec![0, 1, 2, 3]);
    }

    #[test]
    fn off_by_one_rotates_quality_ranks() {
        let mut cost = vec![0, 1, 2];
        let mut quality = vec![0, 1, 2];
        apply_mutation(
            PredictorMutation::OffByOneQualityRank,
            &mut cost,
            &mut quality,
        );
        assert_eq!(cost, vec![0, 1, 2]);
        assert_eq!(quality, vec![1, 2, 0]);
    }
}
