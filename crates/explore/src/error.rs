//! Exploration errors: the sweep crosses the compile, simulation and
//! conformance layers, so its error type wraps all three.

use mithra_conform::ConformError;
use mithra_core::MithraError;
use mithra_sim::SimError;
use std::error::Error;
use std::fmt;

/// Errors raised by a design-space exploration sweep.
#[derive(Debug)]
pub enum ExploreError {
    /// A compile-layer failure (probe training, pool compilation).
    Core(MithraError),
    /// A simulation failure on the validation frontier arm.
    Sim(SimError),
    /// A conformance-harness failure on the guarantee arm.
    Conform(ConformError),
}

impl fmt::Display for ExploreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExploreError::Core(e) => write!(f, "compile error: {e}"),
            ExploreError::Sim(e) => write!(f, "simulation error: {e}"),
            ExploreError::Conform(e) => write!(f, "conformance error: {e}"),
        }
    }
}

impl Error for ExploreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ExploreError::Core(e) => Some(e),
            ExploreError::Sim(e) => Some(e),
            ExploreError::Conform(e) => Some(e),
        }
    }
}

impl From<MithraError> for ExploreError {
    fn from(e: MithraError) -> Self {
        ExploreError::Core(e)
    }
}

impl From<SimError> for ExploreError {
    fn from(e: SimError) -> Self {
        ExploreError::Sim(e)
    }
}

impl From<ConformError> for ExploreError {
    fn from(e: ConformError) -> Self {
        ExploreError::Conform(e)
    }
}

/// Convenience alias for exploration results.
pub type Result<T> = std::result::Result<T, ExploreError>;
