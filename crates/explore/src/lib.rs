//! Automated design-space exploration over certified approximator pools.
//!
//! PR 6 generalized MITHRA's binary accept/reject pipeline into certified
//! multi-approximator routing, but left the pool itself a hand-fixed
//! ÷4/÷2/accurate tiering. This crate sweeps the pool *composition* as a
//! design space and emits, per benchmark, the Pareto set of certified
//! mixtures:
//!
//! * [`space`] — the enumerated axes: member count `K`, hidden-width
//!   divisor ladders, the deployed router kind (table cascade vs a K-ary
//!   neural classifier) and per-member labeling margins;
//! * [`predict`] — cheap compile-time predictors in the autoAx style: a
//!   small probe set of reduced-epoch members is trained once, and every
//!   candidate's quality/cost is *ranked* from margined-oracle replays of
//!   those probes — orders of magnitude cheaper than pool training plus
//!   deployed-in-the-loop certification;
//! * [`engine`] — the sweep itself: enumerate, probe, rank, prune to an
//!   evaluation budget, pay full [`CompileSession`] compilation and
//!   conformance validation only for survivors, and fold the certified
//!   results into a nondominated frontier over (speedup, energy
//!   reduction, certified rate) via [`mithra_stats::pareto`].
//!
//! Exploration fan-out runs through
//! [`mithra_core::parallel::par_map_indexed`], so every emitted report is
//! bit-identical at any `--threads` setting; full evaluations reuse the
//! versioned artifact cache, making warm re-sweeps cheap. Every frontier
//! point's certificate is re-validated on unseen datasets by
//! `mithra-conform` before it is emitted, and the predictor's rank
//! mistakes are *counted* against the measured results — mispredictions
//! are caught by the full-evaluation stage, never trusted.
//!
//! [`CompileSession`]: mithra_core::session::CompileSession

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod engine;
pub mod error;
pub mod predict;
pub mod space;

pub use engine::{explore, BenchmarkExploration, EvaluatedPoint, ExploreConfig};
pub use error::{ExploreError, Result};
pub use predict::{Prediction, PredictorMutation, ProbeSet};
pub use space::{Candidate, DesignSpace};
