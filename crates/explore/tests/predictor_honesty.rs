//! Predictor honesty: planted mispredictions cannot corrupt results.
//!
//! The compile-time predictor only *ranks* candidates; every number the
//! exploration emits comes from full compilation, simulation and
//! conformance validation of the survivors. These tests plant the two
//! canonical predictor defects — an inverted cost model and an
//! off-by-one quality ranking — and pin both halves of the honesty
//! contract:
//!
//! * measured results are untouched: with the same evaluation set, every
//!   point's measured metrics and the certified frontier are
//!   byte-identical to the unmutated baseline;
//! * the defect is *caught*: the discordance counters (predicted order
//!   vs measured order over evaluated pairs) expose the mutation
//!   exactly. Inverting the cost model reverses the predicted order of
//!   every pair, so over certified pairs with distinct measured
//!   speedups exactly one of the honest/inverted sweeps flags each pair
//!   — their discordance counts sum to that pair count. Rotating the
//!   quality ranking shifts every recorded rank by exactly one slot.
//!   Both defects are therefore visible in `BENCH_explore.json` rather
//!   than silently trusted.

use mithra_axbench::benchmark::Benchmark;
use mithra_axbench::suite;
use mithra_core::cache::CacheConfig;
use mithra_core::pipeline::CompileConfig;
use mithra_explore::{
    explore, BenchmarkExploration, DesignSpace, ExploreConfig, PredictorMutation,
};
use std::sync::Arc;

/// Measured (non-predictor) content of every evaluated point, bit-exact.
fn measured(report: &BenchmarkExploration) -> Vec<(String, u32, u64, u64, String, bool)> {
    report
        .points
        .iter()
        .map(|p| {
            (
                p.label.clone(),
                p.threshold.to_bits(),
                p.speedup.to_bits(),
                p.certified_rate.to_bits(),
                p.verdict.clone(),
                p.holds,
            )
        })
        .collect()
}

#[test]
fn planted_mispredictions_are_caught_by_full_evaluation() {
    let bench: Arc<dyn Benchmark> = suite::by_name("sobel").unwrap().into();
    let space = DesignSpace::smoke();
    // A shared cache makes the second and third sweeps warm: the planted
    // mutations must not perturb any cache key.
    let cache_dir =
        std::env::temp_dir().join(format!("mithra-explore-honesty-{}", std::process::id()));
    let config = |mutation: Option<PredictorMutation>| ExploreConfig {
        compile: CompileConfig {
            cache: Some(CacheConfig::at(cache_dir.clone())),
            ..CompileConfig::smoke()
        },
        validation_datasets: 2,
        trials: 8,
        probe_datasets: 2,
        probe_epochs: 4,
        // Evaluate the whole space so all three sweeps measure the same
        // points and the discordance counters are directly comparable.
        budget: Some(usize::MAX),
        mutation,
        ..ExploreConfig::default()
    };

    let baseline = explore(&bench, &space, &config(None)).unwrap();
    let inverted = explore(
        &bench,
        &space,
        &config(Some(PredictorMutation::InvertedCost)),
    )
    .unwrap();
    let rotated = explore(
        &bench,
        &space,
        &config(Some(PredictorMutation::OffByOneQualityRank)),
    )
    .unwrap();
    std::fs::remove_dir_all(&cache_dir).ok();

    assert_eq!(baseline.evaluated, baseline.enumerated, "full budget");
    for report in [&baseline, &inverted, &rotated] {
        assert_eq!(
            report.pruned + report.evaluated,
            report.enumerated,
            "prune accounting must sum to the enumerated space"
        );
    }

    // Half one: the mutation never touches a measurement.
    let baseline_measured = measured(&baseline);
    for report in [&inverted, &rotated] {
        assert_eq!(measured(report), baseline_measured);
        assert_eq!(report.frontier, baseline.frontier);
    }

    // Half two: the defect is visible, exactly. Cost ranks are a
    // permutation (ties broken by index) and `InvertedCost` reverses it
    // wholesale, so every certified pair with distinct measured
    // speedups is discordant in exactly one of the two sweeps: the
    // counts are complementary.
    let certified: Vec<_> = baseline.points.iter().filter(|p| p.certified).collect();
    let mut distinct_speedup_pairs = 0usize;
    for (a, p) in certified.iter().enumerate() {
        for q in &certified[a + 1..] {
            if p.speedup != q.speedup {
                distinct_speedup_pairs += 1;
            }
        }
    }
    assert!(distinct_speedup_pairs > 0, "smoke points must not all tie");
    assert_eq!(
        baseline.discordant_cost_pairs + inverted.discordant_cost_pairs,
        distinct_speedup_pairs,
        "inverted cost discordance must complement the baseline's \
         (baseline {}, inverted {}, distinct-speedup pairs {})",
        baseline.discordant_cost_pairs,
        inverted.discordant_cost_pairs,
        distinct_speedup_pairs
    );
    assert_eq!(inverted.comparable_pairs, baseline.comparable_pairs);

    // The off-by-one mutation rotates every recorded quality rank by
    // exactly one slot over the enumerated space.
    assert_eq!(rotated.points.len(), baseline.points.len());
    for (b, r) in baseline.points.iter().zip(&rotated.points) {
        assert_eq!(
            r.predicted_quality_rank,
            (b.predicted_quality_rank + 1) % baseline.enumerated,
            "`{}` quality rank must rotate by one",
            b.label
        );
        assert_eq!(r.predicted_cost_rank, b.predicted_cost_rank);
    }
}
