//! Thread-count invariance of the exploration sweep.
//!
//! An exploration fans out probe training through
//! `par_map_indexed` and inherits every parallel stage of the routed
//! compile path underneath. The emitted [`BenchmarkExploration`]
//! deliberately carries no wall-clock fields, so its JSON serialization
//! must be **byte-identical** at any `--threads` setting — the same
//! invariant every other figure pipeline pins. A failure here means a
//! reduction order leaked across a thread boundary somewhere in the
//! sweep.

use mithra_axbench::benchmark::Benchmark;
use mithra_axbench::suite;
use mithra_core::pipeline::CompileConfig;
use mithra_explore::{explore, DesignSpace, ExploreConfig};
use std::sync::Arc;

fn smoke_explore(threads: Option<usize>) -> ExploreConfig {
    ExploreConfig {
        compile: CompileConfig {
            threads,
            ..CompileConfig::smoke()
        },
        validation_datasets: 2,
        trials: 8,
        probe_datasets: 2,
        probe_epochs: 4,
        budget: Some(3),
        ..ExploreConfig::default()
    }
}

#[test]
fn exploration_report_is_byte_identical_across_thread_counts() {
    let bench: Arc<dyn Benchmark> = suite::by_name("sobel").unwrap().into();
    let space = DesignSpace::smoke();
    let baseline = explore(&bench, &space, &smoke_explore(Some(1))).unwrap();

    // The sweep under a pruning budget still measures both anchors and
    // accounts for every enumerated candidate exactly once.
    assert!(!baseline.points.is_empty());
    assert_eq!(
        baseline.pruned + baseline.evaluated,
        baseline.enumerated,
        "prune accounting must sum to the enumerated space"
    );
    assert!(
        baseline.evaluated < baseline.enumerated,
        "budget must prune"
    );
    assert!(baseline.fixed_tiering_index.is_some());
    assert!(baseline.pool_of_one_index.is_some());

    let baseline_json = serde_json::to_string(&baseline).unwrap();
    for threads in [Some(2), Some(4)] {
        let candidate = explore(&bench, &space, &smoke_explore(threads)).unwrap();
        assert_eq!(
            serde_json::to_string(&candidate).unwrap(),
            baseline_json,
            "exploration report diverged at threads={threads:?}"
        );
    }
}
