//! Conformance verdicts and the per-benchmark guarantee report.

use serde::Serialize;
use std::fmt;

/// The outcome of testing a certified guarantee against unseen datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Verdict {
    /// The observed success fraction meets or exceeds the certified rate:
    /// the sample itself satisfies the guarantee.
    Holds,
    /// The observed fraction falls short of the certified rate, but not by
    /// more than sampling noise explains (the exact binomial test does not
    /// reject at the harness's significance level). Expected for a
    /// fraction α of correct certificates.
    Marginal,
    /// The exact binomial test rejects the certified rate: the shortfall
    /// is too large to attribute to sampling noise.
    Violated,
}

impl Verdict {
    /// Fixed-width display label (the figure tables align on it).
    pub fn label(&self) -> &'static str {
        match self {
            Verdict::Holds => "Holds",
            Verdict::Marginal => "Marginal",
            Verdict::Violated => "Violated",
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One Monte-Carlo trial: one unseen dataset scored end to end.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct TrialRecord {
    /// The dataset seed (conform seed base + trial index).
    pub dataset_seed: u64,
    /// Final application quality loss of the simulated run.
    pub quality_loss: f64,
    /// Fraction of invocations delegated to the accelerator.
    pub invocation_rate: f64,
    /// Whether the run met the certified quality target.
    pub met_target: bool,
    /// The pool member a violation of this trial is charged against —
    /// the serving member with the worst error (0 on the binary path's
    /// one-member mixture).
    pub worst_route: usize,
}

/// The validator's full result for one benchmark.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct GuaranteeReport {
    /// The benchmark name.
    pub benchmark: String,
    /// The quality-loss target `q` the certificate promises.
    pub quality_target: f64,
    /// The success rate `S` the certificate promises.
    pub target_rate: f64,
    /// The confidence `β` of the certificate.
    pub confidence: f64,
    /// The compile-time Clopper–Pearson lower bound the certificate
    /// actually achieved (≥ `target_rate` for a valid certificate).
    pub certified_rate: f64,
    /// Number of unseen Monte-Carlo trials `M`.
    pub trials: u64,
    /// Trials whose final quality loss stayed within the target.
    pub successes: u64,
    /// `successes / trials`.
    pub observed_rate: f64,
    /// Clopper–Pearson lower bound recomputed on the unseen sample alone.
    pub unseen_lower_bound: f64,
    /// Exact one-sided binomial p-value of the observed count under the
    /// hypothesis that the true success rate equals `target_rate`; small
    /// values refute the certificate.
    pub p_value: f64,
    /// The verdict.
    pub verdict: Verdict,
    /// Mean accelerator invocation rate across the trials.
    pub mean_invocation_rate: f64,
    /// Violations attributed per pool member (one slot on the binary
    /// path); sums to `trials - successes`.
    pub route_violations: Vec<u64>,
    /// Per-trial records, in seed order.
    pub trial_records: Vec<TrialRecord>,
}

impl GuaranteeReport {
    /// One-line summary used by the figure binary's table and the smoke
    /// jobs' log scraping.
    pub fn summary_line(&self) -> String {
        format!(
            "{}: {}/{} unseen datasets met q={:.1}% (observed {:.1}%, certified floor {:.0}%, p={:.4}) -> {}",
            self.benchmark,
            self.successes,
            self.trials,
            self.quality_target * 100.0,
            self.observed_rate * 100.0,
            self.target_rate * 100.0,
            self.p_value,
            self.verdict,
        )
    }
}
