//! The Monte-Carlo guarantee validator.
//!
//! Draws `M` unseen datasets from the conformance seed space, runs each
//! through the full system simulator under the deployed table classifier,
//! and tests the observed success fraction against the certified
//! `(success-rate, confidence)` pair.

use crate::report::{GuaranteeReport, TrialRecord};
use crate::selfcheck::{judge_routed, verdict_for};
use crate::{ConformError, Result, CONFORM_SEED_BASE};
use mithra_axbench::dataset::DatasetScale;
use mithra_core::parallel::par_map_indexed;
use mithra_core::pipeline::Compiled;
use mithra_core::profile::DatasetProfile;
use mithra_core::route::RoutedCompiled;
use mithra_core::threshold::QualitySpec;
use mithra_sim::system::{run, run_routed, RunHooks, RunResult, SimOptions};

/// Configuration for one conformance run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValidatorConfig {
    /// Number of unseen Monte-Carlo trials `M`.
    pub trials: usize,
    /// First dataset seed; trial `i` uses `seed_base + i`. Defaults to
    /// [`CONFORM_SEED_BASE`], which no other subsystem draws from.
    pub seed_base: u64,
    /// Dataset scale for the generated trials.
    pub scale: DatasetScale,
    /// Worker threads for the trial fan-out (`None` = all cores). The
    /// report is bit-identical at every setting.
    pub threads: Option<usize>,
    /// Confidence of the harness's own binomial test: a certificate is
    /// declared [`Verdict::Violated`](crate::report::Verdict::Violated)
    /// only when the exact test rejects at significance
    /// `1 - test_confidence`.
    pub test_confidence: f64,
}

impl Default for ValidatorConfig {
    fn default() -> Self {
        ValidatorConfig {
            trials: 100,
            seed_base: CONFORM_SEED_BASE,
            scale: DatasetScale::Full,
            threads: None,
            test_confidence: 0.95,
        }
    }
}

impl ValidatorConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConformError::InvalidConfig`] when `trials` is zero or
    /// `test_confidence` is outside `(0, 1)`.
    pub fn check(&self) -> Result<()> {
        if self.trials == 0 {
            return Err(ConformError::InvalidConfig {
                parameter: "trials",
                constraint: "at least 1",
            });
        }
        if !self.test_confidence.is_finite()
            || self.test_confidence <= 0.0
            || self.test_confidence >= 1.0
        {
            return Err(ConformError::InvalidConfig {
                parameter: "test_confidence",
                constraint: "strictly between 0 and 1",
            });
        }
        Ok(())
    }
}

/// Validates a certified guarantee on `config.trials` unseen datasets
/// generated on the fly from the conformance seed space.
///
/// Each trial profiles a fresh dataset, simulates it under the deployed
/// table classifier, and scores final application quality. The fan-out
/// runs under [`par_map_indexed`] and the fold walks trial indices in
/// order, so the report is bit-identical at any thread count.
///
/// # Errors
///
/// Returns [`ConformError::InvalidConfig`] for a bad configuration and
/// propagates simulator and statistics errors.
pub fn validate(
    compiled: &Compiled,
    spec: &QualitySpec,
    config: &ValidatorConfig,
) -> Result<GuaranteeReport> {
    config.check()?;
    let trial_results = par_map_indexed(config.trials, config.threads, |i| {
        let seed = config.seed_base + i as u64;
        let dataset = compiled.function.dataset(seed, config.scale);
        let profile = DatasetProfile::collect(&compiled.function, dataset);
        run_trial(compiled, &profile)
    });
    score(
        compiled.function.benchmark().name().to_string(),
        compiled.threshold.certified_rate,
        1,
        spec,
        config,
        trial_results,
    )
}

/// Validates a certified **routed-mixture** guarantee on unseen datasets:
/// each trial profiles the fresh dataset under *every* pool member, runs
/// it through the routed simulator under a fresh clone of the deployed
/// router cascade, and scores final application quality of the mixed
/// output stream. Violations are charged against the serving member with
/// the worst error, so the report's `route_violations` says *which*
/// approximator broke a trial, not just that one broke.
///
/// Verdict and statistics flow through the same
/// [`judge_routed`] path the mutation self-check exercises; a pool of
/// one reproduces [`validate`] bit for bit.
///
/// # Errors
///
/// Returns [`ConformError::InvalidConfig`] for a bad configuration and
/// propagates simulator and statistics errors.
pub fn validate_routed(
    routed: &RoutedCompiled,
    spec: &QualitySpec,
    config: &ValidatorConfig,
) -> Result<GuaranteeReport> {
    config.check()?;
    let trial_results = par_map_indexed(config.trials, config.threads, |i| {
        let seed = config.seed_base + i as u64;
        let dataset = routed.pool.accurate().dataset(seed, config.scale);
        let member_profiles: Vec<DatasetProfile> = routed
            .pool
            .members()
            .iter()
            .map(|m| DatasetProfile::collect(m, dataset.clone()))
            .collect();
        let refs: Vec<&DatasetProfile> = member_profiles.iter().collect();
        let mut router = routed.router.clone();
        run_routed(routed, &refs, &mut router, &SimOptions::default())
            .map(|r| (seed, r.run, r.worst_member))
    });
    score(
        routed.pool.benchmark().name().to_string(),
        routed.threshold.certified_rate,
        routed.pool.len(),
        spec,
        config,
        trial_results,
    )
}

/// Validates a certified guarantee on pre-collected unseen profiles —
/// the artifact-cache-backed path
/// ([`mithra_core::session::profile_validation`] with the conformance
/// seed base produces and caches exactly these).
///
/// `config.trials` and `config.seed_base` are ignored; the profiles
/// define both. Scoring and determinism are identical to [`validate`].
///
/// # Errors
///
/// Returns [`ConformError::InvalidConfig`] for an empty profile slice or
/// a bad `test_confidence`, and propagates simulator and statistics
/// errors.
pub fn validate_profiles(
    compiled: &Compiled,
    spec: &QualitySpec,
    profiles: &[DatasetProfile],
    config: &ValidatorConfig,
) -> Result<GuaranteeReport> {
    ValidatorConfig {
        trials: profiles.len(),
        ..*config
    }
    .check()?;
    let trial_results = par_map_indexed(profiles.len(), config.threads, |i| {
        run_trial(compiled, &profiles[i])
    });
    score(
        compiled.function.benchmark().name().to_string(),
        compiled.threshold.certified_rate,
        1,
        spec,
        config,
        trial_results,
    )
}

/// One trial: simulate a profile under a fresh clone of the deployed
/// table classifier (per-trial clones keep online updates from leaking
/// state across datasets — and across threads). Binary trials are the
/// one-member mixture, so the violation attribution is always member 0.
fn run_trial(
    compiled: &Compiled,
    profile: &DatasetProfile,
) -> std::result::Result<(u64, RunResult, usize), mithra_sim::SimError> {
    let mut classifier = compiled.table.clone();
    let result = run(
        compiled,
        profile,
        &mut classifier,
        &SimOptions::default(),
        RunHooks::none(),
    )?;
    Ok((profile.dataset().seed(), result, 0))
}

/// Folds per-trial results (in trial-index order) into the report.
fn score(
    benchmark: String,
    certified_rate: f64,
    n_routes: usize,
    spec: &QualitySpec,
    config: &ValidatorConfig,
    trial_results: Vec<std::result::Result<(u64, RunResult, usize), mithra_sim::SimError>>,
) -> Result<GuaranteeReport> {
    let mut trial_records = Vec::with_capacity(trial_results.len());
    let mut losses = Vec::with_capacity(trial_results.len());
    let mut worst_routes = Vec::with_capacity(trial_results.len());
    let mut invocation_rate_sum = 0.0;
    for trial in trial_results {
        let (dataset_seed, result, worst_route) = trial?;
        losses.push(result.quality_loss);
        worst_routes.push(worst_route);
        invocation_rate_sum += result.invocation_rate();
        trial_records.push(TrialRecord {
            dataset_seed,
            quality_loss: result.quality_loss,
            invocation_rate: result.invocation_rate(),
            met_target: result.quality_loss <= spec.max_quality_loss,
            worst_route,
        });
    }
    // The published numbers come from the same judge_routed() the
    // mutation self-check exercises: there is exactly one verdict code
    // path, binary included (a one-member mixture).
    let judgement = judge_routed(&losses, &worst_routes, n_routes, spec, None, f64::EPSILON)?;
    let verdict = verdict_for(&judgement, spec, 1.0 - config.test_confidence);
    debug_assert_eq!(
        judgement.successes,
        trial_records.iter().filter(|t| t.met_target).count() as u64
    );
    Ok(GuaranteeReport {
        benchmark,
        quality_target: spec.max_quality_loss,
        target_rate: spec.success_rate,
        confidence: spec.confidence.level(),
        certified_rate,
        trials: judgement.trials,
        successes: judgement.successes,
        observed_rate: judgement.successes as f64 / judgement.trials as f64,
        unseen_lower_bound: judgement.unseen_bound,
        p_value: judgement.p_value,
        verdict,
        mean_invocation_rate: invocation_rate_sum / trial_records.len() as f64,
        route_violations: judgement.route_violations,
        trial_records,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation() {
        assert!(ValidatorConfig::default().check().is_ok());
        assert!(ValidatorConfig {
            trials: 0,
            ..ValidatorConfig::default()
        }
        .check()
        .is_err());
        assert!(ValidatorConfig {
            test_confidence: 1.0,
            ..ValidatorConfig::default()
        }
        .check()
        .is_err());
        assert!(ValidatorConfig {
            test_confidence: f64::NAN,
            ..ValidatorConfig::default()
        }
        .check()
        .is_err());
    }
}
