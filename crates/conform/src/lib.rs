//! Statistical conformance harness: does the certified guarantee hold?
//!
//! The paper's central claim (§III, Equation 3) is distributional: with
//! confidence β, at least a fraction S of **unseen** datasets will meet the
//! final-quality target. Replaying the seed figures never tests that claim
//! — it only shows the numbers the compiler printed once. This crate
//! re-proves the claim empirically, every time it runs:
//!
//! 1. take a [`Compiled`] artifact (typically out of the
//!    `core::session` artifact cache);
//! 2. draw `M` fresh datasets from a seed space disjoint from every seed
//!    the compiler, profiler, or serving load generator has ever seen
//!    ([`CONFORM_SEED_BASE`]);
//! 3. run each through the system simulator under the deployed table
//!    classifier and score final application quality;
//! 4. compare the observed success fraction against the certified
//!    `(success-rate, confidence)` pair with an exact one-sided binomial
//!    test ([`mithra_stats::binomial::one_sided_p_value`]), yielding a
//!    [`Verdict`] with a p-value.
//!
//! Because the harness is itself statistics code — exactly the kind of
//! code whose bugs produce plausible-looking output — it ships with a
//! [mutation self-check](selfcheck): planted defects (a perturbed quality
//! target, a swapped Clopper–Pearson bound direction, an off-by-one
//! violation count, a violation blamed on the wrong pool member) must
//! each be *detected* by the harness's independent audits, or the harness
//! refuses to vouch for itself.
//!
//! Routed mixtures go through the same machinery: [`validate_routed`]
//! draws the same unseen seeds, simulates each under the deployed router
//! cascade, and charges every violation against the pool member that
//! served with the worst error — the certificate is over the *mixture*,
//! and the audit re-attributes blame per member.
//!
//! Trials fan out through [`mithra_core::parallel::par_map_indexed`] and
//! fold in candidate (seed) order, so every report is bit-identical at any
//! `--threads` setting.
//!
//! [`Compiled`]: mithra_core::pipeline::Compiled

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod report;
pub mod selfcheck;
pub mod validator;

pub use report::{GuaranteeReport, TrialRecord, Verdict};
pub use selfcheck::{Mutation, SelfCheckOutcome, SelfCheckReport};
pub use validator::{validate, validate_profiles, validate_routed, ValidatorConfig};

use std::fmt;

/// Seed base for conformance trials. Disjoint from every other seed space
/// in the repository — the full partition is pinned in
/// [`mithra_core::seeds`], which this constant re-exports. Dataset `i` of
/// a conformance run uses `CONFORM_SEED_BASE + i`.
pub use mithra_core::seeds::CONFORM_SEED_BASE;

/// Errors from the conformance harness.
#[derive(Debug)]
pub enum ConformError {
    /// A configuration value was invalid.
    InvalidConfig {
        /// Which parameter was rejected.
        parameter: &'static str,
        /// The constraint it violates.
        constraint: &'static str,
    },
    /// An error bubbled up from the statistics substrate.
    Stats(mithra_stats::StatsError),
    /// An error bubbled up from the system simulator.
    Sim(mithra_sim::SimError),
}

impl fmt::Display for ConformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConformError::InvalidConfig {
                parameter,
                constraint,
            } => write!(
                f,
                "invalid conformance config: {parameter} must be {constraint}"
            ),
            ConformError::Stats(e) => write!(f, "statistics error: {e}"),
            ConformError::Sim(e) => write!(f, "simulation error: {e}"),
        }
    }
}

impl std::error::Error for ConformError {}

impl From<mithra_stats::StatsError> for ConformError {
    fn from(e: mithra_stats::StatsError) -> Self {
        ConformError::Stats(e)
    }
}

impl From<mithra_sim::SimError> for ConformError {
    fn from(e: mithra_sim::SimError) -> Self {
        ConformError::Sim(e)
    }
}

/// Convenience result alias for the conformance harness.
pub type Result<T> = std::result::Result<T, ConformError>;
