//! Mutation self-check: a test of the test.
//!
//! The conformance verdict is produced by statistics code, and statistics
//! code fails in a uniquely dangerous way — it keeps printing plausible
//! numbers. This module plants known defects into the verdict computation
//! ([`Mutation`]) and requires that an independent audit pass
//! ([`audit`]) *detects* every one of them. The audits recompute each
//! reported figure from the raw per-trial quality losses and the original
//! specification, so a defect anywhere in the judging path must disagree
//! with at least one recomputation.
//!
//! Every planted defect is detected deterministically — detection never
//! depends on where the Monte-Carlo losses happened to land — so the
//! self-check is itself a stable regression test.

use crate::report::Verdict;
use crate::{ConformError, Result};
use mithra_core::threshold::QualitySpec;
use mithra_stats::binomial::one_sided_p_value;
use mithra_stats::clopper_pearson::{lower_bound, upper_bound};
use serde::Serialize;

/// A defect deliberately planted into the verdict computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Mutation {
    /// Judge successes against `q + ε` instead of the certified `q` —
    /// a loosened target silently inflates the success count.
    TargetPlusEpsilon,
    /// Judge successes against `q − ε` — a tightened target silently
    /// deflates it.
    TargetMinusEpsilon,
    /// Report the Clopper–Pearson *upper* bound where the guarantee
    /// requires the lower bound — the classic flipped-tail mistake.
    SwappedBoundDirection,
    /// Miscount violations by one (undercount by one; overcount when
    /// there are none to drop), shifting the success count the verdict
    /// and p-value are derived from.
    ViolationCountOffByOne,
}

impl Mutation {
    /// Every mutation, in reporting order.
    pub const ALL: [Mutation; 4] = [
        Mutation::TargetPlusEpsilon,
        Mutation::TargetMinusEpsilon,
        Mutation::SwappedBoundDirection,
        Mutation::ViolationCountOffByOne,
    ];

    /// Stable display label.
    pub fn label(&self) -> &'static str {
        match self {
            Mutation::TargetPlusEpsilon => "target+eps",
            Mutation::TargetMinusEpsilon => "target-eps",
            Mutation::SwappedBoundDirection => "swapped-bound",
            Mutation::ViolationCountOffByOne => "violations-off-by-one",
        }
    }
}

/// The distilled verdict computation: everything the report derives from
/// the raw losses, in one auditable bundle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Judgement {
    /// The quality target successes were counted against.
    pub quality_target: f64,
    /// Trials within the target.
    pub successes: u64,
    /// Trials beyond the target.
    pub violations: u64,
    /// Total trials.
    pub trials: u64,
    /// The Clopper–Pearson bound reported for the unseen sample.
    pub unseen_bound: f64,
    /// The exact one-sided binomial p-value against the certified rate.
    pub p_value: f64,
}

/// Computes a [`Judgement`] from raw per-trial losses, optionally with a
/// planted [`Mutation`].
///
/// The clean path (`mutation = None`) is the one the validator publishes;
/// the mutated paths exist only so [`audit`] can prove it would notice.
///
/// # Errors
///
/// Returns [`ConformError::InvalidConfig`] for an empty loss vector and
/// propagates statistics errors.
pub fn judge(
    losses: &[f64],
    spec: &QualitySpec,
    mutation: Option<Mutation>,
    epsilon: f64,
) -> Result<Judgement> {
    if losses.is_empty() {
        return Err(ConformError::InvalidConfig {
            parameter: "losses",
            constraint: "non-empty",
        });
    }
    let trials = losses.len() as u64;
    let quality_target = match mutation {
        Some(Mutation::TargetPlusEpsilon) => spec.max_quality_loss + epsilon,
        Some(Mutation::TargetMinusEpsilon) => spec.max_quality_loss - epsilon,
        _ => spec.max_quality_loss,
    };
    let mut successes = losses.iter().filter(|&&l| l <= quality_target).count() as u64;
    let mut violations = trials - successes;
    if mutation == Some(Mutation::ViolationCountOffByOne) {
        violations = if violations == 0 { 1 } else { violations - 1 };
        successes = trials - violations;
    }
    let unseen_bound = if mutation == Some(Mutation::SwappedBoundDirection) {
        upper_bound(successes, trials, spec.confidence)?
    } else {
        lower_bound(successes, trials, spec.confidence)?
    };
    let p_value = one_sided_p_value(successes, trials, spec.success_rate)?;
    Ok(Judgement {
        quality_target,
        successes,
        violations,
        trials,
        unseen_bound,
        p_value,
    })
}

/// The verdict a judgement implies at significance `test_alpha`.
pub fn verdict_for(judgement: &Judgement, spec: &QualitySpec, test_alpha: f64) -> Verdict {
    let observed = judgement.successes as f64 / judgement.trials as f64;
    if observed >= spec.success_rate {
        Verdict::Holds
    } else if judgement.p_value >= test_alpha {
        Verdict::Marginal
    } else {
        Verdict::Violated
    }
}

/// One independent audit finding: which check tripped, and why.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct AuditFinding {
    /// The audit that tripped.
    pub check: String,
    /// Human-readable mismatch description.
    pub detail: String,
}

/// Recomputes every figure in `judgement` independently from the raw
/// losses and the original spec, returning one finding per disagreement.
///
/// An empty result means the judgement is internally consistent with its
/// inputs. Each audit is bit-exact — the recomputation follows the same
/// deterministic arithmetic — so findings never depend on tolerance
/// tuning.
///
/// # Errors
///
/// Propagates statistics errors from the recomputations.
pub fn audit(
    judgement: &Judgement,
    losses: &[f64],
    spec: &QualitySpec,
) -> Result<Vec<AuditFinding>> {
    let mut findings = Vec::new();
    // 1. The target the successes were judged against must echo the
    //    certified target bit-for-bit.
    if judgement.quality_target.to_bits() != spec.max_quality_loss.to_bits() {
        findings.push(AuditFinding {
            check: "target-echo".into(),
            detail: format!(
                "judged against q={} but the certificate says q={}",
                judgement.quality_target, spec.max_quality_loss
            ),
        });
    }
    // 2. Recount successes directly from the losses at the certified
    //    target.
    let recount = losses
        .iter()
        .filter(|&&l| l <= spec.max_quality_loss)
        .count() as u64;
    if recount != judgement.successes {
        findings.push(AuditFinding {
            check: "success-recount".into(),
            detail: format!(
                "recounted {recount} successes, judgement claims {}",
                judgement.successes
            ),
        });
    }
    // 3. Successes and violations must partition the trials.
    if judgement.successes + judgement.violations != judgement.trials {
        findings.push(AuditFinding {
            check: "count-conservation".into(),
            detail: format!(
                "{} + {} != {}",
                judgement.successes, judgement.violations, judgement.trials
            ),
        });
    }
    // 4. The reported bound must equal the one-sided *lower* bound at the
    //    judgement's own counts — a swapped tail disagrees for every
    //    0 <= k <= n.
    let expect_bound = lower_bound(judgement.successes, judgement.trials, spec.confidence)?;
    if judgement.unseen_bound.to_bits() != expect_bound.to_bits() {
        findings.push(AuditFinding {
            check: "bound-recompute".into(),
            detail: format!(
                "reported bound {} but the lower bound at {}/{} is {expect_bound}",
                judgement.unseen_bound, judgement.successes, judgement.trials
            ),
        });
    }
    // 5. The p-value must equal the exact one-sided binomial test at the
    //    judgement's own counts.
    let expect_p = one_sided_p_value(judgement.successes, judgement.trials, spec.success_rate)?;
    if judgement.p_value.to_bits() != expect_p.to_bits() {
        findings.push(AuditFinding {
            check: "p-value-recompute".into(),
            detail: format!(
                "reported p={} but the exact test gives p={expect_p}",
                judgement.p_value
            ),
        });
    }
    Ok(findings)
}

/// One mutation's self-check outcome.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SelfCheckOutcome {
    /// The planted defect.
    pub mutation: Mutation,
    /// Whether the audits caught it (`true` is the only acceptable
    /// answer).
    pub detected: bool,
    /// Labels of the audits that tripped.
    pub tripped: Vec<String>,
    /// The verdict the defective pipeline would have published — what the
    /// audit saved us from.
    pub mutated_verdict: Verdict,
}

/// The full self-check: the clean pipeline must audit clean, and every
/// planted mutation must be detected.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SelfCheckReport {
    /// The ε used for the target perturbations.
    pub epsilon: f64,
    /// Audit findings against the unmutated judgement (must be empty).
    pub clean_findings: Vec<AuditFinding>,
    /// Per-mutation outcomes, in [`Mutation::ALL`] order.
    pub outcomes: Vec<SelfCheckOutcome>,
}

impl SelfCheckReport {
    /// True when the clean pipeline audited clean *and* every mutation
    /// was detected — the only state in which the harness vouches for its
    /// own verdicts.
    pub fn all_detected(&self) -> bool {
        self.clean_findings.is_empty() && self.outcomes.iter().all(|o| o.detected)
    }
}

/// Runs the complete mutation self-check over raw per-trial losses.
///
/// # Errors
///
/// Returns [`ConformError::InvalidConfig`] for a non-positive `epsilon`
/// or empty losses, and propagates statistics errors.
pub fn self_check(
    losses: &[f64],
    spec: &QualitySpec,
    epsilon: f64,
    test_alpha: f64,
) -> Result<SelfCheckReport> {
    if !epsilon.is_finite() || epsilon <= 0.0 {
        return Err(ConformError::InvalidConfig {
            parameter: "epsilon",
            constraint: "finite and > 0",
        });
    }
    let clean_findings = audit(&judge(losses, spec, None, epsilon)?, losses, spec)?;
    let mut outcomes = Vec::with_capacity(Mutation::ALL.len());
    for mutation in Mutation::ALL {
        let judgement = judge(losses, spec, Some(mutation), epsilon)?;
        let findings = audit(&judgement, losses, spec)?;
        outcomes.push(SelfCheckOutcome {
            mutation,
            detected: !findings.is_empty(),
            tripped: findings.iter().map(|f| f.check.clone()).collect(),
            mutated_verdict: verdict_for(&judgement, spec, test_alpha),
        });
    }
    Ok(SelfCheckReport {
        epsilon,
        clean_findings,
        outcomes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> QualitySpec {
        QualitySpec::paper_default(0.05).unwrap()
    }

    fn losses(successes: usize, violations: usize) -> Vec<f64> {
        let mut v = vec![0.01; successes];
        v.extend(std::iter::repeat_n(0.20, violations));
        v
    }

    #[test]
    fn clean_judgement_audits_clean() {
        let l = losses(95, 5);
        let j = judge(&l, &spec(), None, 0.005).unwrap();
        assert_eq!(j.successes, 95);
        assert_eq!(j.violations, 5);
        assert!(audit(&j, &l, &spec()).unwrap().is_empty());
    }

    #[test]
    fn every_mutation_detected_on_typical_losses() {
        let report = self_check(&losses(95, 5), &spec(), 0.005, 0.05).unwrap();
        assert!(report.all_detected(), "{report:?}");
    }

    #[test]
    fn every_mutation_detected_with_zero_violations() {
        // The off-by-one mutation must not vanish when there is no
        // violation to drop.
        let report = self_check(&losses(50, 0), &spec(), 0.005, 0.05).unwrap();
        assert!(report.all_detected(), "{report:?}");
    }

    #[test]
    fn every_mutation_detected_with_all_violations() {
        let report = self_check(&losses(0, 50), &spec(), 0.005, 0.05).unwrap();
        assert!(report.all_detected(), "{report:?}");
    }

    #[test]
    fn target_mutations_even_without_straddling_losses() {
        // No loss falls between q and q±ε, so the success count does not
        // change — the bit-exact target echo must still catch it.
        let l = vec![0.001; 30];
        let report = self_check(&l, &spec(), 1e-9, 0.05).unwrap();
        assert!(report.all_detected(), "{report:?}");
    }

    #[test]
    fn verdicts_follow_the_binomial_test() {
        let s = spec();
        // 100/100 at a 90% certificate: holds.
        let j = judge(&losses(100, 0), &s, None, 0.005).unwrap();
        assert_eq!(verdict_for(&j, &s, 0.05), Verdict::Holds);
        // 88/100: short of 90% but consistent with it.
        let j = judge(&losses(88, 12), &s, None, 0.005).unwrap();
        assert_eq!(verdict_for(&j, &s, 0.05), Verdict::Marginal);
        // 70/100: refuted.
        let j = judge(&losses(70, 30), &s, None, 0.005).unwrap();
        assert_eq!(verdict_for(&j, &s, 0.05), Verdict::Violated);
    }

    #[test]
    fn self_check_rejects_bad_epsilon() {
        assert!(self_check(&losses(10, 0), &spec(), 0.0, 0.05).is_err());
        assert!(self_check(&losses(10, 0), &spec(), f64::NAN, 0.05).is_err());
        assert!(judge(&[], &spec(), None, 0.005).is_err());
    }
}
