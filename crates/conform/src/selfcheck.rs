//! Mutation self-check: a test of the test.
//!
//! The conformance verdict is produced by statistics code, and statistics
//! code fails in a uniquely dangerous way — it keeps printing plausible
//! numbers. This module plants known defects into the verdict computation
//! ([`Mutation`]) and requires that an independent audit pass
//! ([`audit`]) *detects* every one of them. The audits recompute each
//! reported figure from the raw per-trial quality losses and the original
//! specification, so a defect anywhere in the judging path must disagree
//! with at least one recomputation.
//!
//! Every planted defect is detected deterministically — detection never
//! depends on where the Monte-Carlo losses happened to land — so the
//! self-check is itself a stable regression test.

use crate::report::Verdict;
use crate::{ConformError, Result};
use mithra_core::threshold::QualitySpec;
use mithra_stats::binomial::one_sided_p_value;
use mithra_stats::clopper_pearson::{lower_bound, upper_bound};
use serde::Serialize;

/// A defect deliberately planted into the verdict computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Mutation {
    /// Judge successes against `q + ε` instead of the certified `q` —
    /// a loosened target silently inflates the success count.
    TargetPlusEpsilon,
    /// Judge successes against `q − ε` — a tightened target silently
    /// deflates it.
    TargetMinusEpsilon,
    /// Report the Clopper–Pearson *upper* bound where the guarantee
    /// requires the lower bound — the classic flipped-tail mistake.
    SwappedBoundDirection,
    /// Miscount violations by one (undercount by one; overcount when
    /// there are none to drop), shifting the success count the verdict
    /// and p-value are derived from.
    ViolationCountOffByOne,
    /// Attribute one violation to the wrong pool member (or invent one
    /// when there is nothing to misattribute) — the totals stay right,
    /// but the routed mixture's per-member blame is silently wrong.
    RouteMisattribution,
}

impl Mutation {
    /// Every mutation, in reporting order.
    pub const ALL: [Mutation; 5] = [
        Mutation::TargetPlusEpsilon,
        Mutation::TargetMinusEpsilon,
        Mutation::SwappedBoundDirection,
        Mutation::ViolationCountOffByOne,
        Mutation::RouteMisattribution,
    ];

    /// Stable display label.
    pub fn label(&self) -> &'static str {
        match self {
            Mutation::TargetPlusEpsilon => "target+eps",
            Mutation::TargetMinusEpsilon => "target-eps",
            Mutation::SwappedBoundDirection => "swapped-bound",
            Mutation::ViolationCountOffByOne => "violations-off-by-one",
            Mutation::RouteMisattribution => "route-misattribution",
        }
    }
}

/// The distilled verdict computation: everything the report derives from
/// the raw losses, in one auditable bundle.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Judgement {
    /// The quality target successes were counted against.
    pub quality_target: f64,
    /// Trials within the target.
    pub successes: u64,
    /// Trials beyond the target.
    pub violations: u64,
    /// Total trials.
    pub trials: u64,
    /// Violations attributed per pool member (the member whose error was
    /// worst in the violating trial). A binary run is the one-member
    /// mixture: a single slot holding every violation.
    pub route_violations: Vec<u64>,
    /// The Clopper–Pearson bound reported for the unseen sample.
    pub unseen_bound: f64,
    /// The exact one-sided binomial p-value against the certified rate.
    pub p_value: f64,
}

/// Computes a [`Judgement`] from raw per-trial losses, optionally with a
/// planted [`Mutation`] — binary accept/reject is judged as the
/// one-member mixture (see [`judge_routed`]).
///
/// The clean path (`mutation = None`) is the one the validator publishes;
/// the mutated paths exist only so [`audit`] can prove it would notice.
///
/// # Errors
///
/// Returns [`ConformError::InvalidConfig`] for an empty loss vector and
/// propagates statistics errors.
pub fn judge(
    losses: &[f64],
    spec: &QualitySpec,
    mutation: Option<Mutation>,
    epsilon: f64,
) -> Result<Judgement> {
    judge_routed(losses, &vec![0; losses.len()], 1, spec, mutation, epsilon)
}

/// Computes a [`Judgement`] over a routed mixture: `worst_routes[i]`
/// names the pool member trial `i`'s violation is charged against (the
/// member that served with the worst error), and the per-member tallies
/// land in [`Judgement::route_violations`]. There is exactly one judging
/// code path — [`judge`] is this function at `n_routes = 1`.
///
/// # Errors
///
/// Returns [`ConformError::InvalidConfig`] for empty losses, a
/// `worst_routes` slice that does not pair 1:1 with `losses`, a zero
/// `n_routes`, or an out-of-range route index; propagates statistics
/// errors.
pub fn judge_routed(
    losses: &[f64],
    worst_routes: &[usize],
    n_routes: usize,
    spec: &QualitySpec,
    mutation: Option<Mutation>,
    epsilon: f64,
) -> Result<Judgement> {
    if losses.is_empty() {
        return Err(ConformError::InvalidConfig {
            parameter: "losses",
            constraint: "non-empty",
        });
    }
    if worst_routes.len() != losses.len() {
        return Err(ConformError::InvalidConfig {
            parameter: "worst_routes",
            constraint: "paired 1:1 with losses",
        });
    }
    if n_routes == 0 {
        return Err(ConformError::InvalidConfig {
            parameter: "n_routes",
            constraint: "at least 1",
        });
    }
    if worst_routes.iter().any(|&r| r >= n_routes) {
        return Err(ConformError::InvalidConfig {
            parameter: "worst_routes",
            constraint: "every index below n_routes",
        });
    }
    let trials = losses.len() as u64;
    let quality_target = match mutation {
        Some(Mutation::TargetPlusEpsilon) => spec.max_quality_loss + epsilon,
        Some(Mutation::TargetMinusEpsilon) => spec.max_quality_loss - epsilon,
        _ => spec.max_quality_loss,
    };
    let mut successes = losses.iter().filter(|&&l| l <= quality_target).count() as u64;
    let mut violations = trials - successes;
    let mut route_violations = vec![0u64; n_routes];
    for (&loss, &route) in losses.iter().zip(worst_routes) {
        if loss > quality_target {
            route_violations[route] += 1;
        }
    }
    if mutation == Some(Mutation::ViolationCountOffByOne) {
        violations = if violations == 0 { 1 } else { violations - 1 };
        successes = trials - violations;
    }
    if mutation == Some(Mutation::RouteMisattribution) {
        match route_violations.iter().position(|&v| v > 0) {
            Some(r) => {
                // Shift one violation to a different member — invent a
                // phantom member when the pool has only one.
                route_violations[r] -= 1;
                if route_violations.len() == 1 {
                    route_violations.push(1);
                } else {
                    let next = (r + 1) % route_violations.len();
                    route_violations[next] += 1;
                }
            }
            // Nothing to shift: invent a violation out of thin air.
            None => route_violations[0] += 1,
        }
    }
    let unseen_bound = if mutation == Some(Mutation::SwappedBoundDirection) {
        upper_bound(successes, trials, spec.confidence)?
    } else {
        lower_bound(successes, trials, spec.confidence)?
    };
    let p_value = one_sided_p_value(successes, trials, spec.success_rate)?;
    Ok(Judgement {
        quality_target,
        successes,
        violations,
        trials,
        route_violations,
        unseen_bound,
        p_value,
    })
}

/// The verdict a judgement implies at significance `test_alpha`.
pub fn verdict_for(judgement: &Judgement, spec: &QualitySpec, test_alpha: f64) -> Verdict {
    let observed = judgement.successes as f64 / judgement.trials as f64;
    if observed >= spec.success_rate {
        Verdict::Holds
    } else if judgement.p_value >= test_alpha {
        Verdict::Marginal
    } else {
        Verdict::Violated
    }
}

/// One independent audit finding: which check tripped, and why.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct AuditFinding {
    /// The audit that tripped.
    pub check: String,
    /// Human-readable mismatch description.
    pub detail: String,
}

/// Recomputes every figure in `judgement` independently from the raw
/// losses and the original spec, returning one finding per disagreement —
/// the binary entry point, treating the sample as a one-member mixture.
///
/// # Errors
///
/// Propagates statistics errors from the recomputations.
pub fn audit(
    judgement: &Judgement,
    losses: &[f64],
    spec: &QualitySpec,
) -> Result<Vec<AuditFinding>> {
    audit_routed(judgement, losses, &vec![0; losses.len()], spec)
}

/// Recomputes every figure in `judgement` independently from the raw
/// losses, their per-trial violation attributions, and the original
/// spec, returning one finding per disagreement.
///
/// An empty result means the judgement is internally consistent with its
/// inputs. Each audit is bit-exact — the recomputation follows the same
/// deterministic arithmetic — so findings never depend on tolerance
/// tuning.
///
/// # Errors
///
/// Propagates statistics errors from the recomputations.
pub fn audit_routed(
    judgement: &Judgement,
    losses: &[f64],
    worst_routes: &[usize],
    spec: &QualitySpec,
) -> Result<Vec<AuditFinding>> {
    let mut findings = Vec::new();
    // 1. The target the successes were judged against must echo the
    //    certified target bit-for-bit.
    if judgement.quality_target.to_bits() != spec.max_quality_loss.to_bits() {
        findings.push(AuditFinding {
            check: "target-echo".into(),
            detail: format!(
                "judged against q={} but the certificate says q={}",
                judgement.quality_target, spec.max_quality_loss
            ),
        });
    }
    // 2. Recount successes directly from the losses at the certified
    //    target.
    let recount = losses
        .iter()
        .filter(|&&l| l <= spec.max_quality_loss)
        .count() as u64;
    if recount != judgement.successes {
        findings.push(AuditFinding {
            check: "success-recount".into(),
            detail: format!(
                "recounted {recount} successes, judgement claims {}",
                judgement.successes
            ),
        });
    }
    // 3. Successes and violations must partition the trials.
    if judgement.successes + judgement.violations != judgement.trials {
        findings.push(AuditFinding {
            check: "count-conservation".into(),
            detail: format!(
                "{} + {} != {}",
                judgement.successes, judgement.violations, judgement.trials
            ),
        });
    }
    // 4. The reported bound must equal the one-sided *lower* bound at the
    //    judgement's own counts — a swapped tail disagrees for every
    //    0 <= k <= n.
    let expect_bound = lower_bound(judgement.successes, judgement.trials, spec.confidence)?;
    if judgement.unseen_bound.to_bits() != expect_bound.to_bits() {
        findings.push(AuditFinding {
            check: "bound-recompute".into(),
            detail: format!(
                "reported bound {} but the lower bound at {}/{} is {expect_bound}",
                judgement.unseen_bound, judgement.successes, judgement.trials
            ),
        });
    }
    // 5. The p-value must equal the exact one-sided binomial test at the
    //    judgement's own counts.
    let expect_p = one_sided_p_value(judgement.successes, judgement.trials, spec.success_rate)?;
    if judgement.p_value.to_bits() != expect_p.to_bits() {
        findings.push(AuditFinding {
            check: "p-value-recompute".into(),
            detail: format!(
                "reported p={} but the exact test gives p={expect_p}",
                judgement.p_value
            ),
        });
    }
    // 6. Re-attribute every violation from the raw (loss, worst-route)
    //    pairs at the certified target: the per-member tallies must match
    //    slot for slot (a claimed member beyond the recount's range is a
    //    phantom and must tally zero)...
    let route_count = judgement
        .route_violations
        .len()
        .max(worst_routes.iter().copied().max().map_or(0, |m| m + 1));
    let mut route_recount = vec![0u64; route_count];
    for (&loss, &route) in losses.iter().zip(worst_routes) {
        if loss > spec.max_quality_loss {
            route_recount[route] += 1;
        }
    }
    let mut claimed = judgement.route_violations.clone();
    claimed.resize(route_count, 0);
    if claimed != route_recount {
        findings.push(AuditFinding {
            check: "route-attribution".into(),
            detail: format!(
                "re-attributed per-member violations {route_recount:?}, \
                 judgement claims {:?}",
                judgement.route_violations
            ),
        });
    }
    // 7. ...and the per-member tallies must conserve the violation total.
    let route_sum: u64 = judgement.route_violations.iter().sum();
    if route_sum != judgement.violations {
        findings.push(AuditFinding {
            check: "route-conservation".into(),
            detail: format!(
                "per-member violations sum to {route_sum}, judgement \
                 claims {} in total",
                judgement.violations
            ),
        });
    }
    Ok(findings)
}

/// One mutation's self-check outcome.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SelfCheckOutcome {
    /// The planted defect.
    pub mutation: Mutation,
    /// Whether the audits caught it (`true` is the only acceptable
    /// answer).
    pub detected: bool,
    /// Labels of the audits that tripped.
    pub tripped: Vec<String>,
    /// The verdict the defective pipeline would have published — what the
    /// audit saved us from.
    pub mutated_verdict: Verdict,
}

/// The full self-check: the clean pipeline must audit clean, and every
/// planted mutation must be detected.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SelfCheckReport {
    /// The ε used for the target perturbations.
    pub epsilon: f64,
    /// Audit findings against the unmutated judgement (must be empty).
    pub clean_findings: Vec<AuditFinding>,
    /// Per-mutation outcomes, in [`Mutation::ALL`] order.
    pub outcomes: Vec<SelfCheckOutcome>,
}

impl SelfCheckReport {
    /// True when the clean pipeline audited clean *and* every mutation
    /// was detected — the only state in which the harness vouches for its
    /// own verdicts.
    pub fn all_detected(&self) -> bool {
        self.clean_findings.is_empty() && self.outcomes.iter().all(|o| o.detected)
    }
}

/// Runs the complete mutation self-check over raw per-trial losses — the
/// binary entry point (a one-member mixture, every violation charged to
/// member 0).
///
/// # Errors
///
/// Returns [`ConformError::InvalidConfig`] for a non-positive `epsilon`
/// or empty losses, and propagates statistics errors.
pub fn self_check(
    losses: &[f64],
    spec: &QualitySpec,
    epsilon: f64,
    test_alpha: f64,
) -> Result<SelfCheckReport> {
    self_check_routed(losses, &vec![0; losses.len()], 1, spec, epsilon, test_alpha)
}

/// Runs the complete mutation self-check over a routed mixture's raw
/// per-trial losses and violation attributions.
///
/// # Errors
///
/// Returns [`ConformError::InvalidConfig`] for a non-positive `epsilon`,
/// empty losses, or a `worst_routes`/`n_routes` mismatch, and propagates
/// statistics errors.
pub fn self_check_routed(
    losses: &[f64],
    worst_routes: &[usize],
    n_routes: usize,
    spec: &QualitySpec,
    epsilon: f64,
    test_alpha: f64,
) -> Result<SelfCheckReport> {
    if !epsilon.is_finite() || epsilon <= 0.0 {
        return Err(ConformError::InvalidConfig {
            parameter: "epsilon",
            constraint: "finite and > 0",
        });
    }
    let clean = judge_routed(losses, worst_routes, n_routes, spec, None, epsilon)?;
    let clean_findings = audit_routed(&clean, losses, worst_routes, spec)?;
    let mut outcomes = Vec::with_capacity(Mutation::ALL.len());
    for mutation in Mutation::ALL {
        let judgement = judge_routed(
            losses,
            worst_routes,
            n_routes,
            spec,
            Some(mutation),
            epsilon,
        )?;
        let findings = audit_routed(&judgement, losses, worst_routes, spec)?;
        outcomes.push(SelfCheckOutcome {
            mutation,
            detected: !findings.is_empty(),
            tripped: findings.iter().map(|f| f.check.clone()).collect(),
            mutated_verdict: verdict_for(&judgement, spec, test_alpha),
        });
    }
    Ok(SelfCheckReport {
        epsilon,
        clean_findings,
        outcomes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> QualitySpec {
        QualitySpec::paper_default(0.05).unwrap()
    }

    fn losses(successes: usize, violations: usize) -> Vec<f64> {
        let mut v = vec![0.01; successes];
        v.extend(std::iter::repeat_n(0.20, violations));
        v
    }

    #[test]
    fn clean_judgement_audits_clean() {
        let l = losses(95, 5);
        let j = judge(&l, &spec(), None, 0.005).unwrap();
        assert_eq!(j.successes, 95);
        assert_eq!(j.violations, 5);
        assert!(audit(&j, &l, &spec()).unwrap().is_empty());
    }

    #[test]
    fn every_mutation_detected_on_typical_losses() {
        let report = self_check(&losses(95, 5), &spec(), 0.005, 0.05).unwrap();
        assert!(report.all_detected(), "{report:?}");
    }

    #[test]
    fn every_mutation_detected_with_zero_violations() {
        // The off-by-one mutation must not vanish when there is no
        // violation to drop.
        let report = self_check(&losses(50, 0), &spec(), 0.005, 0.05).unwrap();
        assert!(report.all_detected(), "{report:?}");
    }

    #[test]
    fn every_mutation_detected_with_all_violations() {
        let report = self_check(&losses(0, 50), &spec(), 0.005, 0.05).unwrap();
        assert!(report.all_detected(), "{report:?}");
    }

    #[test]
    fn target_mutations_even_without_straddling_losses() {
        // No loss falls between q and q±ε, so the success count does not
        // change — the bit-exact target echo must still catch it.
        let l = vec![0.001; 30];
        let report = self_check(&l, &spec(), 1e-9, 0.05).unwrap();
        assert!(report.all_detected(), "{report:?}");
    }

    #[test]
    fn verdicts_follow_the_binomial_test() {
        let s = spec();
        // 100/100 at a 90% certificate: holds.
        let j = judge(&losses(100, 0), &s, None, 0.005).unwrap();
        assert_eq!(verdict_for(&j, &s, 0.05), Verdict::Holds);
        // 88/100: short of 90% but consistent with it.
        let j = judge(&losses(88, 12), &s, None, 0.005).unwrap();
        assert_eq!(verdict_for(&j, &s, 0.05), Verdict::Marginal);
        // 70/100: refuted.
        let j = judge(&losses(70, 30), &s, None, 0.005).unwrap();
        assert_eq!(verdict_for(&j, &s, 0.05), Verdict::Violated);
    }

    #[test]
    fn self_check_rejects_bad_epsilon() {
        assert!(self_check(&losses(10, 0), &spec(), 0.0, 0.05).is_err());
        assert!(self_check(&losses(10, 0), &spec(), f64::NAN, 0.05).is_err());
        assert!(judge(&[], &spec(), None, 0.005).is_err());
    }

    #[test]
    fn binary_judge_is_the_one_member_mixture() {
        let l = losses(95, 5);
        let j = judge(&l, &spec(), None, 0.005).unwrap();
        assert_eq!(j.route_violations, vec![5]);
        let routed = judge_routed(&l, &vec![0; l.len()], 1, &spec(), None, 0.005).unwrap();
        assert_eq!(j, routed);
    }

    #[test]
    fn routed_judge_attributes_violations_per_member() {
        // 95 successes then 5 violations, charged to members 2,1,2,0,2.
        let l = losses(95, 5);
        let mut routes = vec![0; 95];
        routes.extend_from_slice(&[2, 1, 2, 0, 2]);
        let j = judge_routed(&l, &routes, 3, &spec(), None, 0.005).unwrap();
        assert_eq!(j.violations, 5);
        assert_eq!(j.route_violations, vec![1, 1, 3]);
        assert!(audit_routed(&j, &l, &routes, &spec()).unwrap().is_empty());
    }

    #[test]
    fn routed_judge_validates_inputs() {
        let l = losses(4, 0);
        assert!(judge_routed(&l, &[0, 0, 0], 1, &spec(), None, 0.005).is_err());
        assert!(judge_routed(&l, &[0; 4], 0, &spec(), None, 0.005).is_err());
        assert!(judge_routed(&l, &[0, 0, 0, 7], 3, &spec(), None, 0.005).is_err());
    }

    #[test]
    fn every_mutation_detected_on_routed_mixtures() {
        let l = losses(90, 10);
        let mut routes = vec![0; 90];
        routes.extend((0..10).map(|i| i % 3));
        let report = self_check_routed(&l, &routes, 3, &spec(), 0.005, 0.05).unwrap();
        assert_eq!(report.outcomes.len(), Mutation::ALL.len());
        assert!(report.all_detected(), "{report:?}");
    }

    #[test]
    fn route_misattribution_is_detected_even_in_a_pool_of_one() {
        // The phantom-member path: shifting a violation off the only
        // member must still disagree with the re-attribution.
        for (s, v) in [(95usize, 5usize), (50, 0)] {
            let report = self_check(&losses(s, v), &spec(), 0.005, 0.05).unwrap();
            let outcome = report
                .outcomes
                .iter()
                .find(|o| o.mutation == Mutation::RouteMisattribution)
                .unwrap();
            assert!(outcome.detected, "{s}/{v}: {report:?}");
            assert!(
                outcome.tripped.iter().any(|c| c.starts_with("route-")),
                "misattribution must trip a route audit, got {:?}",
                outcome.tripped
            );
        }
    }
}
