//! Integration pins for the conformance harness:
//!
//! * the report is **bit-identical** at `--threads 1/2/4` (serialized
//!   comparison, so every f64 is compared by its exact bytes);
//! * every planted mutation is detected on real Monte-Carlo losses from
//!   an actual compiled artifact, not just synthetic vectors;
//! * the conformance seed space is disjoint from the seeds the compiler
//!   consumed.

use mithra_axbench::benchmark::Benchmark;
use mithra_axbench::dataset::DatasetScale;
use mithra_axbench::suite;
use mithra_conform::{
    selfcheck::{self_check, self_check_routed},
    validate, validate_routed, Mutation, ValidatorConfig, Verdict, CONFORM_SEED_BASE,
};
use mithra_core::pipeline::{compile, compile_routed, CompileConfig, Compiled};
use mithra_core::route::{PoolSpec, RoutedCompiled};
use mithra_core::threshold::QualitySpec;
use mithra_npu::kernel::KernelBackend;
use std::sync::Arc;

const TRIALS: usize = 24;

fn compiled_smoke(name: &str) -> Compiled {
    let bench: Arc<dyn Benchmark> = suite::by_name(name).unwrap().into();
    compile(bench, &CompileConfig::smoke()).unwrap()
}

fn routed_smoke(name: &str, pool_size: usize) -> RoutedCompiled {
    let bench: Arc<dyn Benchmark> = suite::by_name(name).unwrap().into();
    let spec = PoolSpec::sized(&bench.npu_topology(), pool_size);
    compile_routed(bench, &CompileConfig::smoke(), &spec).unwrap()
}

fn smoke_validator(threads: usize) -> ValidatorConfig {
    ValidatorConfig {
        trials: TRIALS,
        scale: DatasetScale::Smoke,
        threads: Some(threads),
        ..ValidatorConfig::default()
    }
}

#[test]
fn report_is_bit_identical_across_thread_counts() {
    let compiled = compiled_smoke("inversek2j");
    let spec = QualitySpec::paper_default(0.10).unwrap();
    let reports: Vec<String> = [1, 2, 4]
        .iter()
        .map(|&threads| {
            let report = validate(&compiled, &spec, &smoke_validator(threads)).unwrap();
            serde_json::to_string(&report).unwrap()
        })
        .collect();
    assert_eq!(reports[0], reports[1], "threads=1 vs threads=2");
    assert_eq!(reports[0], reports[2], "threads=1 vs threads=4");
}

#[test]
fn report_structure_is_coherent() {
    let compiled = compiled_smoke("inversek2j");
    let spec = QualitySpec::paper_default(0.10).unwrap();
    let report = validate(&compiled, &spec, &smoke_validator(2)).unwrap();

    assert_eq!(report.benchmark, "inversek2j");
    assert_eq!(report.trials, TRIALS as u64);
    assert_eq!(report.trial_records.len(), TRIALS);
    // Trials walk the conformance seed space in order.
    for (i, t) in report.trial_records.iter().enumerate() {
        assert_eq!(t.dataset_seed, CONFORM_SEED_BASE + i as u64);
        assert_eq!(t.met_target, t.quality_loss <= report.quality_target);
    }
    let successes = report.trial_records.iter().filter(|t| t.met_target).count() as u64;
    assert_eq!(report.successes, successes);
    assert_eq!(
        report.observed_rate,
        successes as f64 / TRIALS as f64,
        "observed rate must be derived from the recorded trials"
    );
    assert!(report.p_value > 0.0 && report.p_value <= 1.0);
    assert!(report.unseen_lower_bound >= 0.0 && report.unseen_lower_bound <= 1.0);
    // The verdict rule, restated independently.
    let expected = if report.observed_rate >= report.target_rate {
        Verdict::Holds
    } else if report.p_value >= 0.05 {
        Verdict::Marginal
    } else {
        Verdict::Violated
    };
    assert_eq!(report.verdict, expected);
    assert!(report.summary_line().starts_with("inversek2j: "));
}

#[test]
fn every_mutation_detected_on_real_losses() {
    let compiled = compiled_smoke("sobel");
    let spec = QualitySpec::paper_default(0.10).unwrap();
    let report = validate(&compiled, &spec, &smoke_validator(2)).unwrap();
    let losses: Vec<f64> = report
        .trial_records
        .iter()
        .map(|t| t.quality_loss)
        .collect();

    let check = self_check(&losses, &spec, 0.005, 0.05).unwrap();
    assert!(
        check.clean_findings.is_empty(),
        "the unmutated pipeline must audit clean: {:?}",
        check.clean_findings
    );
    assert_eq!(check.outcomes.len(), Mutation::ALL.len());
    for outcome in &check.outcomes {
        assert!(
            outcome.detected,
            "planted mutation {:?} escaped the audits",
            outcome.mutation
        );
    }
    assert!(check.all_detected());
}

#[test]
fn routed_report_is_bit_identical_across_thread_counts() {
    let routed = routed_smoke("inversek2j", 3);
    let spec = QualitySpec::paper_default(0.10).unwrap();
    let reports: Vec<String> = [1, 2, 4]
        .iter()
        .map(|&threads| {
            let report = validate_routed(&routed, &spec, &smoke_validator(threads)).unwrap();
            serde_json::to_string(&report).unwrap()
        })
        .collect();
    assert_eq!(reports[0], reports[1], "threads=1 vs threads=2");
    assert_eq!(reports[0], reports[2], "threads=1 vs threads=4");
}

#[test]
fn routed_pool_of_one_report_matches_binary_report() {
    // A pool-of-one routed conformance run must publish the same numbers
    // as the binary validator, bit for bit, except for the explicit
    // mixture bookkeeping (which is trivially one slot).
    let compiled = compiled_smoke("inversek2j");
    let routed = routed_smoke("inversek2j", 1);
    let spec = QualitySpec::paper_default(0.10).unwrap();
    let binary = validate(&compiled, &spec, &smoke_validator(2)).unwrap();
    let mixed = validate_routed(&routed, &spec, &smoke_validator(2)).unwrap();
    assert_eq!(
        serde_json::to_string(&binary).unwrap(),
        serde_json::to_string(&mixed).unwrap()
    );
}

#[test]
fn routed_report_attributes_violations_and_audits_clean() {
    let routed = routed_smoke("sobel", 3);
    let spec = QualitySpec::paper_default(0.10).unwrap();
    let report = validate_routed(&routed, &spec, &smoke_validator(2)).unwrap();

    assert_eq!(report.route_violations.len(), routed.pool.len());
    assert_eq!(
        report.route_violations.iter().sum::<u64>(),
        report.trials - report.successes,
        "per-member blame must conserve the violation total"
    );
    for t in &report.trial_records {
        assert!(t.worst_route < routed.pool.len());
    }

    // The routed mutation self-check on the real Monte-Carlo losses:
    // clean audit, every planted defect detected — including the new
    // route misattribution.
    let losses: Vec<f64> = report
        .trial_records
        .iter()
        .map(|t| t.quality_loss)
        .collect();
    let routes: Vec<usize> = report.trial_records.iter().map(|t| t.worst_route).collect();
    let check = self_check_routed(&losses, &routes, routed.pool.len(), &spec, 0.005, 0.05).unwrap();
    assert!(
        check.clean_findings.is_empty(),
        "the unmutated routed pipeline must audit clean: {:?}",
        check.clean_findings
    );
    assert_eq!(check.outcomes.len(), Mutation::ALL.len());
    assert_eq!(
        Mutation::ALL.len(),
        5,
        "route misattribution joins the roster"
    );
    assert!(check.all_detected(), "{check:?}");
}

/// Whole-pipeline check of the vectorized kernels: a SIMD-trained
/// accelerator compiles end to end (training, profiling, certification,
/// classifier training), carries its backend through the artifact, and
/// its certificate survives independent conformance validation on
/// unseen datasets. This is the guarantee that the SIMD opt-in changes
/// wall time, not the statistical contract.
///
/// Unlike the other tests here, this one certifies against the paper
/// spec (95% confidence, 90% success floor) rather than the smoke spec,
/// whose 50% floor is deliberately too weak to hold at validation time.
/// The Clopper–Pearson bound needs at least 29 all-success compile
/// datasets to clear 0.9 at 95% confidence, hence the widened count.
#[test]
fn simd_compiled_function_certifies_and_holds() {
    if !KernelBackend::simd_available() {
        eprintln!("skipping: host cannot run the simd backend");
        return;
    }
    let spec = QualitySpec::paper_default(0.10).unwrap();
    let bench: Arc<dyn Benchmark> = suite::by_name("inversek2j").unwrap().into();
    let config = CompileConfig {
        kernel: KernelBackend::Simd,
        spec,
        compile_datasets: 32,
        ..CompileConfig::smoke()
    };
    let compiled = compile(bench, &config).unwrap();
    assert_eq!(
        compiled.function.kernel(),
        KernelBackend::Simd,
        "the compiled artifact must carry the backend it trained with"
    );
    assert!(
        compiled.threshold.certified_rate >= 0.90,
        "certification must clear the paper floor (got {})",
        compiled.threshold.certified_rate
    );
    assert!(
        compiled.threshold.mean_invocation_rate > 0.0,
        "a certificate that never invokes the accelerator is vacuous"
    );
    let report = validate(&compiled, &spec, &smoke_validator(2)).unwrap();
    assert_eq!(
        report.verdict,
        Verdict::Holds,
        "SIMD-trained certificate must hold on unseen data: {}",
        report.summary_line()
    );
}

#[test]
fn conform_seed_space_is_disjoint_from_compile_and_validation_seeds() {
    // The partition is pinned once, in `mithra_core::seeds`, and this
    // crate re-exports (never re-declares) its base. A full-size
    // conformance run stays inside its own window: below the drifted
    // window at 3,500,000, well clear of the fuzzing window at
    // 4,000,000 and the extension window at 7,000,000.
    use mithra_core::seeds::{self, ALL_BASES};
    assert_eq!(CONFORM_SEED_BASE, 3_000_000);
    assert_eq!(CONFORM_SEED_BASE, seeds::CONFORM_SEED_BASE);
    let largest_conform_seed = CONFORM_SEED_BASE + 999;
    assert!(largest_conform_seed < seeds::DRIFT_CONFORM_SEED_BASE);
    assert!(largest_conform_seed < seeds::FUZZ_SEED_BASE);
    assert!(largest_conform_seed < seeds::EXTENSION_SEED_BASE);

    // Pairwise disjointness of every window in the roster, so adding a
    // new consumer (as the fuzz harness did) must join this proof.
    for (i, (name_a, base_a)) in ALL_BASES.iter().enumerate() {
        for (name_b, base_b) in ALL_BASES.iter().skip(i + 1) {
            assert!(
                base_a < base_b,
                "seed windows {name_a} and {name_b} are not disjoint"
            );
        }
    }
    assert!(
        ALL_BASES.iter().any(|(name, _)| *name == "fuzz"),
        "the fuzzing window must be part of the pinned roster"
    );
}
