//! Property tests on the simulator's accounting identities.

use mithra_sim::cpu::IsaCosts;
use mithra_sim::energy::EnergyModel;
use mithra_sim::report::BenchmarkSummary;
use mithra_sim::software::SoftwareClassifierCosts;
use mithra_sim::system::RunResult;
use proptest::prelude::*;

fn arb_run() -> impl Strategy<Value = RunResult> {
    (
        1.0f64..1e9,
        1.0f64..1e9,
        1.0f64..1e9,
        1.0f64..1e9,
        0.0f64..1.0,
        0usize..1000,
    )
        .prop_map(|(bc, ac, be, ae, q, total)| RunResult {
            baseline_cycles: bc,
            accelerated_cycles: ac,
            baseline_energy_nj: be,
            accelerated_energy_nj: ae,
            quality_loss: q,
            invoked: total / 2,
            total,
            false_positives: total / 10,
            false_negatives: total / 20,
        })
}

proptest! {
    #[test]
    fn edp_is_product_of_speedup_and_energy(run in arb_run()) {
        let expected = run.speedup() * run.energy_reduction();
        prop_assert!((run.edp_improvement() - expected).abs() <= expected * 1e-12);
    }

    #[test]
    fn rates_are_fractions(run in arb_run()) {
        prop_assert!((0.0..=1.0).contains(&run.invocation_rate()));
        prop_assert!(run.false_positive_rate() >= 0.0);
        prop_assert!(run.false_negative_rate() >= 0.0);
    }

    #[test]
    fn summary_means_lie_within_run_extremes(
        runs in prop::collection::vec(arb_run(), 1..20),
    ) {
        let summary = BenchmarkSummary::from_runs(&runs, 0.05);
        let min = runs.iter().map(RunResult::speedup).fold(f64::INFINITY, f64::min);
        let max = runs.iter().map(RunResult::speedup).fold(0.0, f64::max);
        prop_assert!(summary.speedup >= min - 1e-9 && summary.speedup <= max + 1e-9);
        prop_assert!((0.0..=1.0).contains(&summary.success_fraction));
    }

    #[test]
    fn isa_costs_scale_with_vector_width(inputs in 1usize..256, outputs in 1usize..256) {
        let isa = IsaCosts::paper_default();
        let small = isa.accelerated_invocation_core_cycles(inputs, outputs);
        let big = isa.accelerated_invocation_core_cycles(inputs + 1, outputs + 1);
        prop_assert!(big > small);
        prop_assert!(isa.rejected_invocation_core_cycles(inputs) <= small);
    }

    #[test]
    fn software_costs_monotone(dims in 1usize..128, tables in 1usize..16) {
        let sw = SoftwareClassifierCosts::paper_default();
        prop_assert!(sw.table_cycles(dims + 1, tables) >= sw.table_cycles(dims, tables));
        prop_assert!(sw.table_cycles(dims, tables + 1) >= sw.table_cycles(dims, tables));
    }

    #[test]
    fn npu_energy_additive_in_costs(
        macs in 1u64..10_000,
        cycles in 1u64..10_000,
        luts in 0u64..1_000,
    ) {
        use mithra_npu::cost::InvocationCost;
        let e = EnergyModel::paper_default();
        let cost = InvocationCost {
            cycles,
            macs,
            lut_lookups: luts,
            weight_reads: macs,
            inputs_streamed: 1,
            outputs_streamed: 1,
        };
        let double = InvocationCost {
            cycles: 2 * cycles,
            macs: 2 * macs,
            lut_lookups: 2 * luts,
            weight_reads: 2 * macs,
            inputs_streamed: 2,
            outputs_streamed: 2,
        };
        let single_nj = e.npu_invocation_nj(&cost);
        let double_nj = e.npu_invocation_nj(&double);
        prop_assert!((double_nj - 2.0 * single_nj).abs() < single_nj * 1e-9);
    }
}
