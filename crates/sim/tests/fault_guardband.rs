//! Property tests for the fault-injection layer and the runtime
//! guardband:
//!
//! * with no plan armed, the hooked simulation path is bit-identical to
//!   the production [`simulate`] path (the pinned `results/*.txt` tables
//!   stay byte-comparable);
//! * the watchdog never fires on clean certified runs, across seeds — the
//!   no-false-alarm property;
//! * armed plans are deterministic and refuse to arm when empty.

use mithra_axbench::benchmark::Benchmark;
use mithra_axbench::dataset::DatasetScale;
use mithra_axbench::suite;
use mithra_core::pipeline::{compile, CompileConfig, Compiled};
use mithra_core::profile::DatasetProfile;
use mithra_core::watchdog::{GuardState, QualityWatchdog, WatchdogConfig};
use mithra_sim::fault::FaultPlan;
use mithra_sim::system::{run, simulate, RunHooks, SimOptions};
use mithra_sim::SimError;
use std::sync::{Arc, OnceLock};

fn compiled_sobel() -> &'static Compiled {
    static COMPILED: OnceLock<Compiled> = OnceLock::new();
    COMPILED.get_or_init(|| {
        let bench: Arc<dyn Benchmark> = suite::by_name("sobel").unwrap().into();
        compile(bench, &CompileConfig::smoke()).unwrap()
    })
}

#[test]
fn hook_free_run_is_bit_identical_to_simulate_across_seeds() {
    let compiled = compiled_sobel();
    let opts = SimOptions::default();
    for seed in [3u64, 17, 40, 123, 999] {
        let ds = compiled.function.dataset(seed, DatasetScale::Smoke);
        let profile = DatasetProfile::collect(&compiled.function, ds);
        let mut a = compiled.table.clone();
        let mut b = compiled.table.clone();
        let plain = simulate(compiled, &profile, &mut a, &opts);
        let hooked = run(compiled, &profile, &mut b, &opts, RunHooks::none()).unwrap();
        assert_eq!(plain, hooked, "seed {seed} diverged");
    }
}

#[test]
fn watchdog_never_fires_on_clean_certified_runs_across_seeds() {
    let compiled = compiled_sobel();
    let opts = SimOptions::default();
    for seed in [5u64, 21, 77, 310, 4242] {
        let ds = compiled.function.dataset(seed, DatasetScale::Smoke);
        let profile = DatasetProfile::collect(&compiled.function, ds);
        // The oracle admits exactly the invocations whose error is within
        // the certified threshold, so every sampled violation is false.
        let mut oracle = compiled.oracle_for(&profile);
        let mut watchdog = QualityWatchdog::new(WatchdogConfig::default());
        let guarded = run(
            compiled,
            &profile,
            &mut oracle,
            &opts,
            RunHooks::none().with_watchdog(&mut watchdog, 2),
        )
        .unwrap();
        let report = watchdog.report();
        assert_eq!(report.breaches, 0, "seed {seed}: {report:?}");
        assert_eq!(report.state, GuardState::Monitoring, "seed {seed}");
        assert_eq!(report.violations, 0, "seed {seed}");
        // Admission was never gated: same delegation as the clean run.
        let mut plain_oracle = compiled.oracle_for(&profile);
        let plain = simulate(compiled, &profile, &mut plain_oracle, &opts);
        assert_eq!(guarded.invoked, plain.invoked, "seed {seed}");
        assert_eq!(guarded.quality_loss, plain.quality_loss, "seed {seed}");
    }
}

#[test]
fn disarmed_plans_refuse_to_arm_and_armed_plans_are_deterministic() {
    let compiled = compiled_sobel();
    let ds = compiled.function.dataset(60, DatasetScale::Smoke);
    assert!(matches!(
        FaultPlan::disarmed().arm(compiled, &ds),
        Err(SimError::Disarmed)
    ));
    assert!(matches!(
        FaultPlan::uniform(9, 0.0).arm(compiled, &ds),
        Err(SimError::Disarmed)
    ));
    for seed in [1u64, 2, 3] {
        let plan = FaultPlan::uniform(seed, 0.003);
        let a = plan.arm(compiled, &ds).unwrap();
        let b = plan.arm(compiled, &ds).unwrap();
        assert_eq!(a.profile.errors(), b.profile.errors(), "seed {seed}");
        assert_eq!(a.fifo_events, b.fifo_events, "seed {seed}");
    }
}

#[test]
fn guardband_restores_quality_under_heavy_faults() {
    // inversek2j's table keeps admitting under weight faults (sobel's
    // rejects nearly everything, starving the watchdog of samples), so
    // it exercises the full breach → fallback → restore ladder.
    let bench: Arc<dyn Benchmark> = suite::by_name("inversek2j").unwrap().into();
    let compiled = &compile(bench, &CompileConfig::smoke()).unwrap();
    let opts = SimOptions::default();
    let ds = compiled.function.dataset(71, DatasetScale::Smoke);
    let armed = FaultPlan {
        npu_weight_bit_rate: 0.02,
        lut_bit_rate: 0.002,
        ..FaultPlan::disarmed()
    }
    .arm(compiled, &ds)
    .unwrap();

    let mut off_cls = armed.classifier.clone();
    let off = run(
        compiled,
        &armed.profile,
        &mut off_cls,
        &opts,
        RunHooks::none(),
    )
    .unwrap();

    let mut watchdog = QualityWatchdog::new(WatchdogConfig::default());
    let mut on_cls = armed.classifier.clone();
    let on = run(
        compiled,
        &armed.profile,
        &mut on_cls,
        &opts,
        RunHooks::with_fifo_events(&armed.fifo_events).with_watchdog(&mut watchdog, 1),
    )
    .unwrap();

    let report = watchdog.report();
    assert!(report.breaches > 0, "{report:?}");
    assert!(
        on.quality_loss < off.quality_loss,
        "guarded {} vs unguarded {}",
        on.quality_loss,
        off.quality_loss
    );
    assert!(on.invoked < off.invoked);
}
